#!/usr/bin/env bash
# Full local gate: formatting, release build (incl. examples), tests, and
# clippy with warnings denied.
# Run from anywhere; operates on the workspace containing this script.
set -euo pipefail

cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo build --release"
cargo build --release

echo "==> cargo build --release -p eff2-examples (all example binaries)"
cargo build --release -p eff2-examples

echo "==> cargo test -q"
cargo test -q

echo "==> eff2-lint --deny (workspace invariant audit)"
cargo run --release -p eff2-lint -- --deny

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace -- -D warnings

echo "==> all checks passed"
