#!/usr/bin/env bash
# Full local gate: formatting, release build (incl. examples), tests, and
# clippy with warnings denied.
# Run from anywhere; operates on the workspace containing this script.
set -euo pipefail

cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo build --release"
cargo build --release

echo "==> cargo build --release -p eff2-examples (all example binaries)"
cargo build --release -p eff2-examples

echo "==> cargo test -q"
cargo test -q

echo "==> eff2-lint --deny (workspace invariant audit)"
cargo run --release -p eff2-lint -- --deny

echo "==> eval exp4 smoke (tiny-scale serving sweep)"
EXP4_OUT="$(mktemp -d)"
EFF2_SCALE=2500 EFF2_QUERIES=6 cargo run --release -p eff2-eval -- exp4 \
  --out "$EXP4_OUT" | tee "$EXP4_OUT/exp4.txt"
grep -q "bit-identical to serial under every policy: yes" "$EXP4_OUT/exp4.txt"
rm -rf "$EXP4_OUT"

echo "==> eval exp5 smoke (tiny-scale chaos sweep)"
EXP5_OUT="$(mktemp -d)"
EFF2_SCALE=2500 EFF2_QUERIES=6 cargo run --release -p eff2-eval -- exp5 \
  --out "$EXP5_OUT" | tee "$EXP5_OUT/exp5.txt"
grep -q "Rate-0 chaos stack bit-identical to the undecorated search: yes" "$EXP5_OUT/exp5.txt"
grep -q "All faulted searches completed with degradation reports: yes" "$EXP5_OUT/exp5.txt"
rm -rf "$EXP5_OUT"

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace -- -D warnings

echo "==> all checks passed"
