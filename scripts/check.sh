#!/usr/bin/env bash
# Full local gate: formatting, release build (incl. examples), tests, and
# clippy with warnings denied.
# Run from anywhere; operates on the workspace containing this script.
set -euo pipefail

cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo build --release"
cargo build --release

echo "==> cargo build --release -p eff2-examples (all example binaries)"
cargo build --release -p eff2-examples

echo "==> cargo test -q"
cargo test -q

echo "==> eff2-lint --deny (workspace invariant audit, incl. interprocedural rules)"
LINT_ERR="$(mktemp)"
cargo run --release -p eff2-lint -- --deny 2>"$LINT_ERR"
cat "$LINT_ERR" >&2
# The timing line ("lint: N files, M symbols, K ms") tracks analysis cost
# as the workspace grows; its absence means the audit did not really run.
grep -q "^lint: " "$LINT_ERR"
rm -f "$LINT_ERR"

echo "==> eval exp4 smoke (tiny-scale serving sweep)"
EXP4_OUT="$(mktemp -d)"
EFF2_SCALE=2500 EFF2_QUERIES=6 cargo run --release -p eff2-eval -- exp4 \
  --out "$EXP4_OUT" | tee "$EXP4_OUT/exp4.txt"
grep -q "bit-identical to serial under every policy: yes" "$EXP4_OUT/exp4.txt"
rm -rf "$EXP4_OUT"

echo "==> eval exp5 smoke (tiny-scale chaos sweep)"
EXP5_OUT="$(mktemp -d)"
EFF2_SCALE=2500 EFF2_QUERIES=6 cargo run --release -p eff2-eval -- exp5 \
  --out "$EXP5_OUT" | tee "$EXP5_OUT/exp5.txt"
grep -q "Rate-0 chaos stack bit-identical to the undecorated search: yes" "$EXP5_OUT/exp5.txt"
grep -q "All faulted searches completed with degradation reports: yes" "$EXP5_OUT/exp5.txt"
rm -rf "$EXP5_OUT"

echo "==> eval exp6 smoke (quantized descriptors + two-level ranking)"
EXP6_OUT="$(mktemp -d)"
EFF2_SCALE=2500 EFF2_QUERIES=6 cargo run --release -p eff2-eval -- exp6 \
  --out "$EXP6_OUT" | tee "$EXP6_OUT/exp6.txt"
grep -q "Rerank tail bit-identical to the uncompressed baseline at full budget: yes" "$EXP6_OUT/exp6.txt"
grep -q "Precision monotonically non-decreasing in rerank depth: yes" "$EXP6_OUT/exp6.txt"
grep -q "v2 and v3 chunk files read-compatible: yes" "$EXP6_OUT/exp6.txt"
# Modelled bytes-read figures for the bench artefact below (same-budget
# raw baseline vs the R=1 quantized scans).
RAW_BYTES="$(awk '$1=="raw" && $2=="flat" && $4=="3/5" {print $6}' "$EXP6_OUT/exp6.txt")"
SQ8_BYTES="$(awk '$1=="sq8" && $2=="flat" && $3=="1" {print $6}' "$EXP6_OUT/exp6.txt")"
PQ_BYTES="$(awk '$1=="pq" && $2=="flat" && $3=="1" {print $6}' "$EXP6_OUT/exp6.txt")"
rm -rf "$EXP6_OUT"

echo "==> eval exp7 smoke (tiny-scale sharded-fleet sweep)"
EXP7_OUT="$(mktemp -d)"
EFF2_SCALE=2500 EFF2_QUERIES=6 cargo run --release -p eff2-eval -- exp7 \
  --out "$EXP7_OUT" | tee "$EXP7_OUT/exp7.txt"
grep -q "All merged fleet answers bit-identical to solo under every cell: yes" "$EXP7_OUT/exp7.txt"
grep -q "Replication masked permanent chunk loss as failover: yes" "$EXP7_OUT/exp7.txt"
# Cross-shard chunk traffic per placement at the widest fleet (R = 1), for
# the bench artefact below.
HASH_CROSS="$(awk '$1=="16" && $2=="1" && $3=="chunk-hash" {print $9}' "$EXP7_OUT/exp7.txt")"
LOCAL_CROSS="$(awk '$1=="16" && $2=="1" && $3=="centroid-locality" {print $9}' "$EXP7_OUT/exp7.txt")"
rm -rf "$EXP7_OUT"

echo "==> eval exp8 smoke (tiny-scale live-mutation sweep)"
EXP8_OUT="$(mktemp -d)"
EFF2_SCALE=2500 EFF2_QUERIES=6 cargo run --release -p eff2-eval -- exp8 \
  --out "$EXP8_OUT" | tee "$EXP8_OUT/exp8.txt"
grep -q "Every served result bit-identical to a solo run on its pinned epoch snapshot: yes" "$EXP8_OUT/exp8.txt"
grep -q "Compactor kept every installed chunk within 2x the target size: yes" "$EXP8_OUT/exp8.txt"
grep -q "reduced the final imbalance factor vs never-compacting under skewed ingest: yes" "$EXP8_OUT/exp8.txt"
# Final imbalance factors of the hottest sr-tree cell (4x ingest), with
# compaction off vs on, for the bench artefact below.
NEVER_IMB="$(awk '$1=="sr-tree" && $2=="4.0" && $3=="never" {print $11}' "$EXP8_OUT/exp8.txt")"
COMPACT_IMB="$(awk '$1=="sr-tree" && $2=="4.0" && $3 ~ /^every-/ {print $11}' "$EXP8_OUT/exp8.txt")"
COMPACTIONS="$(awk '$1=="sr-tree" && $2=="4.0" && $3 ~ /^every-/ {print $6}' "$EXP8_OUT/exp8.txt")"
rm -rf "$EXP8_OUT"

echo "==> eval exp9 smoke (tiny-scale image-query sweep)"
EXP9_OUT="$(mktemp -d)"
EFF2_SCALE=2500 EFF2_QUERIES=6 cargo run --release -p eff2-eval -- exp9 \
  --out "$EXP9_OUT" | tee "$EXP9_OUT/exp9.txt"
grep -q "Run-to-completion cells bit-identical to the solo image reference: yes" "$EXP9_OUT/exp9.txt"
grep -q "Descriptor accounting exact in every cell: yes" "$EXP9_OUT/exp9.txt"
grep -q "at <=0.5x the descriptor sessions: yes" "$EXP9_OUT/exp9.txt"
# Descriptor sessions spent by the full run vs the tightest early-stop rule
# at 4-way concurrency, plus that rule's relative precision, for the bench
# artefact below. Early stopping must spend strictly fewer sessions.
RUNALL_SPENT="$(awk '$1=="run-all" && $2=="4" {print $3}' "$EXP9_OUT/exp9.txt")"
W1_SPENT="$(awk '$1=="stable-top3-w1" && $2=="4" {print $3}' "$EXP9_OUT/exp9.txt")"
W1_REL="$(awk '$1=="stable-top3-w1" && $2=="4" {print $7}' "$EXP9_OUT/exp9.txt")"
test "$W1_SPENT" -lt "$RUNALL_SPENT"
rm -rf "$EXP9_OUT"

echo "==> criterion benches (reduced sampling: kernels, batch_search, scheduler, fleet, compaction, image_vote)"
EFF2_BENCH_SCALE=4000 cargo bench -p eff2-bench \
  --bench kernels --bench batch_search --bench scheduler_throughput --bench fleet \
  --bench compaction --bench image_vote -- \
  --sample-size 10 --warm-up-time 0.5 --measurement-time 1

echo "==> bench_report -> BENCH_7.json"
cargo run --release -p eff2-bench --bin bench_report -- \
  --criterion-dir target/criterion --out BENCH_7.json \
  --kv "exp6_raw_flat_partial_bytes=$RAW_BYTES" \
  --kv "exp6_sq8_flat_r1_bytes=$SQ8_BYTES" \
  --kv "exp6_pq_flat_r1_bytes=$PQ_BYTES" \
  --kv "exp7_16shard_hash_cross_fetches=$HASH_CROSS" \
  --kv "exp7_16shard_locality_cross_fetches=$LOCAL_CROSS"

echo "==> bench_report -> BENCH_8.json"
cargo run --release -p eff2-bench --bin bench_report -- \
  --criterion-dir target/criterion --out BENCH_8.json \
  --kv "exp8_srtree_4x_never_imbalance=$NEVER_IMB" \
  --kv "exp8_srtree_4x_compacting_imbalance=$COMPACT_IMB" \
  --kv "exp8_srtree_4x_compactions=$COMPACTIONS"

echo "==> bench_report -> BENCH_9.json"
cargo run --release -p eff2-bench --bin bench_report -- \
  --criterion-dir target/criterion --out BENCH_9.json \
  --kv "exp9_runall_4active_descriptors_spent=$RUNALL_SPENT" \
  --kv "exp9_stable_top3_w1_4active_descriptors_spent=$W1_SPENT" \
  --kv "exp9_stable_top3_w1_4active_rel_precision=$W1_REL"

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace -- -D warnings

echo "==> all checks passed"
