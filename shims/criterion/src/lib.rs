//! Offline stand-in for the `criterion` crate.
//!
//! Implements the API subset the workspace's benches use — groups,
//! throughput annotation, `bench_function` / `bench_with_input`, and the
//! `criterion_group!` / `criterion_main!` macros — with a simple but
//! honest measurement loop: calibrate the iteration count to a target
//! sample duration, collect `sample_size` samples, report the median.
//!
//! No statistical regression analysis, plots or baselines; output is one
//! line per benchmark on stdout, plus an upstream-compatible
//! `target/criterion/<label…>/new/estimates.json` median per benchmark so
//! `bench_report` can collect a perf artefact from a run.

use std::fmt::Display;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

/// Throughput annotation for a benchmark group; scales the report.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier composed of a function name and a parameter.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `name/parameter`, as upstream formats it.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{name}/{parameter}"),
        }
    }

    /// A bare parameter id.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// Anything usable as a benchmark name.
pub trait IntoBenchmarkId {
    /// The display label.
    fn label(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn label(self) -> String {
        self.label
    }
}

impl IntoBenchmarkId for &str {
    fn label(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn label(self) -> String {
        self
    }
}

/// The per-benchmark timing driver passed to bench closures.
pub struct Bencher {
    iters_hint: u64,
    samples: Vec<f64>, // ns per iteration, one per sample
    sample_count: usize,
}

impl Bencher {
    /// Times `routine`, running it enough times per sample for a stable
    /// reading.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibrate: find an iteration count taking ≈ the target sample
        // time (or use the hint from a previous sample batch).
        let mut iters = self.iters_hint.max(1);
        if self.iters_hint == 0 {
            let target = Duration::from_millis(20);
            loop {
                let start = Instant::now();
                for _ in 0..iters {
                    std::hint::black_box(routine());
                }
                let elapsed = start.elapsed();
                if elapsed >= target || iters >= 1 << 30 {
                    // Scale so one sample lands near the target.
                    if elapsed > Duration::ZERO && elapsed < target {
                        let scale = target.as_secs_f64() / elapsed.as_secs_f64();
                        iters = ((iters as f64 * scale).ceil() as u64).max(1);
                    }
                    break;
                }
                iters = iters.saturating_mul(2);
            }
            self.iters_hint = iters;
        }
        for _ in 0..self.sample_count {
            let start = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(routine());
            }
            let ns = start.elapsed().as_secs_f64() * 1e9 / iters as f64;
            self.samples.push(ns);
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the group throughput annotation.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Sets the number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Times `f` under `id`.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.label());
        let (median_ns, samples) = run_bench(self.sample_size, &mut f);
        report(&label, median_ns, samples, self.throughput);
        self
    }

    /// Times `f` under `id` with a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.label());
        let (median_ns, samples) = run_bench(self.sample_size, &mut |b: &mut Bencher| f(b, input));
        report(&label, median_ns, samples, self.throughput);
        self
    }

    /// Ends the group (kept for API parity; groups report as they run).
    pub fn finish(&mut self) {
        let _ = &self.criterion;
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(sample_count: usize, f: &mut F) -> (f64, usize) {
    let mut bencher = Bencher {
        iters_hint: 0,
        samples: Vec::new(),
        sample_count,
    };
    f(&mut bencher);
    let mut samples = bencher.samples;
    if samples.is_empty() {
        return (f64::NAN, 0);
    }
    samples.sort_by(f64::total_cmp);
    (samples[samples.len() / 2], samples.len())
}

/// Locates `target/criterion` like upstream: `CARGO_TARGET_DIR` if set,
/// otherwise the nearest `target` directory at or above the working
/// directory (cargo runs bench binaries from the package root, so the
/// workspace `target` is found by walking up).
#[cfg_attr(test, allow(dead_code))] // only reached from the cfg(not(test)) persistence path
fn target_criterion_dir() -> Option<PathBuf> {
    if let Some(t) = std::env::var_os("CARGO_TARGET_DIR") {
        return Some(PathBuf::from(t).join("criterion"));
    }
    let mut dir = std::env::current_dir().ok()?;
    loop {
        let cand = dir.join("target");
        if cand.is_dir() {
            return Some(cand.join("criterion"));
        }
        if !dir.pop() {
            return None;
        }
    }
}

/// `<root>/<label part>/…/new/estimates.json`, with path-hostile
/// characters in each slash-separated label part replaced by `_`.
fn estimates_path(root: &Path, label: &str) -> PathBuf {
    let mut dir = root.to_path_buf();
    for part in label.split('/').filter(|p| !p.is_empty()) {
        let safe: String = part
            .chars()
            .map(|c| {
                if c.is_ascii_alphanumeric() || c == '_' || c == '-' || c == '.' {
                    c
                } else {
                    '_'
                }
            })
            .collect();
        dir.push(safe);
    }
    dir.join("new").join("estimates.json")
}

/// Persists the median under the upstream directory scheme. Best-effort:
/// a read-only filesystem must not fail the bench run. Skipped when the
/// shim itself is under test so unit tests never pollute `target/`.
fn save_estimates(label: &str, median_ns: f64) {
    #[cfg(test)]
    let _ = (label, median_ns);
    #[cfg(not(test))]
    {
        if !median_ns.is_finite() {
            return;
        }
        let Some(root) = target_criterion_dir() else {
            return;
        };
        let path = estimates_path(&root, label);
        let Some(dir) = path.parent() else { return };
        if std::fs::create_dir_all(dir).is_err() {
            return;
        }
        let body = format!("{{\"median\":{{\"point_estimate\":{median_ns}}}}}\n");
        let _ = std::fs::write(&path, body);
    }
}

fn report(label: &str, median_ns: f64, samples: usize, throughput: Option<Throughput>) {
    save_estimates(label, median_ns);
    let time = format_ns(median_ns);
    let rate = match throughput {
        Some(Throughput::Elements(n)) if median_ns > 0.0 => {
            format!("  {} elem/s", format_count(n as f64 * 1e9 / median_ns))
        }
        Some(Throughput::Bytes(n)) if median_ns > 0.0 => {
            format!("  {}B/s", format_count(n as f64 * 1e9 / median_ns))
        }
        _ => String::new(),
    };
    println!("{label:<52} time: {time:>12}{rate}   ({samples} samples)");
}

fn format_ns(ns: f64) -> String {
    if !ns.is_finite() {
        "n/a".to_string()
    } else if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

fn format_count(v: f64) -> String {
    if v >= 1e9 {
        format!("{:.2} G", v / 1e9)
    } else if v >= 1e6 {
        format!("{:.2} M", v / 1e6)
    } else if v >= 1e3 {
        format!("{:.2} K", v / 1e3)
    } else {
        format!("{v:.0} ")
    }
}

/// The top-level benchmark driver.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 10,
        }
    }
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.default_sample_size;
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
            sample_size,
        }
    }

    /// Times `f` outside any group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = id.label();
        let (median_ns, samples) = run_bench(self.default_sample_size, &mut f);
        report(&label, median_ns, samples, None);
        self
    }
}

/// Bundles bench functions into a group runner, mirroring upstream.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emits `main` running the given groups, mirroring upstream.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // cargo bench passes `--bench`; `cargo test --benches` passes
            // `--test`, under which benches are skipped (they only time).
            if std::env::args().any(|a| a == "--test") {
                return;
            }
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_produces_samples() {
        let (median, samples) = run_bench(5, &mut |b: &mut Bencher| {
            b.iter(|| std::hint::black_box(3u64).wrapping_mul(7))
        });
        assert_eq!(samples, 5);
        assert!(median.is_finite() && median > 0.0);
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim_smoke");
        g.throughput(Throughput::Elements(100));
        g.sample_size(3);
        g.bench_function("noop", |b| b.iter(|| 1 + 1));
        g.bench_with_input(BenchmarkId::new("with_input", 4), &4u32, |b, &x| {
            b.iter(|| x * 2)
        });
        g.finish();
    }

    #[test]
    fn estimates_path_mirrors_label_structure() {
        let p = estimates_path(Path::new("/t/criterion"), "group/bench name/4");
        assert_eq!(
            p,
            Path::new("/t/criterion/group/bench_name/4/new/estimates.json")
        );
    }

    #[test]
    fn formatting_scales() {
        assert!(format_ns(12.3).contains("ns"));
        assert!(format_ns(12_300.0).contains("µs"));
        assert!(format_ns(12_300_000.0).contains("ms"));
        assert!(format_ns(2e9).contains(" s"));
    }
}
