//! Offline stand-in for the `proptest` crate.
//!
//! Provides the subset the workspace's property tests use: the
//! [`proptest!`] macro, [`Strategy`] with `prop_map`, range and tuple
//! strategies, `collection::vec`, [`ProptestConfig`] and the
//! `prop_assert*` macros.
//!
//! Differences from upstream: cases are generated from a fixed seed
//! sequence (fully deterministic, no `proptest-regressions` persistence)
//! and failing cases are **not shrunk** — the failure message reports the
//! case number and generated inputs instead.

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::ops::{Range, RangeInclusive};

/// Per-test configuration (`#![proptest_config(...)]`).
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// The RNG handed to strategies; deterministic per (test, case).
pub type TestRng = StdRng;

/// Builds the RNG for one case of one test.
pub fn case_rng(test_name: &str, case: u64) -> TestRng {
    // FNV-1a over the test name keeps seeds distinct across tests.
    let mut h = 0xcbf29ce484222325u64;
    for b in test_name.bytes() {
        h = (h ^ u64::from(b)).wrapping_mul(0x100000001b3);
    }
    StdRng::seed_from_u64(h ^ case.wrapping_mul(0x9E3779B97F4A7C15))
}

/// A generator of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Maps generated values to a dependent strategy and draws from it.
    fn prop_flat_map<U, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        U: Strategy,
        F: Fn(Self::Value) -> U,
    {
        FlatMap { inner: self, f }
    }
}

/// The strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// The strategy returned by [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U: Strategy, F: Fn(S::Value) -> U> Strategy for FlatMap<S, F> {
    type Value = U::Value;
    fn generate(&self, rng: &mut TestRng) -> U::Value {
        let mid = self.inner.generate(rng);
        (self.f)(mid).generate(rng)
    }
}

/// One boxed arm of a [`Union`].
pub type UnionArm<T> = Box<dyn Fn(&mut TestRng) -> T>;

/// A uniform choice between boxed strategies of one value type — the
/// strategy behind [`prop_oneof!`].
pub struct Union<T> {
    arms: Vec<UnionArm<T>>,
}

impl<T> Union<T> {
    /// A union over already-boxed arms (must be non-empty).
    pub fn new(arms: Vec<UnionArm<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }

    /// Boxes one strategy as a union arm.
    pub fn arm<S>(s: S) -> UnionArm<T>
    where
        S: Strategy<Value = T> + 'static,
    {
        Box::new(move |rng| s.generate(rng))
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        use rand::Rng;
        let i = rng.gen_range(0..self.arms.len());
        (self.arms[i])(rng)
    }
}

/// Uniformly picks one of the given strategies per generated value.
/// (The real proptest supports weighted arms; the shim draws uniformly.)
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Union::arm($s)),+])
    };
}

/// A strategy that always yields clones of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! range_strategy {
    ($t:ty) => {
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                use rand::Rng;
                rng.gen_range(self.clone())
            }
        }
    };
}

range_strategy!(usize);
range_strategy!(u64);
range_strategy!(u32);
range_strategy!(i32);
range_strategy!(f32);
range_strategy!(f64);

macro_rules! range_inclusive_strategy {
    ($t:ty) => {
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                use rand::Rng;
                rng.gen_range(self.clone())
            }
        }
    };
}

range_inclusive_strategy!(usize);
range_inclusive_strategy!(u64);
range_inclusive_strategy!(u32);
range_inclusive_strategy!(i32);

macro_rules! tuple_strategy {
    ($($s:ident / $i:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$i.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A / 0);
tuple_strategy!(A / 0, B / 1);
tuple_strategy!(A / 0, B / 1, C / 2);
tuple_strategy!(A / 0, B / 1, C / 2, D / 3);
tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4);
tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5);

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Lengths acceptable to [`vec`]: an exact `usize` or a `Range<usize>`.
    pub trait IntoLenRange {
        /// Lower (inclusive) and upper (exclusive) length bounds.
        fn bounds(&self) -> (usize, usize);
    }

    impl IntoLenRange for usize {
        fn bounds(&self) -> (usize, usize) {
            (*self, *self + 1)
        }
    }

    impl IntoLenRange for Range<usize> {
        fn bounds(&self) -> (usize, usize) {
            (self.start, self.end)
        }
    }

    /// Strategy producing `Vec`s of `element` with a length drawn from
    /// `len`.
    pub fn vec<S: Strategy, L: IntoLenRange>(element: S, len: L) -> VecStrategy<S> {
        let (lo, hi) = len.bounds();
        assert!(lo < hi, "empty length range");
        VecStrategy { element, lo, hi }
    }

    /// The strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        lo: usize,
        hi: usize,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            use rand::Rng;
            let n = rng.gen_range(self.lo..self.hi);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The usual wildcard import surface.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Just, ProptestConfig,
        Strategy, Union,
    };
}

/// Asserts a condition inside a `proptest!` body; on failure the current
/// case is reported (not shrunk).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err(format!(
                "assertion failed: {}",
                stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(format!($($fmt)+));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                l,
                r
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err(format!($($fmt)+));
        }
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err(format!(
                "assertion failed: {} != {}\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                l
            ));
        }
    }};
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = ($cfg:expr);) => {};
    (cfg = ($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat in $strategy:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            // A tuple of strategies is itself a strategy; generating the
            // whole tuple at once lets the arguments be arbitrary patterns.
            let __strat = ($($strategy,)+);
            for __case in 0..u64::from(__config.cases) {
                let mut __rng = $crate::case_rng(stringify!($name), __case);
                let ($($arg,)+) = $crate::Strategy::generate(&__strat, &mut __rng);
                let __result = (|| -> ::std::result::Result<(), String> {
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(msg) = __result {
                    panic!(
                        "proptest case {}/{} of `{}` failed:\n{}",
                        __case + 1,
                        __config.cases,
                        stringify!($name),
                        msg
                    );
                }
            }
        }
        $crate::__proptest_impl! { cfg = ($cfg); $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn small_vec() -> impl Strategy<Value = Vec<u32>> {
        crate::collection::vec(0u32..100, 1..10)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_respect_bounds(x in 3usize..17, y in -5.0f32..5.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-5.0..5.0).contains(&y));
        }

        #[test]
        fn vec_lengths_and_elements(v in small_vec()) {
            prop_assert!(!v.is_empty() && v.len() < 10);
            prop_assert!(v.iter().all(|&e| e < 100));
        }

        #[test]
        fn map_and_tuples((a, b) in (0u32..10, 10u32..20).prop_map(|(x, y)| (y, x))) {
            prop_assert!(a >= 10, "mapped tuple swapped: {} {}", a, b);
            prop_assert_eq!(a / 10, 1);
            prop_assert_ne!(a, b);
        }
    }

    #[test]
    fn failing_case_panics_with_case_number() {
        let caught = std::panic::catch_unwind(|| {
            proptest! {
                #![proptest_config(ProptestConfig::with_cases(4))]
                fn always_fails(x in 0u32..10) {
                    prop_assert!(x > 100, "x was {}", x);
                }
            }
            always_fails();
        });
        let msg = *caught
            .expect_err("must fail")
            .downcast::<String>()
            .expect("string panic");
        assert!(msg.contains("case 1/4"), "got: {msg}");
    }
}
