//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this path
//! dependency provides the (small) API subset the workspace actually uses:
//! `StdRng::seed_from_u64`, `Rng::{gen, gen_range, gen_bool}` and
//! `seq::SliceRandom::shuffle`. The generator is xoshiro256++ seeded
//! through SplitMix64 — deterministic per seed, with state-of-the-art
//! statistical quality for non-cryptographic simulation use.
//!
//! Sequences differ from upstream `rand` (which uses ChaCha12 for
//! `StdRng`), but every consumer in this workspace only relies on
//! *determinism per seed*, never on specific upstream sequences.

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface: a source of uniform `u64`s.
pub trait RngCore {
    /// The next 64 uniform random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniform random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction, mirroring `rand::SeedableRng::seed_from_u64`.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling interface, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a value of a type with a standard uniform distribution
    /// (`f32`/`f64` in `[0, 1)`, integers over their full range).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from a half-open or inclusive range.
    ///
    /// # Panics
    ///
    /// Panics on an empty range.
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability must be in [0,1]"
        );
        f64::sample(self) < p
    }
}

impl<T: RngCore> Rng for T {}

/// Types sampleable with a standard distribution (`Rng::gen`).
pub trait Standard {
    /// Draws one value from `rng`.
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore>(rng: &mut R) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample<R: RngCore>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that `Rng::gen_range` can sample from.
pub trait SampleRange {
    /// The sampled element type.
    type Output;
    /// Draws one element uniformly.
    fn sample<R: RngCore>(self, rng: &mut R) -> Self::Output;
}

/// Unbiased integer in `[0, span)` by rejection sampling.
fn uniform_u64<R: RngCore>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    // Rejection zone keeps the modulo unbiased: accept v below the largest
    // multiple of `span` that fits in 2^64.
    let zone = u64::MAX - (u64::MAX % span + 1) % span;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % span;
        }
    }
}

macro_rules! int_range {
    ($t:ty) => {
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + uniform_u64(rng, span) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + uniform_u64(rng, span + 1) as $t
            }
        }
    };
}

int_range!(usize);
int_range!(u64);
int_range!(u32);
int_range!(i32);

macro_rules! float_range {
    ($t:ty, $sample:ty) => {
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u = <$t as Standard>::sample(rng); // [0, 1)
                let v = self.start + (self.end - self.start) * u;
                // Guard against rounding up to the excluded endpoint.
                if v >= self.end {
                    self.start
                } else {
                    v
                }
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let u = <$t as Standard>::sample(rng);
                (lo + (hi - lo) * u).clamp(lo, hi)
            }
        }
    };
}

float_range!(f32, f32);
float_range!(f64, f64);

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's deterministic generator: xoshiro256++ seeded via
    /// SplitMix64.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    /// Alias of [`StdRng`]; this shim has no separate small generator.
    pub type SmallRng = StdRng;

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence helpers, mirroring `rand::seq`.
pub mod seq {
    use super::{uniform_u64, RngCore};

    /// Slice shuffling, mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = uniform_u64(rng, i as u64 + 1) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn unit_floats_stay_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            let y: f32 = rng.gen();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn int_ranges_cover_and_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            let v = rng.gen_range(0usize..10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets should be hit");
        for _ in 0..1_000 {
            let v = rng.gen_range(5u32..=7);
            assert!((5..=7).contains(&v));
        }
    }

    #[test]
    fn float_ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let v = rng.gen_range(-2.0f32..3.0);
            assert!((-2.0..3.0).contains(&v));
            let w = rng.gen_range(f64::MIN_POSITIVE..1.0);
            assert!(w > 0.0 && w < 1.0);
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(4);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "got {hits}");
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_permutes() {
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut StdRng::seed_from_u64(5));
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle should move something");
    }

    #[test]
    fn uniform_mean_is_centred() {
        let mut rng = StdRng::seed_from_u64(6);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.gen::<f64>()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
