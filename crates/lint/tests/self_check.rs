//! The auditor's own acceptance test: the real workspace must lint clean.
//!
//! This is what keeps the invariants *enforced* rather than aspirational —
//! any new `.unwrap()` in a library path, `HashMap` in a deterministic
//! crate, or waiver without a reason fails the test suite, not just the
//! optional CLI run.

use std::path::Path;

#[test]
fn workspace_lints_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let findings = eff2_lint::lint_workspace(&root).expect("walk the workspace tree");
    let rendered: Vec<String> = findings
        .iter()
        .map(|f| format!("{}:{}: [{}] {}", f.file, f.line, f.rule, f.message))
        .collect();
    assert!(
        findings.is_empty(),
        "eff2-lint found {} issue(s):\n{}",
        findings.len(),
        rendered.join("\n")
    );
}

#[test]
fn workspace_has_no_unwaived_interprocedural_findings() {
    // The interprocedural families get their own named gate: a taint
    // chain, a panic-reachable public API, or a clock-discipline breach
    // anywhere in the real workspace must be fixed or explicitly waived.
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let findings = eff2_lint::lint_workspace(&root).expect("walk the workspace tree");
    let interprocedural: Vec<String> = findings
        .iter()
        .filter(|f| matches!(f.rule, "det.taint" | "panic.reach" | "clock.discipline"))
        .map(|f| format!("{}:{}: [{}] {}", f.file, f.line, f.rule, f.message))
        .collect();
    assert!(
        interprocedural.is_empty(),
        "unwaived interprocedural finding(s):\n{}",
        interprocedural.join("\n")
    );
}

#[test]
fn workspace_findings_render_as_json() {
    // The JSON mode must stay parseable by eff2-json itself (round-trip on
    // the clean-workspace empty array, plus a synthetic finding).
    let json = eff2_lint::findings_to_json(&[]);
    assert_eq!(json.trim(), "[]");
}

#[test]
fn json_schema_snapshot_includes_chain_evidence() {
    // Serialized-schema snapshot: downstream tooling keys on these exact
    // field names (`rule`/`file`/`line`/`message`/`chain[].fn`), so a
    // rename must fail a test, not a consumer.
    let finding = eff2_lint::Finding {
        rule: "det.taint",
        file: "crates/core/src/lib.rs".to_string(),
        line: 7,
        message: "public API `core::api` can reach a nondeterminism source".to_string(),
        chain: vec![
            eff2_lint::Hop {
                name: "core::api".to_string(),
                file: "crates/core/src/lib.rs".to_string(),
                line: 7,
            },
            eff2_lint::Hop {
                name: "srtree::leaf".to_string(),
                file: "crates/srtree/src/lib.rs".to_string(),
                line: 3,
            },
        ],
    };
    let expected = concat!(
        "[{\"rule\":\"det.taint\",\"file\":\"crates/core/src/lib.rs\",\"line\":7,",
        "\"message\":\"public API `core::api` can reach a nondeterminism source\",",
        "\"chain\":[",
        "{\"fn\":\"core::api\",\"file\":\"crates/core/src/lib.rs\",\"line\":7},",
        "{\"fn\":\"srtree::leaf\",\"file\":\"crates/srtree/src/lib.rs\",\"line\":3}",
        "]}]"
    );
    assert_eq!(eff2_lint::findings_to_json(&[finding]), expected);
    // The round trip through the workspace's own parser must also hold.
    let parsed = eff2_json::Json::parse(expected).expect("snapshot is valid JSON");
    let arr = parsed.as_arr().expect("top level is an array");
    assert_eq!(arr.len(), 1);
}

#[test]
fn findings_come_out_sorted_and_deterministic() {
    // `--json` output is diffable only if ordering is pinned: findings
    // sort by (file, line, rule, message) and repeat runs agree exactly.
    let inputs = vec![
        (
            "core".to_string(),
            "b.rs".to_string(),
            "pub fn f(v: &[u8]) -> u8 {\n    let m = std::collections::HashMap::new();\n    v[0]\n}\n".to_string(),
        ),
        (
            "core".to_string(),
            "a.rs".to_string(),
            "pub fn g(x: Option<u8>) -> u8 {\n    x.unwrap()\n}\n".to_string(),
        ),
    ];
    let first = eff2_lint::lint_files(&inputs);
    let second = eff2_lint::lint_files(&inputs);
    assert_eq!(first.findings, second.findings);
    assert!(!first.findings.is_empty());
    let keys: Vec<(String, u32, String, String)> = first
        .findings
        .iter()
        .map(|f| {
            (
                f.file.clone(),
                f.line,
                f.rule.to_string(),
                f.message.clone(),
            )
        })
        .collect();
    let mut sorted = keys.clone();
    sorted.sort();
    assert_eq!(keys, sorted, "findings must come out pre-sorted");
}
