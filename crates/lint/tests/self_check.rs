//! The auditor's own acceptance test: the real workspace must lint clean.
//!
//! This is what keeps the invariants *enforced* rather than aspirational —
//! any new `.unwrap()` in a library path, `HashMap` in a deterministic
//! crate, or waiver without a reason fails the test suite, not just the
//! optional CLI run.

use std::path::Path;

#[test]
fn workspace_lints_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let findings = eff2_lint::lint_workspace(&root).expect("walk the workspace tree");
    let rendered: Vec<String> = findings
        .iter()
        .map(|f| format!("{}:{}: [{}] {}", f.file, f.line, f.rule, f.message))
        .collect();
    assert!(
        findings.is_empty(),
        "eff2-lint found {} issue(s):\n{}",
        findings.len(),
        rendered.join("\n")
    );
}

#[test]
fn workspace_findings_render_as_json() {
    // The JSON mode must stay parseable by eff2-json itself (round-trip on
    // the clean-workspace empty array, plus a synthetic finding).
    let json = eff2_lint::findings_to_json(&[]);
    assert_eq!(json.trim(), "[]");
}
