//! Fixture corpus pinning each rule's positives and negatives.
//!
//! Every fixture under `tests/fixtures/` marks its expected findings with
//! trailing `//~ <rule>` markers (one rule id per expected finding on that
//! line). The harness lints each fixture through the public
//! [`eff2_lint::lint_source`] API and asserts the `(line, rule)` multiset
//! matches the markers exactly — so a rule that over- or under-fires by a
//! single line fails loudly, with the fixture documenting the intent.

use eff2_lint::lint_source;

/// Parses `//~ rule [rule…]` markers into a sorted `(line, rule)` list.
fn expected_markers(source: &str) -> Vec<(u32, String)> {
    let mut out = Vec::new();
    for (i, line) in source.lines().enumerate() {
        if let Some(at) = line.find("//~") {
            let rest = line.get(at + 3..).unwrap_or("");
            for rule in rest.split_whitespace() {
                out.push((i as u32 + 1, rule.to_string()));
            }
        }
    }
    out.sort();
    out
}

/// Lints `source` and reduces findings to a sorted `(line, rule)` list.
fn findings_of(crate_name: &str, name: &str, source: &str) -> Vec<(u32, String)> {
    let mut got: Vec<(u32, String)> = lint_source(crate_name, name, source)
        .into_iter()
        .map(|f| (f.line, f.rule.to_string()))
        .collect();
    got.sort();
    got
}

macro_rules! fixture_test {
    ($test:ident, $crate_name:literal, $file:literal) => {
        #[test]
        fn $test() {
            let source = include_str!(concat!("fixtures/", $file));
            assert_eq!(
                findings_of($crate_name, $file, source),
                expected_markers(source),
                "fixture {} linted as crate `{}`",
                $file,
                $crate_name
            );
        }
    };
}

/// Lints several fixtures as one mini-workspace (so the call graph
/// crosses crate boundaries) and asserts the `(file, line, rule)`
/// multiset across all files matches the markers exactly.
fn group_check(files: &[(&str, &str, &str)]) {
    let inputs: Vec<(String, String, String)> = files
        .iter()
        .map(|(c, f, s)| ((*c).to_string(), (*f).to_string(), (*s).to_string()))
        .collect();
    let mut expected: Vec<(String, u32, String)> = Vec::new();
    for (_, file, source) in files {
        for (line, rule) in expected_markers(source) {
            expected.push(((*file).to_string(), line, rule));
        }
    }
    expected.sort();
    let mut got: Vec<(String, u32, String)> = eff2_lint::lint_files(&inputs)
        .findings
        .into_iter()
        .map(|f| (f.file, f.line, f.rule.to_string()))
        .collect();
    got.sort();
    let names: Vec<&str> = files.iter().map(|(_, f, _)| *f).collect();
    assert_eq!(got, expected, "fixture group {names:?}");
}

fixture_test!(panic_unwrap, "core", "panic_unwrap.rs");
fixture_test!(panic_macro, "core", "panic_macro.rs");
fixture_test!(panic_index, "core", "panic_index.rs");
fixture_test!(det_hash_container, "storage", "det_hash_container.rs");
fixture_test!(det_wall_clock, "core", "det_wall_clock.rs");
fixture_test!(det_float_accum, "core", "det_float_accum.rs");
fixture_test!(
    det_float_accum_training,
    "descriptor",
    "det_float_accum_training.rs"
);
fixture_test!(det_thread_spawn, "serve", "det_thread_spawn.rs");
fixture_test!(det_shard_iteration, "shard", "det_shard_iteration.rs");
fixture_test!(err_box_error, "descriptor", "err_box_error.rs");
fixture_test!(err_string_error, "descriptor", "err_string_error.rs");
fixture_test!(hyg_print, "descriptor", "hyg_print.rs");
fixture_test!(hyg_waiver, "core", "hyg_waiver.rs");
fixture_test!(waivers_ok, "core", "waivers_ok.rs");
fixture_test!(tricky_lexing, "core", "tricky_lexing.rs");
fixture_test!(clock_consume, "serve", "clock_consume_serve.rs");
fixture_test!(clock_decorator, "chaos", "clock_decorator_chaos.rs");

#[test]
fn det_taint_crosses_crates_and_respects_waivers() {
    // Positive: depth-2 chain core::api -> srtree::middle -> srtree::leaf
    // -> HashMap, where the source crate is outside the determinism scope
    // (no line rule fires there). Negatives: waived-at-entry, integer sum.
    group_check(&[
        (
            "core",
            "taint_entry_core.rs",
            include_str!("fixtures/taint_entry_core.rs"),
        ),
        (
            "srtree",
            "taint_helper_srtree.rs",
            include_str!("fixtures/taint_helper_srtree.rs"),
        ),
    ]);
}

#[test]
fn panic_reach_crosses_crates_and_respects_waivers() {
    // Positive: storage::load_all reaches the unwaived unwrap in
    // json::parse_or_die. Negatives: waived at the entry, and waived at
    // the source site (which cuts every chain through it).
    group_check(&[
        (
            "storage",
            "reach_entry_storage.rs",
            include_str!("fixtures/reach_entry_storage.rs"),
        ),
        (
            "json",
            "reach_helper_json.rs",
            include_str!("fixtures/reach_helper_json.rs"),
        ),
    ]);
}

#[test]
fn taint_chain_reports_every_hop_with_file_and_line() {
    let inputs = vec![
        (
            "core".to_string(),
            "taint_entry_core.rs".to_string(),
            include_str!("fixtures/taint_entry_core.rs").to_string(),
        ),
        (
            "srtree".to_string(),
            "taint_helper_srtree.rs".to_string(),
            include_str!("fixtures/taint_helper_srtree.rs").to_string(),
        ),
    ];
    let report = eff2_lint::lint_files(&inputs);
    let finding = report
        .findings
        .iter()
        .find(|f| f.rule == "det.taint")
        .expect("the transitive positive must survive");
    // api -> middle -> leaf: three hops, each carrying file:line.
    assert_eq!(finding.chain.len(), 3, "chain: {:?}", finding.chain);
    assert!(finding
        .chain
        .iter()
        .all(|h| h.line > 0 && !h.file.is_empty()));
    assert!(
        finding
            .message
            .contains("-> HashMap @ taint_helper_srtree.rs:"),
        "evidence must name the source site: {}",
        finding.message
    );
}

#[test]
fn taint_propagation_terminates_on_call_cycles() {
    // ping <-> pong is a cycle; the BFS visited-set terminates it and the
    // source behind the cycle is still reported exactly once at the entry.
    let src = "pub fn entry() { ping(); }\n\
               fn ping() { pong(); }\n\
               fn pong() { ping(); sink(); }\n\
               fn sink() { let m = std::collections::HashMap::new(); m.clear(); }\n";
    assert_eq!(
        findings_of("core", "cycle.rs", src),
        vec![
            (1, "det.taint".to_string()),
            (4, "det.hash_container".to_string()),
        ]
    );
}

#[test]
fn det_rules_scope_to_deterministic_crates() {
    // The same sources linted as a non-deterministic crate must be silent.
    for source in [
        include_str!("fixtures/det_hash_container.rs"),
        include_str!("fixtures/det_float_accum.rs"),
        include_str!("fixtures/det_float_accum_training.rs"),
    ] {
        assert_eq!(findings_of("bag", "fixture.rs", source), Vec::new());
    }
}

#[test]
fn det_rules_cover_the_descriptor_crate() {
    // Codec and codebook training live in `descriptor` and their outputs
    // are persisted into chunk files: the crate is inside the determinism
    // scope, so training-shaped float accumulation fires there.
    for (name, source) in [
        (
            "det_float_accum_training.rs",
            include_str!("fixtures/det_float_accum_training.rs"),
        ),
        (
            "det_hash_container.rs",
            include_str!("fixtures/det_hash_container.rs"),
        ),
    ] {
        assert_eq!(
            findings_of("descriptor", name, source),
            expected_markers(source),
            "fixture {name} linted as crate `descriptor`"
        );
    }
}

#[test]
fn det_rules_cover_the_chaos_crate() {
    // Fault schedules feed reported figures: the chaos crate is inside the
    // determinism scope, so the same fixtures fire there exactly as they
    // do in core/storage.
    for (name, source) in [
        (
            "det_hash_container.rs",
            include_str!("fixtures/det_hash_container.rs"),
        ),
        (
            "det_float_accum.rs",
            include_str!("fixtures/det_float_accum.rs"),
        ),
        (
            "det_wall_clock.rs",
            include_str!("fixtures/det_wall_clock.rs"),
        ),
    ] {
        assert_eq!(
            findings_of("chaos", name, source),
            expected_markers(source),
            "fixture {name} linted as crate `chaos`"
        );
    }
}

#[test]
fn det_rules_cover_the_epoch_crate() {
    // Compaction folds and generation files feed every served result: the
    // epoch crate is inside the determinism scope, so hash-iteration,
    // float-accumulation and wall-clock fixtures fire there exactly as
    // they do in core/storage.
    for (name, source) in [
        (
            "det_hash_container.rs",
            include_str!("fixtures/det_hash_container.rs"),
        ),
        (
            "det_float_accum.rs",
            include_str!("fixtures/det_float_accum.rs"),
        ),
        (
            "det_wall_clock.rs",
            include_str!("fixtures/det_wall_clock.rs"),
        ),
    ] {
        assert_eq!(
            findings_of("epoch", name, source),
            expected_markers(source),
            "fixture {name} linted as crate `epoch`"
        );
    }
}

#[test]
fn hyg_print_exempts_cli_crates() {
    let source = include_str!("fixtures/hyg_print.rs");
    assert_eq!(findings_of("eval", "fixture.rs", source), Vec::new());
    assert_eq!(findings_of("lint", "fixture.rs", source), Vec::new());
}

#[test]
fn wall_clock_exempts_bench_and_the_disk_model() {
    let source = include_str!("fixtures/det_wall_clock.rs");
    assert_eq!(findings_of("bench", "fixture.rs", source), Vec::new());
    assert_eq!(
        findings_of("storage", "crates/storage/src/diskmodel.rs", source),
        Vec::new()
    );
}

#[test]
fn thread_spawn_exempts_the_parallel_crate() {
    let source = include_str!("fixtures/det_thread_spawn.rs");
    assert_eq!(findings_of("parallel", "fixture.rs", source), Vec::new());
}

#[test]
fn every_rule_has_fixture_coverage() {
    // ≥1 positive marker per rule across the corpus, so adding a rule
    // without a fixture fails here.
    let corpus = [
        include_str!("fixtures/panic_unwrap.rs"),
        include_str!("fixtures/panic_macro.rs"),
        include_str!("fixtures/panic_index.rs"),
        include_str!("fixtures/det_hash_container.rs"),
        include_str!("fixtures/det_wall_clock.rs"),
        include_str!("fixtures/det_float_accum.rs"),
        include_str!("fixtures/det_float_accum_training.rs"),
        include_str!("fixtures/det_thread_spawn.rs"),
        include_str!("fixtures/err_box_error.rs"),
        include_str!("fixtures/err_string_error.rs"),
        include_str!("fixtures/hyg_print.rs"),
        include_str!("fixtures/hyg_waiver.rs"),
        include_str!("fixtures/taint_entry_core.rs"),
        include_str!("fixtures/reach_entry_storage.rs"),
        include_str!("fixtures/clock_consume_serve.rs"),
        include_str!("fixtures/clock_decorator_chaos.rs"),
    ];
    for rule in eff2_lint::RULES {
        let covered = corpus
            .iter()
            .any(|s| expected_markers(s).iter().any(|(_, r)| r == rule.id));
        assert!(covered, "rule `{}` has no fixture positive", rule.id);
    }
}
