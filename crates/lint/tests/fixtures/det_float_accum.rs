//! det.float_accum: hidden or floating accumulator types in deterministic
//! crates; explicit integer turbofish is the sanctioned form.

pub fn positive_bare(v: &[f32]) -> f32 {
    v.iter().copied().sum() //~ det.float_accum
}

pub fn positive_float_turbofish(v: &[f32]) -> f32 {
    v.iter().copied().sum::<f32>() //~ det.float_accum
}

pub fn positive_product(v: &[f32]) -> f32 {
    v.iter().copied().product() //~ det.float_accum
}

pub fn negative_integer(v: &[u32]) -> u64 {
    v.iter().map(|&x| u64::from(x)).sum::<u64>()
}

pub fn negative_usize(v: &[Vec<u32>]) -> usize {
    v.iter().map(Vec::len).sum::<usize>()
}
