//! det.taint helper side, linted as crate `srtree` (NOT a deterministic
//! crate, so the HashMap line rule does not fire here — exactly the hole
//! the taint pass closes). No markers: every finding in this group is
//! reported at the entry in `taint_entry_core.rs`.

pub fn middle() -> usize {
    leaf()
}

fn leaf() -> usize {
    let m = std::collections::HashMap::new();
    m.insert(1u32, 2u32);
    m.len()
}

/// Integer accumulation: order-independent, not a nondeterminism source.
pub fn total(v: &[u32]) -> u32 {
    v.iter().sum::<u32>()
}
