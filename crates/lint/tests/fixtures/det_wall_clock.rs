//! det.wall_clock: host-clock reads in deterministic crates. The harness
//! also lints this file as the bench crate and as storage's diskmodel.rs,
//! both of which are exempt.

pub fn positive_instant() -> std::time::Instant {
    std::time::Instant::now() //~ det.wall_clock
}

pub fn positive_system_time() {
    let _t = std::time::SystemTime::now(); //~ det.wall_clock
}

pub fn negative_virtual(elapsed_virtual_ms: u64) -> u64 {
    elapsed_virtual_ms
}
