//! clock.discipline (path half), linted as crate `serve` (clocked).
//! A public API that consumes chunks on a path with no modelled-time
//! charge anywhere is a finding at the entry; charging anywhere on the
//! path (including the entry itself) clears it.

/// Positive: drive -> pull -> next_chunk, no charge on the path.
pub fn drive(s: &mut Session) -> Option<Chunk> { //~ clock.discipline
    pull(s)
}

fn pull(s: &mut Session) -> Option<Chunk> {
    s.stream.next_chunk()
}

/// Negative: same consuming helper, but the entry charges the clock.
pub fn drive_charged(s: &mut Session) -> Option<Chunk> {
    let c = pull(s);
    s.clock.chunk_overlapped(4096, 1.0);
    c
}

// lint:allow(clock.discipline): diagnostic peek, never used for timing
pub fn drive_peek(s: &mut Session) -> Option<Chunk> {
    pull(s)
}
