//! panic.unwrap: unwrap/expect in library code, with lookalikes that must
//! not fire.

pub fn positive_unwrap(v: Option<u32>) -> u32 {
    v.unwrap() //~ panic.unwrap
}

pub fn positive_expect(v: Option<u32>) -> u32 {
    v.expect("invariant") //~ panic.unwrap
}

pub fn negative_fallbacks(v: Option<u32>) -> u32 {
    v.unwrap_or(0).max(v.unwrap_or_default())
}

pub fn negative_in_string() -> &'static str {
    "calling .unwrap() or .expect(now) in prose is fine"
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_in_tests_is_fine() {
        assert_eq!(Some(3).unwrap(), 3);
        Some(4).expect("tests may assert");
    }
}
