//! clock.discipline (decorator half), linted as crate `chaos`.
//! A `ChunkStream` impl whose `next_chunk` delegates to an inner stream
//! must override `take_injected_delay` AND pull the inner stream's
//! delay somewhere, or injected fault delays silently vanish.

/// Positive: delegates but drops the inner delay on the floor.
pub struct DropsDelay {
    inner: Box<dyn ChunkStream>,
}

impl ChunkStream for DropsDelay {
    fn next_chunk(&mut self) -> Option<Chunk> { //~ clock.discipline
        self.inner.next_chunk()
    }
}

/// Negative: the real decorator shape — pulls the inner delay inside
/// `next_chunk`, drains a local accumulator in the override.
pub struct ForwardsDelay {
    inner: Box<dyn ChunkStream>,
    pending: f64,
}

impl ChunkStream for ForwardsDelay {
    fn next_chunk(&mut self) -> Option<Chunk> {
        let c = self.inner.next_chunk();
        self.pending += self.inner.take_injected_delay();
        c
    }

    fn take_injected_delay(&mut self) -> f64 {
        std::mem::take(&mut self.pending)
    }
}

/// Negative: a leaf stream — next_chunk does not delegate, so it is not
/// a decorator and owes no forwarding.
pub struct LeafStream {
    items: Vec<Chunk>,
}

impl ChunkStream for LeafStream {
    fn next_chunk(&mut self) -> Option<Chunk> {
        self.items.pop()
    }
}

/// Negative: delegating without forwarding, but waived at the site.
pub struct WaivedTap {
    inner: Box<dyn ChunkStream>,
}

impl ChunkStream for WaivedTap {
    // lint:allow(clock.discipline): counts chunks only, timeline owned by inner
    fn next_chunk(&mut self) -> Option<Chunk> {
        self.inner.next_chunk()
    }
}
