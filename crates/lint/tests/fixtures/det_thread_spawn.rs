//! det.thread_spawn: raw OS-thread spawns outside crates/parallel. The
//! harness also lints this file as the parallel crate, which is exempt —
//! it owns the deterministic worker-pool wrappers everyone else must use.

pub fn positive_std_path() {
    let handle = std::thread::spawn(|| 1 + 1); //~ det.thread_spawn
    let _ = handle.join();
}

pub fn positive_use_path() {
    use std::thread;
    let handle = thread::spawn(|| ()); //~ det.thread_spawn
    let _ = handle.join();
}

pub fn negative_scoped_method(items: &[u64]) {
    // `scope.spawn(...)` is a method call on a scope handle, not a raw
    // `thread::spawn` path — the workspace wrappers use it internally.
    std::thread::scope(|scope| {
        for x in items {
            scope.spawn(move || x + 1);
        }
    });
}

pub fn negative_wrapper() {
    // The sanctioned entry point.
    let handle = eff2_parallel::spawn(|| ());
    let _ = handle.join();
}

pub fn negative_bare_spawn() {
    fn spawn() {}
    spawn();
}

pub fn negative_parallelism_probe() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}
