//! err.string_error: stringly-typed Result error positions.

pub fn positive() -> Result<u32, String> { //~ err.string_error
    Ok(1)
}

pub struct PositiveField {
    pub last: Result<(), String>, //~ err.string_error
}

pub fn negative_string_ok() -> Result<String, std::fmt::Error> {
    Ok(String::new())
}

pub fn negative_typed() -> Result<u32, std::num::ParseIntError> {
    "7".parse::<u32>()
}
