//! Lexer edge cases: strings, raw strings, chars vs lifetimes, nested
//! cfg(test) modules and macro bodies. Only the marked lines may fire.

pub fn strings() -> String {
    let a = "v.unwrap() and panic!(x) inside a plain string";
    let b = r#"raw: v.expect("quoted") and data[0]"#;
    let c = r##"nested r#"hash"# raw"##;
    format!("{a}{b}{c}")
}

pub fn chars_and_lifetimes<'a>(x: &'a [u32]) -> Option<&'a u32> {
    let _open_bracket = '[';
    let _escaped_quote = '\'';
    let _unicode = '\u{1F600}';
    x.first()
}

pub fn numbers(v: &[f32]) -> f32 {
    let m = 1.0f32.max(2.0);
    let r = (0..10).count() as f32;
    m + r + v.iter().copied().fold(0.0f32, f32::max)
}

//// A plain divider comment mentioning .unwrap() and panic!().

macro_rules! in_macro_body {
    ($v:expr) => {
        $v.unwrap()
    };
}

#[cfg(test)]
mod outer {
    mod inner {
        pub fn deeply_nested_test_code() {
            Vec::<u32>::new().pop().unwrap();
            let v = vec![1u32];
            let _ = v[0];
        }
    }
}

#[cfg(not(test))]
pub mod shipped {
    pub fn not_a_test_region(v: &[u32]) -> u32 {
        v[0] //~ panic.index
    }
}
