//! panic.macro: panic-family macros in library code.

pub fn positive_panic(flag: bool) {
    if flag {
        panic!("boom"); //~ panic.macro
    }
}

pub fn positive_unreachable(v: u32) -> u32 {
    match v {
        0 => 1,
        _ => unreachable!(), //~ panic.macro
    }
}

pub fn positive_todo() {
    todo!() //~ panic.macro
}

pub fn positive_unimplemented() {
    unimplemented!() //~ panic.macro
}

pub fn negative_idents() {
    let panic_free = 1;
    let _ = panic_free;
}

#[cfg(test)]
mod tests {
    #[test]
    #[should_panic]
    fn panics_allowed_in_tests() {
        panic!("expected");
    }
}
