//! hyg.waiver: waivers must be well-formed, cite a real rule, carry a
//! reason, and actually suppress something.

pub fn missing_reason(v: Option<u32>) -> u32 {
    // lint:allow(panic.unwrap) //~ hyg.waiver
    v.unwrap() //~ panic.unwrap
}

pub fn unknown_rule(v: Option<u32>) -> u32 {
    // lint:allow(no.such.rule): a reason that cites a rule the auditor does not know //~ hyg.waiver
    v.unwrap() //~ panic.unwrap
}

pub fn empty_reason(flag: bool) {
    /* lint:allow(panic.macro): */ //~ hyg.waiver
    if flag {
        panic!("not suppressed: the waiver above has no reason"); //~ panic.macro
    }
}

pub fn unused_waiver() -> u32 {
    // lint:allow(panic.unwrap): nothing on this or the next line can panic //~ hyg.waiver
    41 + 1
}

pub fn used_waiver(v: Option<u32>) -> u32 {
    // lint:allow(panic.unwrap): fixture demonstrates a load-bearing waiver
    v.unwrap()
}
