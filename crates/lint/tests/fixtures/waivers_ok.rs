//! Valid waivers: every finding in this file is suppressed, so linting it
//! must yield nothing at all.
// lint:allow-file(panic.macro): fixture exercises the file-scope waiver

pub fn trailing(v: Option<u32>) -> u32 {
    v.unwrap() // lint:allow(panic.unwrap): fixture exercises the trailing placement
}

pub fn above(v: Option<u32>) -> u32 {
    // lint:allow(panic.unwrap): fixture exercises the line-above placement
    v.unwrap()
}

pub fn anywhere(flag: bool) {
    if flag {
        panic!("suppressed by the file-scope waiver");
    }
    unreachable!()
}
