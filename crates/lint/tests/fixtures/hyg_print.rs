//! hyg.print: stdout/stderr writes and dbg! in library crates. The
//! harness also lints this file as a CLI crate and expects silence.

pub fn positive() {
    println!("hello"); //~ hyg.print
    eprintln!("oops"); //~ hyg.print
    let x = dbg!(21 + 21); //~ hyg.print
    let _ = x;
}

pub fn negative_write(buf: &mut String) {
    use std::fmt::Write;
    let _ = writeln!(buf, "ok");
}
