//! panic.index: direct indexing in library code; types, literals and
//! attributes must not fire.

pub fn positive(v: &[u32]) -> u32 {
    let a = v[0]; //~ panic.index
    let s = &v[1..]; //~ panic.index
    let chained = make()[0]; //~ panic.index
    let nested = v[v[1] as usize]; //~ panic.index panic.index
    a + s[0] + chained + nested //~ panic.index
}

fn make() -> Vec<u32> {
    vec![7, 8]
}

pub fn negatives(n: usize) -> [u8; 4] {
    let arr: [u8; 4] = [0; 4];
    let _v = vec![1u8, 2];
    let _ = n;
    arr
}

#[derive(Clone)]
pub struct Wrapper(pub Vec<u32>);

#[cfg(test)]
mod tests {
    #[test]
    fn indexing_in_tests_is_fine() {
        let v = vec![1, 2, 3];
        assert_eq!(v[0], 1);
    }
}
