//! det.hash_container: randomized-iteration containers in deterministic
//! crates. The harness also lints this file as a non-deterministic crate
//! and expects silence.

use std::collections::HashMap; //~ det.hash_container
use std::collections::HashSet; //~ det.hash_container

pub fn positive_local() -> usize {
    let m: HashMap<u32, u32> = HashMap::new(); //~ det.hash_container det.hash_container
    let s = HashSet::<u32>::new(); //~ det.hash_container
    m.len() + s.len()
}

pub fn negative_btree() -> usize {
    let m: std::collections::BTreeMap<u32, u32> = std::collections::BTreeMap::new();
    m.len()
}
