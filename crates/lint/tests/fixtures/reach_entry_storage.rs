//! panic.reach entry side: public APIs of a panic-free crate (`storage`)
//! calling into `reach_helper_json.rs` (linted as `json`). Linted as a
//! group with that file.

/// Positive: reaches the unwaived unwrap in json::parse_or_die.
pub fn load_all() -> u32 { //~ panic.reach
    eff2_json::parse_or_die("[1,2]")
}

// lint:allow(panic.reach): startup-only path, aborting here is acceptable
pub fn load_at_boot() -> u32 {
    eff2_json::parse_or_die("[1,2]")
}

/// Negative: the helper's unwrap is waived at the source site, which
/// cuts every chain through it.
pub fn load_checked() -> u32 {
    eff2_json::parse_checked("[1,2]")
}
