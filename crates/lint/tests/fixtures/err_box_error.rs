//! err.box_error: boxed dyn errors erase the workspace error taxonomy.

pub type Positive<T> = Result<T, Box<dyn std::error::Error + Send + Sync>>; //~ err.box_error

pub fn positive_arg(e: Box<dyn std::error::Error>) -> String { //~ err.box_error
    e.to_string()
}

pub fn negative_box_iter(it: Box<dyn Iterator<Item = u32>>) -> u32 {
    it.count() as u32
}

pub fn negative_plain_box(b: Box<u32>) -> u32 {
    *b
}
