//! det.float_accum in codebook-training-shaped code: the descriptor crate
//! is inside the determinism scope, so the k-means update and distortion
//! loops must accumulate serially (or via the kernels), never through a
//! hidden float `.sum()`.

/// A training pass that averages one component of the assigned
/// sub-vectors the lazy way.
pub fn positive_center_update(members: &[[f32; 4]], t: usize) -> f32 {
    let total: f32 = members.iter().filter_map(|m| m.get(t)).sum(); //~ det.float_accum
    total / members.len().max(1) as f32
}

/// Mean quantisation distortion via a float turbofish — same problem.
pub fn positive_distortion(errors: &[f32]) -> f32 {
    errors.iter().copied().sum::<f32>() / errors.len().max(1) as f32 //~ det.float_accum
}

/// The sanctioned form: a serial accumulator in a fixed storage order
/// (what `PqCodec::train` does with `f64` sums).
pub fn negative_serial_update(members: &[[f32; 4]]) -> [f32; 4] {
    let mut sums = [0.0f64; 4];
    for m in members {
        for (s, &x) in sums.iter_mut().zip(m.iter()) {
            *s += f64::from(x);
        }
    }
    let inv = 1.0 / members.len().max(1) as f64;
    let mut center = [0.0f32; 4];
    for (c, &s) in center.iter_mut().zip(sums.iter()) {
        *c = (s * inv) as f32;
    }
    center
}

/// Counting assignments is integer summation — always fine.
pub fn negative_assignment_counts(counts: &[usize]) -> usize {
    counts.iter().copied().sum::<usize>()
}
