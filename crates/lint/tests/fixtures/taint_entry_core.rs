//! det.taint entry side: public APIs of a deterministic crate (`core`)
//! reaching a nondeterminism source buried two calls deep in the helper
//! crate (`taint_helper_srtree.rs`, linted as `srtree`). Linted as a
//! group — the chain crosses the crate boundary.

/// Depth-2 transitive positive: api -> middle -> leaf -> HashMap.
pub fn api() -> usize { //~ det.taint
    eff2_srtree::middle()
}

// lint:allow(det.taint): debug-only surface, output never feeds traces
pub fn waived_api() -> usize {
    eff2_srtree::middle()
}

/// Integer accumulation downstream is order-independent: negative.
pub fn totals(v: &[u32]) -> u32 {
    eff2_srtree::total(v)
}
