//! panic.reach helper side, linted as crate `json`. The panic line rules
//! fire here directly (markers below); `parse_or_die` is itself a public
//! fn of a panic-free crate, but a source *inside* the entry is depth-0
//! territory owned by the line rule, so no panic.reach fires here — only
//! at the cross-crate entries in `reach_entry_storage.rs`.

pub fn parse_or_die(s: &str) -> u32 {
    s.trim_start_matches('[').split(',').next().unwrap().parse().unwrap() //~ panic.unwrap panic.unwrap
}

pub fn parse_checked(s: &str) -> u32 {
    // lint:allow(panic.unwrap): input validated by the caller's schema check
    s.trim_start_matches('[').split(',').next().unwrap().parse().unwrap_or(0)
}
