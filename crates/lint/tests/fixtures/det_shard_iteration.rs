//! Shard placement feeds routed-owner tables and imbalance figures, so
//! the `shard` crate sits inside the determinism scope: iterating chunk →
//! shard assignments in hash order would scramble primary election and
//! the per-shard counts the experiments report.

use std::collections::BTreeMap;
use std::collections::HashMap; //~ det.hash_container

pub fn primary_counts_unordered(owners: &HashMap<usize, u32>) -> Vec<usize> { //~ det.hash_container
    let mut counts = vec![0usize; 4];
    for (_chunk, &shard) in owners.iter() {
        counts[shard as usize] += 1; //~ panic.index
    }
    counts
}

/// The deterministic shape: chunk ids iterate in sorted order, so shard
/// election ties always break the same way.
pub fn primary_counts_ordered(owners: &BTreeMap<usize, u32>) -> Vec<usize> {
    let mut counts = vec![0usize; 4];
    for (_chunk, &shard) in owners.iter() {
        counts[shard as usize] += 1; //~ panic.index
    }
    counts
}
