//! The rule set: panic-freedom, determinism, error-taxonomy and hygiene.
//!
//! Each line rule is a token-pattern check with a crate/file scope. Rules
//! fire only on code tokens outside test regions, attributes and
//! `macro_rules!` bodies (see [`crate::regions`]); comments, doc comments
//! and string literals are skipped by construction of the token stream.
//!
//! The site detectors live on [`View`] so the line rules and the symbol
//! pass's fact extractor ([`crate::symbols`]) agree *exactly* on what
//! constitutes a panic or nondeterminism site: an unwaived line finding
//! and an interprocedural fact are always the same token pattern.

use crate::lexer::{is_keyword, Token, TokenKind};
use crate::regions::Region;

/// One hop of call-chain evidence: a function and where it is defined.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Hop {
    /// The function's display name (`crate::Type::method` style).
    pub name: String,
    /// Path of the defining file, relative to the workspace root.
    pub file: String,
    /// 1-based line of the `fn` item.
    pub line: u32,
}

/// A single reported problem.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    /// Stable rule identifier (e.g. `panic.unwrap`).
    pub rule: &'static str,
    /// Path of the offending file, relative to the workspace root.
    pub file: String,
    /// 1-based line of the offending token.
    pub line: u32,
    /// Human-readable description of the problem.
    pub message: String,
    /// Call-chain evidence for interprocedural rules, entry first, the
    /// function containing the source site last. Empty for line rules.
    pub chain: Vec<Hop>,
}

impl Finding {
    /// A line-local finding (no call chain).
    pub(crate) fn local(rule: &'static str, file: &str, line: u32, message: String) -> Self {
        Finding {
            rule,
            file: file.to_string(),
            line,
            message,
            chain: Vec::new(),
        }
    }
}

/// Description of one rule, for `--rules` listings and the docs table.
#[derive(Clone, Copy, Debug)]
pub struct RuleInfo {
    /// Stable identifier cited by waivers.
    pub id: &'static str,
    /// One-line description.
    pub summary: &'static str,
}

/// Every rule this auditor knows, in reporting order.
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        id: "panic.unwrap",
        summary: "no .unwrap()/.expect() in non-test library code",
    },
    RuleInfo {
        id: "panic.macro",
        summary: "no panic!/unreachable!/todo!/unimplemented! in non-test library code",
    },
    RuleInfo {
        id: "panic.index",
        summary: "no direct slice/array indexing `x[i]` in non-test library code",
    },
    RuleInfo {
        id: "panic.reach",
        summary: "no unwaived panic site transitively reachable from a public API of a panic-free crate",
    },
    RuleInfo {
        id: "det.hash_container",
        summary: "no HashMap/HashSet in trace-producing crates (core/storage/chaos/serve/shard/metrics/eval/descriptor)",
    },
    RuleInfo {
        id: "det.wall_clock",
        summary: "no Instant::now/SystemTime outside storage::diskmodel and the bench crate",
    },
    RuleInfo {
        id: "det.float_accum",
        summary: "no float .sum()/.product() in trace-producing crates — accumulate via kernels",
    },
    RuleInfo {
        id: "det.thread_spawn",
        summary: "no std::thread::spawn outside crates/parallel — use the eff2-parallel wrappers",
    },
    RuleInfo {
        id: "det.taint",
        summary: "no nondeterminism source transitively reachable from a public API of a deterministic crate",
    },
    RuleInfo {
        id: "clock.discipline",
        summary: "ChunkSource decorators forward take_injected_delay; every chunk-consuming path charges the pipeline clock",
    },
    RuleInfo {
        id: "err.box_error",
        summary: "no Box<dyn …Error…> — use the workspace Error taxonomy",
    },
    RuleInfo {
        id: "err.string_error",
        summary: "no Result<_, String> — use the workspace Error taxonomy",
    },
    RuleInfo {
        id: "hyg.print",
        summary: "no println!/eprintln!/print!/eprint!/dbg! in library crates",
    },
    RuleInfo {
        id: "hyg.waiver",
        summary: "every lint:allow waiver cites a known rule, a non-empty reason, and suppresses something",
    },
];

/// Whether `id` names a known rule.
pub fn is_rule(id: &str) -> bool {
    RULES.iter().any(|r| r.id == id)
}

/// Crates whose outputs feed traces or reported figures: HashMap/HashSet
/// iteration order and ad-hoc float accumulation are banned here, and
/// `det.taint` guards their public APIs transitively.
pub(crate) const DETERMINISTIC_CRATES: &[&str] = &[
    "core",
    "storage",
    "chaos",
    "serve",
    "shard",
    "metrics",
    "eval",
    "descriptor",
    "epoch",
];

/// Crates that are command-line binaries: printing to stdout/stderr is
/// their job, so `hyg.print` does not apply.
const CLI_CRATES: &[&str] = &["eval", "lint"];

/// Files exempt from `det.wall_clock` (and hence from wall-clock taint):
/// storage::diskmodel *owns* the virtual clock, and bench measures wall
/// time by design.
pub(crate) fn wall_clock_exempt(crate_name: &str, rel_path: &str) -> bool {
    crate_name == "bench" || (crate_name == "storage" && rel_path.ends_with("diskmodel.rs"))
}

/// Crates exempt from `det.thread_spawn` (and thread-spawn taint):
/// eff2-parallel owns raw threads — its wrappers pin worker counts and
/// merge order so everyone else stays deterministic.
pub(crate) fn thread_spawn_exempt(crate_name: &str) -> bool {
    crate_name == "parallel"
}

/// Integer primitive names: `.sum::<usize>()` over these is deterministic
/// regardless of order, so `det.float_accum` permits it.
fn is_integer_type(s: &str) -> bool {
    matches!(
        s,
        "u8" | "u16"
            | "u32"
            | "u64"
            | "u128"
            | "usize"
            | "i8"
            | "i16"
            | "i32"
            | "i64"
            | "i128"
            | "isize"
    )
}

/// How a `.sum()`/`.product()` site is written, for message wording.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum AccumShape {
    /// Bare `.sum()` — the accumulator type is hidden.
    Bare,
    /// `.sum::<f32>()` — an explicitly non-integer turbofish.
    FloatTurbofish,
}

/// A window over one file's code tokens. Both the line rules and the
/// symbol pass's fact extractor call these detectors, so a "site" means
/// the same thing everywhere.
#[derive(Clone, Copy)]
pub(crate) struct View<'a> {
    tokens: &'a [Token],
    code: &'a [usize],
}

impl<'a> View<'a> {
    pub(crate) fn new(tokens: &'a [Token], code: &'a [usize]) -> Self {
        View { tokens, code }
    }

    /// Number of code tokens in the view.
    pub(crate) fn len(&self) -> usize {
        self.code.len()
    }

    /// The token at code position `code_pos`.
    pub(crate) fn tok(&self, code_pos: usize) -> Option<&'a Token> {
        self.code.get(code_pos).and_then(|&i| self.tokens.get(i))
    }

    /// The raw token-stream index backing code position `code_pos`.
    pub(crate) fn raw_index(&self, code_pos: usize) -> Option<usize> {
        self.code.get(code_pos).copied()
    }

    /// Whether `at`/`at+1` form a `::` path separator.
    fn path_sep(&self, at: usize) -> bool {
        self.tok(at).is_some_and(|a| a.is_punct(':'))
            && self.tok(at + 1).is_some_and(|b| b.is_punct(':'))
    }

    /// `.unwrap(` / `.expect(`: returns the method name.
    pub(crate) fn unwrap_site(&self, at: usize) -> Option<&'a str> {
        let t = self.tok(at)?;
        if t.kind != TokenKind::Ident || !matches!(t.text.as_str(), "unwrap" | "expect") {
            return None;
        }
        let after_dot = at > 0 && self.tok(at - 1).is_some_and(|p| p.is_punct('.'));
        let called = self.tok(at + 1).is_some_and(|n| n.is_punct('('));
        (after_dot && called).then_some(t.text.as_str())
    }

    /// `panic!` / `unreachable!` / `todo!` / `unimplemented!`: the macro name.
    pub(crate) fn panic_macro_site(&self, at: usize) -> Option<&'a str> {
        let t = self.tok(at)?;
        if t.kind != TokenKind::Ident
            || !matches!(
                t.text.as_str(),
                "panic" | "unreachable" | "todo" | "unimplemented"
            )
        {
            return None;
        }
        self.tok(at + 1)
            .is_some_and(|n| n.is_punct('!'))
            .then_some(t.text.as_str())
    }

    /// Direct indexing `x[i]` (an opening `[` right after a value).
    pub(crate) fn index_site(&self, at: usize) -> bool {
        let Some(t) = self.tok(at) else { return false };
        if !t.is_punct('[') || at == 0 {
            return false;
        }
        let Some(prev) = self.tok(at - 1) else {
            return false;
        };
        match prev.kind {
            TokenKind::Ident => !is_keyword(&prev.text),
            TokenKind::Punct => matches!(prev.text.chars().next(), Some(')') | Some(']')),
            _ => false,
        }
    }

    /// `HashMap` / `HashSet` mention: returns the container name.
    pub(crate) fn hash_container_site(&self, at: usize) -> Option<&'a str> {
        let t = self.tok(at)?;
        (t.kind == TokenKind::Ident && matches!(t.text.as_str(), "HashMap" | "HashSet"))
            .then_some(t.text.as_str())
    }

    /// `SystemTime` mention or `Instant::now`: a short site label.
    pub(crate) fn wall_clock_site(&self, at: usize) -> Option<&'static str> {
        let t = self.tok(at)?;
        if t.kind != TokenKind::Ident {
            return None;
        }
        if t.text == "SystemTime" {
            return Some("SystemTime");
        }
        if t.text == "Instant"
            && self.path_sep(at + 1)
            && self.tok(at + 3).is_some_and(|c| c.is_ident("now"))
        {
            return Some("Instant::now");
        }
        None
    }

    /// `.sum()` / `.product()` with a hidden or non-integer accumulator:
    /// returns the method name and how the site is written.
    pub(crate) fn float_accum_site(&self, at: usize) -> Option<(&'a str, AccumShape)> {
        let t = self.tok(at)?;
        if t.kind != TokenKind::Ident || !matches!(t.text.as_str(), "sum" | "product") {
            return None;
        }
        if at == 0 || !self.tok(at - 1).is_some_and(|p| p.is_punct('.')) {
            return None;
        }
        // `.sum::<integer>()` is order-independent; anything else (bare
        // `.sum()`, or a float turbofish) is a site.
        if self.tok(at + 1).is_some_and(|n| n.is_punct('(')) {
            return Some((t.text.as_str(), AccumShape::Bare));
        }
        let turbofish = self.path_sep(at + 1) && self.tok(at + 3).is_some_and(|c| c.is_punct('<'));
        if turbofish {
            let int = self
                .tok(at + 4)
                .is_some_and(|ty| ty.kind == TokenKind::Ident && is_integer_type(&ty.text));
            if !int {
                return Some((t.text.as_str(), AccumShape::FloatTurbofish));
            }
        }
        None
    }

    /// `thread::spawn(`.
    pub(crate) fn thread_spawn_site(&self, at: usize) -> bool {
        let Some(t) = self.tok(at) else { return false };
        t.kind == TokenKind::Ident
            && t.text == "thread"
            && self.path_sep(at + 1)
            && self.tok(at + 3).is_some_and(|c| c.is_ident("spawn"))
            && self.tok(at + 4).is_some_and(|d| d.is_punct('('))
    }

    /// A chunk-consuming call: `.next_chunk(` / `.fetch_through(`.
    /// Returns the method name.
    pub(crate) fn chunk_consume_site(&self, at: usize) -> Option<&'a str> {
        let t = self.tok(at)?;
        if t.kind != TokenKind::Ident || !matches!(t.text.as_str(), "next_chunk" | "fetch_through")
        {
            return None;
        }
        let after_dot = at > 0 && self.tok(at - 1).is_some_and(|p| p.is_punct('.'));
        let called = self.tok(at + 1).is_some_and(|n| n.is_punct('('));
        (after_dot && called).then_some(t.text.as_str())
    }

    /// A modelled-time charge: a call to one of the `PipelineClock` /
    /// virtual-clock charge methods. Returns the method name.
    pub(crate) fn clock_charge_site(&self, at: usize) -> Option<&'a str> {
        let t = self.tok(at)?;
        if t.kind != TokenKind::Ident
            || !matches!(
                t.text.as_str(),
                "chunk_overlapped" | "chunk_serial" | "io_done_after" | "cpu_after"
            )
        {
            return None;
        }
        let after_dot = at > 0 && self.tok(at - 1).is_some_and(|p| p.is_punct('.'));
        let called = self.tok(at + 1).is_some_and(|n| n.is_punct('('));
        (after_dot && called).then_some(t.text.as_str())
    }
}

struct Scan<'a> {
    crate_name: &'a str,
    rel_path: &'a str,
    view: View<'a>,
    regions: &'a [Region],
    findings: Vec<Finding>,
}

impl Scan<'_> {
    /// Whether the token at `code_pos` sits in a region rules must skip.
    fn skipped(&self, code_pos: usize) -> bool {
        self.view
            .raw_index(code_pos)
            .and_then(|i| self.regions.get(i))
            .is_none_or(|r| r.test || r.attr || r.macro_body)
    }

    fn report(&mut self, rule: &'static str, code_pos: usize, message: String) {
        let line = self.view.tok(code_pos).map_or(0, |t| t.line);
        self.findings
            .push(Finding::local(rule, self.rel_path, line, message));
    }

    fn in_deterministic_crate(&self) -> bool {
        DETERMINISTIC_CRATES.contains(&self.crate_name)
    }

    // ----- panic-freedom ---------------------------------------------------

    fn panic_unwrap(&mut self, at: usize) {
        if let Some(name) = self.view.unwrap_site(at) {
            let name = name.to_string();
            self.report(
                "panic.unwrap",
                at,
                format!(".{name}() can panic — return the workspace Error instead"),
            );
        }
    }

    fn panic_macro(&mut self, at: usize) {
        if let Some(name) = self.view.panic_macro_site(at) {
            let name = name.to_string();
            self.report(
                "panic.macro",
                at,
                format!("{name}! aborts the caller — return the workspace Error instead"),
            );
        }
    }

    fn panic_index(&mut self, at: usize) {
        if self.view.index_site(at) {
            self.report(
                "panic.index",
                at,
                "direct indexing can panic — prefer .get()/iterators or a bounds-checked helper"
                    .to_string(),
            );
        }
    }

    // ----- determinism -----------------------------------------------------

    fn det_hash_container(&mut self, at: usize) {
        if !self.in_deterministic_crate() {
            return;
        }
        if let Some(name) = self.view.hash_container_site(at) {
            let name = name.to_string();
            self.report(
                "det.hash_container",
                at,
                format!("{name} iteration order is nondeterministic — use BTreeMap/BTreeSet or an index vector"),
            );
        }
    }

    fn det_wall_clock(&mut self, at: usize) {
        if wall_clock_exempt(self.crate_name, self.rel_path) {
            return;
        }
        match self.view.wall_clock_site(at) {
            Some("SystemTime") => self.report(
                "det.wall_clock",
                at,
                "SystemTime makes output depend on the host clock — use the virtual DiskModel clock"
                    .to_string(),
            ),
            Some(_) => self.report(
                "det.wall_clock",
                at,
                "Instant::now makes output depend on the host — use the virtual DiskModel clock"
                    .to_string(),
            ),
            None => {}
        }
    }

    fn det_float_accum(&mut self, at: usize) {
        if !self.in_deterministic_crate() {
            return;
        }
        if let Some((name, shape)) = self.view.float_accum_site(at) {
            let name = name.to_string();
            let message = match shape {
                AccumShape::Bare => format!(
                    ".{name}() hides its accumulator type — use .{name}::<uN>() for integers or the kernels module for floats"
                ),
                AccumShape::FloatTurbofish => format!(
                    "float .{name}::<_>() accumulation order is a determinism hazard — use the kernels module"
                ),
            };
            self.report("det.float_accum", at, message);
        }
    }

    fn det_thread_spawn(&mut self, at: usize) {
        if thread_spawn_exempt(self.crate_name) {
            return;
        }
        if self.view.thread_spawn_site(at) {
            self.report(
                "det.thread_spawn",
                at,
                "std::thread::spawn forks unmanaged concurrency — use the eff2-parallel wrappers"
                    .to_string(),
            );
        }
    }

    // ----- error taxonomy --------------------------------------------------

    fn err_box_error(&mut self, at: usize) {
        let Some(t) = self.view.tok(at) else { return };
        if !t.is_ident("Box") || !self.view.tok(at + 1).is_some_and(|n| n.is_punct('<')) {
            return;
        }
        if !self.view.tok(at + 2).is_some_and(|n| n.is_ident("dyn")) {
            return;
        }
        // Scan the angle-bracketed span (bounded) for an `Error` ident.
        let mut depth = 0isize;
        for off in 1..64 {
            let Some(n) = self.view.tok(at + off) else {
                break;
            };
            if n.is_punct('<') {
                depth += 1;
            } else if n.is_punct('>') {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            } else if n.is_ident("Error") {
                self.report(
                    "err.box_error",
                    at,
                    "Box<dyn …Error…> erases the error taxonomy — use the workspace Error enum"
                        .to_string(),
                );
                return;
            }
        }
    }

    fn err_string_error(&mut self, at: usize) {
        let Some(t) = self.view.tok(at) else { return };
        if !t.is_ident("Result") || !self.view.tok(at + 1).is_some_and(|n| n.is_punct('<')) {
            return;
        }
        // Walk to the matching `>`; remember the tokens after the last
        // top-level `,` — the error type.
        let mut depth = 0isize;
        let mut last_comma_off: Option<usize> = None;
        let mut close_off: Option<usize> = None;
        for off in 1..96 {
            let Some(n) = self.view.tok(at + off) else {
                break;
            };
            if n.is_punct('<') {
                depth += 1;
            } else if n.is_punct('>') {
                depth -= 1;
                if depth == 0 {
                    close_off = Some(off);
                    break;
                }
            } else if n.is_punct(',') && depth == 1 {
                last_comma_off = Some(off);
            } else if n.is_punct(';') || n.is_punct('{') {
                break; // ran off the type — not a generic argument list
            }
        }
        if let (Some(comma), Some(close)) = (last_comma_off, close_off) {
            if close == comma + 2
                && self
                    .view
                    .tok(at + comma + 1)
                    .is_some_and(|e| e.is_ident("String"))
            {
                self.report(
                    "err.string_error",
                    at,
                    "Result<_, String> erases the error taxonomy — use the workspace Error enum"
                        .to_string(),
                );
            }
        }
    }

    // ----- hygiene ---------------------------------------------------------

    fn hyg_print(&mut self, at: usize) {
        if CLI_CRATES.contains(&self.crate_name) {
            return;
        }
        let Some(t) = self.view.tok(at) else { return };
        if t.kind != TokenKind::Ident
            || !matches!(
                t.text.as_str(),
                "println" | "eprintln" | "print" | "eprint" | "dbg"
            )
        {
            return;
        }
        if self.view.tok(at + 1).is_some_and(|n| n.is_punct('!')) {
            let name = t.text.clone();
            self.report(
                "hyg.print",
                at,
                format!(
                    "{name}! in a library crate pollutes consumers' output — remove or gate it"
                ),
            );
        }
    }
}

/// Runs every token rule over one file, returning unsuppressed raw
/// findings (waiver handling happens in [`crate::engine`]).
pub fn apply(
    crate_name: &str,
    rel_path: &str,
    tokens: &[Token],
    regions: &[Region],
    code: &[usize],
) -> Vec<Finding> {
    let mut scan = Scan {
        crate_name,
        rel_path,
        view: View::new(tokens, code),
        regions,
        findings: Vec::new(),
    };
    for at in 0..code.len() {
        if scan.skipped(at) {
            continue;
        }
        scan.panic_unwrap(at);
        scan.panic_macro(at);
        scan.panic_index(at);
        scan.det_hash_container(at);
        scan.det_wall_clock(at);
        scan.det_float_accum(at);
        scan.det_thread_spawn(at);
        scan.err_box_error(at);
        scan.err_string_error(at);
        scan.hyg_print(at);
    }
    scan.findings
}
