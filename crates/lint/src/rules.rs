//! The rule set: panic-freedom, determinism, error-taxonomy and hygiene.
//!
//! Each rule is a token-pattern check with a crate/file scope. Rules fire
//! only on code tokens outside test regions, attributes and `macro_rules!`
//! bodies (see [`crate::regions`]); comments, doc comments and string
//! literals are skipped by construction of the token stream.

use crate::lexer::{is_keyword, Token, TokenKind};
use crate::regions::Region;

/// A single reported problem.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    /// Stable rule identifier (e.g. `panic.unwrap`).
    pub rule: &'static str,
    /// Path of the offending file, relative to the workspace root.
    pub file: String,
    /// 1-based line of the offending token.
    pub line: u32,
    /// Human-readable description of the problem.
    pub message: String,
}

/// Description of one rule, for `--rules` listings and the docs table.
#[derive(Clone, Copy, Debug)]
pub struct RuleInfo {
    /// Stable identifier cited by waivers.
    pub id: &'static str,
    /// One-line description.
    pub summary: &'static str,
}

/// Every rule this auditor knows, in reporting order.
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        id: "panic.unwrap",
        summary: "no .unwrap()/.expect() in non-test library code",
    },
    RuleInfo {
        id: "panic.macro",
        summary: "no panic!/unreachable!/todo!/unimplemented! in non-test library code",
    },
    RuleInfo {
        id: "panic.index",
        summary: "no direct slice/array indexing `x[i]` in non-test library code",
    },
    RuleInfo {
        id: "det.hash_container",
        summary: "no HashMap/HashSet in trace-producing crates (core/storage/chaos/serve/shard/metrics/eval/descriptor)",
    },
    RuleInfo {
        id: "det.wall_clock",
        summary: "no Instant::now/SystemTime outside storage::diskmodel and the bench crate",
    },
    RuleInfo {
        id: "det.float_accum",
        summary: "no float .sum()/.product() in trace-producing crates — accumulate via kernels",
    },
    RuleInfo {
        id: "det.thread_spawn",
        summary: "no std::thread::spawn outside crates/parallel — use the eff2-parallel wrappers",
    },
    RuleInfo {
        id: "err.box_error",
        summary: "no Box<dyn …Error…> — use the workspace Error taxonomy",
    },
    RuleInfo {
        id: "err.string_error",
        summary: "no Result<_, String> — use the workspace Error taxonomy",
    },
    RuleInfo {
        id: "hyg.print",
        summary: "no println!/eprintln!/print!/eprint!/dbg! in library crates",
    },
    RuleInfo {
        id: "hyg.waiver",
        summary: "every lint:allow waiver cites a known rule, a non-empty reason, and suppresses something",
    },
];

/// Whether `id` names a known rule.
pub fn is_rule(id: &str) -> bool {
    RULES.iter().any(|r| r.id == id)
}

/// Crates whose outputs feed traces or reported figures: HashMap/HashSet
/// iteration order and ad-hoc float accumulation are banned here.
const DETERMINISTIC_CRATES: &[&str] = &[
    "core",
    "storage",
    "chaos",
    "serve",
    "shard",
    "metrics",
    "eval",
    "descriptor",
];

/// Crates that are command-line binaries: printing to stdout/stderr is
/// their job, so `hyg.print` does not apply.
const CLI_CRATES: &[&str] = &["eval", "lint"];

/// Integer primitive names: `.sum::<usize>()` over these is deterministic
/// regardless of order, so `det.float_accum` permits it.
fn is_integer_type(s: &str) -> bool {
    matches!(
        s,
        "u8" | "u16"
            | "u32"
            | "u64"
            | "u128"
            | "usize"
            | "i8"
            | "i16"
            | "i32"
            | "i64"
            | "i128"
            | "isize"
    )
}

struct Scan<'a> {
    crate_name: &'a str,
    rel_path: &'a str,
    tokens: &'a [Token],
    regions: &'a [Region],
    /// Indices of non-comment tokens.
    code: &'a [usize],
    findings: Vec<Finding>,
}

impl Scan<'_> {
    fn tok(&self, code_pos: usize) -> Option<&Token> {
        self.code.get(code_pos).and_then(|&i| self.tokens.get(i))
    }

    /// Whether the token at `code_pos` sits in a region rules must skip.
    fn skipped(&self, code_pos: usize) -> bool {
        self.code
            .get(code_pos)
            .and_then(|&i| self.regions.get(i))
            .is_none_or(|r| r.test || r.attr || r.macro_body)
    }

    fn report(&mut self, rule: &'static str, code_pos: usize, message: String) {
        let line = self.tok(code_pos).map_or(0, |t| t.line);
        self.findings.push(Finding {
            rule,
            file: self.rel_path.to_string(),
            line,
            message,
        });
    }

    fn in_deterministic_crate(&self) -> bool {
        DETERMINISTIC_CRATES.contains(&self.crate_name)
    }

    // ----- panic-freedom ---------------------------------------------------

    fn panic_unwrap(&mut self, at: usize) {
        let Some(t) = self.tok(at) else { return };
        if t.kind != TokenKind::Ident || !matches!(t.text.as_str(), "unwrap" | "expect") {
            return;
        }
        let after_dot = at > 0 && self.tok(at - 1).is_some_and(|p| p.is_punct('.'));
        let called = self.tok(at + 1).is_some_and(|n| n.is_punct('('));
        if after_dot && called {
            let name = t.text.clone();
            self.report(
                "panic.unwrap",
                at,
                format!(".{name}() can panic — return the workspace Error instead"),
            );
        }
    }

    fn panic_macro(&mut self, at: usize) {
        let Some(t) = self.tok(at) else { return };
        if t.kind != TokenKind::Ident
            || !matches!(
                t.text.as_str(),
                "panic" | "unreachable" | "todo" | "unimplemented"
            )
        {
            return;
        }
        if self.tok(at + 1).is_some_and(|n| n.is_punct('!')) {
            let name = t.text.clone();
            self.report(
                "panic.macro",
                at,
                format!("{name}! aborts the caller — return the workspace Error instead"),
            );
        }
    }

    fn panic_index(&mut self, at: usize) {
        let Some(t) = self.tok(at) else { return };
        if !t.is_punct('[') || at == 0 {
            return;
        }
        let Some(prev) = self.tok(at - 1) else { return };
        let indexes = match prev.kind {
            TokenKind::Ident => !is_keyword(&prev.text),
            TokenKind::Punct => matches!(prev.text.chars().next(), Some(')') | Some(']')),
            _ => false,
        };
        if indexes {
            self.report(
                "panic.index",
                at,
                "direct indexing can panic — prefer .get()/iterators or a bounds-checked helper"
                    .to_string(),
            );
        }
    }

    // ----- determinism -----------------------------------------------------

    fn det_hash_container(&mut self, at: usize) {
        if !self.in_deterministic_crate() {
            return;
        }
        let Some(t) = self.tok(at) else { return };
        if t.kind == TokenKind::Ident && matches!(t.text.as_str(), "HashMap" | "HashSet") {
            let name = t.text.clone();
            self.report(
                "det.hash_container",
                at,
                format!("{name} iteration order is nondeterministic — use BTreeMap/BTreeSet or an index vector"),
            );
        }
    }

    fn det_wall_clock(&mut self, at: usize) {
        // storage::diskmodel owns the virtual clock; bench measures wall
        // time by design.
        if self.crate_name == "bench"
            || (self.crate_name == "storage" && self.rel_path.ends_with("diskmodel.rs"))
        {
            return;
        }
        let Some(t) = self.tok(at) else { return };
        if t.kind != TokenKind::Ident {
            return;
        }
        if t.text == "SystemTime" {
            self.report(
                "det.wall_clock",
                at,
                "SystemTime makes output depend on the host clock — use the virtual DiskModel clock"
                    .to_string(),
            );
            return;
        }
        if t.text == "Instant"
            && self.tok(at + 1).is_some_and(|a| a.is_punct(':'))
            && self.tok(at + 2).is_some_and(|b| b.is_punct(':'))
            && self.tok(at + 3).is_some_and(|c| c.is_ident("now"))
        {
            self.report(
                "det.wall_clock",
                at,
                "Instant::now makes output depend on the host — use the virtual DiskModel clock"
                    .to_string(),
            );
        }
    }

    fn det_float_accum(&mut self, at: usize) {
        if !self.in_deterministic_crate() {
            return;
        }
        let Some(t) = self.tok(at) else { return };
        if t.kind != TokenKind::Ident || !matches!(t.text.as_str(), "sum" | "product") {
            return;
        }
        if at == 0 || !self.tok(at - 1).is_some_and(|p| p.is_punct('.')) {
            return;
        }
        // `.sum::<integer>()` is order-independent; anything else (bare
        // `.sum()`, or a float turbofish) is flagged.
        let name = t.text.clone();
        if self.tok(at + 1).is_some_and(|n| n.is_punct('(')) {
            self.report(
                "det.float_accum",
                at,
                format!(".{name}() hides its accumulator type — use .{name}::<uN>() for integers or the kernels module for floats"),
            );
            return;
        }
        let turbofish = self.tok(at + 1).is_some_and(|a| a.is_punct(':'))
            && self.tok(at + 2).is_some_and(|b| b.is_punct(':'))
            && self.tok(at + 3).is_some_and(|c| c.is_punct('<'));
        if turbofish {
            let int = self
                .tok(at + 4)
                .is_some_and(|ty| ty.kind == TokenKind::Ident && is_integer_type(&ty.text));
            if !int {
                self.report(
                    "det.float_accum",
                    at,
                    format!("float .{name}::<_>() accumulation order is a determinism hazard — use the kernels module"),
                );
            }
        }
    }

    fn det_thread_spawn(&mut self, at: usize) {
        // eff2-parallel owns raw threads: its wrappers pin worker counts
        // and merge order so everyone else stays deterministic.
        if self.crate_name == "parallel" {
            return;
        }
        let Some(t) = self.tok(at) else { return };
        if t.kind != TokenKind::Ident || t.text != "thread" {
            return;
        }
        if self.tok(at + 1).is_some_and(|a| a.is_punct(':'))
            && self.tok(at + 2).is_some_and(|b| b.is_punct(':'))
            && self.tok(at + 3).is_some_and(|c| c.is_ident("spawn"))
            && self.tok(at + 4).is_some_and(|d| d.is_punct('('))
        {
            self.report(
                "det.thread_spawn",
                at,
                "std::thread::spawn forks unmanaged concurrency — use the eff2-parallel wrappers"
                    .to_string(),
            );
        }
    }

    // ----- error taxonomy --------------------------------------------------

    fn err_box_error(&mut self, at: usize) {
        let Some(t) = self.tok(at) else { return };
        if !t.is_ident("Box") || !self.tok(at + 1).is_some_and(|n| n.is_punct('<')) {
            return;
        }
        if !self.tok(at + 2).is_some_and(|n| n.is_ident("dyn")) {
            return;
        }
        // Scan the angle-bracketed span (bounded) for an `Error` ident.
        let mut depth = 0isize;
        for off in 1..64 {
            let Some(n) = self.tok(at + off) else { break };
            if n.is_punct('<') {
                depth += 1;
            } else if n.is_punct('>') {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            } else if n.is_ident("Error") {
                self.report(
                    "err.box_error",
                    at,
                    "Box<dyn …Error…> erases the error taxonomy — use the workspace Error enum"
                        .to_string(),
                );
                return;
            }
        }
    }

    fn err_string_error(&mut self, at: usize) {
        let Some(t) = self.tok(at) else { return };
        if !t.is_ident("Result") || !self.tok(at + 1).is_some_and(|n| n.is_punct('<')) {
            return;
        }
        // Walk to the matching `>`; remember the tokens after the last
        // top-level `,` — the error type.
        let mut depth = 0isize;
        let mut last_comma_off: Option<usize> = None;
        let mut close_off: Option<usize> = None;
        for off in 1..96 {
            let Some(n) = self.tok(at + off) else { break };
            if n.is_punct('<') {
                depth += 1;
            } else if n.is_punct('>') {
                depth -= 1;
                if depth == 0 {
                    close_off = Some(off);
                    break;
                }
            } else if n.is_punct(',') && depth == 1 {
                last_comma_off = Some(off);
            } else if n.is_punct(';') || n.is_punct('{') {
                break; // ran off the type — not a generic argument list
            }
        }
        if let (Some(comma), Some(close)) = (last_comma_off, close_off) {
            if close == comma + 2
                && self
                    .tok(at + comma + 1)
                    .is_some_and(|e| e.is_ident("String"))
            {
                self.report(
                    "err.string_error",
                    at,
                    "Result<_, String> erases the error taxonomy — use the workspace Error enum"
                        .to_string(),
                );
            }
        }
    }

    // ----- hygiene ---------------------------------------------------------

    fn hyg_print(&mut self, at: usize) {
        if CLI_CRATES.contains(&self.crate_name) {
            return;
        }
        let Some(t) = self.tok(at) else { return };
        if t.kind != TokenKind::Ident
            || !matches!(
                t.text.as_str(),
                "println" | "eprintln" | "print" | "eprint" | "dbg"
            )
        {
            return;
        }
        if self.tok(at + 1).is_some_and(|n| n.is_punct('!')) {
            let name = t.text.clone();
            self.report(
                "hyg.print",
                at,
                format!(
                    "{name}! in a library crate pollutes consumers' output — remove or gate it"
                ),
            );
        }
    }
}

/// Runs every token rule over one file, returning unsuppressed raw
/// findings (waiver handling happens in [`crate::engine`]).
pub fn apply(
    crate_name: &str,
    rel_path: &str,
    tokens: &[Token],
    regions: &[Region],
    code: &[usize],
) -> Vec<Finding> {
    let mut scan = Scan {
        crate_name,
        rel_path,
        tokens,
        regions,
        code,
        findings: Vec::new(),
    };
    for at in 0..code.len() {
        if scan.skipped(at) {
            continue;
        }
        scan.panic_unwrap(at);
        scan.panic_macro(at);
        scan.panic_index(at);
        scan.det_hash_container(at);
        scan.det_wall_clock(at);
        scan.det_float_accum(at);
        scan.det_thread_spawn(at);
        scan.err_box_error(at);
        scan.err_string_error(at);
        scan.hyg_print(at);
    }
    scan.findings
}
