#![warn(missing_docs)]

//! # eff2-lint
//!
//! A from-scratch static-analysis pass over the eff2 workspace. The
//! ROADMAP's north star is a production server that must not panic, must
//! stay deterministic (bit-identical traces are what make the paper's
//! figures reproducible), and must surface every failure through the
//! workspace error taxonomy. Until now those guarantees were enforced
//! only by runtime trace tests; this crate checks them *mechanically*,
//! against the source itself.
//!
//! crates.io is unreachable in the build environment, so everything is
//! self-contained: a minimal Rust lexer ([`lexer`]), a region classifier
//! that understands `#[cfg(test)]` modules, attributes and `macro_rules!`
//! bodies ([`regions`]), and a token-pattern rule engine ([`rules`],
//! driven by [`engine`]). Findings carry `file:line` spans and stable rule
//! ids, and can be emitted as JSON (via `eff2-json`) for tooling.
//!
//! Run it with `cargo run --release -p eff2-lint -- --deny`; see
//! `DESIGN.md` §10 for the rule table and waiver grammar.

pub mod engine;
mod graph;
pub mod lexer;
pub mod regions;
pub mod rules;
mod symbols;
mod taint;

pub use engine::{
    findings_to_json, lint_files, lint_source, lint_workspace, lint_workspace_report, LintReport,
};
pub use rules::{Finding, Hop, RuleInfo, RULES};
