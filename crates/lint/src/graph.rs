//! Cross-crate call-graph construction over the extracted symbols.
//!
//! Resolution is deliberately conservative: where the receiver type is
//! known (`self.m()` inside `impl T`, `Type::m()`, `eff2_core::m()`) the
//! edge is precise; where it is not, a method call resolves to *every*
//! workspace method of that name (over-approximating trait dispatch), and
//! an unresolved lowercase path falls back to same-crate then workspace
//! fns of that name. Paths rooted in `std`/`core`/`alloc`, primitive
//! types, and unresolved `Type::new`-style constructors get **no** edge —
//! a false edge into the workspace would manufacture taint out of thin
//! air, while a dropped std edge only loses facts std does not have.
//!
//! Everything is ordered (BTree maps, sorted edge lists) so the graph —
//! and every chain the taint engine prints — is bit-stable across runs.

use crate::symbols::{Call, CallTarget, Symbol, SymbolId};
use std::collections::{BTreeMap, BTreeSet};

/// One resolved call edge.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub(crate) struct Edge {
    /// The callee symbol.
    pub callee: SymbolId,
    /// 1-based line of the call site in the caller's file.
    pub line: u32,
}

/// The workspace call graph: symbols plus per-symbol sorted edges.
pub(crate) struct Graph {
    /// All symbols, in extraction order.
    pub symbols: Vec<Symbol>,
    /// `edges[id]` — sorted, deduplicated out-edges of symbol `id`.
    pub edges: Vec<Vec<Edge>>,
}

/// Path roots that never point into the workspace.
fn is_std_root(seg: &str) -> bool {
    matches!(seg, "std" | "core" | "alloc")
}

/// Primitive type names that can appear as `f32::max`-style receivers.
fn is_primitive(seg: &str) -> bool {
    matches!(
        seg,
        "u8" | "u16"
            | "u32"
            | "u64"
            | "u128"
            | "usize"
            | "i8"
            | "i16"
            | "i32"
            | "i64"
            | "i128"
            | "isize"
            | "f32"
            | "f64"
            | "bool"
            | "char"
            | "str"
    )
}

/// Maps a path root to a workspace crate directory name, if it is one:
/// `eff2_core` → `core`, `crate`/`self`/`super` → the caller's crate.
fn crate_of_root(seg: &str, caller_crate: &str) -> Option<String> {
    if let Some(name) = seg.strip_prefix("eff2_") {
        return Some(name.to_string());
    }
    if matches!(seg, "crate" | "self" | "super") {
        return Some(caller_crate.to_string());
    }
    None
}

struct Index<'a> {
    symbols: &'a [Symbol],
    /// Free fns (no impl/trait context) by name.
    free_by_name: BTreeMap<&'a str, Vec<SymbolId>>,
    /// Methods (impl or trait context) by name.
    methods_by_name: BTreeMap<&'a str, Vec<SymbolId>>,
    /// Every symbol by name.
    any_by_name: BTreeMap<&'a str, Vec<SymbolId>>,
}

impl<'a> Index<'a> {
    fn build(symbols: &'a [Symbol]) -> Self {
        let mut free_by_name: BTreeMap<&str, Vec<SymbolId>> = BTreeMap::new();
        let mut methods_by_name: BTreeMap<&str, Vec<SymbolId>> = BTreeMap::new();
        let mut any_by_name: BTreeMap<&str, Vec<SymbolId>> = BTreeMap::new();
        for (id, s) in symbols.iter().enumerate() {
            any_by_name.entry(&s.name).or_default().push(id);
            if s.is_method {
                methods_by_name.entry(&s.name).or_default().push(id);
            } else {
                free_by_name.entry(&s.name).or_default().push(id);
            }
        }
        Index {
            symbols,
            free_by_name,
            methods_by_name,
            any_by_name,
        }
    }

    fn filter_crate(&self, ids: &[SymbolId], crate_name: &str) -> Vec<SymbolId> {
        ids.iter()
            .copied()
            .filter(|&id| {
                self.symbols
                    .get(id)
                    .is_some_and(|s| s.crate_name == crate_name)
            })
            .collect()
    }

    fn filter_type(&self, ids: &[SymbolId], type_name: &str) -> Vec<SymbolId> {
        ids.iter()
            .copied()
            .filter(|&id| {
                self.symbols
                    .get(id)
                    .is_some_and(|s| s.self_type.as_deref() == Some(type_name))
            })
            .collect()
    }

    /// Resolves one call from `caller` to zero or more callees.
    fn resolve(&self, caller: &Symbol, call: &Call) -> Vec<SymbolId> {
        match &call.target {
            CallTarget::Plain(name) => {
                let free = self.free_by_name.get(name.as_str());
                // Same-crate free fn first; then any same-crate symbol
                // (nested fns, assoc fns brought in by `use`); then the
                // conservative workspace-wide free-fn fallback.
                if let Some(ids) = free {
                    let same = self.filter_crate(ids, &caller.crate_name);
                    if !same.is_empty() {
                        return same;
                    }
                }
                if let Some(ids) = self.any_by_name.get(name.as_str()) {
                    let same = self.filter_crate(ids, &caller.crate_name);
                    if !same.is_empty() {
                        return same;
                    }
                }
                free.cloned().unwrap_or_default()
            }
            CallTarget::Method { name, on_self } => {
                let Some(ids) = self.methods_by_name.get(name.as_str()) else {
                    return Vec::new();
                };
                // `self.m()` inside `impl T` narrows to T's own methods
                // (same crate); otherwise conservative trait dispatch —
                // every workspace method of that name.
                if *on_self {
                    if let Some(ty) = &caller.self_type {
                        let own: Vec<SymbolId> = ids
                            .iter()
                            .copied()
                            .filter(|&id| {
                                self.symbols.get(id).is_some_and(|s| {
                                    s.crate_name == caller.crate_name
                                        && s.self_type.as_deref() == Some(ty.as_str())
                                })
                            })
                            .collect();
                        if !own.is_empty() {
                            return own;
                        }
                    }
                }
                ids.clone()
            }
            CallTarget::Path(segs) => self.resolve_path(caller, segs),
        }
    }

    fn resolve_path(&self, caller: &Symbol, segs: &[String]) -> Vec<SymbolId> {
        let Some(name) = segs.last() else {
            return Vec::new();
        };
        let Some(root) = segs.first() else {
            return Vec::new();
        };
        if is_std_root(root) || is_primitive(root) {
            return Vec::new();
        }
        // Crate-qualified: `eff2_core::…::f`, `crate::…::f`.
        if let Some(crate_name) = crate_of_root(root, &caller.crate_name) {
            // The segment before the fn name (not the root itself): an
            // uppercase one is a type qualifier (`eff2_core::Type::f`).
            if segs.len() >= 3 {
                if let Some(q) = segs.get(segs.len() - 2) {
                    if q.chars().next().is_some_and(char::is_uppercase) {
                        if let Some(ids) = self.any_by_name.get(name.as_str()) {
                            let typed =
                                self.filter_type(&self.filter_crate(ids, &crate_name), q.as_str());
                            if !typed.is_empty() {
                                return typed;
                            }
                        }
                        return Vec::new();
                    }
                }
            }
            // `eff2_core::module::f` / `eff2_core::f` — fns in that crate.
            if let Some(ids) = self.any_by_name.get(name.as_str()) {
                return self.filter_crate(ids, &crate_name);
            }
            return Vec::new();
        }
        // Type-qualified: the penultimate segment names a type.
        let penult = if segs.len() >= 2 {
            segs.get(segs.len() - 2)
        } else {
            None
        };
        if let Some(q) = penult {
            if q == "Self" {
                // `Self::f()` — the caller's own type.
                if let (Some(ty), Some(ids)) =
                    (&caller.self_type, self.any_by_name.get(name.as_str()))
                {
                    return self
                        .filter_type(&self.filter_crate(ids, &caller.crate_name), ty.as_str());
                }
                return Vec::new();
            }
            if is_primitive(q) {
                return Vec::new();
            }
            if q.chars().next().is_some_and(char::is_uppercase) {
                // `Type::f()` — prefer same-crate methods of that type,
                // then any crate's; an unresolved constructor (`Vec::new`)
                // gets no edge rather than a fabricated one.
                if let Some(ids) = self.any_by_name.get(name.as_str()) {
                    let typed = self.filter_type(ids, q.as_str());
                    let same = self.filter_crate(&typed, &caller.crate_name);
                    if !same.is_empty() {
                        return same;
                    }
                    return typed;
                }
                return Vec::new();
            }
        }
        // Lowercase module path we cannot place (`helpers::f()` via a
        // `use`): same-crate by name, then workspace free fns.
        if let Some(ids) = self.any_by_name.get(name.as_str()) {
            let same = self.filter_crate(ids, &caller.crate_name);
            if !same.is_empty() {
                return same;
            }
        }
        self.free_by_name
            .get(name.as_str())
            .cloned()
            .unwrap_or_default()
    }
}

/// Builds the call graph over `symbols`.
pub(crate) fn build(symbols: Vec<Symbol>) -> Graph {
    let mut edges: Vec<Vec<Edge>> = vec![Vec::new(); symbols.len()];
    {
        let index = Index::build(&symbols);
        for (id, sym) in symbols.iter().enumerate() {
            let mut out: BTreeSet<Edge> = BTreeSet::new();
            for call in &sym.calls {
                for callee in index.resolve(sym, call) {
                    if callee != id {
                        out.insert(Edge {
                            callee,
                            line: call.line,
                        });
                    }
                }
            }
            if let Some(slot) = edges.get_mut(id) {
                *slot = out.into_iter().collect();
            }
        }
    }
    Graph { symbols, edges }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::regions::{classify, code_indices};
    use crate::symbols::extract;

    fn graph_of(files: &[(&str, &str)]) -> Graph {
        let mut symbols = Vec::new();
        for (crate_name, src) in files {
            let tokens = lex(src);
            let regions = classify(&tokens);
            let code = code_indices(&tokens);
            symbols.extend(extract(
                crate_name,
                &format!("crates/{crate_name}/src/lib.rs"),
                &tokens,
                &regions,
                &code,
            ));
        }
        build(symbols)
    }

    fn callees<'g>(g: &'g Graph, name: &str) -> Vec<&'g str> {
        let id = g
            .symbols
            .iter()
            .position(|s| s.name == name)
            .unwrap_or_else(|| panic!("symbol {name}"));
        g.edges
            .get(id)
            .into_iter()
            .flatten()
            .filter_map(|e| g.symbols.get(e.callee).map(|s| s.name.as_str()))
            .collect()
    }

    #[test]
    fn same_crate_plain_call_resolves_locally_despite_shadow() {
        // Both crates define `helper`; the same-crate one wins.
        let g = graph_of(&[
            ("core", "pub fn f() { helper(); }\nfn helper() {}\n"),
            ("serve", "fn helper() {}\n"),
        ]);
        let id = g.symbols.iter().position(|s| s.name == "f").expect("f");
        let edges = g.edges.get(id).expect("edges");
        assert_eq!(edges.len(), 1);
        let callee = g
            .symbols
            .get(edges.first().expect("edge").callee)
            .expect("callee");
        assert_eq!(callee.crate_name, "core");
    }

    #[test]
    fn cross_crate_path_call_resolves() {
        let g = graph_of(&[
            ("serve", "pub fn f() { eff2_storage::open(); }\n"),
            ("storage", "pub fn open() {}\n"),
        ]);
        assert_eq!(callees(&g, "f"), vec!["open"]);
    }

    #[test]
    fn std_paths_get_no_edges() {
        let g = graph_of(&[(
            "core",
            "pub fn f() { std::mem::drop(1); Vec::new(); f32::max(1.0, 2.0); }\nfn new() {}\nfn drop() {}\nfn max() {}\n",
        )]);
        assert!(callees(&g, "f").is_empty());
    }

    #[test]
    fn method_call_on_self_narrows_to_own_type() {
        let src = "struct A;\nstruct B;\nimpl A {\n    pub fn go(&self) { self.step(); }\n    fn step(&self) {}\n}\nimpl B { fn step(&self) {} }\n";
        let g = graph_of(&[("core", src)]);
        let go = g.symbols.iter().position(|s| s.name == "go").expect("go");
        let edges = g.edges.get(go).expect("edges");
        assert_eq!(edges.len(), 1);
        let callee = g
            .symbols
            .get(edges.first().expect("edge").callee)
            .expect("callee");
        assert_eq!(callee.self_type.as_deref(), Some("A"));
    }

    #[test]
    fn unknown_receiver_method_goes_to_every_impl() {
        // Trait dispatch: `s.step()` with unknown receiver reaches both
        // impls — conservative over-approximation.
        let src = "struct A;\nstruct B;\npub fn f(s: &dyn St) { s.step(); }\nimpl A { fn step(&self) {} }\nimpl B { fn step(&self) {} }\n";
        let g = graph_of(&[("core", src)]);
        assert_eq!(callees(&g, "f"), vec!["step", "step"]);
    }

    #[test]
    fn type_qualified_call_resolves_cross_crate() {
        let g = graph_of(&[
            ("serve", "pub fn f() { PipelineClock::start_at(0); }\n"),
            (
                "storage",
                "pub struct PipelineClock;\nimpl PipelineClock { pub fn start_at(_t: u64) {} }\n",
            ),
        ]);
        assert_eq!(callees(&g, "f"), vec!["start_at"]);
    }

    #[test]
    fn cycles_build_without_issue() {
        let g = graph_of(&[("core", "fn a() { b(); }\nfn b() { a(); }\n")]);
        assert_eq!(callees(&g, "a"), vec!["b"]);
        assert_eq!(callees(&g, "b"), vec!["a"]);
    }
}
