//! A minimal Rust lexer: just enough tokenisation for line-accurate lints.
//!
//! The build environment has no crates.io access, so this is written from
//! scratch against the subset of Rust's lexical grammar the workspace uses:
//! line and block comments (nested, doc and plain), string literals
//! (regular, raw `r#"…"#`, byte `b"…"` and raw-byte `br#"…"#`), character
//! literals vs. lifetimes, numeric literals with suffixes and exponents,
//! raw identifiers (`r#type`), and single-character punctuation. Every
//! token carries the 1-based line it starts on, which is all the rule
//! engine needs to report `file:line` findings.
//!
//! The lexer never fails: unterminated literals simply run to end of file.
//! That is the right behaviour for a linter — `rustc` owns rejecting the
//! file; we only need spans that are correct for code that compiles.

/// What a token is, at the granularity the rules care about.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (rules distinguish via [`is_keyword`]).
    Ident,
    /// A lifetime such as `'a` (or a loop label).
    Lifetime,
    /// A character or byte-character literal, `'x'` / `b'x'`.
    CharLit,
    /// Any string literal form: `"…"`, `r"…"`, `r#"…"#`, `b"…"`, `br"…"`.
    StrLit,
    /// A numeric literal (integers, floats, suffixes, exponents).
    NumLit,
    /// A single punctuation character (`.`, `[`, `#`, `!`, …).
    Punct,
    /// `// …` (plain, non-doc).
    LineComment,
    /// `/// …` or `//! …`.
    DocComment,
    /// `/* … */` (nested; `/** … */` and `/*! … */` count as doc).
    BlockComment,
    /// `/** … */` or `/*! … */`.
    DocBlockComment,
}

/// One lexed token: kind, verbatim text and the 1-based line it starts on.
#[derive(Clone, Debug)]
pub struct Token {
    /// Classification of the token.
    pub kind: TokenKind,
    /// The token's text, verbatim from the source.
    pub text: String,
    /// 1-based line number of the token's first character.
    pub line: u32,
}

impl Token {
    /// Whether this token is any kind of comment.
    pub fn is_comment(&self) -> bool {
        matches!(
            self.kind,
            TokenKind::LineComment
                | TokenKind::DocComment
                | TokenKind::BlockComment
                | TokenKind::DocBlockComment
        )
    }

    /// Whether this token is a given punctuation character.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokenKind::Punct && self.text.starts_with(c)
    }

    /// Whether this token is a given identifier.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == s
    }
}

/// Rust's reserved words (strict and 2018+), used to tell `v[i]` indexing
/// apart from syntax like `mut [u8]` or `let [a, b] = …`.
pub fn is_keyword(s: &str) -> bool {
    matches!(
        s,
        "as" | "async"
            | "await"
            | "box"
            | "break"
            | "const"
            | "continue"
            | "crate"
            | "dyn"
            | "else"
            | "enum"
            | "extern"
            | "false"
            | "fn"
            | "for"
            | "if"
            | "impl"
            | "in"
            | "let"
            | "loop"
            | "match"
            | "mod"
            | "move"
            | "mut"
            | "pub"
            | "ref"
            | "return"
            | "static"
            | "struct"
            | "super"
            | "trait"
            | "true"
            | "type"
            | "unsafe"
            | "use"
            | "where"
            | "while"
            | "yield"
    )
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: u32,
}

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek(0)?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
        }
        Some(c)
    }

    /// Consumes `n` characters, appending them to `out`.
    fn take(&mut self, n: usize, out: &mut String) {
        for _ in 0..n {
            if let Some(c) = self.bump() {
                out.push(c);
            }
        }
    }

    fn ident_start(c: char) -> bool {
        c.is_alphabetic() || c == '_'
    }

    fn ident_continue(c: char) -> bool {
        c.is_alphanumeric() || c == '_'
    }

    fn take_while(&mut self, out: &mut String, pred: impl Fn(char) -> bool) {
        while self.peek(0).is_some_and(&pred) {
            self.take(1, out);
        }
    }

    /// Consumes the body of a quoted literal after its opening `"`,
    /// honouring backslash escapes; stops after the closing `"`.
    fn quoted_body(&mut self, out: &mut String) {
        while let Some(c) = self.peek(0) {
            self.take(1, out);
            match c {
                '\\' => self.take(1, out), // escaped char, never a terminator
                '"' => return,
                _ => {}
            }
        }
    }

    /// Consumes a raw-string body after `r`/`br`: `#…#"…"#…#`. Returns
    /// whether the prefix really was a raw string (otherwise nothing is
    /// consumed and the caller falls back to identifier lexing).
    fn raw_string_body(&mut self, out: &mut String) -> bool {
        let mut hashes = 0;
        while self.peek(hashes) == Some('#') {
            hashes += 1;
        }
        if self.peek(hashes) != Some('"') {
            return false;
        }
        self.take(hashes + 1, out); // hashes + opening quote
        loop {
            match self.peek(0) {
                None => return true, // unterminated: run to EOF
                Some('"') => {
                    let closed = (1..=hashes).all(|i| self.peek(i) == Some('#'));
                    self.take(1, out);
                    if closed {
                        self.take(hashes, out);
                        return true;
                    }
                }
                Some(_) => self.take(1, out),
            }
        }
    }

    /// Lexes the token starting at the current position; the position is
    /// known to hold a non-whitespace character.
    fn token(&mut self) -> Option<Token> {
        let line = self.line;
        let c = self.peek(0)?;
        let mut text = String::new();
        let kind = match c {
            '/' if self.peek(1) == Some('/') => {
                let doc = matches!(self.peek(2), Some('/') | Some('!'))
                    // `////…` dividers are plain comments, not doc.
                    && !(self.peek(2) == Some('/') && self.peek(3) == Some('/'));
                while self.peek(0).is_some_and(|c| c != '\n') {
                    self.take(1, &mut text);
                }
                if doc {
                    TokenKind::DocComment
                } else {
                    TokenKind::LineComment
                }
            }
            '/' if self.peek(1) == Some('*') => {
                let doc =
                    matches!(self.peek(2), Some('*') | Some('!')) && self.peek(3) != Some('/'); // `/**/` is plain and empty
                self.take(2, &mut text);
                let mut depth = 1usize;
                while depth > 0 {
                    match (self.peek(0), self.peek(1)) {
                        (None, _) => break, // unterminated: run to EOF
                        (Some('/'), Some('*')) => {
                            depth += 1;
                            self.take(2, &mut text);
                        }
                        (Some('*'), Some('/')) => {
                            depth -= 1;
                            self.take(2, &mut text);
                        }
                        _ => self.take(1, &mut text),
                    }
                }
                if doc {
                    TokenKind::DocBlockComment
                } else {
                    TokenKind::BlockComment
                }
            }
            '"' => {
                self.take(1, &mut text);
                self.quoted_body(&mut text);
                TokenKind::StrLit
            }
            'r' if self.is_raw_identifier() => {
                // `r#fn`, `r#match`, …: a single identifier token whose text
                // keeps the `r#` prefix (so it can never collide with a
                // keyword check). Lexing it as `r` + `#` + `fn` would desync
                // the region classifier and the symbol extractor.
                self.take(2, &mut text);
                self.take_while(&mut text, Lexer::ident_continue);
                TokenKind::Ident
            }
            'r' | 'b' if self.is_literal_prefix() => {
                // One of r"…", r#"…"#, b"…", b'…', br"…", br#"…"#.
                let after_b = c == 'b' && self.peek(1) == Some('\'');
                if after_b {
                    self.take(1, &mut text); // the `b`
                    self.char_or_lifetime(&mut text);
                    TokenKind::CharLit
                } else {
                    // Raw forms (`r…`/`br…`) have no escapes at all: a `\`
                    // before the closing quote is payload, so they must go
                    // through the delimiter-matching body, never the
                    // escape-honouring one.
                    let raw = c == 'r' || self.peek(1) == Some('r');
                    if c == 'b' && matches!(self.peek(1), Some('r')) {
                        self.take(2, &mut text);
                    } else {
                        self.take(1, &mut text);
                    }
                    if raw {
                        self.raw_string_body(&mut text);
                    } else {
                        self.take(1, &mut text); // the opening quote
                        self.quoted_body(&mut text);
                    }
                    TokenKind::StrLit
                }
            }
            '\'' => {
                if self.char_or_lifetime(&mut text) {
                    TokenKind::CharLit
                } else {
                    TokenKind::Lifetime
                }
            }
            _ if c.is_ascii_digit() => {
                self.take_while(&mut text, Lexer::ident_continue);
                // A fraction part: `1.5`, but not `1..n` or `1.max(…)`.
                if self.peek(0) == Some('.') && self.peek(1).is_some_and(|d| d.is_ascii_digit()) {
                    self.take(1, &mut text);
                    self.take_while(&mut text, Lexer::ident_continue);
                }
                // An exponent sign: `1e-3` lexes `1e` above, then `-3` here.
                if text.ends_with(['e', 'E'])
                    && matches!(self.peek(0), Some('+') | Some('-'))
                    && self.peek(1).is_some_and(|d| d.is_ascii_digit())
                {
                    self.take(1, &mut text);
                    self.take_while(&mut text, Lexer::ident_continue);
                }
                TokenKind::NumLit
            }
            _ if Lexer::ident_start(c) => {
                self.take_while(&mut text, Lexer::ident_continue);
                TokenKind::Ident
            }
            _ => {
                self.take(1, &mut text);
                TokenKind::Punct
            }
        };
        Some(Token { kind, text, line })
    }

    /// Whether the `r` at the current position starts a raw identifier
    /// (`r#` followed by an identifier start, e.g. `r#fn`). Raw strings
    /// (`r#"…"#`) have a `"` after the hashes instead.
    fn is_raw_identifier(&self) -> bool {
        self.peek(1) == Some('#') && self.peek(2).is_some_and(Lexer::ident_start)
    }

    /// Whether the `r`/`b` at the current position starts a literal rather
    /// than an identifier (`r"`, `r#"`, `b"`, `b'`, `br"`, `br#"` — but not
    /// the raw identifier `r#type`).
    fn is_literal_prefix(&self) -> bool {
        let mut at = 1;
        if self.peek(0) == Some('b') {
            if self.peek(1) == Some('\'') {
                return true;
            }
            if self.peek(1) == Some('r') {
                at = 2;
            }
        }
        let mut hashes = 0;
        while self.peek(at + hashes) == Some('#') {
            hashes += 1;
        }
        match self.peek(at + hashes) {
            Some('"') => true,
            // `r#type`: exactly `r` + `#` + ident-start is a raw identifier.
            _ => false,
        }
    }

    /// Consumes either a char literal (`'x'`, `'\n'`, `'\u{…}'`) or a
    /// lifetime (`'a`, `'_`); returns `true` for a char literal. The
    /// current position holds the opening `'`.
    fn char_or_lifetime(&mut self, text: &mut String) -> bool {
        self.take(1, text); // the quote
        match self.peek(0) {
            Some('\\') => {
                // Escaped char literal: consume escape then to closing quote.
                self.take(2, text);
                while self.peek(0).is_some_and(|c| c != '\'') {
                    self.take(1, text);
                }
                self.take(1, text);
                true
            }
            Some(c) if Lexer::ident_continue(c) => {
                // `'a'` is a char literal; `'abc` / `'a` is a lifetime.
                self.take_while(text, Lexer::ident_continue);
                if self.peek(0) == Some('\'') {
                    self.take(1, text);
                    true
                } else {
                    false
                }
            }
            Some(_) => {
                // `'('` and friends: one char then the closing quote.
                self.take(2, text);
                true
            }
            None => false,
        }
    }
}

/// Lexes `source` into a token stream (comments included).
pub fn lex(source: &str) -> Vec<Token> {
    let mut lx = Lexer {
        chars: source.chars().collect(),
        pos: 0,
        line: 1,
    };
    let mut tokens = Vec::new();
    loop {
        while lx.peek(0).is_some_and(char::is_whitespace) {
            lx.bump();
        }
        if lx.peek(0).is_none() {
            return tokens;
        }
        match lx.token() {
            Some(t) => tokens.push(t),
            None => return tokens,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn strings_hide_their_contents() {
        let toks = kinds(r#"let s = "x.unwrap()";"#);
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::StrLit && t.contains("unwrap")));
        assert!(!toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Ident && t == "unwrap"));
    }

    #[test]
    fn raw_strings_with_hashes() {
        let toks = kinds(r###"let s = r#"quote " inside"#; done"###);
        assert!(toks.iter().any(|(k, _)| *k == TokenKind::StrLit));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Ident && t == "done"));
    }

    #[test]
    fn raw_identifier_is_a_single_ident() {
        for kw in ["type", "fn", "match"] {
            let toks = kinds(&format!("let r#{kw} = 1;"));
            // One token, keeping the `r#` prefix so it can never be
            // mistaken for the keyword by downstream passes.
            assert!(
                toks.iter()
                    .any(|(k, t)| *k == TokenKind::Ident && t == &format!("r#{kw}")),
                "{toks:?}"
            );
            assert!(!toks.iter().any(|(k, t)| *k == TokenKind::Ident && t == kw));
            assert!(!toks.iter().any(|(k, _)| *k == TokenKind::StrLit));
        }
    }

    #[test]
    fn raw_identifier_does_not_swallow_raw_strings() {
        // `r#"…"#` must still be a string, and `r#e` in expression
        // position must not consume a following literal.
        let toks = kinds(r###"let s = r#"raw"#; let r#e = 9;"###);
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::StrLit && t.contains("raw")));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Ident && t == "r#e"));
    }

    #[test]
    fn raw_strings_with_multi_hash_delimiters() {
        let toks = kinds(r####"let s = r##"inner "# quote"##; done"####);
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::StrLit && t.contains("inner")));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Ident && t == "done"));
        // The `"#` inside must not close the literal early.
        assert!(!toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Ident && t == "quote"));
    }

    #[test]
    fn raw_strings_treat_backslash_as_payload() {
        // In `r"a\"` the backslash is a plain character, so the literal
        // closes at the quote; the escape-honouring path would swallow the
        // terminator and desync everything after it.
        let toks = kinds("let s = r\"a\\\"; s.unwrap();");
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::StrLit && t == "r\"a\\\""));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Ident && t == "unwrap"));
        let toks = kinds("let s = br\"b\\\"; s.unwrap();");
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::StrLit && t == "br\"b\\\""));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Ident && t == "unwrap"));
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let toks = kinds("fn f<'a>(x: &'a str) -> char { 'x' }");
        assert_eq!(
            toks.iter()
                .filter(|(k, _)| *k == TokenKind::Lifetime)
                .count(),
            2
        );
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::CharLit && t == "'x'"));
    }

    #[test]
    fn escaped_char_literals() {
        for src in ["'\\n'", "'\\''", "'\\u{1F600}'", "'['"] {
            let toks = kinds(src);
            assert_eq!(toks.len(), 1, "{src}");
            assert_eq!(
                toks.first().map(|(k, _)| *k),
                Some(TokenKind::CharLit),
                "{src}"
            );
        }
    }

    #[test]
    fn nested_block_comments() {
        let toks = kinds("/* outer /* inner */ still outer */ after");
        assert_eq!(toks.len(), 2);
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Ident && t == "after"));
    }

    #[test]
    fn doc_comments_are_distinguished() {
        let toks = kinds("/// doc\n//! inner\n// plain\n//// divider");
        let ks: Vec<TokenKind> = toks.iter().map(|(k, _)| *k).collect();
        assert_eq!(
            ks,
            vec![
                TokenKind::DocComment,
                TokenKind::DocComment,
                TokenKind::LineComment,
                TokenKind::LineComment,
            ]
        );
    }

    #[test]
    fn lines_are_one_based_and_accurate() {
        let toks = lex("a\n  b\n\n    c");
        let lines: Vec<(String, u32)> = toks.into_iter().map(|t| (t.text, t.line)).collect();
        assert_eq!(
            lines,
            vec![("a".into(), 1), ("b".into(), 2), ("c".into(), 4)]
        );
    }

    #[test]
    fn byte_strings_and_raw_byte_strings() {
        let toks = kinds(r#"let a = b"magic"; let b = br"raw"; let c = b'x';"#);
        assert_eq!(
            toks.iter().filter(|(k, _)| *k == TokenKind::StrLit).count(),
            2
        );
        assert_eq!(
            toks.iter()
                .filter(|(k, _)| *k == TokenKind::CharLit)
                .count(),
            1
        );
    }

    #[test]
    fn numbers_with_suffixes_ranges_and_exponents() {
        let toks = kinds("0..10 1.5f32 1e-3 0xff_u32 1.max(2)");
        let nums: Vec<&str> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::NumLit)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(
            nums,
            vec!["0", "10", "1.5f32", "1e-3", "0xff_u32", "1", "2"]
        );
    }
}
