//! Region classification over a token stream.
//!
//! Rules must not fire inside test code, attribute syntax, or
//! `macro_rules!` bodies (where tokens are patterns, not expressions).
//! This module walks the lexed tokens once and computes, for every token,
//! which of those regions it belongs to. Doc comments and string literals
//! need no classification — the lexer already isolates them as single
//! tokens that the rules skip.

use crate::lexer::Token;

/// Per-token region flags, parallel to the token stream.
#[derive(Clone, Copy, Debug, Default)]
pub struct Region {
    /// Inside an item annotated `#[cfg(test)]` / `#[test]` (or the
    /// attribute itself).
    pub test: bool,
    /// Inside an attribute's `#[…]` brackets.
    pub attr: bool,
    /// Inside a `macro_rules! name { … }` body.
    pub macro_body: bool,
}

/// Indices of non-comment tokens, in order — the stream the rules scan.
pub fn code_indices(tokens: &[Token]) -> Vec<usize> {
    tokens
        .iter()
        .enumerate()
        .filter(|(_, t)| !t.is_comment())
        .map(|(i, _)| i)
        .collect()
}

/// Classifies every token of `tokens` (see [`Region`]).
pub fn classify(tokens: &[Token]) -> Vec<Region> {
    let mut regions = vec![Region::default(); tokens.len()];
    let code = code_indices(tokens);

    // Pass 1: attribute spans, and which of them mark test items.
    // An attribute is `#` `[` … `]` (outer) or `#` `!` `[` … `]` (inner).
    let mut test_attr_ends: Vec<usize> = Vec::new(); // code-pos after a test attr
    let mut inner_test_file = false;
    let mut ci = 0;
    while ci < code.len() {
        let Some(&ti) = code.get(ci) else { break };
        let is_hash = tokens.get(ti).is_some_and(|t| t.is_punct('#'));
        if !is_hash {
            ci += 1;
            continue;
        }
        let mut open = ci + 1;
        let inner = code
            .get(open)
            .and_then(|&i| tokens.get(i))
            .is_some_and(|t| t.is_punct('!'));
        if inner {
            open += 1;
        }
        let opens_bracket = code
            .get(open)
            .and_then(|&i| tokens.get(i))
            .is_some_and(|t| t.is_punct('['));
        if !opens_bracket {
            ci += 1;
            continue;
        }
        // Find the matching `]`, tracking bracket depth, and record
        // whether the attribute mentions `test` outside a `not(…)`.
        let mut depth = 0usize;
        let mut mentions_test = false;
        let mut mentions_not = false;
        let mut end = open;
        for (at, &i) in code.iter().enumerate().skip(open) {
            let Some(t) = tokens.get(i) else { break };
            if t.is_punct('[') {
                depth += 1;
            } else if t.is_punct(']') {
                depth -= 1;
                if depth == 0 {
                    end = at;
                    break;
                }
            } else if t.is_ident("test") {
                mentions_test = true;
            } else if t.is_ident("not") {
                mentions_not = true;
            }
            end = at;
        }
        for &i in code.get(ci..=end).into_iter().flatten() {
            if let Some(r) = regions.get_mut(i) {
                r.attr = true;
            }
        }
        if mentions_test && !mentions_not {
            if inner {
                // `#![cfg(test)]`: the whole file is a test region.
                inner_test_file = true;
            } else {
                test_attr_ends.push(end + 1);
            }
        }
        ci = end + 1;
    }

    if inner_test_file {
        for r in &mut regions {
            r.test = true;
        }
        return regions;
    }

    // Pass 2: expand each test attribute to the item it annotates — up to
    // the first `;` or the matching `}` of the first `{` at item level
    // (skipping over any further attributes and balanced `(…)` / `[…]`).
    for &start in &test_attr_ends {
        let mut paren = 0isize;
        let mut brace = 0isize;
        let mut last = start;
        for (at, &i) in code.iter().enumerate().skip(start) {
            let Some(t) = tokens.get(i) else { break };
            last = at;
            match t.text.chars().next() {
                Some('(') | Some('[') => paren += 1,
                Some(')') | Some(']') => paren -= 1,
                Some('{') if t.kind == crate::lexer::TokenKind::Punct => brace += 1,
                Some('}') if t.kind == crate::lexer::TokenKind::Punct => {
                    brace -= 1;
                    if brace == 0 {
                        break;
                    }
                }
                Some(';') if paren == 0 && brace == 0 => break,
                _ => {}
            }
        }
        for &i in code.get(start..=last).into_iter().flatten() {
            if let Some(r) = regions.get_mut(i) {
                r.test = true;
            }
        }
    }

    // Pass 3: `macro_rules! name <delim> … <matching delim>` bodies.
    let mut ci = 0;
    while ci < code.len() {
        let at_macro = code
            .get(ci)
            .and_then(|&i| tokens.get(i))
            .is_some_and(|t| t.is_ident("macro_rules"));
        if !at_macro {
            ci += 1;
            continue;
        }
        // macro_rules `!` name <open>
        let open = ci + 3;
        let opener = code
            .get(open)
            .and_then(|&i| tokens.get(i))
            .and_then(|t| t.text.chars().next());
        let (o, c) = match opener {
            Some('{') => ('{', '}'),
            Some('(') => ('(', ')'),
            Some('[') => ('[', ']'),
            _ => {
                ci += 1;
                continue;
            }
        };
        let mut depth = 0isize;
        let mut last = open;
        for (at, &i) in code.iter().enumerate().skip(open) {
            let Some(t) = tokens.get(i) else { break };
            last = at;
            if t.is_punct(o) {
                depth += 1;
            } else if t.is_punct(c) {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
        }
        for &i in code.get(ci..=last).into_iter().flatten() {
            if let Some(r) = regions.get_mut(i) {
                r.macro_body = true;
            }
        }
        ci = last + 1;
    }

    regions
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn test_flag_of(src: &str, ident: &str) -> bool {
        let tokens = lex(src);
        let regions = classify(&tokens);
        tokens
            .iter()
            .zip(regions.iter())
            .find(|(t, _)| t.is_ident(ident))
            .map(|(_, r)| r.test)
            .unwrap_or_else(|| panic!("ident {ident} not found in {src}"))
    }

    #[test]
    fn cfg_test_module_is_a_test_region() {
        let src = "fn lib() {} #[cfg(test)] mod tests { fn inner() { target(); } } fn after() {}";
        assert!(test_flag_of(src, "target"));
        assert!(!test_flag_of(src, "lib"));
        assert!(!test_flag_of(src, "after"));
    }

    #[test]
    fn test_attribute_on_fn() {
        let src = "#[test] fn t() { target(); } fn lib() {}";
        assert!(test_flag_of(src, "target"));
        assert!(!test_flag_of(src, "lib"));
    }

    #[test]
    fn cfg_not_test_is_not_a_test_region() {
        let src = "#[cfg(not(test))] fn lib() { target(); }";
        assert!(!test_flag_of(src, "target"));
    }

    #[test]
    fn stacked_attributes_are_skipped() {
        let src = "#[cfg(test)]\n#[allow(dead_code)]\nmod t { fn inner() { target(); } }";
        assert!(test_flag_of(src, "target"));
    }

    #[test]
    fn semicolon_item_ends_the_region() {
        let src = "#[cfg(test)] use helper::target; fn lib() {}";
        assert!(test_flag_of(src, "target"));
        assert!(!test_flag_of(src, "lib"));
    }

    #[test]
    fn nested_cfg_test_inside_library_mod() {
        let src = "mod outer { fn lib() {} #[cfg(test)] mod t { fn inner() { target(); } } } fn tail() {}";
        assert!(test_flag_of(src, "target"));
        assert!(!test_flag_of(src, "lib"));
        assert!(!test_flag_of(src, "tail"));
    }

    #[test]
    fn signature_brackets_do_not_end_the_scan() {
        // The `[u8; 4]` in the signature must not terminate the item scan
        // before the body's `{`.
        let src = "#[cfg(test)] fn t(x: [u8; 4]) { target(); } fn lib() {}";
        assert!(test_flag_of(src, "target"));
        assert!(!test_flag_of(src, "lib"));
    }

    #[test]
    fn macro_rules_bodies_are_flagged() {
        let src = "macro_rules! m { () => { target!() }; } fn lib() {}";
        let tokens = lex(src);
        let regions = classify(&tokens);
        let idx = tokens
            .iter()
            .position(|t| t.is_ident("target"))
            .expect("target present");
        assert!(regions.get(idx).is_some_and(|r| r.macro_body));
        let lib = tokens
            .iter()
            .position(|t| t.is_ident("lib"))
            .expect("lib present");
        assert!(!regions.get(lib).is_some_and(|r| r.macro_body));
    }

    #[test]
    fn attribute_spans_are_marked() {
        let src = "#[derive(Clone)] struct S;";
        let tokens = lex(src);
        let regions = classify(&tokens);
        let idx = tokens
            .iter()
            .position(|t| t.is_ident("Clone"))
            .expect("Clone present");
        assert!(regions.get(idx).is_some_and(|r| r.attr));
    }
}
