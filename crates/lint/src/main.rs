//! CLI for the workspace invariant auditor.
//!
//! ```text
//! eff2-lint [--deny] [--json] [--rules] [--root <path>] [--changed-since <git-ref>]
//! ```
//!
//! * `--deny`  — exit non-zero if any finding remains (CI gate mode).
//! * `--json`  — emit findings as a JSON array instead of text lines.
//! * `--rules` — list the known rule ids and exit.
//! * `--root`  — workspace root (default: walk up from the current
//!   directory to the first `Cargo.toml` containing `[workspace]`).
//! * `--changed-since <git-ref>` — restrict *reporting* to findings in
//!   files changed since `<git-ref>`. The call graph is still built over
//!   the whole workspace (a changed helper can taint an unchanged entry
//!   and vice versa — an entry finding is reported if the entry's file
//!   changed), only the report is filtered.
//!
//! Every run ends with a timing line on stderr —
//! `lint: N files, M symbols, K ms` — so lint cost is tracked as the
//! workspace grows (check.sh asserts its presence).

use std::path::PathBuf;
use std::process::ExitCode;

fn find_workspace_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

/// Workspace-relative paths of files changed since `git_ref`, per
/// `git diff --name-only` (plus untracked files, which `diff` omits).
fn changed_files(root: &std::path::Path, git_ref: &str) -> std::io::Result<Vec<String>> {
    let mut files = Vec::new();
    let invocations = vec![
        vec!["diff", "--name-only", git_ref],
        vec!["ls-files", "--others", "--exclude-standard"],
    ];
    for extra in &invocations {
        let out = std::process::Command::new("git")
            .args(extra)
            .current_dir(root)
            .output()
            .map_err(|e| std::io::Error::other(format!("failed to run git: {e}")))?;
        if !out.status.success() {
            return Err(std::io::Error::other(format!(
                "git {} failed: {}",
                extra.join(" "),
                String::from_utf8_lossy(&out.stderr).trim()
            )));
        }
        files.extend(
            String::from_utf8_lossy(&out.stdout)
                .lines()
                .map(|l| l.trim().to_string())
                .filter(|l| !l.is_empty()),
        );
    }
    Ok(files)
}

fn usage() {
    eprintln!(
        "usage: eff2-lint [--deny] [--json] [--rules] [--root <path>] [--changed-since <git-ref>]"
    );
}

fn main() -> ExitCode {
    let mut deny = false;
    let mut json = false;
    let mut root: Option<PathBuf> = None;
    let mut since: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--deny" => deny = true,
            "--json" => json = true,
            "--rules" => {
                for rule in eff2_lint::RULES {
                    println!("{:<20} {}", rule.id, rule.summary);
                }
                return ExitCode::SUCCESS;
            }
            "--root" => root = args.next().map(PathBuf::from),
            "--changed-since" => {
                since = args.next();
                if since.is_none() {
                    eprintln!("eff2-lint: --changed-since needs a git ref");
                    usage();
                    return ExitCode::from(2);
                }
            }
            other => {
                eprintln!("eff2-lint: unknown argument `{other}`");
                usage();
                return ExitCode::from(2);
            }
        }
    }
    let Some(root) = root.or_else(find_workspace_root) else {
        eprintln!("eff2-lint: no workspace root found (try --root <path>)");
        return ExitCode::from(2);
    };

    // lint:allow(det.wall_clock): measuring the linter's own cost, not producing trace output
    let started = std::time::Instant::now();
    let report = match eff2_lint::lint_workspace_report(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!(
                "eff2-lint: failed to read workspace at {}: {e}",
                root.display()
            );
            return ExitCode::from(2);
        }
    };
    let elapsed_ms = started.elapsed().as_millis();

    let mut findings = report.findings;
    if let Some(git_ref) = &since {
        let changed = match changed_files(&root, git_ref) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("eff2-lint: {e}");
                return ExitCode::from(2);
            }
        };
        findings.retain(|f| changed.iter().any(|c| c == &f.file));
    }

    if json {
        println!("{}", eff2_lint::findings_to_json(&findings));
    } else {
        for f in &findings {
            println!("{}:{}: [{}] {}", f.file, f.line, f.rule, f.message);
        }
        if findings.is_empty() {
            println!("eff2-lint: workspace clean");
        } else {
            println!("eff2-lint: {} finding(s)", findings.len());
        }
    }
    // Stderr so `--json` stdout stays machine-parseable.
    eprintln!(
        "lint: {} files, {} symbols, {} ms",
        report.files, report.symbols, elapsed_ms
    );
    if deny && !findings.is_empty() {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
