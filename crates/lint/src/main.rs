//! CLI for the workspace invariant auditor.
//!
//! ```text
//! eff2-lint [--deny] [--json] [--rules] [--root <path>]
//! ```
//!
//! * `--deny`  — exit non-zero if any finding remains (CI gate mode).
//! * `--json`  — emit findings as a JSON array instead of text lines.
//! * `--rules` — list the known rule ids and exit.
//! * `--root`  — workspace root (default: walk up from the current
//!   directory to the first `Cargo.toml` containing `[workspace]`).

use std::path::PathBuf;
use std::process::ExitCode;

fn find_workspace_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn main() -> ExitCode {
    let mut deny = false;
    let mut json = false;
    let mut root: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--deny" => deny = true,
            "--json" => json = true,
            "--rules" => {
                for rule in eff2_lint::RULES {
                    println!("{:<20} {}", rule.id, rule.summary);
                }
                return ExitCode::SUCCESS;
            }
            "--root" => root = args.next().map(PathBuf::from),
            other => {
                eprintln!("eff2-lint: unknown argument `{other}`");
                eprintln!("usage: eff2-lint [--deny] [--json] [--rules] [--root <path>]");
                return ExitCode::from(2);
            }
        }
    }
    let Some(root) = root.or_else(find_workspace_root) else {
        eprintln!("eff2-lint: no workspace root found (try --root <path>)");
        return ExitCode::from(2);
    };

    let findings = match eff2_lint::lint_workspace(&root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!(
                "eff2-lint: failed to read workspace at {}: {e}",
                root.display()
            );
            return ExitCode::from(2);
        }
    };

    if json {
        println!("{}", eff2_lint::findings_to_json(&findings));
    } else {
        for f in &findings {
            println!("{}:{}: [{}] {}", f.file, f.line, f.rule, f.message);
        }
        if findings.is_empty() {
            println!("eff2-lint: workspace clean");
        } else {
            println!("eff2-lint: {} finding(s)", findings.len());
        }
    }
    if deny && !findings.is_empty() {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
