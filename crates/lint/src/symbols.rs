//! Symbol pass: extracts every `fn` item from a file's token stream.
//!
//! Each symbol records its crate, definition site, visibility, the impl
//! context it sits in (`impl Type`, `impl Trait for Type`, `trait Trait`),
//! the *facts* found in its body (panic sites, nondeterminism sources,
//! chunk consumption, clock charges — detected by the exact same
//! [`crate::rules::View`] detectors the line rules use), and the call
//! sites its body contains. [`crate::graph`] resolves the calls into a
//! workspace call graph and [`crate::taint`] propagates the facts.
//!
//! The parser is token-level and forgiving: it only needs to find item
//! boundaries and brace-matched bodies, which is robust for code that
//! compiles. Test regions, attributes and `macro_rules!` bodies are
//! skipped exactly as the line rules skip them.

use crate::lexer::{is_keyword, Token, TokenKind};
use crate::regions::Region;
use crate::rules::{thread_spawn_exempt, wall_clock_exempt, View};

/// Index into the workspace-wide symbol table.
pub(crate) type SymbolId = usize;

/// What a call site syntactically targets, before resolution.
#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) enum CallTarget {
    /// `foo(…)` — an unqualified call.
    Plain(String),
    /// `a::b::foo(…)` — a path-qualified call; the fn name is last.
    Path(Vec<String>),
    /// `.foo(…)` — a method call; `on_self` when the receiver is
    /// literally `self`.
    Method { name: String, on_self: bool },
}

/// One call site inside a symbol's body.
#[derive(Clone, Debug)]
pub(crate) struct Call {
    /// The syntactic target.
    pub target: CallTarget,
    /// 1-based line of the call.
    pub line: u32,
}

/// The kinds of facts the taint engine propagates.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub(crate) enum FactKind {
    /// `HashMap`/`HashSet` use (nondeterministic iteration order).
    HashContainer,
    /// `Instant::now` / `SystemTime` (host-clock dependence).
    WallClock,
    /// Float `.sum()`/`.product()` (order-dependent accumulation).
    FloatAccum,
    /// `thread::spawn` (unmanaged concurrency).
    ThreadSpawn,
    /// `.unwrap()`/`.expect()`.
    PanicUnwrap,
    /// `panic!`/`unreachable!`/`todo!`/`unimplemented!`.
    PanicMacro,
    /// Direct slice/array indexing.
    PanicIndex,
    /// A chunk-consuming call (`.next_chunk(`/`.fetch_through(`).
    ConsumeChunk,
    /// A modelled-time charge on a pipeline/virtual clock.
    ChargeClock,
}

impl FactKind {
    /// Whether this is a nondeterminism source (feeds `det.taint`).
    pub(crate) fn is_det(self) -> bool {
        matches!(
            self,
            FactKind::HashContainer
                | FactKind::WallClock
                | FactKind::FloatAccum
                | FactKind::ThreadSpawn
        )
    }

    /// Whether this is a panic site (feeds `panic.reach`).
    pub(crate) fn is_panic(self) -> bool {
        matches!(
            self,
            FactKind::PanicUnwrap | FactKind::PanicMacro | FactKind::PanicIndex
        )
    }

    /// The line rule that flags the same site, if any. A waiver citing
    /// either this rule or the propagating rule at the source line cuts
    /// the fact out of taint propagation.
    pub(crate) fn line_rule(self) -> Option<&'static str> {
        match self {
            FactKind::HashContainer => Some("det.hash_container"),
            FactKind::WallClock => Some("det.wall_clock"),
            FactKind::FloatAccum => Some("det.float_accum"),
            FactKind::ThreadSpawn => Some("det.thread_spawn"),
            FactKind::PanicUnwrap => Some("panic.unwrap"),
            FactKind::PanicMacro => Some("panic.macro"),
            FactKind::PanicIndex => Some("panic.index"),
            FactKind::ConsumeChunk | FactKind::ChargeClock => None,
        }
    }

    /// The interprocedural rule that propagates this fact.
    pub(crate) fn taint_rule(self) -> &'static str {
        if self.is_panic() {
            "panic.reach"
        } else if self.is_det() {
            "det.taint"
        } else {
            "clock.discipline"
        }
    }
}

/// One fact found in a symbol's body.
#[derive(Clone, Debug)]
pub(crate) struct Fact {
    /// What kind of site this is.
    pub kind: FactKind,
    /// 1-based line of the site.
    pub line: u32,
    /// Short label for chain messages (`HashMap`, `.unwrap()`, …).
    pub what: String,
}

/// One extracted `fn` item.
#[derive(Clone, Debug)]
pub(crate) struct Symbol {
    /// Crate directory name (`core`, `serve`, …).
    pub crate_name: String,
    /// File path relative to the workspace root.
    pub file: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// The function's bare name.
    pub name: String,
    /// `impl Type` / `impl Trait for Type` — the type name, if any.
    pub self_type: Option<String>,
    /// `impl Trait for Type` / `trait Trait` — the trait name, if any.
    pub trait_name: Option<String>,
    /// `pub` without a restriction (`pub(crate)` counts as private).
    pub is_pub: bool,
    /// Whether the fn sits inside an impl or trait block.
    pub is_method: bool,
    /// Whether the item has a `{ … }` body (trait signatures do not).
    pub has_body: bool,
    /// Call sites in the body.
    pub calls: Vec<Call>,
    /// Facts in the body.
    pub facts: Vec<Fact>,
}

impl Symbol {
    /// Display name for call chains: `crate::Type::fn` or `crate::fn`.
    pub(crate) fn display_name(&self) -> String {
        match &self.self_type {
            Some(t) => format!("{}::{}::{}", self.crate_name, t, self.name),
            None => match &self.trait_name {
                Some(t) => format!("{}::{}::{}", self.crate_name, t, self.name),
                None => format!("{}::{}", self.crate_name, self.name),
            },
        }
    }
}

/// Impl/trait context while walking nested items.
#[derive(Clone, Default)]
struct Ctx {
    self_type: Option<String>,
    trait_name: Option<String>,
}

struct Extractor<'a> {
    crate_name: &'a str,
    rel_path: &'a str,
    view: View<'a>,
    regions: &'a [Region],
    symbols: Vec<Symbol>,
}

/// Extracts every `fn` item from one file.
pub(crate) fn extract(
    crate_name: &str,
    rel_path: &str,
    tokens: &[Token],
    regions: &[Region],
    code: &[usize],
) -> Vec<Symbol> {
    let mut ex = Extractor {
        crate_name,
        rel_path,
        view: View::new(tokens, code),
        regions,
        symbols: Vec::new(),
    };
    ex.items(0, code.len(), &Ctx::default());
    ex.symbols
}

impl Extractor<'_> {
    fn tok(&self, at: usize) -> Option<&Token> {
        self.view.tok(at)
    }

    /// Whether the token at code position `at` is in a skipped region.
    fn skipped(&self, at: usize) -> bool {
        self.view
            .raw_index(at)
            .and_then(|i| self.regions.get(i))
            .is_none_or(|r| r.test || r.attr || r.macro_body)
    }

    fn is_ident(&self, at: usize, s: &str) -> bool {
        self.tok(at).is_some_and(|t| t.is_ident(s))
    }

    fn is_punct(&self, at: usize, c: char) -> bool {
        self.tok(at).is_some_and(|t| t.is_punct(c))
    }

    /// Walks items in `[at, end)`, extracting fns and recursing into
    /// `impl` / `trait` / `mod` blocks. Non-item tokens are skipped.
    fn items(&mut self, mut at: usize, end: usize, ctx: &Ctx) {
        while at < end {
            if self.skipped(at) {
                at += 1;
                continue;
            }
            if self.is_ident(at, "impl") {
                at = self.impl_block(at, end);
            } else if self.is_ident(at, "trait")
                && self.tok(at + 1).is_some_and(|t| t.kind == TokenKind::Ident)
            {
                at = self.trait_block(at, end);
            } else if self.is_ident(at, "mod") && self.is_punct(at + 2, '{') {
                let close = self.matching_brace(at + 2, end);
                self.items(at + 3, close, ctx);
                at = close + 1;
            } else if self.is_ident(at, "fn")
                && self.tok(at + 1).is_some_and(|t| t.kind == TokenKind::Ident)
            {
                at = self.fn_item(at, end, ctx);
            } else {
                at += 1;
            }
        }
    }

    /// Finds the code position of the `}` matching the `{` at `open`
    /// (clamped to `end` when unterminated).
    fn matching_brace(&self, open: usize, end: usize) -> usize {
        let mut depth = 0isize;
        let mut at = open;
        while at < end {
            if self.is_punct(at, '{') {
                depth += 1;
            } else if self.is_punct(at, '}') {
                depth -= 1;
                if depth == 0 {
                    return at;
                }
            }
            at += 1;
        }
        end.saturating_sub(1)
    }

    /// Skips a balanced `<…>` starting at `at` (which holds `<`),
    /// guarding against the `>` of `->`. Returns the position after the
    /// closing `>`.
    fn skip_generics(&self, mut at: usize, end: usize) -> usize {
        let mut depth = 0isize;
        let mut prev_dash = false;
        while at < end {
            if self.is_punct(at, '<') {
                depth += 1;
            } else if self.is_punct(at, '>') && !prev_dash {
                depth -= 1;
                if depth == 0 {
                    return at + 1;
                }
            }
            prev_dash = self.is_punct(at, '-');
            at += 1;
        }
        end
    }

    /// Parses the header of `impl …` at `at` and recurses into its block.
    /// Returns the position after the block.
    fn impl_block(&mut self, at: usize, end: usize) -> usize {
        let mut p = at + 1;
        if self.is_punct(p, '<') {
            p = self.skip_generics(p, end);
        }
        // Collect the path up to `for` / `{` / `where`; if a `for` shows
        // up, the first path was the trait and the second is the type.
        let mut first = self.header_type(&mut p, end);
        let mut trait_name = None;
        if self.is_ident(p, "for") {
            p += 1;
            trait_name = first.take();
            first = self.header_type(&mut p, end);
        }
        // Skip the where clause, if any.
        while p < end && !self.is_punct(p, '{') {
            p += 1;
        }
        if p >= end {
            return end;
        }
        let close = self.matching_brace(p, end);
        let ctx = Ctx {
            self_type: first,
            trait_name,
        };
        self.items(p + 1, close, &ctx);
        close + 1
    }

    /// Parses one type path in an impl header, returning its last
    /// identifier segment (the type name) and advancing past it.
    fn header_type(&mut self, p: &mut usize, end: usize) -> Option<String> {
        let mut last = None;
        // `&`, `dyn`, lifetimes before the path.
        while *p < end {
            if self.is_punct(*p, '&')
                || self.is_ident(*p, "dyn")
                || self.tok(*p).is_some_and(|t| t.kind == TokenKind::Lifetime)
                || self.is_ident(*p, "mut")
            {
                *p += 1;
            } else {
                break;
            }
        }
        while *p < end {
            let Some(t) = self.tok(*p) else { break };
            if t.kind == TokenKind::Ident && !is_keyword(&t.text) {
                last = Some(t.text.clone());
                *p += 1;
                if self.is_punct(*p, '<') {
                    *p = self.skip_generics(*p, end);
                }
                if self.is_punct(*p, ':') && self.is_punct(*p + 1, ':') {
                    *p += 2;
                    continue;
                }
                break;
            }
            break;
        }
        last
    }

    /// Parses `trait Name … { … }` at `at`; trait-default methods become
    /// symbols with `trait_name` set and no `self_type`. Returns the
    /// position after the block.
    fn trait_block(&mut self, at: usize, end: usize) -> usize {
        let name = self.tok(at + 1).map(|t| t.text.clone());
        let mut p = at + 2;
        while p < end && !self.is_punct(p, '{') {
            // A supertrait list or where clause; `;` would be odd here
            // but bail to stay safe.
            if self.is_punct(p, ';') {
                return p + 1;
            }
            p += 1;
        }
        if p >= end {
            return end;
        }
        let close = self.matching_brace(p, end);
        let ctx = Ctx {
            self_type: None,
            trait_name: name,
        };
        self.items(p + 1, close, &ctx);
        close + 1
    }

    /// Whether the `fn` at `at` is `pub` (unrestricted). Scans backwards
    /// over modifiers (`unsafe`, `const`, `async`, `extern "C"`).
    fn fn_is_pub(&self, at: usize) -> bool {
        let mut p = at;
        while p > 0 {
            p -= 1;
            let Some(t) = self.tok(p) else { return false };
            if t.kind == TokenKind::StrLit
                || t.is_ident("unsafe")
                || t.is_ident("const")
                || t.is_ident("async")
                || t.is_ident("extern")
            {
                continue;
            }
            if t.is_punct(')') {
                // `pub(crate)` / `pub(super)`: restricted, not public.
                return false;
            }
            return t.is_ident("pub");
        }
        false
    }

    /// Parses the `fn` item at `at` (which holds the `fn` keyword) and
    /// appends a symbol. Returns the position after the item.
    fn fn_item(&mut self, at: usize, end: usize, ctx: &Ctx) -> usize {
        let line = self.tok(at).map_or(0, |t| t.line);
        let name = self
            .tok(at + 1)
            .map_or_else(String::new, |t| t.text.clone());
        let is_pub = self.fn_is_pub(at);
        let mut p = at + 2;
        if self.is_punct(p, '<') {
            p = self.skip_generics(p, end);
        }
        // Parameter list.
        if self.is_punct(p, '(') {
            let mut depth = 0isize;
            while p < end {
                if self.is_punct(p, '(') {
                    depth += 1;
                } else if self.is_punct(p, ')') {
                    depth -= 1;
                    if depth == 0 {
                        p += 1;
                        break;
                    }
                }
                p += 1;
            }
        }
        // Return type / where clause, then `{` body or `;` declaration.
        let mut prev_dash = false;
        let mut angle = 0isize;
        while p < end {
            if self.is_punct(p, '<') {
                angle += 1;
            } else if self.is_punct(p, '>') && !prev_dash {
                angle -= 1;
            } else if angle <= 0 && self.is_punct(p, ';') {
                // Declaration only (trait method signature).
                self.symbols.push(Symbol {
                    crate_name: self.crate_name.to_string(),
                    file: self.rel_path.to_string(),
                    line,
                    name,
                    self_type: ctx.self_type.clone(),
                    trait_name: ctx.trait_name.clone(),
                    is_pub,
                    is_method: ctx.self_type.is_some() || ctx.trait_name.is_some(),
                    has_body: false,
                    calls: Vec::new(),
                    facts: Vec::new(),
                });
                return p + 1;
            } else if angle <= 0 && self.is_punct(p, '{') {
                break;
            }
            prev_dash = self.is_punct(p, '-');
            p += 1;
        }
        if p >= end {
            return end;
        }
        let close = self.matching_brace(p, end);
        let mut sym = Symbol {
            crate_name: self.crate_name.to_string(),
            file: self.rel_path.to_string(),
            line,
            name,
            self_type: ctx.self_type.clone(),
            trait_name: ctx.trait_name.clone(),
            is_pub,
            is_method: ctx.self_type.is_some() || ctx.trait_name.is_some(),
            has_body: true,
            calls: Vec::new(),
            facts: Vec::new(),
        };
        self.body_scan(p + 1, close, &mut sym, ctx);
        self.symbols.push(sym);
        close + 1
    }

    /// Scans a fn body for facts and call sites; nested items become
    /// their own symbols and are excluded from the parent's scan.
    fn body_scan(&mut self, mut at: usize, end: usize, sym: &mut Symbol, ctx: &Ctx) {
        while at < end {
            if self.skipped(at) {
                at += 1;
                continue;
            }
            // Nested items get their own symbols.
            if self.is_ident(at, "fn")
                && self.tok(at + 1).is_some_and(|t| t.kind == TokenKind::Ident)
            {
                at = self.fn_item(at, end, &Ctx::default());
                continue;
            }
            if self.is_ident(at, "impl") && !self.is_punct(at.wrapping_sub(1), ':') {
                // `impl Trait` in type position (`-> impl Iterator`) has no
                // block; impl_block bails to `end` only when no `{` exists,
                // which would swallow the rest of the body — so only treat
                // it as an item when a `{` opens before the body ends.
                // The heuristic: item-position `impl` directly follows `;`,
                // `{`, `}` or starts the body.
                let item_pos = at == 0
                    || self
                        .tok(at - 1)
                        .is_some_and(|t| matches!(t.text.chars().next(), Some(';' | '{' | '}')));
                if item_pos {
                    at = self.impl_block(at, end);
                    continue;
                }
            }
            self.collect_fact(at, sym);
            self.collect_call(at, sym, ctx);
            at += 1;
        }
    }

    /// Records a fact at `at`, applying the same ownership exemptions as
    /// the line rules (bench/diskmodel wall clock, parallel threads).
    fn collect_fact(&self, at: usize, sym: &mut Symbol) {
        let line = self.tok(at).map_or(0, |t| t.line);
        let mut push = |kind: FactKind, what: String| {
            sym.facts.push(Fact { kind, line, what });
        };
        if let Some(name) = self.view.hash_container_site(at) {
            push(FactKind::HashContainer, name.to_string());
        }
        if !wall_clock_exempt(self.crate_name, self.rel_path) {
            if let Some(label) = self.view.wall_clock_site(at) {
                push(FactKind::WallClock, label.to_string());
            }
        }
        if let Some((name, _)) = self.view.float_accum_site(at) {
            push(FactKind::FloatAccum, format!("float .{name}()"));
        }
        if !thread_spawn_exempt(self.crate_name) && self.view.thread_spawn_site(at) {
            push(FactKind::ThreadSpawn, "thread::spawn".to_string());
        }
        if let Some(name) = self.view.unwrap_site(at) {
            push(FactKind::PanicUnwrap, format!(".{name}()"));
        }
        if let Some(name) = self.view.panic_macro_site(at) {
            push(FactKind::PanicMacro, format!("{name}!"));
        }
        if self.view.index_site(at) {
            push(FactKind::PanicIndex, "direct indexing".to_string());
        }
        if let Some(name) = self.view.chunk_consume_site(at) {
            push(FactKind::ConsumeChunk, format!(".{name}()"));
        }
        if let Some(name) = self.view.clock_charge_site(at) {
            push(FactKind::ChargeClock, format!(".{name}()"));
        }
    }

    /// Records a call site at `at`: `name(…)`, `a::b::name(…)` or
    /// `.name(…)`, each with an optional `::<…>` turbofish.
    fn collect_call(&self, at: usize, sym: &mut Symbol, _ctx: &Ctx) {
        let Some(t) = self.tok(at) else { return };
        if t.kind != TokenKind::Ident || is_keyword(&t.text) {
            return;
        }
        // The call's argument list must open right after the name or
        // after a turbofish.
        let mut after = at + 1;
        if self.is_punct(after, ':')
            && self.is_punct(after + 1, ':')
            && self.is_punct(after + 2, '<')
        {
            after = self.skip_generics(after + 2, self.view.len());
        }
        if !self.is_punct(after, '(') {
            return;
        }
        let line = t.line;
        let name = t.text.clone();
        // `.name(` — a method call.
        if at > 0 && self.is_punct(at - 1, '.') {
            let on_self = at >= 2
                && self.is_ident(at - 2, "self")
                && !(at >= 3 && self.is_punct(at - 3, '.'));
            sym.calls.push(Call {
                target: CallTarget::Method { name, on_self },
                line,
            });
            return;
        }
        // `seg::…::name(` — walk the path backwards.
        if at >= 2 && self.is_punct(at - 1, ':') && self.is_punct(at - 2, ':') {
            let mut segs = vec![name];
            let mut p = at;
            while p >= 3 && self.is_punct(p - 1, ':') && self.is_punct(p - 2, ':') {
                let Some(prev) = self.tok(p - 3) else { break };
                if prev.kind == TokenKind::Ident {
                    segs.push(prev.text.clone());
                    p -= 3;
                } else {
                    // `<T as Trait>::f(…)` and friends: keep what we have.
                    break;
                }
            }
            segs.reverse();
            sym.calls.push(Call {
                target: CallTarget::Path(segs),
                line,
            });
            return;
        }
        // `name(` — a plain call (macros have `!` before `(`, so they
        // never reach here).
        sym.calls.push(Call {
            target: CallTarget::Plain(name),
            line,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::regions::{classify, code_indices};

    fn symbols_of(crate_name: &str, src: &str) -> Vec<Symbol> {
        let tokens = lex(src);
        let regions = classify(&tokens);
        let code = code_indices(&tokens);
        extract(crate_name, "crates/x/src/lib.rs", &tokens, &regions, &code)
    }

    #[test]
    fn extracts_free_fns_with_visibility() {
        let syms = symbols_of(
            "core",
            "pub fn api() {}\nfn helper() {}\npub(crate) fn semi() {}\n",
        );
        let names: Vec<(&str, bool)> = syms.iter().map(|s| (s.name.as_str(), s.is_pub)).collect();
        assert_eq!(
            names,
            vec![("api", true), ("helper", false), ("semi", false)]
        );
    }

    #[test]
    fn impl_context_and_trait_impls() {
        let src = "struct S;\nimpl S { pub fn new() -> S { S } }\nimpl Clone for S { fn clone(&self) -> S { S::new() } }\n";
        let syms = symbols_of("core", src);
        let new = syms.iter().find(|s| s.name == "new").expect("new");
        assert_eq!(new.self_type.as_deref(), Some("S"));
        assert_eq!(new.trait_name, None);
        assert!(new.is_method);
        let clone = syms.iter().find(|s| s.name == "clone").expect("clone");
        assert_eq!(clone.self_type.as_deref(), Some("S"));
        assert_eq!(clone.trait_name.as_deref(), Some("Clone"));
        assert_eq!(
            clone.calls.first().map(|c| &c.target),
            Some(&CallTarget::Path(vec!["S".into(), "new".into()]))
        );
    }

    #[test]
    fn body_facts_and_calls() {
        let src = "pub fn f(m: &std::collections::HashMap<u8, u8>) {\n    helper();\n    self_less();\n}\nfn helper() {}\n";
        let syms = symbols_of("core", src);
        let f = syms.iter().find(|s| s.name == "f").expect("f");
        // The HashMap in the signature is not in the body; no facts.
        assert!(f.facts.is_empty());
        assert_eq!(f.calls.len(), 2);
    }

    #[test]
    fn facts_detected_in_bodies() {
        let src = "pub fn f() {\n    let m = HashMap::new();\n    let x: Option<u8> = None;\n    let _ = x.unwrap();\n}\n";
        let syms = symbols_of("srtree", src);
        let f = syms.iter().find(|s| s.name == "f").expect("f");
        let kinds: Vec<FactKind> = f.facts.iter().map(|x| x.kind).collect();
        assert!(kinds.contains(&FactKind::HashContainer));
        assert!(kinds.contains(&FactKind::PanicUnwrap));
    }

    #[test]
    fn nested_fns_do_not_leak_into_parent() {
        let src = "pub fn outer() {\n    fn inner() { danger.unwrap(); }\n    inner();\n}\n";
        let syms = symbols_of("core", src);
        let outer = syms.iter().find(|s| s.name == "outer").expect("outer");
        assert!(outer.facts.is_empty());
        assert_eq!(
            outer.calls.first().map(|c| &c.target),
            Some(&CallTarget::Plain("inner".into()))
        );
        let inner = syms.iter().find(|s| s.name == "inner").expect("inner");
        assert_eq!(inner.facts.len(), 1);
    }

    #[test]
    fn test_regions_produce_no_symbols() {
        let src = "#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { x.unwrap(); }\n}\npub fn live() {}\n";
        let syms = symbols_of("core", src);
        assert_eq!(syms.len(), 1);
        assert_eq!(syms.first().map(|s| s.name.as_str()), Some("live"));
    }

    #[test]
    fn method_calls_record_self_receiver() {
        let src = "struct S;\nimpl S {\n    fn a(&self) { self.b(); other.b(); }\n    fn b(&self) {}\n}\n";
        let syms = symbols_of("core", src);
        let a = syms.iter().find(|s| s.name == "a").expect("a");
        let targets: Vec<&CallTarget> = a.calls.iter().map(|c| &c.target).collect();
        assert_eq!(
            targets,
            vec![
                &CallTarget::Method {
                    name: "b".into(),
                    on_self: true
                },
                &CallTarget::Method {
                    name: "b".into(),
                    on_self: false
                },
            ]
        );
    }

    #[test]
    fn trait_signatures_have_no_body() {
        let src =
            "pub trait T {\n    fn sig(&self) -> u8;\n    fn dflt(&self) -> u8 { self.sig() }\n}\n";
        let syms = symbols_of("storage", src);
        let sig = syms.iter().find(|s| s.name == "sig").expect("sig");
        assert!(!sig.has_body);
        assert_eq!(sig.trait_name.as_deref(), Some("T"));
        let dflt = syms.iter().find(|s| s.name == "dflt").expect("dflt");
        assert!(dflt.has_body);
        assert_eq!(dflt.calls.len(), 1);
    }

    #[test]
    fn generic_fn_headers_parse() {
        let src = "pub fn f<F: Fn(u8) -> u8>(g: F) -> Vec<u8> where F: Copy { g(1); Vec::new() }\n";
        let syms = symbols_of("core", src);
        assert_eq!(syms.len(), 1);
        let f = syms.first().expect("f");
        assert_eq!(f.name, "f");
        assert!(f.has_body);
        // `g(1)` is a plain call; `Vec::new()` is a path call.
        assert_eq!(f.calls.len(), 2);
    }

    #[test]
    fn turbofish_calls_are_calls() {
        let src = "pub fn f() { helper::<u8>(); }\nfn helper<T>() {}\n";
        let syms = symbols_of("core", src);
        let f = syms.iter().find(|s| s.name == "f").expect("f");
        assert_eq!(
            f.calls.first().map(|c| &c.target),
            Some(&CallTarget::Plain("helper".into()))
        );
    }

    #[test]
    fn chunk_and_clock_facts() {
        let src = "pub fn step(s: &mut St) {\n    let c = s.stream.next_chunk();\n    s.clock.chunk_overlapped(1, 2);\n}\n";
        let syms = symbols_of("serve", src);
        let f = syms.iter().find(|s| s.name == "step").expect("step");
        let kinds: Vec<FactKind> = f.facts.iter().map(|x| x.kind).collect();
        assert!(kinds.contains(&FactKind::ConsumeChunk));
        assert!(kinds.contains(&FactKind::ChargeClock));
    }
}
