//! The lint driver: file walking, waiver handling, finding suppression.
//!
//! ## Waiver grammar
//!
//! ```text
//! // lint:allow(<rule.id>): <non-empty reason>
//! // lint:allow-file(<rule.id>): <non-empty reason>
//! ```
//!
//! A line waiver suppresses findings of `<rule.id>` on its own line and on
//! the line directly below (so it works both as a trailing comment and as
//! a comment above the offending line). A file waiver suppresses the rule
//! for the whole file. Both forms **require** a reason after the colon;
//! a missing reason, an unknown rule id, or a waiver that suppresses
//! nothing are themselves findings (`hyg.waiver`) — waivers must stay
//! load-bearing and auditable.

use crate::lexer::lex;
use crate::regions::{classify, code_indices};
use crate::rules::{apply, is_rule, Finding};
use std::path::{Path, PathBuf};

#[derive(Debug)]
struct Waiver {
    rule: String,
    line: u32,
    file_scope: bool,
    used: bool,
}

/// Parses every waiver out of the comment tokens; malformed waivers are
/// returned as `hyg.waiver` findings instead.
fn parse_waivers(rel_path: &str, tokens: &[crate::lexer::Token]) -> (Vec<Waiver>, Vec<Finding>) {
    let mut waivers = Vec::new();
    let mut findings = Vec::new();
    // Only plain comments can carry waivers: doc comments are rendered API
    // documentation (and this crate's own docs quote the grammar).
    for t in tokens.iter().filter(|t| {
        matches!(
            t.kind,
            crate::lexer::TokenKind::LineComment | crate::lexer::TokenKind::BlockComment
        )
    }) {
        let mut rest = t.text.as_str();
        // A comment may hold several waivers (rare but legal).
        while let Some(at) = rest.find("lint:allow") {
            let Some(tail) = rest.get(at + "lint:allow".len()..) else {
                break;
            };
            rest = tail;
            let file_scope = rest.starts_with("-file");
            let body = rest.strip_prefix("-file").unwrap_or(rest);
            let mut bad = |message: String| {
                findings.push(Finding {
                    rule: "hyg.waiver",
                    file: rel_path.to_string(),
                    line: t.line,
                    message,
                });
            };
            let Some(args) = body.strip_prefix('(') else {
                bad("malformed waiver: expected `lint:allow(<rule>): <reason>`".to_string());
                continue;
            };
            let Some(close) = args.find(')') else {
                bad("malformed waiver: unclosed `(`".to_string());
                continue;
            };
            let rule = args.get(..close).unwrap_or("").trim().to_string();
            if !is_rule(&rule) {
                bad(format!("waiver cites unknown rule `{rule}`"));
                continue;
            }
            let after = args.get(close + 1..).unwrap_or("");
            let reason = match after.trim_start().strip_prefix(':') {
                Some(r) => r.trim().trim_end_matches("*/").trim(),
                None => {
                    bad(format!("waiver for `{rule}` is missing its `: <reason>`"));
                    continue;
                }
            };
            if reason.is_empty() {
                bad(format!("waiver for `{rule}` has an empty reason"));
                continue;
            }
            waivers.push(Waiver {
                rule,
                line: t.line,
                file_scope,
                used: false,
            });
        }
    }
    (waivers, findings)
}

/// Lints a single file's source text.
///
/// `crate_name` selects crate-scoped rules (e.g. determinism applies to
/// `core`/`storage`/`metrics`/`eval`); `rel_path` is used verbatim in
/// findings and for file-scoped rule exemptions.
pub fn lint_source(crate_name: &str, rel_path: &str, source: &str) -> Vec<Finding> {
    let tokens = lex(source);
    let regions = classify(&tokens);
    let code = code_indices(&tokens);
    let raw = apply(crate_name, rel_path, &tokens, &regions, &code);
    let (mut waivers, mut findings) = parse_waivers(rel_path, &tokens);

    for f in raw {
        let waived = waivers.iter_mut().find(|w| {
            w.rule == f.rule && (w.file_scope || f.line == w.line || f.line == w.line + 1)
        });
        match waived {
            Some(w) => w.used = true,
            None => findings.push(f),
        }
    }
    for w in waivers.iter().filter(|w| !w.used) {
        findings.push(Finding {
            rule: "hyg.waiver",
            file: rel_path.to_string(),
            line: w.line,
            message: format!(
                "waiver for `{}` suppresses nothing — remove it or fix its placement",
                w.rule
            ),
        });
    }
    findings.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    findings
}

/// Recursively collects `.rs` files under `dir`, sorted for determinism.
fn rust_files(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
        .map(|e| e.map(|e| e.path()))
        .collect::<std::io::Result<_>>()?;
    entries.sort();
    for path in entries {
        if path.is_dir() {
            rust_files(&path, out)?;
        } else if path.extension().is_some_and(|x| x == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Lints every `crates/*/src/**/*.rs` file under the workspace `root`.
///
/// Findings are sorted by `(file, line, rule)` so output (and the JSON
/// mode) is bit-stable across runs and platforms.
pub fn lint_workspace(root: &Path) -> std::io::Result<Vec<Finding>> {
    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<PathBuf> = std::fs::read_dir(&crates_dir)?
        .map(|e| e.map(|e| e.path()))
        .collect::<std::io::Result<_>>()?;
    crate_dirs.sort();

    let mut findings = Vec::new();
    for crate_dir in crate_dirs.iter().filter(|p| p.is_dir()) {
        let crate_name = crate_dir
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or("")
            .to_string();
        let src = crate_dir.join("src");
        if !src.is_dir() {
            continue;
        }
        let mut files = Vec::new();
        rust_files(&src, &mut files)?;
        for path in files {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            let source = std::fs::read_to_string(&path)?;
            findings.extend(lint_source(&crate_name, &rel, &source));
        }
    }
    findings.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    Ok(findings)
}

/// Renders findings as a JSON array (via `eff2-json`):
/// `[{"rule": …, "file": …, "line": …, "message": …}, …]`.
pub fn findings_to_json(findings: &[Finding]) -> String {
    let arr = eff2_json::Json::Arr(
        findings
            .iter()
            .map(|f| {
                eff2_json::Json::obj(vec![
                    ("rule", eff2_json::Json::Str(f.rule.to_string())),
                    ("file", eff2_json::Json::Str(f.file.clone())),
                    ("line", eff2_json::Json::num(f64::from(f.line))),
                    ("message", eff2_json::Json::Str(f.message.clone())),
                ])
            })
            .collect(),
    );
    let mut out = String::new();
    arr.write(&mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn waiver_suppresses_same_and_next_line() {
        let src = "fn f(v: &[u8]) -> u8 {\n    // lint:allow(panic.index): bounds checked by caller\n    v[0]\n}\n";
        assert!(lint_source("descriptor", "x.rs", src).is_empty());
        let trailing = "fn f(v: &[u8]) -> u8 {\n    v[0] // lint:allow(panic.index): bounds checked by caller\n}\n";
        assert!(lint_source("descriptor", "x.rs", trailing).is_empty());
    }

    #[test]
    fn file_waiver_covers_the_whole_file() {
        let src = "// lint:allow-file(panic.index): fixed-lane kernels, bounds proven\nfn f(v: &[u8]) -> u8 { v[0] }\nfn g(v: &[u8]) -> u8 { v[1] }\n";
        assert!(lint_source("descriptor", "x.rs", src).is_empty());
    }

    #[test]
    fn unused_waiver_is_a_finding() {
        let src = "// lint:allow(panic.unwrap): nothing here needs it\nfn f() {}\n";
        let got = lint_source("descriptor", "x.rs", src);
        assert_eq!(got.len(), 1);
        assert_eq!(got.first().map(|f| f.rule), Some("hyg.waiver"));
    }

    #[test]
    fn json_output_shape() {
        let src = "fn f() { None::<u8>.unwrap(); }\n";
        let findings = lint_source("core", "crates/core/src/x.rs", src);
        let json = findings_to_json(&findings);
        let parsed = eff2_json::Json::parse(&json).expect("valid json");
        let arr = parsed.as_arr().expect("array");
        assert_eq!(arr.len(), 1);
        let first = arr.first().expect("one finding");
        assert_eq!(
            first
                .field("rule")
                .and_then(|r| r.as_str().map(String::from)),
            Ok("panic.unwrap".to_string())
        );
        assert_eq!(first.field("line").and_then(|l| l.as_u32()), Ok(1));
    }
}
