//! The lint driver: file walking, waiver handling, finding suppression.
//!
//! ## Waiver grammar
//!
//! ```text
//! // lint:allow(<rule.id>): <non-empty reason>
//! // lint:allow-file(<rule.id>): <non-empty reason>
//! ```
//!
//! A line waiver suppresses findings of `<rule.id>` on its own line and on
//! the line directly below (so it works both as a trailing comment and as
//! a comment above the offending line). A file waiver suppresses the rule
//! for the whole file. Both forms **require** a reason after the colon;
//! a missing reason, an unknown rule id, or a waiver that suppresses
//! nothing are themselves findings (`hyg.waiver`) — waivers must stay
//! load-bearing and auditable.
//!
//! ## Interprocedural chains and waivers
//!
//! The interprocedural rules (`det.taint`, `panic.reach`,
//! `clock.discipline`) report at the *entry point* with chain evidence
//! down to the source site. A chain can be cut at either end:
//!
//! * **at the source** — a waiver on the source line citing either the
//!   matching line rule (`det.hash_container`, `panic.unwrap`, …) or the
//!   interprocedural rule removes the fact from propagation entirely (it
//!   was audited where it lives, so no caller needs to re-waive it);
//! * **at the entry** — a waiver on the entry's `fn` line citing the
//!   interprocedural rule suppresses that entry's findings like any other
//!   line waiver.

use crate::lexer::{lex, Token, TokenKind};
use crate::regions::{classify, code_indices, Region};
use crate::rules::{apply, is_rule, Finding};
use crate::symbols::{self, FactKind, Symbol};
use crate::{graph, taint};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

#[derive(Debug)]
struct Waiver {
    rule: String,
    line: u32,
    file_scope: bool,
    used: bool,
}

impl Waiver {
    /// Whether this waiver covers a finding of `rule` at `line`.
    fn covers(&self, rule: &str, line: u32) -> bool {
        self.rule == rule && (self.file_scope || line == self.line || line == self.line + 1)
    }
}

/// One analyzed file: its token stream, region map and waivers.
struct Unit<'a> {
    crate_name: &'a str,
    rel_path: &'a str,
    tokens: Vec<Token>,
    regions: Vec<Region>,
    code: Vec<usize>,
    waivers: Vec<Waiver>,
}

/// The outcome of linting a set of files, plus workload stats for the
/// timing line.
pub struct LintReport {
    /// All unsuppressed findings, sorted by `(file, line, rule)`.
    pub findings: Vec<Finding>,
    /// Number of files analyzed.
    pub files: usize,
    /// Number of `fn` symbols extracted for the call graph.
    pub symbols: usize,
}

/// Parses every waiver out of the comment tokens; malformed waivers are
/// returned as `hyg.waiver` findings instead.
fn parse_waivers(rel_path: &str, tokens: &[Token]) -> (Vec<Waiver>, Vec<Finding>) {
    let mut waivers = Vec::new();
    let mut findings = Vec::new();
    // Only plain comments can carry waivers: doc comments are rendered API
    // documentation (and this crate's own docs quote the grammar).
    for t in tokens
        .iter()
        .filter(|t| matches!(t.kind, TokenKind::LineComment | TokenKind::BlockComment))
    {
        let mut rest = t.text.as_str();
        // A comment may hold several waivers (rare but legal).
        while let Some(at) = rest.find("lint:allow") {
            let Some(tail) = rest.get(at + "lint:allow".len()..) else {
                break;
            };
            rest = tail;
            let file_scope = rest.starts_with("-file");
            let body = rest.strip_prefix("-file").unwrap_or(rest);
            let mut bad = |message: String| {
                findings.push(Finding::local("hyg.waiver", rel_path, t.line, message));
            };
            let Some(args) = body.strip_prefix('(') else {
                bad("malformed waiver: expected `lint:allow(<rule>): <reason>`".to_string());
                continue;
            };
            let Some(close) = args.find(')') else {
                bad("malformed waiver: unclosed `(`".to_string());
                continue;
            };
            let rule = args.get(..close).unwrap_or("").trim().to_string();
            if !is_rule(&rule) {
                bad(format!("waiver cites unknown rule `{rule}`"));
                continue;
            }
            let after = args.get(close + 1..).unwrap_or("");
            let reason = match after.trim_start().strip_prefix(':') {
                Some(r) => r.trim().trim_end_matches("*/").trim(),
                None => {
                    bad(format!("waiver for `{rule}` is missing its `: <reason>`"));
                    continue;
                }
            };
            if reason.is_empty() {
                bad(format!("waiver for `{rule}` has an empty reason"));
                continue;
            }
            waivers.push(Waiver {
                rule,
                line: t.line,
                file_scope,
                used: false,
            });
        }
    }
    (waivers, findings)
}

/// Removes facts whose source site carries a waiver citing the matching
/// line rule or the propagating interprocedural rule; such waivers are
/// load-bearing (marked used). `ChargeClock` facts are never cut — a
/// waiver cannot *un-charge* a clock.
fn cut_waived_facts(sym: &mut Symbol, waivers: &mut [Waiver]) {
    sym.facts.retain(|fact| {
        if fact.kind == FactKind::ChargeClock {
            return true;
        }
        let mut cut = false;
        for w in waivers.iter_mut() {
            let cites =
                Some(w.rule.as_str()) == fact.kind.line_rule() || w.rule == fact.kind.taint_rule();
            if cites && (w.file_scope || fact.line == w.line || fact.line == w.line + 1) {
                w.used = true;
                cut = true;
            }
        }
        !cut
    });
}

/// Lints a set of files as one unit: line rules per file, then the
/// interprocedural pass (symbol extraction → call graph → taint) across
/// all of them together.
///
/// Each input is `(crate_name, rel_path, source)`. Findings are sorted by
/// `(file, line, rule, message)` so output — including `--json` — is
/// bit-stable across runs and platforms.
pub fn lint_files(files: &[(String, String, String)]) -> LintReport {
    let mut units: Vec<Unit> = Vec::with_capacity(files.len());
    let mut findings: Vec<Finding> = Vec::new();
    for (crate_name, rel_path, source) in files {
        let tokens = lex(source);
        let regions = classify(&tokens);
        let code = code_indices(&tokens);
        let (waivers, malformed) = parse_waivers(rel_path, &tokens);
        findings.extend(malformed);
        units.push(Unit {
            crate_name,
            rel_path,
            tokens,
            regions,
            code,
            waivers,
        });
    }
    let unit_by_file: BTreeMap<String, usize> = units
        .iter()
        .enumerate()
        .map(|(i, u)| (u.rel_path.to_string(), i))
        .collect();

    // Line rules + symbol extraction, per file.
    let mut raw: Vec<Finding> = Vec::new();
    let mut all_symbols: Vec<Symbol> = Vec::new();
    for u in &units {
        raw.extend(apply(
            u.crate_name,
            u.rel_path,
            &u.tokens,
            &u.regions,
            &u.code,
        ));
        all_symbols.extend(symbols::extract(
            u.crate_name,
            u.rel_path,
            &u.tokens,
            &u.regions,
            &u.code,
        ));
    }
    let symbol_count = all_symbols.len();

    // Source-site waivers cut facts before propagation.
    for sym in &mut all_symbols {
        let Some(&ui) = unit_by_file.get(sym.file.as_str()) else {
            continue;
        };
        if let Some(unit) = units.get_mut(ui) {
            cut_waived_facts(sym, &mut unit.waivers);
        }
    }

    // The interprocedural pass over the whole set.
    let graph = graph::build(all_symbols);
    raw.extend(taint::analyze(&graph));

    // Waiver suppression at the reporting site (line rules: the offending
    // line; interprocedural rules: the entry point).
    for f in raw {
        let waived = unit_by_file
            .get(f.file.as_str())
            .and_then(|&ui| units.get_mut(ui))
            .and_then(|u| u.waivers.iter_mut().find(|w| w.covers(f.rule, f.line)));
        match waived {
            Some(w) => w.used = true,
            None => findings.push(f),
        }
    }
    for u in &units {
        for w in u.waivers.iter().filter(|w| !w.used) {
            findings.push(Finding::local(
                "hyg.waiver",
                u.rel_path,
                w.line,
                format!(
                    "waiver for `{}` suppresses nothing — remove it or fix its placement",
                    w.rule
                ),
            ));
        }
    }
    // No dedup: two identical sites on one line (`v[v[1]]`) are two
    // findings. The taint pass already keys its reports by (entry,
    // source, kind), so interprocedural findings never duplicate.
    findings.sort_by(|a, b| {
        (&a.file, a.line, a.rule, &a.message).cmp(&(&b.file, b.line, b.rule, &b.message))
    });
    LintReport {
        findings,
        files: files.len(),
        symbols: symbol_count,
    }
}

/// Lints a single file's source text (line rules plus whatever the
/// interprocedural pass can see within the one file).
///
/// `crate_name` selects crate-scoped rules (e.g. determinism applies to
/// `core`/`storage`/`metrics`/`eval`); `rel_path` is used verbatim in
/// findings and for file-scoped rule exemptions.
pub fn lint_source(crate_name: &str, rel_path: &str, source: &str) -> Vec<Finding> {
    lint_files(&[(
        crate_name.to_string(),
        rel_path.to_string(),
        source.to_string(),
    )])
    .findings
}

/// Recursively collects `.rs` files under `dir`, sorted for determinism.
fn rust_files(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
        .map(|e| e.map(|e| e.path()))
        .collect::<std::io::Result<_>>()?;
    entries.sort();
    for path in entries {
        if path.is_dir() {
            rust_files(&path, out)?;
        } else if path.extension().is_some_and(|x| x == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Lints every `crates/*/src/**/*.rs` file under the workspace `root`,
/// returning findings plus file/symbol counts for the timing line.
pub fn lint_workspace_report(root: &Path) -> std::io::Result<LintReport> {
    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<PathBuf> = std::fs::read_dir(&crates_dir)?
        .map(|e| e.map(|e| e.path()))
        .collect::<std::io::Result<_>>()?;
    crate_dirs.sort();

    let mut inputs: Vec<(String, String, String)> = Vec::new();
    for crate_dir in crate_dirs.iter().filter(|p| p.is_dir()) {
        let crate_name = crate_dir
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or("")
            .to_string();
        let src = crate_dir.join("src");
        if !src.is_dir() {
            continue;
        }
        let mut files = Vec::new();
        rust_files(&src, &mut files)?;
        for path in files {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            let source = std::fs::read_to_string(&path)?;
            inputs.push((crate_name.clone(), rel, source));
        }
    }
    Ok(lint_files(&inputs))
}

/// Lints every `crates/*/src/**/*.rs` file under the workspace `root`.
///
/// Findings are sorted by `(file, line, rule)` so output (and the JSON
/// mode) is bit-stable across runs and platforms.
pub fn lint_workspace(root: &Path) -> std::io::Result<Vec<Finding>> {
    Ok(lint_workspace_report(root)?.findings)
}

/// Renders findings as a JSON array (via `eff2-json`):
/// `[{"rule": …, "file": …, "line": …, "message": …, "chain": […]}, …]`.
/// The `chain` field is the call-chain evidence for interprocedural
/// findings (`[{"fn": …, "file": …, "line": …}, …]`), empty for line
/// rules.
pub fn findings_to_json(findings: &[Finding]) -> String {
    let arr = eff2_json::Json::Arr(
        findings
            .iter()
            .map(|f| {
                eff2_json::Json::obj(vec![
                    ("rule", eff2_json::Json::Str(f.rule.to_string())),
                    ("file", eff2_json::Json::Str(f.file.clone())),
                    ("line", eff2_json::Json::num(f64::from(f.line))),
                    ("message", eff2_json::Json::Str(f.message.clone())),
                    (
                        "chain",
                        eff2_json::Json::Arr(
                            f.chain
                                .iter()
                                .map(|h| {
                                    eff2_json::Json::obj(vec![
                                        ("fn", eff2_json::Json::Str(h.name.clone())),
                                        ("file", eff2_json::Json::Str(h.file.clone())),
                                        ("line", eff2_json::Json::num(f64::from(h.line))),
                                    ])
                                })
                                .collect(),
                        ),
                    ),
                ])
            })
            .collect(),
    );
    let mut out = String::new();
    arr.write(&mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn waiver_suppresses_same_and_next_line() {
        let src = "fn f(v: &[u8]) -> u8 {\n    // lint:allow(panic.index): bounds checked by caller\n    v[0]\n}\n";
        assert!(lint_source("descriptor", "x.rs", src).is_empty());
        let trailing = "fn f(v: &[u8]) -> u8 {\n    v[0] // lint:allow(panic.index): bounds checked by caller\n}\n";
        assert!(lint_source("descriptor", "x.rs", trailing).is_empty());
    }

    #[test]
    fn file_waiver_covers_the_whole_file() {
        let src = "// lint:allow-file(panic.index): fixed-lane kernels, bounds proven\nfn f(v: &[u8]) -> u8 { v[0] }\nfn g(v: &[u8]) -> u8 { v[1] }\n";
        assert!(lint_source("descriptor", "x.rs", src).is_empty());
    }

    #[test]
    fn unused_waiver_is_a_finding() {
        let src = "// lint:allow(panic.unwrap): nothing here needs it\nfn f() {}\n";
        let got = lint_source("descriptor", "x.rs", src);
        assert_eq!(got.len(), 1);
        assert_eq!(got.first().map(|f| f.rule), Some("hyg.waiver"));
    }

    #[test]
    fn json_output_shape() {
        let src = "fn f() { None::<u8>.unwrap(); }\n";
        let findings = lint_source("core", "crates/core/src/x.rs", src);
        let json = findings_to_json(&findings);
        let parsed = eff2_json::Json::parse(&json).expect("valid json");
        let arr = parsed.as_arr().expect("array");
        assert_eq!(arr.len(), 1);
        let first = arr.first().expect("one finding");
        assert_eq!(
            first
                .field("rule")
                .and_then(|r| r.as_str().map(String::from)),
            Ok("panic.unwrap".to_string())
        );
        assert_eq!(first.field("line").and_then(|l| l.as_u32()), Ok(1));
        assert!(first
            .field("chain")
            .and_then(|c| c.as_arr().map(|a| a.is_empty()))
            .unwrap_or(false));
    }

    #[test]
    fn cross_file_taint_is_reported_with_chain() {
        let files = vec![
            (
                "core".to_string(),
                "crates/core/src/lib.rs".to_string(),
                "pub fn api() { eff2_srtree::mid(); }\n".to_string(),
            ),
            (
                "srtree".to_string(),
                "crates/srtree/src/lib.rs".to_string(),
                "pub fn mid() { leaf(); }\nfn leaf() { let m = HashMap::new(); m.iter(); }\n"
                    .to_string(),
            ),
        ];
        let report = lint_files(&files);
        let taint: Vec<&Finding> = report
            .findings
            .iter()
            .filter(|f| f.rule == "det.taint")
            .collect();
        // `api` is the only deterministic-crate entry (srtree is not in
        // DETERMINISTIC_CRATES); it reaches the HashMap at depth 2.
        assert_eq!(taint.len(), 1, "{:?}", report.findings);
        let api = taint
            .iter()
            .find(|f| f.file == "crates/core/src/lib.rs")
            .expect("entry finding in core");
        assert_eq!(api.chain.len(), 3);
        assert!(api
            .message
            .contains("-> HashMap @ crates/srtree/src/lib.rs:2"));
    }

    #[test]
    fn source_site_waiver_cuts_the_chain() {
        let files = vec![
            (
                "core".to_string(),
                "crates/core/src/lib.rs".to_string(),
                "pub fn api() { eff2_srtree::mid(); }\n".to_string(),
            ),
            (
                "srtree".to_string(),
                "crates/srtree/src/lib.rs".to_string(),
                "pub fn mid() {\n    // lint:allow(det.taint): local map, iteration order never observed\n    let m = HashMap::new(); m.iter();\n}\n"
                    .to_string(),
            ),
        ];
        let report = lint_files(&files);
        assert!(
            report.findings.is_empty(),
            "waiver at source should cut every chain: {:?}",
            report.findings
        );
    }

    #[test]
    fn entry_waiver_cuts_only_that_entry() {
        let files = vec![
            (
                "core".to_string(),
                "crates/core/src/lib.rs".to_string(),
                "// lint:allow(det.taint): debug-only API, never feeds traces\npub fn api() { eff2_srtree::mid(); }\npub fn api2() { eff2_srtree::mid(); }\n".to_string(),
            ),
            (
                "srtree".to_string(),
                "crates/srtree/src/lib.rs".to_string(),
                "pub fn mid() { let m = HashMap::new(); m.iter(); }\n".to_string(),
            ),
        ];
        let report = lint_files(&files);
        let taint: Vec<&Finding> = report
            .findings
            .iter()
            .filter(|f| f.rule == "det.taint")
            .collect();
        // `api` is waived at its entry; `api2` — same source, different
        // entry — still reports.
        assert_eq!(taint.len(), 1, "{:?}", report.findings);
        assert_eq!(taint.first().map(|f| f.line), Some(3));
    }
}
