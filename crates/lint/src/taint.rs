//! Taint/reachability propagation over the call graph.
//!
//! Three interprocedural rule families run here:
//!
//! * `det.taint` — a nondeterminism source (hash-container use, wall
//!   clock, float accumulation, thread spawn) anywhere in the workspace
//!   must not be transitively reachable from a public API of a
//!   deterministic crate. The line rules only police direct use *inside*
//!   those crates; this closes the hole where the source hides two calls
//!   deep in a helper crate.
//! * `panic.reach` — an unwaived panic site must not be transitively
//!   reachable from a public API of a panic-free crate.
//! * `clock.discipline` — (a) a `ChunkStream` decorator whose
//!   `next_chunk` delegates must forward `take_injected_delay`, or
//!   injected fault delays silently vanish from the modelled timeline;
//!   (b) a public API of a clocked crate must not consume chunks on a
//!   path that never charges the pipeline/virtual clock.
//!
//! Reachability is a per-entry BFS with parent pointers, so every finding
//! carries its full `entry -> … -> source @ file:line` chain. The
//! clock-charge analysis is a monotone fixed point over the (possibly
//! cyclic) graph — cycles terminate it, they do not recurse.

use crate::graph::Graph;
use crate::rules::{Finding, Hop, DETERMINISTIC_CRATES};
use crate::symbols::{CallTarget, Fact, FactKind, Symbol, SymbolId};
use std::collections::BTreeMap;

/// Crates whose public APIs must be transitively panic-free: every
/// library crate (the `eval`/`lint` binaries and `bench` own their
/// process and may abort it).
pub(crate) const PANIC_FREE_CRATES: &[&str] = &[
    "bag",
    "chaos",
    "core",
    "descriptor",
    "json",
    "medrank",
    "metrics",
    "parallel",
    "serve",
    "shard",
    "srtree",
    "storage",
    "workload",
];

/// Crates whose public APIs drive the two-clock model: chunk consumption
/// reachable from them must charge modelled time somewhere on the path.
pub(crate) const CLOCKED_CRATES: &[&str] = &["core", "serve"];

/// Whether `sym` is an analysis entry point: a public fn, or a
/// trait-impl method (reachable through the trait object regardless of
/// its own visibility).
fn is_entry(sym: &Symbol) -> bool {
    sym.has_body && (sym.is_pub || (sym.trait_name.is_some() && sym.self_type.is_some()))
}

/// BFS from `entry` over callees satisfying `admit`, returning a parent
/// map `symbol -> (parent, line)` for every reachable symbol.
fn reach_from(
    graph: &Graph,
    entry: SymbolId,
    admit: impl Fn(SymbolId) -> bool,
) -> BTreeMap<SymbolId, (SymbolId, u32)> {
    let mut parents: BTreeMap<SymbolId, (SymbolId, u32)> = BTreeMap::new();
    let mut queue = std::collections::VecDeque::new();
    parents.insert(entry, (entry, 0));
    queue.push_back(entry);
    while let Some(at) = queue.pop_front() {
        for e in graph.edges.get(at).into_iter().flatten() {
            if !admit(e.callee) {
                continue;
            }
            if let std::collections::btree_map::Entry::Vacant(v) = parents.entry(e.callee) {
                v.insert((at, e.line));
                queue.push_back(e.callee);
            }
        }
    }
    parents
}

/// Reconstructs the entry→target hop list from a parent map.
fn chain_to(
    graph: &Graph,
    parents: &BTreeMap<SymbolId, (SymbolId, u32)>,
    entry: SymbolId,
    target: SymbolId,
) -> Vec<Hop> {
    let mut ids = vec![target];
    let mut at = target;
    // The parent map is acyclic by construction (BFS tree), but bound the
    // walk anyway so a logic bug cannot loop forever.
    for _ in 0..graph.symbols.len() {
        if at == entry {
            break;
        }
        let Some(&(parent, _)) = parents.get(&at) else {
            break;
        };
        ids.push(parent);
        at = parent;
    }
    ids.reverse();
    ids.iter()
        .filter_map(|&id| graph.symbols.get(id))
        .map(|s| Hop {
            name: s.display_name(),
            file: s.file.clone(),
            line: s.line,
        })
        .collect()
}

/// Renders `entry -> f -> g -> <what> @ file:line` chain evidence.
fn render_chain(chain: &[Hop], fact: &Fact, source_file: &str) -> String {
    let mut out = String::new();
    for hop in chain {
        out.push_str(&format!("{} ({}:{}) -> ", hop.name, hop.file, hop.line));
    }
    out.push_str(&format!("{} @ {}:{}", fact.what, source_file, fact.line));
    out
}

/// Runs all three interprocedural rule families over the graph.
pub(crate) fn analyze(graph: &Graph) -> Vec<Finding> {
    let mut findings = Vec::new();
    reachability_rules(graph, &mut findings);
    decorator_rule(graph, &mut findings);
    clock_path_rule(graph, &mut findings);
    findings
}

/// `det.taint` + `panic.reach`: per-entry BFS over the graph.
fn reachability_rules(graph: &Graph, findings: &mut Vec<Finding>) {
    for (entry_id, entry) in graph.symbols.iter().enumerate() {
        if !is_entry(entry) {
            continue;
        }
        let det_entry = DETERMINISTIC_CRATES.contains(&entry.crate_name.as_str());
        let panic_entry = PANIC_FREE_CRATES.contains(&entry.crate_name.as_str());
        if !det_entry && !panic_entry {
            continue;
        }
        let parents = reach_from(graph, entry_id, |_| true);
        // One finding per (source symbol, fact kind); the first fact of
        // each kind stands in for the rest. `source == entry` is the line
        // rules' territory — depth-0 sites are already reported there.
        let mut seen: Vec<(SymbolId, FactKind)> = Vec::new();
        for &sym_id in parents.keys() {
            if sym_id == entry_id {
                continue;
            }
            let Some(sym) = graph.symbols.get(sym_id) else {
                continue;
            };
            for fact in &sym.facts {
                let (rule, wanted) = if fact.kind.is_det() {
                    ("det.taint", det_entry)
                } else if fact.kind.is_panic() {
                    ("panic.reach", panic_entry)
                } else {
                    continue;
                };
                if !wanted || seen.contains(&(sym_id, fact.kind)) {
                    continue;
                }
                seen.push((sym_id, fact.kind));
                let chain = chain_to(graph, &parents, entry_id, sym_id);
                let evidence = render_chain(&chain, fact, &sym.file);
                let noun = if fact.kind.is_det() {
                    "a nondeterminism source"
                } else {
                    "a panic site"
                };
                findings.push(Finding {
                    rule,
                    file: entry.file.clone(),
                    line: entry.line,
                    message: format!(
                        "public API `{}` can reach {noun}: {evidence}",
                        entry.display_name()
                    ),
                    chain,
                });
            }
        }
    }
}

/// `clock.discipline` (a): a `ChunkStream` impl whose `next_chunk`
/// delegates to an inner stream must override `take_injected_delay` and
/// forward it, or fault-injected delays disappear from the timeline.
fn decorator_rule(graph: &Graph, findings: &mut Vec<Finding>) {
    // Group ChunkStream impl methods by (crate, type).
    let mut groups: BTreeMap<(String, String), Vec<&Symbol>> = BTreeMap::new();
    for sym in &graph.symbols {
        if sym.trait_name.as_deref() == Some("ChunkStream") {
            if let Some(ty) = &sym.self_type {
                groups
                    .entry((sym.crate_name.clone(), ty.clone()))
                    .or_default()
                    .push(sym);
            }
        }
    }
    for ((_, ty), methods) in &groups {
        let Some(next) = methods.iter().find(|s| s.name == "next_chunk") else {
            continue;
        };
        let delegates = next
            .calls
            .iter()
            .any(|c| matches!(&c.target, CallTarget::Method { name, .. } if name == "next_chunk"));
        if !delegates {
            continue; // a leaf stream, not a decorator
        }
        // Forwarding has two halves: the impl overrides
        // `take_injected_delay` (so its own accumulator is drainable), and
        // *some* method of the impl pulls the inner stream's delay — real
        // decorators do the pull inside `next_chunk` and only drain a
        // local field in `take_injected_delay` itself.
        let overrides = methods.iter().any(|s| s.name == "take_injected_delay");
        let pulls_inner = methods.iter().any(|s| {
            s.calls.iter().any(|c| {
                matches!(&c.target, CallTarget::Method { name, .. } if name == "take_injected_delay")
            })
        });
        if !(overrides && pulls_inner) {
            findings.push(Finding {
                rule: "clock.discipline",
                file: next.file.clone(),
                line: next.line,
                message: format!(
                    "ChunkStream decorator `{ty}` delegates next_chunk but never forwards take_injected_delay — injected delays would be dropped from the modelled timeline"
                ),
                chain: vec![Hop {
                    name: next.display_name(),
                    file: next.file.clone(),
                    line: next.line,
                }],
            });
        }
    }
}

/// `clock.discipline` (b): from a public API of a clocked crate, no path
/// may consume chunks without a modelled-time charge somewhere on it.
fn clock_path_rule(graph: &Graph, findings: &mut Vec<Finding>) {
    let n = graph.symbols.len();
    let consumes: Vec<bool> = graph
        .symbols
        .iter()
        .map(|s| s.facts.iter().any(|f| f.kind == FactKind::ConsumeChunk))
        .collect();
    // charges(F): F itself charges, or some callee (transitively) does.
    // Monotone fixed point; cycles just stop changing.
    let mut charges: Vec<bool> = graph
        .symbols
        .iter()
        .map(|s| s.facts.iter().any(|f| f.kind == FactKind::ChargeClock))
        .collect();
    loop {
        let mut changed = false;
        for id in 0..n {
            if charges.get(id).copied().unwrap_or(false) {
                continue;
            }
            let any = graph
                .edges
                .get(id)
                .into_iter()
                .flatten()
                .any(|e| charges.get(e.callee).copied().unwrap_or(false));
            if any {
                if let Some(slot) = charges.get_mut(id) {
                    *slot = true;
                }
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    // unclocked(F): F does not charge, and either consumes itself or
    // calls an unclocked fn. Also a monotone fixed point.
    let mut unclocked: Vec<bool> = (0..n)
        .map(|id| {
            !charges.get(id).copied().unwrap_or(false) && consumes.get(id).copied().unwrap_or(false)
        })
        .collect();
    loop {
        let mut changed = false;
        for id in 0..n {
            if unclocked.get(id).copied().unwrap_or(false)
                || charges.get(id).copied().unwrap_or(false)
            {
                continue;
            }
            let any = graph
                .edges
                .get(id)
                .into_iter()
                .flatten()
                .any(|e| unclocked.get(e.callee).copied().unwrap_or(false));
            if any {
                if let Some(slot) = unclocked.get_mut(id) {
                    *slot = true;
                }
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    for (entry_id, entry) in graph.symbols.iter().enumerate() {
        if !is_entry(entry)
            || !CLOCKED_CRATES.contains(&entry.crate_name.as_str())
            || !unclocked.get(entry_id).copied().unwrap_or(false)
        {
            continue;
        }
        // Walk the unclocked region (only) to the first consuming symbol,
        // so every hop on the evidence chain really lacks a charge.
        let parents = reach_from(graph, entry_id, |id| {
            unclocked.get(id).copied().unwrap_or(false)
        });
        let target = parents
            .keys()
            .copied()
            .find(|&id| consumes.get(id).copied().unwrap_or(false));
        let Some(target) = target else { continue };
        let Some(target_sym) = graph.symbols.get(target) else {
            continue;
        };
        let Some(fact) = target_sym
            .facts
            .iter()
            .find(|f| f.kind == FactKind::ConsumeChunk)
        else {
            continue;
        };
        let chain = chain_to(graph, &parents, entry_id, target);
        let evidence = render_chain(&chain, fact, &target_sym.file);
        findings.push(Finding {
            rule: "clock.discipline",
            file: entry.file.clone(),
            line: entry.line,
            message: format!(
                "public API `{}` consumes chunks on a path that never charges the pipeline clock: {evidence}",
                entry.display_name()
            ),
            chain,
        });
    }
}
