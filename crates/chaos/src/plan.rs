//! The seeded fault schedule: a pure function of `(seed, chunk, attempt)`.
//!
//! Nothing here depends on arrival order, thread timing or wall clock —
//! two runs over the same plan observe the same faults at the same
//! chunks, which is what makes chaos runs replayable and lets tests
//! assert the injected schedule *exactly*.

use eff2_storage::VirtualDuration;

/// Salt for the per-chunk permanent-loss draw.
const PERM_SALT: u64 = 0x9e37_79b9_7f4a_7c15;
/// Salt for the per-attempt error draw.
const FAULT_SALT: u64 = 0xbf58_476d_1ce4_e5b9;
/// Salt for the per-attempt latency-spike draw.
const SPIKE_SALT: u64 = 0x94d0_49bb_1331_11eb;

/// Transient faults clear after this many consecutive failed attempts on
/// one chunk: attempt indices `0..TRANSIENT_CLEAR` may draw a per-attempt
/// fault, later attempts read clean (unless the chunk is permanently
/// lost). A retry budget of `TRANSIENT_CLEAR + 1` attempts therefore
/// always recovers a purely transient schedule.
pub const TRANSIENT_CLEAR: u32 = 4;

/// Fault rates and the seed that fixes the schedule.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultConfig {
    /// Seed fixing the entire schedule.
    pub seed: u64,
    /// Probability an attempt fails with a transient I/O error.
    pub transient_rate: f64,
    /// Probability an attempt fails with a short read.
    pub short_read_rate: f64,
    /// Probability an attempt delivers corrupt bytes (detected by the
    /// chunk checksum).
    pub corruption_rate: f64,
    /// Probability a chunk is permanently unreadable (drawn once per
    /// chunk; no retry ever succeeds).
    pub permanent_rate: f64,
    /// Probability a successful attempt suffers a latency spike.
    pub spike_rate: f64,
    /// Modelled extra latency of one spike, in milliseconds.
    pub spike_ms: f64,
}

impl FaultConfig {
    /// Every rate zero: the plan never fires.
    pub fn quiet(seed: u64) -> FaultConfig {
        FaultConfig {
            seed,
            transient_rate: 0.0,
            short_read_rate: 0.0,
            corruption_rate: 0.0,
            permanent_rate: 0.0,
            spike_rate: 0.0,
            spike_ms: 0.0,
        }
    }

    /// Permanent loss only, at `rate` per chunk.
    pub fn lossy(seed: u64, rate: f64) -> FaultConfig {
        FaultConfig {
            permanent_rate: rate,
            ..FaultConfig::quiet(seed)
        }
    }

    /// Transient errors only, at `rate` per attempt.
    pub fn flaky(seed: u64, rate: f64) -> FaultConfig {
        FaultConfig {
            transient_rate: rate,
            ..FaultConfig::quiet(seed)
        }
    }
}

/// What the plan decrees for one read attempt.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Fault {
    /// The attempt succeeds; deliver the chunk after `delay` of modelled
    /// extra latency (zero when no spike fired).
    Deliver {
        /// Injected latency beyond the plain page transfer.
        delay: VirtualDuration,
    },
    /// The attempt fails with a transient I/O error.
    Transient,
    /// The attempt fails with a short read.
    ShortRead,
    /// The attempt delivers bytes that fail checksum verification.
    Corrupt,
    /// The chunk is permanently unreadable.
    Permanent,
}

/// SplitMix64 finalizer: a well-mixed 64-bit hash of the inputs.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A uniform draw in `[0, 1)` from the mixed inputs.
pub(crate) fn unit(seed: u64, chunk: u64, salt: u64, attempt: u64) -> f64 {
    let h = mix(seed ^ mix(chunk ^ salt) ^ mix(attempt.wrapping_mul(salt)));
    // 53 high bits -> exactly representable dyadic rational in [0, 1).
    (h >> 11) as f64 / (1u64 << 53) as f64
}

/// A fixed fault schedule: [`FaultConfig`] rates keyed by seed.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultPlan {
    config: FaultConfig,
}

impl FaultPlan {
    /// The schedule fixed by `config`.
    pub fn new(config: FaultConfig) -> FaultPlan {
        FaultPlan { config }
    }

    /// The configuration this plan draws from.
    pub fn config(&self) -> &FaultConfig {
        &self.config
    }

    /// Whether every rate is zero (the plan can never fire).
    pub fn is_quiet(&self) -> bool {
        let c = &self.config;
        c.transient_rate == 0.0
            && c.short_read_rate == 0.0
            && c.corruption_rate == 0.0
            && c.permanent_rate == 0.0
            && c.spike_rate == 0.0
    }

    /// Whether `chunk` is permanently unreadable under this plan.
    ///
    /// Drawn once per chunk (attempt-independent) from a fixed unit draw,
    /// so the lost sets of two plans differing only in `permanent_rate`
    /// are *nested*: raising the rate only ever loses more chunks.
    pub fn is_permanently_lost(&self, chunk: usize) -> bool {
        self.config.permanent_rate > 0.0
            && unit(self.config.seed, chunk as u64, PERM_SALT, 0) < self.config.permanent_rate
    }

    /// Every permanently lost chunk id below `n_chunks` — the exact
    /// injected loss schedule, for tests that compare a degradation
    /// report against it.
    pub fn permanent_losses(&self, n_chunks: usize) -> Vec<usize> {
        (0..n_chunks)
            .filter(|&c| self.is_permanently_lost(c))
            .collect()
    }

    /// What happens on read attempt `attempt` (0-based) of `chunk`.
    pub fn fault_for(&self, chunk: usize, attempt: u32) -> Fault {
        if self.is_permanently_lost(chunk) {
            return Fault::Permanent;
        }
        self.attempt_fault(chunk, attempt)
    }

    /// [`fault_for`](Self::fault_for) **without** the permanent-loss check:
    /// the per-attempt transient/short-read/corruption/spike draw alone.
    /// A replicated fleet uses this for replica copies when the permanent
    /// draw models loss of the *primary medium only* — replicas share the
    /// chunk's per-attempt weather but not its permanent fate.
    pub fn attempt_fault(&self, chunk: usize, attempt: u32) -> Fault {
        let c = &self.config;
        if attempt < TRANSIENT_CLEAR {
            let u = unit(c.seed, chunk as u64, FAULT_SALT, u64::from(attempt));
            if u < c.transient_rate {
                return Fault::Transient;
            }
            if u < c.transient_rate + c.short_read_rate {
                return Fault::ShortRead;
            }
            if u < c.transient_rate + c.short_read_rate + c.corruption_rate {
                return Fault::Corrupt;
            }
        }
        let spike = c.spike_rate > 0.0
            && unit(c.seed, chunk as u64, SPIKE_SALT, u64::from(attempt)) < c.spike_rate;
        Fault::Deliver {
            delay: if spike {
                VirtualDuration::from_ms(c.spike_ms)
            } else {
                VirtualDuration::ZERO
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quiet_plan_always_delivers_immediately() {
        let plan = FaultPlan::new(FaultConfig::quiet(7));
        assert!(plan.is_quiet());
        for chunk in 0..200 {
            for attempt in 0..6 {
                assert_eq!(
                    plan.fault_for(chunk, attempt),
                    Fault::Deliver {
                        delay: VirtualDuration::ZERO
                    }
                );
            }
        }
        assert!(plan.permanent_losses(200).is_empty());
    }

    #[test]
    fn schedule_is_a_pure_function_of_its_inputs() {
        let a = FaultPlan::new(FaultConfig::lossy(42, 0.3));
        let b = FaultPlan::new(FaultConfig::lossy(42, 0.3));
        for chunk in 0..100 {
            for attempt in 0..4 {
                assert_eq!(a.fault_for(chunk, attempt), b.fault_for(chunk, attempt));
            }
        }
    }

    #[test]
    fn different_seeds_draw_different_schedules() {
        let a = FaultPlan::new(FaultConfig::lossy(1, 0.5));
        let b = FaultPlan::new(FaultConfig::lossy(2, 0.5));
        assert_ne!(a.permanent_losses(256), b.permanent_losses(256));
    }

    #[test]
    fn lost_sets_are_nested_across_rates() {
        for rate_pair in [(0.05, 0.1), (0.1, 0.3), (0.3, 0.7)] {
            let lo = FaultPlan::new(FaultConfig::lossy(9, rate_pair.0));
            let hi = FaultPlan::new(FaultConfig::lossy(9, rate_pair.1));
            let lo_set = lo.permanent_losses(500);
            let hi_set = hi.permanent_losses(500);
            assert!(lo_set.len() <= hi_set.len());
            for c in &lo_set {
                assert!(
                    hi_set.contains(c),
                    "chunk {c} lost at low rate but not high"
                );
            }
        }
    }

    #[test]
    fn transient_faults_clear_within_the_documented_budget() {
        let plan = FaultPlan::new(FaultConfig::flaky(11, 1.0));
        for chunk in 0..50 {
            for attempt in 0..TRANSIENT_CLEAR {
                assert_eq!(plan.fault_for(chunk, attempt), Fault::Transient);
            }
            assert!(matches!(
                plan.fault_for(chunk, TRANSIENT_CLEAR),
                Fault::Deliver { .. }
            ));
        }
    }

    #[test]
    fn rates_actually_fire_near_their_nominal_frequency() {
        let plan = FaultPlan::new(FaultConfig::lossy(3, 0.25));
        let lost = plan.permanent_losses(4000).len();
        assert!(
            (700..1300).contains(&lost),
            "0.25 loss over 4000 chunks fired {lost} times"
        );
    }

    #[test]
    fn spikes_carry_the_configured_delay() {
        let config = FaultConfig {
            spike_rate: 1.0,
            spike_ms: 12.5,
            ..FaultConfig::quiet(5)
        };
        let plan = FaultPlan::new(config);
        match plan.fault_for(0, 0) {
            Fault::Deliver { delay } => {
                assert_eq!(delay.as_secs().to_bits(), 0.0125f64.to_bits());
            }
            other => panic!("expected spike delivery, got {other:?}"),
        }
    }
}
