#![warn(missing_docs)]

//! # eff2-chaos
//!
//! Deterministic fault injection for the chunk-storage stack.
//!
//! A production-scale serving fleet only "guarantees response time" if it
//! survives the faults a real disk produces: transient read errors, short
//! reads, latency spikes, silent corruption, and chunks that are simply
//! gone. This crate makes those faults *reproducible*: every injected
//! fault is a pure function of a seed, the chunk id and the attempt
//! number, so a failing run can be replayed bit-for-bit.
//!
//! * [`plan`] — [`FaultConfig`]/[`FaultPlan`]: the seeded fault schedule;
//! * [`fault`] — [`FaultSource`]: a [`ChunkSource`](eff2_storage::ChunkSource)
//!   decorator that injects the planned faults into any source stack;
//! * [`retry`] — [`RetrySource`]: typed retry/backoff with modelled-time
//!   charging, turning repeated failures into a permanent
//!   [`ChunkLost`](eff2_storage::Error::ChunkLost) the search core can
//!   skip under a `SkipPolicy`;
//! * [`shard`] — [`ShardFaultPlan`]: whole-shard-down schedules for the
//!   replicated serving fleet (eff2-serve's scatter–gather failover).
//!
//! With every fault rate at zero the decorators are bit-identical
//! passthroughs: same `ChunkEvent` traces, same neighbours, same virtual
//! clock (pinned by this crate's proptest suites).

pub mod fault;
pub mod plan;
pub mod retry;
pub mod shard;

pub use fault::FaultSource;
pub use plan::{Fault, FaultConfig, FaultPlan};
pub use retry::{RetryPolicy, RetrySource};
pub use shard::ShardFaultPlan;
