//! [`RetrySource`]: typed retry/backoff around any chunk source.
//!
//! Each failed read attempt is charged to the *modelled* clock — a
//! per-read timeout plus exponential backoff — never the wall clock, so
//! chaos runs stay deterministic and the virtual-time figures honestly
//! include the cost of recovering from faults. Errors are classified via
//! [`Error::class`]: transient and corrupt reads are retried up to the
//! budget; permanent errors (and an exhausted budget) become
//! [`Error::ChunkLost`] with the accumulated modelled time attached, and
//! the chunk's position is consumed so a skipping session continues with
//! the next chunk instead of stalling.

use eff2_storage::source::{ChunkSource, ChunkStream, SourcedChunk};
use eff2_storage::{Error, ErrorClass, Result, VirtualDuration};
use std::sync::Arc;

/// How hard a [`RetrySource`] tries before declaring a chunk lost.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RetryPolicy {
    /// Total read attempts per chunk (1 = no retries).
    pub max_attempts: u32,
    /// Modelled time charged per failed attempt (the read timeout).
    pub timeout: VirtualDuration,
    /// Modelled backoff before retry `n` is `backoff_base * 2^n`.
    pub backoff_base: VirtualDuration,
}

impl RetryPolicy {
    /// One attempt, nothing charged: a passthrough policy.
    pub fn none() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 1,
            timeout: VirtualDuration::ZERO,
            backoff_base: VirtualDuration::ZERO,
        }
    }

    /// `max_attempts` attempts with `timeout` per failure and exponential
    /// backoff from `backoff_base`.
    pub fn new(
        max_attempts: u32,
        timeout: VirtualDuration,
        backoff_base: VirtualDuration,
    ) -> RetryPolicy {
        assert!(max_attempts >= 1, "at least one attempt is required");
        RetryPolicy {
            max_attempts,
            timeout,
            backoff_base,
        }
    }

    /// Modelled cost of failed attempt `attempt` (0-based): the timeout
    /// plus this attempt's backoff.
    pub fn attempt_cost(&self, attempt: u32) -> VirtualDuration {
        let scale = f64::from(2u32.checked_pow(attempt).unwrap_or(u32::MAX));
        self.timeout + VirtualDuration::from_secs(self.backoff_base.as_secs() * scale)
    }
}

/// A [`ChunkSource`] decorator retrying failed reads per [`RetryPolicy`].
pub struct RetrySource {
    inner: Arc<dyn ChunkSource>,
    policy: RetryPolicy,
}

impl RetrySource {
    /// Decorates `inner` with `policy`.
    pub fn new(inner: Arc<dyn ChunkSource>, policy: RetryPolicy) -> RetrySource {
        RetrySource { inner, policy }
    }

    /// The policy this source retries under.
    pub fn policy(&self) -> &RetryPolicy {
        &self.policy
    }
}

impl ChunkSource for RetrySource {
    fn open_stream(&self, order: Vec<usize>) -> Result<Box<dyn ChunkStream>> {
        let stream = self.inner.open_stream(order.clone())?;
        Ok(Box::new(RetryStream {
            source: Arc::clone(&self.inner),
            policy: self.policy,
            order,
            pos: 0,
            inner: Some(stream),
            pending_delay: VirtualDuration::ZERO,
            failed: false,
        }))
    }
}

struct RetryStream {
    source: Arc<dyn ChunkSource>,
    policy: RetryPolicy,
    order: Vec<usize>,
    pos: usize,
    /// Current inner stream over `order[pos..]`; dropped on error and
    /// re-opened for the retry (every retry is a fresh read).
    inner: Option<Box<dyn ChunkStream>>,
    pending_delay: VirtualDuration,
    failed: bool,
}

impl ChunkStream for RetryStream {
    fn next_chunk(&mut self) -> Option<Result<SourcedChunk>> {
        if self.failed {
            return None;
        }
        let id = self.order.get(self.pos).copied()?;
        let mut attempts = 0u32;
        let mut spent = VirtualDuration::ZERO;
        loop {
            let stream = match &mut self.inner {
                Some(stream) => stream,
                None => match self
                    .source
                    .open_stream(self.order.get(self.pos..).unwrap_or_default().to_vec())
                {
                    Ok(stream) => self.inner.insert(stream),
                    Err(e) => {
                        // The source itself is broken; no per-chunk retry
                        // can help, so the stream fuses.
                        self.failed = true;
                        return Some(Err(e));
                    }
                },
            };
            match stream.next_chunk() {
                None => return None,
                Some(Ok(chunk)) => {
                    // Surface both the inner stream's delay and the cost
                    // of the failed attempts that preceded this success.
                    self.pending_delay += stream.take_injected_delay() + spent;
                    self.pos += 1;
                    return Some(Ok(chunk));
                }
                Some(Err(e)) => {
                    // Every retry is a fresh read through a fresh stream.
                    self.inner = None;
                    spent += self.policy.attempt_cost(attempts);
                    attempts += 1;
                    let give_up =
                        e.class() == ErrorClass::Permanent || attempts >= self.policy.max_attempts;
                    if give_up {
                        // Consume the position: callers holding a skip
                        // policy continue with the next chunk.
                        self.pos += 1;
                        return Some(Err(Error::ChunkLost {
                            chunk: id,
                            attempts,
                            spent,
                        }));
                    }
                }
            }
        }
    }

    fn take_injected_delay(&mut self) -> VirtualDuration {
        std::mem::replace(&mut self.pending_delay, VirtualDuration::ZERO)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultSource;
    use crate::plan::{FaultConfig, FaultPlan, TRANSIENT_CLEAR};
    use eff2_descriptor::{Descriptor, DescriptorSet, Vector};
    use eff2_storage::source::FileSource;
    use eff2_storage::{ChunkDef, ChunkStore};
    use std::sync::atomic::{AtomicUsize, Ordering};

    static DIR_SEQ: AtomicUsize = AtomicUsize::new(0);

    fn store_with_chunks(tag: &str, sizes: &[usize]) -> ChunkStore {
        let unique = DIR_SEQ.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!(
            "eff2_chaos_retry_{tag}_{}_{unique}",
            std::process::id()
        ));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let total: usize = sizes.iter().sum();
        let set: DescriptorSet = (0..total)
            .map(|i| Descriptor::new(i as u32, Vector::splat(i as f32)))
            .collect();
        let mut next = 0u32;
        let chunks: Vec<ChunkDef> = sizes
            .iter()
            .map(|&n| {
                let positions: Vec<u32> = (next..next + n as u32).collect();
                next += n as u32;
                ChunkDef {
                    positions,
                    centroid: Vector::ZERO,
                    radius: 1e9,
                }
            })
            .collect();
        ChunkStore::create(&dir, "ix", &set, &chunks, 512).expect("create")
    }

    fn recovering_policy() -> RetryPolicy {
        RetryPolicy::new(
            TRANSIENT_CLEAR + 1,
            VirtualDuration::from_ms(5.0),
            VirtualDuration::from_ms(1.0),
        )
    }

    #[test]
    fn passthrough_policy_is_transparent() {
        let store = store_with_chunks("pass", &[2, 3, 1]);
        let source = RetrySource::new(Arc::new(FileSource::new(&store)), RetryPolicy::none());
        let mut stream = source.open_stream(vec![1, 2, 0]).expect("open");
        let mut ids = Vec::new();
        while let Some(item) = stream.next_chunk() {
            ids.push(item.expect("chunk").id);
        }
        assert_eq!(ids, vec![1, 2, 0]);
        assert_eq!(stream.take_injected_delay(), VirtualDuration::ZERO);
    }

    #[test]
    fn transient_faults_recover_with_the_time_charged() {
        let store = store_with_chunks("recover", &[2, 2]);
        let plan = FaultPlan::new(FaultConfig::flaky(23, 1.0));
        let source = RetrySource::new(
            Arc::new(FaultSource::new(Arc::new(FileSource::new(&store)), plan)),
            recovering_policy(),
        );
        let mut stream = source.open_stream(vec![0, 1]).expect("open");
        let policy = recovering_policy();
        for want in [0usize, 1] {
            let chunk = stream.next_chunk().expect("item").expect("recovered");
            assert_eq!(chunk.id, want);
            // All TRANSIENT_CLEAR failed attempts were charged.
            let want_spent: VirtualDuration = (0..TRANSIENT_CLEAR)
                .map(|a| policy.attempt_cost(a))
                .fold(VirtualDuration::ZERO, |acc, c| acc + c);
            let delay = stream.take_injected_delay();
            assert_eq!(delay.as_secs().to_bits(), want_spent.as_secs().to_bits());
        }
        assert!(stream.next_chunk().is_none());
    }

    #[test]
    fn exhausted_budget_becomes_chunk_lost_and_the_stream_continues() {
        let store = store_with_chunks("exhaust", &[1, 1, 1]);
        let plan = FaultPlan::new(FaultConfig::flaky(29, 1.0));
        // Budget below TRANSIENT_CLEAR: chunk reads never recover.
        let policy = RetryPolicy::new(2, VirtualDuration::from_ms(5.0), VirtualDuration::ZERO);
        let source = RetrySource::new(
            Arc::new(FaultSource::new(Arc::new(FileSource::new(&store)), plan)),
            policy,
        );
        let mut stream = source.open_stream(vec![0, 1, 2]).expect("open");
        for want in 0..3usize {
            match stream.next_chunk().expect("item") {
                Err(Error::ChunkLost {
                    chunk,
                    attempts,
                    spent,
                }) => {
                    assert_eq!(chunk, want);
                    assert_eq!(attempts, 2);
                    assert_eq!(spent.as_ms().to_bits(), 10.0f64.to_bits());
                }
                other => panic!("expected ChunkLost, got {other:?}"),
            }
        }
        assert!(stream.next_chunk().is_none());
    }

    #[test]
    fn permanent_errors_are_not_retried() {
        let store = store_with_chunks("perm", &[1, 1]);
        let plan = (0..10_000u64)
            .map(|seed| FaultPlan::new(FaultConfig::lossy(seed, 0.4)))
            .find(|p| p.permanent_losses(2) == vec![0])
            .expect("a seed losing only chunk 0 exists");
        let fault = Arc::new(FaultSource::new(Arc::new(FileSource::new(&store)), plan));
        let source = RetrySource::new(
            Arc::clone(&fault) as Arc<dyn ChunkSource>,
            RetryPolicy::new(5, VirtualDuration::from_ms(5.0), VirtualDuration::ZERO),
        );
        let mut stream = source.open_stream(vec![0, 1]).expect("open");
        match stream.next_chunk().expect("item") {
            Err(Error::ChunkLost {
                chunk, attempts, ..
            }) => {
                assert_eq!(chunk, 0);
                assert_eq!(attempts, 1, "permanent loss must not burn the retry budget");
            }
            other => panic!("expected ChunkLost, got {other:?}"),
        }
        assert_eq!(stream.next_chunk().expect("item").expect("chunk").id, 1);
        assert_eq!(fault.attempts_for(0), 1);
    }
}
