//! [`FaultSource`]: a chunk-source decorator that injects the planned
//! faults into any stack.
//!
//! The decorator pulls each chunk from the inner source as usual, then
//! consults the [`FaultPlan`] for the current attempt at that chunk:
//! deliveries pass through (possibly with an injected latency spike,
//! surfaced via [`ChunkStream::take_injected_delay`]), faults replace the
//! successfully-read payload with the planned error. A faulted chunk is
//! *consumed* — the stream does not fuse and continues with the next
//! chunk — so retry layers re-request the chunk through a fresh stream
//! and skipping sessions advance cleanly past it.
//!
//! Attempt counters are shared at the source level: a retry that re-opens
//! a stream over the remaining order observes attempt `n + 1` for the
//! chunk that just failed, which is what lets transient faults clear.

use crate::plan::{Fault, FaultPlan};
use eff2_storage::source::{ChunkSource, ChunkStream, SourcedChunk};
use eff2_storage::{Error, Result, VirtualDuration};
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

/// Recovers the attempt-counter guard past a poisoned lock; the map is
/// only ever incremented, so continuing is sound.
fn lock_counters(m: &Mutex<BTreeMap<usize, u32>>) -> MutexGuard<'_, BTreeMap<usize, u32>> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// A [`ChunkSource`] decorator injecting the faults of a [`FaultPlan`].
pub struct FaultSource {
    inner: Arc<dyn ChunkSource>,
    plan: FaultPlan,
    /// Read attempts per chunk, shared across this source's streams.
    attempts: Arc<Mutex<BTreeMap<usize, u32>>>,
}

impl FaultSource {
    /// Decorates `inner` with the faults of `plan`.
    pub fn new(inner: Arc<dyn ChunkSource>, plan: FaultPlan) -> FaultSource {
        FaultSource {
            inner,
            plan,
            attempts: Arc::new(Mutex::new(BTreeMap::new())),
        }
    }

    /// The plan this source injects.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Read attempts observed so far for `chunk`.
    pub fn attempts_for(&self, chunk: usize) -> u32 {
        lock_counters(&self.attempts)
            .get(&chunk)
            .copied()
            .unwrap_or(0)
    }
}

impl ChunkSource for FaultSource {
    fn open_stream(&self, order: Vec<usize>) -> Result<Box<dyn ChunkStream>> {
        Ok(Box::new(FaultStream {
            inner: self.inner.open_stream(order)?,
            plan: self.plan,
            attempts: Arc::clone(&self.attempts),
            pending_delay: VirtualDuration::ZERO,
        }))
    }
}

struct FaultStream {
    inner: Box<dyn ChunkStream>,
    plan: FaultPlan,
    attempts: Arc<Mutex<BTreeMap<usize, u32>>>,
    pending_delay: VirtualDuration,
}

impl ChunkStream for FaultStream {
    fn next_chunk(&mut self) -> Option<Result<SourcedChunk>> {
        let chunk = match self.inner.next_chunk()? {
            // A real inner error passes through untouched (the inner
            // stream fuses itself, so the next pull ends the stream).
            Err(e) => return Some(Err(e)),
            Ok(chunk) => chunk,
        };
        let attempt = {
            let mut counters = lock_counters(&self.attempts);
            let slot = counters.entry(chunk.id).or_insert(0);
            let attempt = *slot;
            *slot += 1;
            attempt
        };
        match self.plan.fault_for(chunk.id, attempt) {
            Fault::Deliver { delay } => {
                self.pending_delay += self.inner.take_injected_delay() + delay;
                Some(Ok(chunk))
            }
            Fault::Transient => Some(Err(Error::Io(std::io::Error::new(
                std::io::ErrorKind::Interrupted,
                format!("injected transient fault on chunk {}", chunk.id),
            )))),
            Fault::ShortRead => Some(Err(Error::Truncated("chunk body"))),
            Fault::Corrupt => {
                // Models corruption *detected by the chunk checksum*: the
                // bytes arrived but failed verification.
                let sum = chunk.id as u32 ^ 0xdead_beef;
                Some(Err(Error::Corrupt {
                    offset: chunk.id as u64,
                    expected: sum,
                    found: !sum,
                }))
            }
            Fault::Permanent => Some(Err(Error::ChunkLost {
                chunk: chunk.id,
                attempts: attempt + 1,
                spent: VirtualDuration::ZERO,
            })),
        }
    }

    fn take_injected_delay(&mut self) -> VirtualDuration {
        std::mem::replace(&mut self.pending_delay, VirtualDuration::ZERO)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::FaultConfig;
    use eff2_descriptor::{Descriptor, DescriptorSet, Vector};
    use eff2_storage::source::FileSource;
    use eff2_storage::{ChunkDef, ChunkStore};
    use std::sync::atomic::{AtomicUsize, Ordering};

    static DIR_SEQ: AtomicUsize = AtomicUsize::new(0);

    fn store_with_chunks(tag: &str, sizes: &[usize]) -> ChunkStore {
        let unique = DIR_SEQ.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!(
            "eff2_chaos_fault_{tag}_{}_{unique}",
            std::process::id()
        ));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let total: usize = sizes.iter().sum();
        let set: DescriptorSet = (0..total)
            .map(|i| Descriptor::new(i as u32, Vector::splat(i as f32)))
            .collect();
        let mut next = 0u32;
        let chunks: Vec<ChunkDef> = sizes
            .iter()
            .map(|&n| {
                let positions: Vec<u32> = (next..next + n as u32).collect();
                next += n as u32;
                ChunkDef {
                    positions,
                    centroid: Vector::ZERO,
                    radius: 1e9,
                }
            })
            .collect();
        ChunkStore::create(&dir, "ix", &set, &chunks, 512).expect("create")
    }

    fn drain(stream: &mut dyn ChunkStream) -> Vec<std::result::Result<usize, String>> {
        let mut out = Vec::new();
        while let Some(item) = stream.next_chunk() {
            out.push(item.map(|c| c.id).map_err(|e| e.to_string()));
        }
        out
    }

    #[test]
    fn quiet_plan_is_a_passthrough() {
        let store = store_with_chunks("quiet", &[3, 4, 2]);
        let source = FaultSource::new(
            Arc::new(FileSource::new(&store)),
            FaultPlan::new(FaultConfig::quiet(1)),
        );
        let mut stream = source.open_stream(vec![2, 0, 1]).expect("open");
        assert_eq!(
            drain(stream.as_mut()),
            vec![Ok(2), Ok(0), Ok(1)],
            "rate-0 delivers every chunk in order"
        );
        assert_eq!(stream.take_injected_delay(), VirtualDuration::ZERO);
    }

    #[test]
    fn permanent_loss_surfaces_chunk_lost_without_fusing() {
        let store = store_with_chunks("perm", &[2, 2, 2, 2]);
        // Find a seed losing exactly chunk 1 among ids 0..4 at rate 0.3.
        let plan = (0..10_000u64)
            .map(|seed| FaultPlan::new(FaultConfig::lossy(seed, 0.3)))
            .find(|p| p.permanent_losses(4) == vec![1])
            .expect("a seed losing only chunk 1 exists");
        let source = FaultSource::new(Arc::new(FileSource::new(&store)), plan);
        let mut stream = source.open_stream(vec![0, 1, 2, 3]).expect("open");
        let got = drain(stream.as_mut());
        assert_eq!(got.len(), 4, "faulted chunk is consumed, stream continues");
        assert_eq!(got[0], Ok(0));
        assert!(got[1].as_ref().is_err_and(|m| m.contains("chunk 1 lost")));
        assert_eq!(got[2], Ok(2));
        assert_eq!(got[3], Ok(3));
    }

    #[test]
    fn transient_faults_clear_on_a_fresh_stream() {
        let store = store_with_chunks("transient", &[2]);
        let source = FaultSource::new(
            Arc::new(FileSource::new(&store)),
            FaultPlan::new(FaultConfig::flaky(17, 1.0)),
        );
        // Attempts 0..TRANSIENT_CLEAR fail; the next fresh stream reads clean.
        for _ in 0..crate::plan::TRANSIENT_CLEAR {
            let mut stream = source.open_stream(vec![0]).expect("open");
            assert!(stream.next_chunk().expect("item").is_err());
        }
        let mut stream = source.open_stream(vec![0]).expect("open");
        assert!(stream.next_chunk().expect("item").is_ok());
        assert_eq!(source.attempts_for(0), crate::plan::TRANSIENT_CLEAR + 1);
    }

    #[test]
    fn spikes_accumulate_into_the_injected_delay() {
        let store = store_with_chunks("spike", &[1, 1]);
        let config = FaultConfig {
            spike_rate: 1.0,
            spike_ms: 4.0,
            ..FaultConfig::quiet(3)
        };
        let source = FaultSource::new(
            Arc::new(FileSource::new(&store)),
            FaultPlan::new(FaultConfig { ..config }),
        );
        let mut stream = source.open_stream(vec![0, 1]).expect("open");
        stream.next_chunk().expect("item").expect("chunk");
        let delay = stream.take_injected_delay();
        assert_eq!(delay.as_secs().to_bits(), 0.004f64.to_bits());
        // Taking resets the accumulator.
        assert_eq!(stream.take_injected_delay(), VirtualDuration::ZERO);
    }
}
