//! Whole-shard-down faults for fleet serving.
//!
//! A [`ShardFaultPlan`] decrees which shard *nodes* are unavailable for
//! the duration of a run — the coarse-grained failure mode replication
//! exists for. Like every other schedule in this crate it is a pure
//! function of its inputs: the same seed and shard count always down the
//! same shards, so fleet chaos runs are replayable and tests can assert
//! the routing consequences exactly.
//!
//! Shard-down is modelled as a *static* property of the run (the node is
//! down before the first query arrives and stays down). That keeps routing
//! deterministic per query — the scatter–gather driver computes each
//! chunk's live owner once, at admission — and matches the recovery story:
//! a node that dies mid-epoch is drained and the epoch replayed, exactly
//! as the deterministic-replay design (DESIGN.md) prescribes.

use crate::plan::unit;

/// Salt for the per-shard down draw (distinct from the chunk-level salts
/// in [`crate::plan`]).
const SHARD_SALT: u64 = 0xd6e8_feb8_6659_fd93;

/// A seeded (or explicit) schedule of downed shard nodes.
#[derive(Clone, Debug, PartialEq)]
pub struct ShardFaultPlan {
    /// Explicitly downed shard ids (sorted, deduplicated).
    fixed: Vec<u32>,
    /// Seed for the per-shard random draw (unused when `down_rate` is 0).
    seed: u64,
    /// Probability any given shard is down for the run.
    down_rate: f64,
}

impl ShardFaultPlan {
    /// No shard is ever down.
    pub fn none() -> ShardFaultPlan {
        ShardFaultPlan {
            fixed: Vec::new(),
            seed: 0,
            down_rate: 0.0,
        }
    }

    /// Exactly the listed shards are down.
    pub fn fixed(shards: &[u32]) -> ShardFaultPlan {
        let mut fixed = shards.to_vec();
        fixed.sort_unstable();
        fixed.dedup();
        ShardFaultPlan {
            fixed,
            seed: 0,
            down_rate: 0.0,
        }
    }

    /// Each shard is down independently with probability `down_rate`,
    /// drawn once per shard from `seed`.
    pub fn seeded(seed: u64, down_rate: f64) -> ShardFaultPlan {
        ShardFaultPlan {
            fixed: Vec::new(),
            seed,
            down_rate,
        }
    }

    /// Whether anything can ever be down under this plan.
    pub fn is_quiet(&self) -> bool {
        self.fixed.is_empty() && self.down_rate == 0.0
    }

    /// Whether shard `shard` is down for the run.
    pub fn is_down(&self, shard: u32) -> bool {
        self.fixed.binary_search(&shard).is_ok()
            || (self.down_rate > 0.0
                && unit(self.seed, u64::from(shard), SHARD_SALT, 0) < self.down_rate)
    }

    /// The down flags for a fleet of `n_shards` nodes — the routing table
    /// input (`ShardMap::route` takes exactly this shape).
    pub fn down_mask(&self, n_shards: usize) -> Vec<bool> {
        (0..n_shards).map(|s| self.is_down(s as u32)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_downs_nothing() {
        let plan = ShardFaultPlan::none();
        assert!(plan.is_quiet());
        assert!(plan.down_mask(16).iter().all(|&d| !d));
    }

    #[test]
    fn fixed_downs_exactly_the_listed_shards() {
        let plan = ShardFaultPlan::fixed(&[3, 1, 3]);
        assert!(!plan.is_quiet());
        assert_eq!(plan.down_mask(5), vec![false, true, false, true, false]);
    }

    #[test]
    fn seeded_draw_is_deterministic() {
        let a = ShardFaultPlan::seeded(99, 0.5);
        let b = ShardFaultPlan::seeded(99, 0.5);
        assert_eq!(a.down_mask(64), b.down_mask(64));
    }

    #[test]
    fn seeded_rate_fires_near_nominal() {
        let plan = ShardFaultPlan::seeded(7, 0.25);
        let downed = plan.down_mask(4000).iter().filter(|&&d| d).count();
        assert!(
            (700..1300).contains(&downed),
            "0.25 down-rate over 4000 shards fired {downed} times"
        );
    }
}
