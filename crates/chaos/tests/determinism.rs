//! Chaos is only useful if it replays: the same seed must reproduce the
//! same faults, the same degradation report and the same neighbours,
//! bit for bit — and the acceptance properties of the fault model hold:
//! an all-transient schedule under a sufficient retry budget recovers a
//! bit-identical answer (paying for the retries in modelled time), and a
//! lossy schedule's degradation report matches the injected losses
//! exactly, chunk by chunk and descriptor by descriptor.

mod common;

use common::{arb_former, assert_bit_identical, build_store, lumpy_set};
use eff2_chaos::plan::TRANSIENT_CLEAR;
use eff2_chaos::{FaultConfig, FaultPlan, FaultSource, RetryPolicy, RetrySource};
use eff2_core::search::search;
use eff2_core::session::{SearchSession, SkipPolicy};
use eff2_core::{SearchParams, SearchResult, StopRule};
use eff2_descriptor::Vector;
use eff2_storage::diskmodel::{DiskModel, VirtualDuration};
use eff2_storage::source::{ChunkSource, FileSource};
use eff2_storage::ChunkStore;
use proptest::prelude::*;
use std::sync::Arc;

/// Runs one search through the full chaos stack
/// (`RetrySource(FaultSource(FileSource))`) with skipping enabled,
/// returning the result and the fault layer (for attempt inspection).
fn chaos_run(
    store: &ChunkStore,
    model: &DiskModel,
    query: &Vector,
    params: &SearchParams,
    config: FaultConfig,
    policy: RetryPolicy,
) -> (SearchResult, Arc<FaultSource>) {
    let fault = Arc::new(FaultSource::new(
        Arc::new(FileSource::new(store)),
        FaultPlan::new(config),
    ));
    let source = Arc::new(RetrySource::new(
        Arc::clone(&fault) as Arc<dyn ChunkSource>,
        policy,
    ));
    let mut session =
        SearchSession::with_source(store, model, query, params, source as Arc<dyn ChunkSource>);
    session.set_skip_policy(SkipPolicy::SkipUnavailable);
    session.run_to_stop().expect("degraded run completes");
    (session.into_result(), fault)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Same seed ⇒ same neighbours AND same degradation report, bit for
    /// bit; a different seed draws a different loss schedule.
    #[test]
    fn same_seed_replays_the_same_degraded_search(
        former in arb_former(),
        n in 60usize..200,
        seed in 0u64..1000,
        k in 1usize..10,
    ) {
        let set = lumpy_set(n);
        let store = build_store("replay", &set, former.as_ref());
        let model = DiskModel::ata_2005();
        let query = set.vector_owned(n / 2);
        // Scan the whole ranked order so every planned loss is observed.
        let params = SearchParams {
            k,
            stop: StopRule::Chunks(usize::MAX),
            prefetch_depth: 2,
            log_snapshots: true,
        };
        let config = FaultConfig::lossy(seed, 0.3);
        let policy = RetryPolicy::new(
            2,
            VirtualDuration::from_ms(5.0),
            VirtualDuration::from_ms(1.0),
        );

        let (a, _) = chaos_run(&store, &model, &query, &params, config, policy);
        let (b, _) = chaos_run(&store, &model, &query, &params, config, policy);
        assert_bit_identical(&a, &b, "same seed");

        // Every search completes even when chunks are lost.
        prop_assert!(a.log.completed, "degraded search still completes");

        // The report names exactly the planned losses (recorded in
        // ranked-visit order; compare as sets via a sort).
        let plan = FaultPlan::new(config);
        let want_lost = plan.permanent_losses(store.n_chunks());
        let mut got_lost = a.log.degradation.lost_chunks.clone();
        got_lost.sort_unstable();
        prop_assert_eq!(&got_lost, &want_lost);
        prop_assert_eq!(a.log.degradation.chunks_lost, want_lost.len());
        let want_desc: u64 = want_lost
            .iter()
            .map(|&c| u64::from(store.metas()[c].count))
            .sum();
        prop_assert_eq!(a.log.degradation.descriptors_lost, want_desc);

        // A different seed draws a different schedule (checked over a
        // domain wide enough that collision is impossible in practice).
        let other = FaultPlan::new(FaultConfig::lossy(seed ^ 0x9E37_79B9, 0.3));
        prop_assert_ne!(other.permanent_losses(4096), plan.permanent_losses(4096));
    }
}

/// Acceptance: a schedule of 100% transient faults under a retry budget of
/// `TRANSIENT_CLEAR + 1` recovers every chunk — neighbours and scan
/// counters bit-identical to the fault-free search, no degradation, and
/// the retries are charged to the modelled clock.
#[test]
fn all_transient_schedule_recovers_bit_identical_under_sufficient_budget() {
    let set = lumpy_set(160);
    let former = eff2_core::chunkers::SrTreeChunker { leaf_size: 16 };
    let store = build_store("transient", &set, &former);
    let model = DiskModel::ata_2005();
    let query = set.vector_owned(80);
    let params = SearchParams {
        k: 8,
        stop: StopRule::ToCompletion,
        prefetch_depth: 2,
        log_snapshots: true,
    };

    let want = search(&store, &model, &query, &params).expect("fault-free");

    let config = FaultConfig::flaky(41, 1.0);
    let policy = RetryPolicy::new(
        TRANSIENT_CLEAR + 1,
        VirtualDuration::from_ms(5.0),
        VirtualDuration::from_ms(1.0),
    );
    let (got, fault) = chaos_run(&store, &model, &query, &params, config, policy);

    // The answer is exact: same neighbours, same scan counters.
    assert_eq!(want.neighbors.len(), got.neighbors.len());
    for (w, g) in want.neighbors.iter().zip(got.neighbors.iter()) {
        assert_eq!(w.id, g.id, "neighbor id");
        assert_eq!(w.dist.to_bits(), g.dist.to_bits(), "neighbor dist");
    }
    assert_eq!(want.log.chunks_read, got.log.chunks_read);
    assert_eq!(want.log.descriptors_scanned, got.log.descriptors_scanned);
    assert_eq!(want.log.bytes_read, got.log.bytes_read);
    assert!(!got.log.degradation.is_degraded(), "nothing was lost");
    assert!(got.log.completed);

    // Every chunk the search visited needed TRANSIENT_CLEAR failing
    // attempts plus the delivering one (chunks pruned by the completion
    // bound are never requested), and that recovery time landed on the
    // virtual clock.
    let mut recovered = 0usize;
    for chunk in 0..store.n_chunks() {
        match fault.attempts_for(chunk) {
            0 => {}
            n => {
                assert_eq!(n, TRANSIENT_CLEAR + 1, "chunk {chunk} attempts");
                recovered += 1;
            }
        }
    }
    assert_eq!(
        recovered, got.log.chunks_read,
        "every read chunk was retried"
    );
    assert!(recovered > 0, "the search read at least one chunk");
    assert!(
        got.log.total_virtual > want.log.total_virtual,
        "retries must cost modelled time: {:?} vs fault-free {:?}",
        got.log.total_virtual,
        want.log.total_virtual
    );
}

/// An insufficient retry budget against the same all-transient schedule
/// loses every chunk — and reports every one of them.
#[test]
fn insufficient_budget_against_transients_reports_every_chunk_lost() {
    let set = lumpy_set(120);
    let former = eff2_core::chunkers::SrTreeChunker { leaf_size: 16 };
    let store = build_store("starved", &set, &former);
    let model = DiskModel::ata_2005();
    let query = set.vector_owned(60);
    let params = SearchParams {
        k: 6,
        stop: StopRule::Chunks(usize::MAX),
        prefetch_depth: 2,
        log_snapshots: false,
    };

    let config = FaultConfig::flaky(7, 1.0);
    let policy = RetryPolicy::new(
        TRANSIENT_CLEAR, // one attempt short of clearing
        VirtualDuration::from_ms(5.0),
        VirtualDuration::from_ms(1.0),
    );
    let (got, _) = chaos_run(&store, &model, &query, &params, config, policy);

    assert!(got.log.completed, "the search still runs to completion");
    assert_eq!(got.log.chunks_read, 0);
    assert_eq!(got.log.degradation.chunks_lost, store.n_chunks());
    assert_eq!(
        got.log.degradation.lost_chunks,
        (0..store.n_chunks()).collect::<Vec<_>>()
    );
    assert_eq!(
        got.log.degradation.descriptors_lost,
        store
            .metas()
            .iter()
            .map(|m| u64::from(m.count))
            .sum::<u64>()
    );
    assert!(
        got.neighbors.is_empty(),
        "nothing scanned, nothing returned"
    );
}
