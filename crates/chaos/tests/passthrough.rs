//! At every fault rate of zero the chaos decorators must vanish: a
//! [`FaultSource`] over a quiet plan, and a [`RetrySource`] stacked on top
//! of it, produce `ChunkEvent` traces, neighbour sets, virtual clocks and
//! (empty) degradation reports bit-identical to the undecorated search —
//! through every source kind, chunker and stop rule, even with the
//! skip-unavailable policy armed.

mod common;

use common::{arb_former, arb_stop, assert_bit_identical, build_store, drive_stepwise, lumpy_set};
use eff2_chaos::{FaultConfig, FaultPlan, FaultSource, RetryPolicy, RetrySource};
use eff2_core::search::search;
use eff2_core::session::{SearchSession, SkipPolicy};
use eff2_core::SearchParams;
use eff2_descriptor::Vector;
use eff2_storage::diskmodel::DiskModel;
use eff2_storage::source::{ChunkSource, FileSource, PrefetchSource, ResidentSource};
use eff2_storage::ChunkStore;
use proptest::prelude::*;
use std::sync::Arc;

/// The three source kinds the equivalence suite pins, as fresh factories so
/// each decorated stack gets its own base.
fn base_sources(store: &ChunkStore) -> Vec<(&'static str, Arc<dyn ChunkSource>)> {
    vec![
        (
            "file",
            Arc::new(FileSource::new(store)) as Arc<dyn ChunkSource>,
        ),
        (
            "prefetch",
            Arc::new(PrefetchSource::new(store, 2)) as Arc<dyn ChunkSource>,
        ),
        (
            "resident",
            Arc::new(ResidentSource::new(store, u64::MAX)) as Arc<dyn ChunkSource>,
        ),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn quiet_chaos_stack_is_a_bit_identical_passthrough(
        former in arb_former(),
        stop in arb_stop(),
        n in 40usize..200,
        k in 0usize..10,
        seed in 0u64..1000,
        qsel in 0usize..4,
    ) {
        let set = lumpy_set(n);
        let store = build_store("quiet", &set, former.as_ref());
        let model = DiskModel::ata_2005();
        let query = match qsel {
            0 => Vector::ZERO,
            1 => Vector::splat(9.5),
            2 => set.vector_owned(n / 2),
            _ => set.vector_owned(n - 1),
        };
        let params = SearchParams { k, stop, prefetch_depth: 2, log_snapshots: true };
        let tag = format!("{}/{stop:?}/k{k}", former.name());
        let plan = FaultPlan::new(FaultConfig::quiet(seed));
        prop_assert!(plan.is_quiet());

        let want = search(&store, &model, &query, &params).expect("one-shot");
        prop_assert!(!want.log.degradation.is_degraded());

        for (src_tag, base) in base_sources(&store) {
            // FaultSource alone over the quiet plan.
            let faulted = Arc::new(FaultSource::new(Arc::clone(&base), plan));
            let mut session = SearchSession::with_source(
                &store, &model, &query, &params,
                Arc::clone(&faulted) as Arc<dyn ChunkSource>,
            );
            session.set_skip_policy(SkipPolicy::SkipUnavailable);
            let got = drive_stepwise(session);
            assert_bit_identical(&want, &got, &format!("{tag}/{src_tag}/fault"));

            // The full retry stack, with both a passthrough policy and a
            // generous budget: with nothing to retry neither may disturb
            // the trace.
            for (pol_tag, policy) in [
                ("none", RetryPolicy::none()),
                (
                    "retry",
                    RetryPolicy::new(
                        4,
                        eff2_storage::diskmodel::VirtualDuration::from_ms(5.0),
                        eff2_storage::diskmodel::VirtualDuration::from_ms(1.0),
                    ),
                ),
            ] {
                let stacked = Arc::new(RetrySource::new(
                    Arc::new(FaultSource::new(Arc::clone(&base), plan)),
                    policy,
                ));
                let mut session = SearchSession::with_source(
                    &store, &model, &query, &params,
                    stacked as Arc<dyn ChunkSource>,
                );
                session.set_skip_policy(SkipPolicy::SkipUnavailable);
                let got = drive_stepwise(session);
                assert_bit_identical(&want, &got, &format!("{tag}/{src_tag}/stack-{pol_tag}"));
            }
        }
    }
}
