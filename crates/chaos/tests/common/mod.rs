//! Shared fixtures for the chaos integration tests: a lumpy collection,
//! stores over arbitrary chunkers, and the bit-identity assertion the
//! equivalence suites use.
#![allow(dead_code)]

use eff2_core::chunkers::{
    ChunkFormer, HybridChunker, RandomChunker, RoundRobinChunker, SrTreeChunker,
};
use eff2_core::session::SearchSession;
use eff2_core::{SearchResult, StopRule};
use eff2_descriptor::{Descriptor, DescriptorSet, Vector};
use eff2_storage::diskmodel::VirtualDuration;
use eff2_storage::ChunkStore;
use proptest::prelude::*;
use std::sync::atomic::{AtomicUsize, Ordering};

static DIR_SEQ: AtomicUsize = AtomicUsize::new(0);

pub fn tmp_dir(tag: &str) -> std::path::PathBuf {
    let unique = DIR_SEQ.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!(
        "eff2_chaos_it_{tag}_{}_{unique}",
        std::process::id()
    ));
    std::fs::create_dir_all(&dir).expect("mkdir");
    dir
}

pub fn lumpy_set(n: usize) -> DescriptorSet {
    (0..n)
        .map(|i| {
            let blob = (i % 5) as f32 * 20.0;
            let mut v = Vector::splat(blob);
            v[0] += ((i * 31) % 23) as f32 * 0.3;
            v[3] -= ((i * 17) % 19) as f32 * 0.2;
            Descriptor::new(i as u32, v)
        })
        .collect()
}

pub fn build_store(tag: &str, set: &DescriptorSet, former: &dyn ChunkFormer) -> ChunkStore {
    let formation = former.form(set);
    ChunkStore::create(&tmp_dir(tag), "ix", set, &formation.chunks, 512).expect("create")
}

pub fn vd_bits(t: VirtualDuration) -> u64 {
    t.as_secs().to_bits()
}

/// Bit-identity over everything the paper's figures are computed from,
/// including the degradation report.
pub fn assert_bit_identical(want: &SearchResult, got: &SearchResult, tag: &str) {
    assert_eq!(want.neighbors.len(), got.neighbors.len(), "{tag}: k");
    for (w, g) in want.neighbors.iter().zip(got.neighbors.iter()) {
        assert_eq!(w.id, g.id, "{tag}: neighbor id");
        assert_eq!(w.dist.to_bits(), g.dist.to_bits(), "{tag}: neighbor dist");
    }
    let (wl, gl) = (&want.log, &got.log);
    assert_eq!(
        vd_bits(wl.index_read_time),
        vd_bits(gl.index_read_time),
        "{tag}: index time"
    );
    assert_eq!(wl.chunks_read, gl.chunks_read, "{tag}: chunks_read");
    assert_eq!(
        wl.descriptors_scanned, gl.descriptors_scanned,
        "{tag}: scanned"
    );
    assert_eq!(wl.bytes_read, gl.bytes_read, "{tag}: bytes");
    assert_eq!(
        vd_bits(wl.total_virtual),
        vd_bits(gl.total_virtual),
        "{tag}: total virtual"
    );
    assert_eq!(wl.completed, gl.completed, "{tag}: completed");
    assert_eq!(wl.degradation, gl.degradation, "{tag}: degradation");
    assert_eq!(wl.events.len(), gl.events.len(), "{tag}: event count");
    for (w, g) in wl.events.iter().zip(gl.events.iter()) {
        assert_eq!(w.rank, g.rank, "{tag}: rank");
        assert_eq!(w.chunk_id, g.chunk_id, "{tag}: chunk_id");
        assert_eq!(w.count, g.count, "{tag}: count");
        assert_eq!(w.bytes_read, g.bytes_read, "{tag}: event bytes");
        assert_eq!(
            vd_bits(w.completed_at),
            vd_bits(g.completed_at),
            "{tag}: completed_at"
        );
        assert_eq!(w.kth_dist.to_bits(), g.kth_dist.to_bits(), "{tag}: kth");
        assert_eq!(w.topk_ids, g.topk_ids, "{tag}: topk snapshot");
    }
}

/// Drives a session one explicit `step()` at a time (checking the stop
/// predicate between steps, exactly what `run_to_stop` does internally)
/// and finalises it.
pub fn drive_stepwise(mut session: SearchSession) -> SearchResult {
    let mut steps = 0usize;
    while !session.stop_satisfied() {
        match session.step().expect("step") {
            Some(event) => assert_eq!(event.rank, steps, "events arrive in rank order"),
            None => break,
        }
        steps += 1;
    }
    session.into_result()
}

pub fn arb_former() -> impl Strategy<Value = Box<dyn ChunkFormer>> {
    prop_oneof![
        (8usize..60)
            .prop_map(|leaf| Box::new(SrTreeChunker { leaf_size: leaf }) as Box<dyn ChunkFormer>),
        (1usize..16)
            .prop_map(|n| Box::new(RoundRobinChunker { n_chunks: n }) as Box<dyn ChunkFormer>),
        (1usize..16, 0u64..4).prop_map(|(n, seed)| {
            Box::new(RandomChunker { n_chunks: n, seed }) as Box<dyn ChunkFormer>
        }),
        (10usize..50).prop_map(|size| {
            Box::new(HybridChunker {
                chunk_size: size,
                sweeps: 1,
                neighbor_chunks: 2,
                min_fill: 0.5,
                max_fill: 1.5,
            }) as Box<dyn ChunkFormer>
        }),
    ]
}

pub fn arb_stop() -> impl Strategy<Value = StopRule> {
    prop_oneof![
        (0usize..10).prop_map(StopRule::Chunks),
        (0.0f64..0.2).prop_map(|s| StopRule::VirtualTime(VirtualDuration::from_secs(s))),
        Just(StopRule::ToCompletion),
        (0.0f32..1.5).prop_map(StopRule::ToCompletionEps),
    ]
}
