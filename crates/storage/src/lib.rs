#![warn(missing_docs)]

//! # eff2-storage
//!
//! The on-disk chunk-index architecture of the eff2 paper (§4.2) plus the
//! hardware cost model needed to reproduce its timing results on modern
//! machines.
//!
//! > *"The chunk index consists of two files, a chunk file and an index
//! > file. The chunk file holds the descriptors … grouped according to the
//! > specific chunk-forming strategy. All the descriptors belonging to one
//! > chunk are stored together on disk and the chunks are stored
//! > sequentially. The chunks are padded to occupy full disk pages. The
//! > second file stores a simple index built over the chunk file. Each
//! > entry of the index stores the coordinates of the centroid of each
//! > chunk and the radius of the chunk, as well as its location in the
//! > chunk file."*
//!
//! * [`chunkfile`] / [`indexfile`] — binary codecs for the two files;
//! * [`store::ChunkStore`] — create/open a chunk index, read chunks;
//! * [`epoch`] — the additive mutability layer: an append-only delta op
//!   log with pinnable prefixes plus the epoch manifest that persists it
//!   next to the (still write-once) chunk/index files;
//! * [`prefetch`] — a pipelined reader that overlaps chunk I/O with
//!   processing (the overlap that motivates uniform chunk sizes);
//! * [`source`] — the [`ChunkSource`]/[`ChunkStream`] abstraction over chunk
//!   delivery: plain file reads, prefetching, or a byte-budgeted resident
//!   cache shared across queries — all charging identical modelled I/O;
//! * [`diskmodel`] — the simulated 2005 testbed (Dell 2.8 GHz P4, 40 GB ATA
//!   disk): a deterministic virtual clock calibrated so that reading and
//!   processing an SR-tree chunk of ≈2.5 k descriptors costs ≈10 ms,
//!   BAG's 1 M-descriptor monster chunk costs ≈1.8 s of CPU, and scanning a
//!   ≈2.7 k-entry chunk index costs ≈50 ms — the constants §5.5 reports.

pub mod bytes;
pub mod chunkfile;
pub mod diskmodel;
pub mod epoch;
pub mod error;
pub mod indexfile;
pub mod prefetch;
pub mod singleflight;
pub mod source;
pub mod store;

pub use diskmodel::{DiskModel, PipelineClock, VirtualDuration};
pub use epoch::{DeltaChunk, DeltaOp, DeltaPin, EpochManifest, FoldedDelta};
pub use error::{Error, ErrorClass, Result};
pub use indexfile::ChunkMeta;
pub use singleflight::{FlightOutcome, FlightStats, SingleFlight};
pub use source::{
    ChunkSource, ChunkStream, Fetched, FileSource, PrefetchSource, ReplicatedSource,
    ResidentSource, ResidentStats, SourcedChunk,
};
pub use store::{ChunkData, ChunkDef, ChunkStore};
