//! Creating and opening chunk indexes (the chunk file + index file pair).

use crate::chunkfile::{self, ChunkPayload};
use crate::error::{Error, Result};
use crate::indexfile::{self, ChunkMeta};
use eff2_descriptor::quant::{Codec, DescriptorCodec};
use eff2_descriptor::{DescriptorSet, Vector};
use std::fs::File;
use std::io::{BufReader, Read, Seek, SeekFrom};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Re-export: the decoded contents of one chunk.
pub use crate::chunkfile::ChunkPayload as ChunkData;

/// Input to [`ChunkStore::create`]: one chunk as its member positions plus
/// the centroid/radius summary the index file records.
#[derive(Clone, Debug)]
pub struct ChunkDef {
    /// Member positions into the backing collection.
    pub positions: Vec<u32>,
    /// Centroid of the members.
    pub centroid: Vector,
    /// Minimum bounding radius around the centroid.
    pub radius: f32,
}

/// An opened (or freshly created) chunk index.
///
/// The store is a cheap `Arc`-backed handle: cloning it shares the parsed
/// index (metas, paths, page size) without touching disk, which is what
/// lets readers, prefetchers and [chunk sources](crate::source) own their
/// handle instead of borrowing one — a search session can therefore outlive
/// the scope that opened the store.
#[derive(Clone, Debug)]
pub struct ChunkStore {
    inner: Arc<StoreInner>,
    /// Read mode of *this handle*: readers opened from a quantized view
    /// deliver codes from the v3 quant region instead of raw rows. The
    /// mode lives outside the `Arc` so raw and quantized views share the
    /// parsed index.
    quantized: bool,
}

#[derive(Debug)]
struct StoreInner {
    chunk_path: PathBuf,
    index_path: PathBuf,
    metas: Vec<ChunkMeta>,
    page_size: u32,
    total_descriptors: u64,
    /// Codec of a version-3 file; `None` for raw-only (v2) stores.
    codec: Option<Codec>,
    /// Per-chunk offsets into the quant region; empty for v2 stores.
    quant_offsets: Vec<u64>,
}

impl ChunkStore {
    /// Writes the chunk file and index file for `chunks` under
    /// `dir/name.chunks` and `dir/name.index`, then returns the opened
    /// store.
    ///
    /// Returns [`Error::Inconsistent`] if a chunk references a position
    /// outside `set` — chunk formers produce positions from the same
    /// collection by construction, so such a definition cannot be written
    /// as a coherent pair of files.
    pub fn create(
        dir: &Path,
        name: &str,
        set: &DescriptorSet,
        chunks: &[ChunkDef],
        page_size: u32,
    ) -> Result<ChunkStore> {
        Self::build_checked(dir, name, set, chunks, page_size, None)
    }

    /// [`create`](Self::create), additionally writing a quantized copy of
    /// every chunk (format version 3). The raw region stays byte-identical
    /// to what [`create`](Self::create) writes, so every raw reader works
    /// unchanged; [`quantized_view`](Self::quantized_view) opens the
    /// compressed side.
    pub fn create_quantized(
        dir: &Path,
        name: &str,
        set: &DescriptorSet,
        chunks: &[ChunkDef],
        page_size: u32,
        codec: &Codec,
    ) -> Result<ChunkStore> {
        Self::build_checked(dir, name, set, chunks, page_size, Some(codec))
    }

    /// The one checked builder behind [`create`](Self::create) and
    /// [`create_quantized`](Self::create_quantized): validates every chunk
    /// position against `set`, writes the chunk + index file pair (raw v2,
    /// or format v3 when `codec` is given) and opens the result. New
    /// writers — epoch compaction generations in particular — call this
    /// directly so any future format version inherits the same validation
    /// and the byte-identical raw region for free.
    pub fn build_checked(
        dir: &Path,
        name: &str,
        set: &DescriptorSet,
        chunks: &[ChunkDef],
        page_size: u32,
        codec: Option<&Codec>,
    ) -> Result<ChunkStore> {
        for (ci, c) in chunks.iter().enumerate() {
            for &p in &c.positions {
                if p as usize >= set.len() {
                    return Err(Error::Inconsistent(format!(
                        "chunk {ci} references position {p} outside the collection of {} descriptors",
                        set.len()
                    )));
                }
            }
        }
        std::fs::create_dir_all(dir)?;
        let chunk_path = dir.join(format!("{name}.chunks"));
        let index_path = dir.join(format!("{name}.index"));

        let membership: Vec<Vec<u32>> = chunks.iter().map(|c| c.positions.clone()).collect();
        let chunk_file = File::create(&chunk_path)?;
        let (locations, quant_start) = match codec {
            None => (
                chunkfile::write_chunks(set, &membership, page_size, chunk_file)?,
                0,
            ),
            Some(codec) => {
                chunkfile::write_chunks_quantized(set, &membership, page_size, codec, chunk_file)?
            }
        };

        let metas: Vec<ChunkMeta> = chunks
            .iter()
            .zip(locations.iter())
            .map(|(c, &(offset, byte_len, count))| ChunkMeta {
                centroid: c.centroid,
                radius: c.radius,
                offset,
                byte_len,
                count,
            })
            .collect();
        let index_file = File::create(&index_path)?;
        indexfile::write_index(&metas, page_size, index_file)?;

        let quant_offsets = match codec {
            None => Vec::new(),
            Some(c) => quant_offsets_from(quant_start, &metas, c.code_bytes(), page_size),
        };
        let total_descriptors = metas.iter().map(|m| u64::from(m.count)).sum::<u64>();
        Ok(ChunkStore {
            inner: Arc::new(StoreInner {
                chunk_path,
                index_path,
                metas,
                page_size,
                total_descriptors,
                codec: codec.cloned(),
                quant_offsets,
            }),
            quantized: false,
        })
    }

    /// Opens an existing chunk index, cross-validating the two files.
    pub fn open(chunk_path: &Path, index_path: &Path) -> Result<ChunkStore> {
        let (metas, page_size) = indexfile::read_index(File::open(index_path)?)?;
        let mut chunk_reader = BufReader::new(File::open(chunk_path)?);
        let header = chunkfile::read_header(&mut chunk_reader)?;
        if header.page_size != page_size {
            return Err(Error::Inconsistent(format!(
                "page size: chunk file {} vs index file {}",
                header.page_size, page_size
            )));
        }
        if header.n_chunks as usize != metas.len() {
            return Err(Error::Inconsistent(format!(
                "chunk count: chunk file {} vs index file {}",
                header.n_chunks,
                metas.len()
            )));
        }
        let file_len = std::fs::metadata(chunk_path)?.len();
        for (i, m) in metas.iter().enumerate() {
            let end = m.offset + chunkfile::chunk_span(u64::from(m.byte_len), u64::from(page_size));
            if end > file_len {
                return Err(Error::Inconsistent(format!(
                    "chunk {i} extends to byte {end} beyond file of {file_len} bytes"
                )));
            }
        }
        let (codec, quant_offsets) = if header.version == chunkfile::VERSION_QUANT {
            // The codec blob sits right after the header page.
            chunk_reader.seek(SeekFrom::Start(u64::from(page_size)))?;
            let mut blob = vec![0u8; header.codec_blob_len as usize];
            chunk_reader
                .read_exact(&mut blob)
                .map_err(|_| Error::Truncated("codec parameter blob"))?;
            let codec = Codec::from_bytes(header.codec_kind, &blob).ok_or_else(|| {
                Error::Inconsistent(format!(
                    "unreadable codec parameters (kind {}, {} bytes)",
                    header.codec_kind, header.codec_blob_len
                ))
            })?;
            let offsets =
                quant_offsets_from(header.quant_start, &metas, codec.code_bytes(), page_size);
            if let (Some(&last), Some(m)) = (offsets.last(), metas.last()) {
                let end = last
                    + chunkfile::chunk_span(
                        chunkfile::quant_byte_len(m.count, codec.code_bytes()),
                        u64::from(page_size),
                    );
                if end > file_len {
                    return Err(Error::Inconsistent(format!(
                        "quant region extends to byte {end} beyond file of {file_len} bytes"
                    )));
                }
            }
            (Some(codec), offsets)
        } else {
            (None, Vec::new())
        };
        Ok(ChunkStore {
            inner: Arc::new(StoreInner {
                chunk_path: chunk_path.to_path_buf(),
                index_path: index_path.to_path_buf(),
                total_descriptors: header.total_descriptors,
                metas,
                page_size,
                codec,
                quant_offsets,
            }),
            quantized: false,
        })
    }

    /// The index entries (chunk order).
    pub fn metas(&self) -> &[ChunkMeta] {
        &self.inner.metas
    }

    /// Number of chunks.
    pub fn n_chunks(&self) -> usize {
        self.inner.metas.len()
    }

    /// Total descriptors across chunks.
    pub fn total_descriptors(&self) -> u64 {
        self.inner.total_descriptors
    }

    /// The page size chunks are padded to.
    pub fn page_size(&self) -> u32 {
        self.inner.page_size
    }

    /// Size of the index file in bytes (charged when the search reads and
    /// ranks the index).
    pub fn index_bytes(&self) -> u64 {
        indexfile::index_file_bytes(self.inner.metas.len())
    }

    /// Path of the chunk file.
    pub fn chunk_path(&self) -> &Path {
        &self.inner.chunk_path
    }

    /// Path of the index file.
    pub fn index_path(&self) -> &Path {
        &self.inner.index_path
    }

    /// The codec of a version-3 store; `None` for raw-only files.
    pub fn codec(&self) -> Option<&Codec> {
        self.inner.codec.as_ref()
    }

    /// Whether readers opened from this handle deliver quantized codes.
    pub fn is_quantized(&self) -> bool {
        self.quantized
    }

    /// A handle whose readers deliver quantized codes from the v3 quant
    /// region. Every other aspect (metas, paths, page size) is shared
    /// with this handle, so chunk ids and rankings carry over unchanged.
    ///
    /// Returns [`Error::Inconsistent`] for a raw-only (v2) store.
    pub fn quantized_view(&self) -> Result<ChunkStore> {
        if self.inner.codec.is_none() {
            return Err(Error::Inconsistent(
                "store has no quantized region (format version 2)".into(),
            ));
        }
        Ok(ChunkStore {
            inner: Arc::clone(&self.inner),
            quantized: true,
        })
    }

    /// A handle whose readers deliver raw `f32` rows (the default mode).
    pub fn raw_view(&self) -> ChunkStore {
        ChunkStore {
            inner: Arc::clone(&self.inner),
            quantized: false,
        }
    }

    /// Opens an independent reader over the chunk file. Each concurrent
    /// query should hold its own reader (separate file handle and seek
    /// position). The reader owns a store handle, so it may outlive the
    /// `ChunkStore` value it was created from.
    pub fn reader(&self) -> Result<ChunkReader> {
        Ok(ChunkReader {
            file: BufReader::new(File::open(&self.inner.chunk_path)?),
            store: self.clone(),
        })
    }
}

/// Per-chunk offsets into the quant region, derived from the chunk counts
/// (the quant region stores chunks in id order, each page-padded).
fn quant_offsets_from(
    quant_start: u64,
    metas: &[ChunkMeta],
    code_bytes: usize,
    page_size: u32,
) -> Vec<u64> {
    let mut offsets = Vec::with_capacity(metas.len());
    let mut at = quant_start;
    for m in metas {
        offsets.push(at);
        at += chunkfile::chunk_span(
            chunkfile::quant_byte_len(m.count, code_bytes),
            u64::from(page_size),
        );
    }
    offsets
}

/// A sequential reader over a store's chunk file.
#[derive(Debug)]
pub struct ChunkReader {
    store: ChunkStore,
    file: BufReader<File>,
}

impl ChunkReader {
    /// Reads chunk `id` into `payload` (buffers reused); returns the number
    /// of bytes transferred from disk (the padded page span). A reader
    /// opened from a [quantized view](ChunkStore::quantized_view) fills
    /// `payload.codes` from the quant region — a strictly smaller span
    /// for a compressing codec — instead of `payload.packed`.
    pub fn read_chunk(&mut self, id: usize, payload: &mut ChunkPayload) -> Result<u64> {
        let inner = &self.store.inner;
        let meta = inner.metas.get(id).ok_or(Error::NoSuchChunk {
            id,
            n_chunks: inner.metas.len(),
        })?;
        if self.store.quantized {
            let codec = inner.codec.as_ref().ok_or_else(|| {
                Error::Inconsistent("quantized read on a store without a codec".into())
            })?;
            let quant_offset = inner.quant_offsets.get(id).copied().ok_or_else(|| {
                Error::Inconsistent(format!("no quant offset recorded for chunk {id}"))
            })?;
            chunkfile::read_quant_chunk_at(
                &mut self.file,
                quant_offset,
                meta.count,
                codec.code_bytes(),
                inner.page_size,
                payload,
            )
        } else {
            chunkfile::read_chunk_at(&mut self.file, meta, inner.page_size, payload)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eff2_descriptor::{Descriptor, DIM};

    fn sample_set(n: usize) -> DescriptorSet {
        (0..n)
            .map(|i| Descriptor::new(i as u32, Vector::splat(i as f32)))
            .collect()
    }

    fn defs(groups: &[&[u32]], set: &DescriptorSet) -> Vec<ChunkDef> {
        groups
            .iter()
            .map(|g| {
                let vecs: Vec<Vector> = g.iter().map(|&p| set.vector_owned(p as usize)).collect();
                let centroid = Vector::mean(vecs.iter());
                let radius = vecs.iter().map(|v| centroid.dist(v)).fold(0.0f32, f32::max);
                ChunkDef {
                    positions: g.to_vec(),
                    centroid,
                    radius,
                }
            })
            .collect()
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("eff2_store_{tag}"));
        std::fs::create_dir_all(&dir).expect("mkdir");
        dir
    }

    #[test]
    fn create_open_read_roundtrip() {
        let dir = tmp_dir("roundtrip");
        let set = sample_set(12);
        let chunks = defs(&[&[0, 1, 2, 3], &[4, 5], &[6, 7, 8, 9, 10, 11]], &set);
        let store = ChunkStore::create(&dir, "t", &set, &chunks, 512).expect("create");
        assert_eq!(store.n_chunks(), 3);
        assert_eq!(store.total_descriptors(), 12);

        let reopened = ChunkStore::open(store.chunk_path(), store.index_path()).expect("open");
        assert_eq!(reopened.metas(), store.metas());

        let mut reader = reopened.reader().expect("reader");
        let mut payload = ChunkPayload::default();
        let bytes = reader.read_chunk(2, &mut payload).expect("read");
        assert_eq!(bytes % 512, 0);
        assert_eq!(payload.len(), 6);
        assert_eq!(payload.ids, vec![6, 7, 8, 9, 10, 11]);
        assert_eq!(&payload.packed[0..DIM], set.vector(6));
    }

    #[test]
    fn metas_carry_summaries() {
        let dir = tmp_dir("summaries");
        let set = sample_set(6);
        let chunks = defs(&[&[0, 1, 2], &[3, 4, 5]], &set);
        let store = ChunkStore::create(&dir, "s", &set, &chunks, 256).expect("create");
        for (m, c) in store.metas().iter().zip(chunks.iter()) {
            assert_eq!(m.centroid, c.centroid);
            assert_eq!(m.radius, c.radius);
            assert_eq!(m.count as usize, c.positions.len());
        }
    }

    #[test]
    fn read_out_of_range_chunk() {
        let dir = tmp_dir("range");
        let set = sample_set(4);
        let chunks = defs(&[&[0, 1, 2, 3]], &set);
        let store = ChunkStore::create(&dir, "r", &set, &chunks, 256).expect("create");
        let mut reader = store.reader().expect("reader");
        let mut payload = ChunkPayload::default();
        assert!(matches!(
            reader.read_chunk(5, &mut payload),
            Err(Error::NoSuchChunk { id: 5, n_chunks: 1 })
        ));
    }

    #[test]
    fn open_detects_page_size_mismatch() {
        let dir = tmp_dir("pagemismatch");
        let set = sample_set(4);
        let chunks = defs(&[&[0, 1, 2, 3]], &set);
        let a = ChunkStore::create(&dir, "a", &set, &chunks, 256).expect("create");
        let b = ChunkStore::create(&dir, "b", &set, &chunks, 512).expect("create");
        // Pair a's chunk file with b's index file.
        assert!(matches!(
            ChunkStore::open(a.chunk_path(), b.index_path()),
            Err(Error::Inconsistent(_))
        ));
    }

    #[test]
    fn open_detects_truncated_chunk_file() {
        let dir = tmp_dir("trunc");
        let set = sample_set(20);
        let chunks = defs(
            &[
                &[0, 1, 2, 3, 4],
                &[5, 6, 7, 8, 9],
                &[10, 11, 12, 13, 14, 15, 16, 17, 18, 19],
            ],
            &set,
        );
        let store = ChunkStore::create(&dir, "t", &set, &chunks, 256).expect("create");
        // Chop the tail off the chunk file.
        let data = std::fs::read(store.chunk_path()).expect("read file");
        std::fs::write(store.chunk_path(), &data[..data.len() - 300]).expect("rewrite");
        assert!(matches!(
            ChunkStore::open(store.chunk_path(), store.index_path()),
            Err(Error::Inconsistent(_))
        ));
    }

    #[test]
    fn reader_detects_on_disk_corruption() {
        let dir = tmp_dir("corrupt");
        let set = sample_set(8);
        let chunks = defs(&[&[0, 1, 2, 3], &[4, 5, 6, 7]], &set);
        let store = ChunkStore::create(&dir, "c", &set, &chunks, 256).expect("create");
        // Flip a byte inside chunk 1's record block, on disk.
        let mut data = std::fs::read(store.chunk_path()).expect("read file");
        let hit = store.metas()[1].offset as usize + 10;
        data[hit] ^= 0x01;
        std::fs::write(store.chunk_path(), &data).expect("rewrite");
        let mut reader = store.reader().expect("reader");
        let mut payload = ChunkPayload::default();
        reader
            .read_chunk(0, &mut payload)
            .expect("chunk 0 is clean");
        assert!(matches!(
            reader.read_chunk(1, &mut payload),
            Err(Error::Corrupt { .. })
        ));
    }

    #[test]
    fn empty_store() {
        let dir = tmp_dir("empty");
        let set = sample_set(0);
        let store = ChunkStore::create(&dir, "e", &set, &[], 256).expect("create");
        assert_eq!(store.n_chunks(), 0);
        assert_eq!(store.total_descriptors(), 0);
        let reopened = ChunkStore::open(store.chunk_path(), store.index_path()).expect("open");
        assert_eq!(reopened.n_chunks(), 0);
    }

    #[test]
    fn create_rejects_bad_positions() {
        let dir = tmp_dir("badpos");
        let _ = std::fs::remove_file(dir.join("x.chunks"));
        let _ = std::fs::remove_file(dir.join("x.index"));
        let set = sample_set(2);
        let chunks = vec![ChunkDef {
            positions: vec![0, 7],
            centroid: Vector::ZERO,
            radius: 0.0,
        }];
        let err = ChunkStore::create(&dir, "x", &set, &chunks, 256)
            .expect_err("out-of-range position must be rejected");
        match err {
            Error::Inconsistent(why) => {
                assert!(why.contains('7'), "message should name the position: {why}");
            }
            other => panic!("expected Error::Inconsistent, got {other:?}"),
        }
        // Nothing was written: the files must not exist.
        assert!(!dir.join("x.chunks").exists());
        assert!(!dir.join("x.index").exists());
    }

    #[test]
    fn quantized_store_roundtrip_and_views() {
        use eff2_descriptor::{Codec, DescriptorCodec, Sq8Codec};
        let dir = tmp_dir("quant");
        let set = sample_set(12);
        let chunks = defs(&[&[0, 1, 2, 3], &[4, 5], &[6, 7, 8, 9, 10, 11]], &set);
        let codec = Codec::Sq8(Sq8Codec::from_set(&set));
        let store =
            ChunkStore::create_quantized(&dir, "q", &set, &chunks, 512, &codec).expect("create");
        assert_eq!(store.codec(), Some(&codec));
        assert!(!store.is_quantized());

        // Raw reads work exactly as on a v2 store.
        let mut raw_payload = ChunkPayload::default();
        let raw_bytes = store
            .reader()
            .expect("reader")
            .read_chunk(2, &mut raw_payload)
            .expect("raw read");
        assert_eq!(raw_payload.ids, vec![6, 7, 8, 9, 10, 11]);
        assert_eq!(&raw_payload.packed[0..DIM], set.vector(6));
        assert!(raw_payload.codes.is_empty());

        // The quantized view delivers codes for the same ids, charging
        // strictly fewer modelled bytes.
        let qview = store.quantized_view().expect("view");
        assert!(qview.is_quantized());
        let mut q_payload = ChunkPayload::default();
        let q_bytes = qview
            .reader()
            .expect("reader")
            .read_chunk(2, &mut q_payload)
            .expect("quant read");
        assert_eq!(q_payload.ids, raw_payload.ids);
        assert!(q_payload.packed.is_empty());
        assert_eq!(q_payload.codes.len(), 6 * codec.code_bytes());
        assert!(q_bytes < raw_bytes, "{q_bytes} !< {raw_bytes}");
        assert!(!qview.raw_view().is_quantized());

        // Reopening parses the codec back from the file.
        let reopened = ChunkStore::open(store.chunk_path(), store.index_path()).expect("open");
        assert_eq!(reopened.codec(), Some(&codec));
        assert_eq!(reopened.metas(), store.metas());
        let mut again = ChunkPayload::default();
        reopened
            .quantized_view()
            .expect("view")
            .reader()
            .expect("reader")
            .read_chunk(2, &mut again)
            .expect("read");
        assert_eq!(again, q_payload);
    }

    #[test]
    fn raw_store_has_no_quantized_view() {
        let dir = tmp_dir("noquant");
        let set = sample_set(4);
        let chunks = defs(&[&[0, 1, 2, 3]], &set);
        let store = ChunkStore::create(&dir, "p", &set, &chunks, 256).expect("create");
        assert!(store.codec().is_none());
        assert!(matches!(
            store.quantized_view(),
            Err(Error::Inconsistent(_))
        ));
    }

    #[test]
    fn open_detects_truncated_quant_region() {
        use eff2_descriptor::{Codec, Sq8Codec};
        let dir = tmp_dir("quanttrunc");
        let set = sample_set(20);
        let chunks = defs(&[&[0, 1, 2, 3, 4], &[5, 6, 7, 8, 9]], &set);
        let codec = Codec::Sq8(Sq8Codec::from_set(&set));
        let store =
            ChunkStore::create_quantized(&dir, "t", &set, &chunks, 256, &codec).expect("create");
        let data = std::fs::read(store.chunk_path()).expect("read file");
        std::fs::write(store.chunk_path(), &data[..data.len() - 256]).expect("rewrite");
        assert!(matches!(
            ChunkStore::open(store.chunk_path(), store.index_path()),
            Err(Error::Inconsistent(_))
        ));
    }

    #[test]
    fn clones_share_the_parsed_index() {
        let dir = tmp_dir("clone");
        let set = sample_set(8);
        let chunks = defs(&[&[0, 1, 2, 3], &[4, 5, 6, 7]], &set);
        let store = ChunkStore::create(&dir, "c", &set, &chunks, 256).expect("create");
        let clone = store.clone();
        assert_eq!(clone.metas(), store.metas());
        assert_eq!(clone.chunk_path(), store.chunk_path());
        // A clone's reader works independently of the original handle.
        drop(store);
        let mut reader = clone.reader().expect("reader");
        let mut payload = ChunkPayload::default();
        reader.read_chunk(1, &mut payload).expect("read");
        assert_eq!(payload.ids, vec![4, 5, 6, 7]);
    }
}
