//! A pipelined chunk reader: I/O overlapped with processing.
//!
//! The paper's premise is that the CPU cost of scanning a chunk "can
//! potentially be overlapped with I/O cost. As a result, the way to
//! guarantee minimal query processing cost is to produce uniformly sized
//! chunks, to balance the I/O and CPU cost of the search" (§1.1). This
//! module implements that overlap for real file I/O: a reader thread
//! fetches chunks in ranked order ahead of the consumer, through a bounded
//! channel whose depth is the prefetch window.

use crate::chunkfile::ChunkPayload;
use crate::error::Result;
use crate::singleflight::SingleFlight;
use crate::store::{ChunkReader, ChunkStore};
use std::sync::mpsc::{sync_channel, Receiver};
use std::sync::Arc;
use std::thread::JoinHandle;

/// One prefetched chunk: its id, payload and on-disk (padded) byte span.
///
/// The payload is behind an `Arc`: when concurrent streams coalesce on one
/// in-flight read (see [`SingleFlight`]) they all share the leader's
/// decoded chunk without copying.
#[derive(Debug)]
pub struct PrefetchedChunk {
    /// Chunk id within the store.
    pub id: usize,
    /// Decoded payload.
    pub payload: Arc<ChunkPayload>,
    /// Bytes transferred from disk (padded page span).
    pub bytes_read: u64,
}

/// An iterator over chunks fetched by a background reader thread.
#[derive(Debug)]
pub struct PrefetchIter {
    rx: Receiver<Result<PrefetchedChunk>>,
    handle: Option<JoinHandle<()>>,
}

/// Starts prefetching `order` (chunk ids) from `store` with a reader thread
/// that stays at most `depth` chunks ahead of the consumer.
///
/// # Panics
///
/// Panics if `depth == 0`.
pub fn prefetch_chunks(
    store: &ChunkStore,
    order: Vec<usize>,
    depth: usize,
) -> Result<PrefetchIter> {
    prefetch_chunks_coalesced(store, order, depth, SingleFlight::new(), 0)
}

/// [`prefetch_chunks`] coalescing reads through a shared [`SingleFlight`]
/// table: when several streams of one source want the same chunk at the
/// same moment, only one reader thread touches the file and the rest share
/// its decoded payload. `requester` tags this stream in flight outcomes.
///
/// # Panics
///
/// Panics if `depth == 0`.
pub fn prefetch_chunks_coalesced(
    store: &ChunkStore,
    order: Vec<usize>,
    depth: usize,
    flight: SingleFlight,
    requester: u64,
) -> Result<PrefetchIter> {
    assert!(depth > 0, "prefetch depth must be positive");
    // The reader thread needs its own handle; the store is a cheap
    // `Arc`-backed clone, and the file itself is opened lazily on the
    // first read this thread actually leads (a fully coalesced stream
    // never opens the file).
    let owned = store.clone();
    let (tx, rx) = sync_channel(depth);
    let handle = eff2_parallel::spawn(move || {
        let mut reader: Option<ChunkReader> = None;
        for id in order {
            let item = flight
                .read(id, requester, || {
                    let r = match reader.as_mut() {
                        Some(r) => r,
                        None => reader.insert(owned.reader()?),
                    };
                    let mut payload = ChunkPayload::default();
                    let bytes_read = r.read_chunk(id, &mut payload)?;
                    Ok((Arc::new(payload), bytes_read))
                })
                .map(|outcome| PrefetchedChunk {
                    id,
                    payload: outcome.payload,
                    bytes_read: outcome.bytes_read,
                });
            let failed = item.is_err();
            if tx.send(item).is_err() {
                return; // consumer dropped the iterator — stop quietly
            }
            if failed {
                return;
            }
        }
    });
    Ok(PrefetchIter {
        rx,
        handle: Some(handle),
    })
}

impl Iterator for PrefetchIter {
    type Item = Result<PrefetchedChunk>;

    fn next(&mut self) -> Option<Self::Item> {
        self.rx.recv().ok()
    }
}

impl Drop for PrefetchIter {
    fn drop(&mut self) {
        // Drain so the reader unblocks, then join it.
        while self.rx.try_recv().is_ok() {}
        drop(std::mem::replace(&mut self.rx, sync_channel(1).1));
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::ChunkDef;
    use eff2_descriptor::{Descriptor, DescriptorSet, Vector};
    use std::path::PathBuf;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("eff2_prefetch_{tag}"));
        std::fs::create_dir_all(&dir).expect("mkdir");
        dir
    }

    fn store_with_chunks(tag: &str, sizes: &[usize]) -> (ChunkStore, DescriptorSet) {
        let n: usize = sizes.iter().sum();
        let set: DescriptorSet = (0..n)
            .map(|i| Descriptor::new(i as u32, Vector::splat(i as f32)))
            .collect();
        let mut chunks = Vec::new();
        let mut next = 0u32;
        for &s in sizes {
            let positions: Vec<u32> = (next..next + s as u32).collect();
            next += s as u32;
            chunks.push(ChunkDef {
                positions,
                centroid: Vector::ZERO,
                radius: 1e9,
            });
        }
        let store = ChunkStore::create(&tmp_dir(tag), "p", &set, &chunks, 512).expect("create");
        (store, set)
    }

    #[test]
    fn delivers_in_requested_order() {
        let (store, _) = store_with_chunks("order", &[3, 5, 2, 4]);
        let order = vec![2usize, 0, 3, 1];
        let got: Vec<usize> = prefetch_chunks(&store, order.clone(), 2)
            .expect("prefetch")
            .map(|r| r.expect("chunk").id)
            .collect();
        assert_eq!(got, order);
    }

    #[test]
    fn payloads_match_direct_reads() {
        let (store, _) = store_with_chunks("payload", &[4, 4, 4]);
        let mut reader = store.reader().expect("reader");
        for item in prefetch_chunks(&store, vec![0, 1, 2], 1).expect("prefetch") {
            let chunk = item.expect("chunk");
            let mut direct = ChunkPayload::default();
            let bytes = reader.read_chunk(chunk.id, &mut direct).expect("direct");
            assert_eq!(*chunk.payload, direct);
            assert_eq!(chunk.bytes_read, bytes);
        }
    }

    #[test]
    fn early_drop_joins_cleanly() {
        let (store, _) = store_with_chunks("drop", &[2; 20]);
        let mut iter = prefetch_chunks(&store, (0..20).collect(), 2).expect("prefetch");
        let first = iter.next().expect("one item").expect("chunk");
        assert_eq!(first.id, 0);
        drop(iter); // must not hang or leak the thread
    }

    #[test]
    fn bad_chunk_id_surfaces_error() {
        let (store, _) = store_with_chunks("bad", &[2, 2]);
        let results: Vec<_> = prefetch_chunks(&store, vec![0, 9], 2)
            .expect("prefetch")
            .collect();
        assert_eq!(results.len(), 2);
        assert!(results[0].is_ok());
        assert!(results[1].is_err());
    }

    #[test]
    fn empty_order_yields_nothing() {
        let (store, _) = store_with_chunks("empty", &[2]);
        let mut iter = prefetch_chunks(&store, vec![], 1).expect("prefetch");
        assert!(iter.next().is_none());
    }
}
