//! Error type for chunk-index storage, with a transient/corrupt/permanent
//! taxonomy that retry layers use to decide whether another attempt can
//! possibly help.

use crate::diskmodel::VirtualDuration;

/// Convenience result alias for this crate.
pub type Result<T> = std::result::Result<T, Error>;

/// How a retry layer should treat an error.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ErrorClass {
    /// The read might succeed if repeated (I/O hiccup, short read).
    Transient,
    /// The bytes arrived but failed verification; a re-read may deliver
    /// the true contents (or prove the damage permanent).
    Corrupt,
    /// No number of retries will ever deliver this data.
    Permanent,
}

/// Errors raised by chunk-index file operations.
#[derive(Debug)]
pub enum Error {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A file is not of the expected kind (bad magic bytes).
    BadMagic {
        /// Which file was being read.
        file: &'static str,
        /// The magic actually found.
        found: [u8; 4],
    },
    /// Unsupported format version.
    UnsupportedVersion(u32),
    /// The chunk and index files disagree (different chunk counts,
    /// mismatched page size, out-of-range offsets…).
    Inconsistent(String),
    /// A requested chunk id does not exist.
    NoSuchChunk {
        /// The requested chunk id.
        id: usize,
        /// Number of chunks in the store.
        n_chunks: usize,
    },
    /// A file ended before its declared contents.
    Truncated(&'static str),
    /// A chunk body failed its checksum: the bytes read do not match what
    /// was written.
    Corrupt {
        /// File offset of the chunk body.
        offset: u64,
        /// Checksum recorded at write time.
        expected: u32,
        /// Checksum of the bytes actually read.
        found: u32,
    },
    /// A chunk is not deliverable: every allowed attempt failed. Raised by
    /// retry layers after exhausting their budget; callers holding a skip
    /// policy may continue without the chunk.
    ChunkLost {
        /// The chunk that could not be read.
        chunk: usize,
        /// Read attempts performed before giving up.
        attempts: u32,
        /// Modelled time spent on the failed attempts (timeouts and
        /// backoff), to be charged to the disk clock by the caller.
        spent: VirtualDuration,
    },
}

impl Error {
    /// Classifies the error for retry purposes.
    pub fn class(&self) -> ErrorClass {
        match self {
            // I/O hiccups and short reads may clear on a repeat attempt.
            Error::Io(_) | Error::Truncated(_) => ErrorClass::Transient,
            Error::Corrupt { .. } => ErrorClass::Corrupt,
            Error::BadMagic { .. }
            | Error::UnsupportedVersion(_)
            | Error::Inconsistent(_)
            | Error::NoSuchChunk { .. }
            | Error::ChunkLost { .. } => ErrorClass::Permanent,
        }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::Io(e) => write!(f, "i/o error: {e}"),
            Error::BadMagic { file, found } => {
                write!(f, "{file} is not a chunk-index file (magic {found:?})")
            }
            Error::UnsupportedVersion(v) => write!(f, "unsupported format version {v}"),
            Error::Inconsistent(why) => write!(f, "chunk index inconsistent: {why}"),
            Error::NoSuchChunk { id, n_chunks } => {
                write!(f, "chunk {id} out of range (store has {n_chunks} chunks)")
            }
            Error::Truncated(which) => write!(f, "{which} truncated"),
            Error::Corrupt {
                offset,
                expected,
                found,
            } => write!(
                f,
                "chunk body at offset {offset} corrupt \
                 (checksum {found:#010x}, expected {expected:#010x})"
            ),
            Error::ChunkLost {
                chunk, attempts, ..
            } => write!(f, "chunk {chunk} lost after {attempts} attempts"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(Error::NoSuchChunk { id: 9, n_chunks: 3 }
            .to_string()
            .contains('9'));
        assert!(Error::Inconsistent("page size".into())
            .to_string()
            .contains("page size"));
        assert!(Error::Truncated("index file")
            .to_string()
            .contains("index file"));
        assert!(Error::Corrupt {
            offset: 512,
            expected: 1,
            found: 2
        }
        .to_string()
        .contains("512"));
        assert!(Error::ChunkLost {
            chunk: 4,
            attempts: 3,
            spent: VirtualDuration::ZERO
        }
        .to_string()
        .contains("3 attempts"));
    }

    #[test]
    fn classification_covers_every_variant() {
        let io = std::io::Error::other("disk");
        assert_eq!(Error::Io(io).class(), ErrorClass::Transient);
        assert_eq!(
            Error::Truncated("chunk body").class(),
            ErrorClass::Transient
        );
        assert_eq!(
            Error::Corrupt {
                offset: 0,
                expected: 0,
                found: 1
            }
            .class(),
            ErrorClass::Corrupt
        );
        for permanent in [
            Error::BadMagic {
                file: "chunk file",
                found: [0; 4],
            },
            Error::UnsupportedVersion(9),
            Error::Inconsistent("counts".into()),
            Error::NoSuchChunk { id: 1, n_chunks: 1 },
            Error::ChunkLost {
                chunk: 0,
                attempts: 1,
                spent: VirtualDuration::ZERO,
            },
        ] {
            assert_eq!(permanent.class(), ErrorClass::Permanent, "{permanent}");
        }
    }
}
