//! Error type for chunk-index storage.

/// Convenience result alias for this crate.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors raised by chunk-index file operations.
#[derive(Debug)]
pub enum Error {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A file is not of the expected kind (bad magic bytes).
    BadMagic {
        /// Which file was being read.
        file: &'static str,
        /// The magic actually found.
        found: [u8; 4],
    },
    /// Unsupported format version.
    UnsupportedVersion(u32),
    /// The chunk and index files disagree (different chunk counts,
    /// mismatched page size, out-of-range offsets…).
    Inconsistent(String),
    /// A requested chunk id does not exist.
    NoSuchChunk {
        /// The requested chunk id.
        id: usize,
        /// Number of chunks in the store.
        n_chunks: usize,
    },
    /// A file ended before its declared contents.
    Truncated(&'static str),
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::Io(e) => write!(f, "i/o error: {e}"),
            Error::BadMagic { file, found } => {
                write!(f, "{file} is not a chunk-index file (magic {found:?})")
            }
            Error::UnsupportedVersion(v) => write!(f, "unsupported format version {v}"),
            Error::Inconsistent(why) => write!(f, "chunk index inconsistent: {why}"),
            Error::NoSuchChunk { id, n_chunks } => {
                write!(f, "chunk {id} out of range (store has {n_chunks} chunks)")
            }
            Error::Truncated(which) => write!(f, "{which} truncated"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(Error::NoSuchChunk { id: 9, n_chunks: 3 }
            .to_string()
            .contains('9'));
        assert!(Error::Inconsistent("page size".into())
            .to_string()
            .contains("page size"));
        assert!(Error::Truncated("index file")
            .to_string()
            .contains("index file"));
    }
}
