//! Panic-free little-endian field readers.
//!
//! The on-disk decoders used to pull fixed-width fields out of byte
//! buffers with `buf[a..b].try_into().expect("fixed slice")` — provably
//! fine on the happy path, but a panic pattern the `eff2-lint` auditor
//! rightly flags: a server decoding untrusted or corrupted files must
//! surface short buffers as [`Error::Truncated`], never abort. These
//! helpers make the bounds check part of the return type.

use crate::error::{Error, Result};

/// Reads `N` bytes at `at`, or reports `what` as truncated.
pub fn array_at<const N: usize>(buf: &[u8], at: usize, what: &'static str) -> Result<[u8; N]> {
    at.checked_add(N)
        .and_then(|end| buf.get(at..end))
        .and_then(|s| <[u8; N]>::try_from(s).ok())
        .ok_or(Error::Truncated(what))
}

/// Little-endian `u32` at byte offset `at`.
pub fn u32_at(buf: &[u8], at: usize, what: &'static str) -> Result<u32> {
    Ok(u32::from_le_bytes(array_at(buf, at, what)?))
}

/// Little-endian `u64` at byte offset `at`.
pub fn u64_at(buf: &[u8], at: usize, what: &'static str) -> Result<u64> {
    Ok(u64::from_le_bytes(array_at(buf, at, what)?))
}

/// Little-endian `f32` at byte offset `at`.
pub fn f32_at(buf: &[u8], at: usize, what: &'static str) -> Result<f32> {
    Ok(f32::from_le_bytes(array_at(buf, at, what)?))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reads_fields_at_offsets() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&7u32.to_le_bytes());
        buf.extend_from_slice(&9u64.to_le_bytes());
        buf.extend_from_slice(&1.5f32.to_le_bytes());
        assert_eq!(u32_at(&buf, 0, "t").ok(), Some(7));
        assert_eq!(u64_at(&buf, 4, "t").ok(), Some(9));
        assert_eq!(f32_at(&buf, 12, "t").ok(), Some(1.5));
    }

    #[test]
    fn short_buffer_is_truncated_not_panic() {
        let buf = [0u8; 3];
        assert!(matches!(
            u32_at(&buf, 0, "short"),
            Err(Error::Truncated("short"))
        ));
        assert!(matches!(
            u32_at(&buf, 2, "short"),
            Err(Error::Truncated("short"))
        ));
    }

    #[test]
    fn offset_overflow_is_truncated_not_panic() {
        let buf = [0u8; 8];
        assert!(matches!(
            u64_at(&buf, usize::MAX - 2, "wrap"),
            Err(Error::Truncated("wrap"))
        ));
    }
}
