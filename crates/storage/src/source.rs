//! Pluggable chunk delivery: the `ChunkSource` / `ChunkStream` trait pair.
//!
//! A search session asks a [`ChunkSource`] for a stream over a *ranked*
//! sequence of chunk ids and consumes one [`SourcedChunk`] per step. The
//! source decides **how** the bytes arrive — a plain file reader
//! ([`FileSource`]), a pipelined background reader ([`PrefetchSource`]), or
//! a shared in-memory cache ([`ResidentSource`]) — while the search core
//! stays oblivious. Crucially, every source reports the same
//! `bytes_read` for a given chunk (the padded on-disk page span), so the
//! virtual disk model charges identical I/O no matter which backend served
//! the payload: the paper's reported figures do not depend on the source.

use crate::chunkfile::ChunkPayload;
use crate::error::{Error, ErrorClass, Result};
use crate::prefetch::{prefetch_chunks_coalesced, PrefetchIter};
use crate::singleflight::{FlightStats, SingleFlight};
use crate::store::{ChunkReader, ChunkStore};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Recovers the cache guard even if another stream panicked mid-update.
/// Every critical section leaves the cache consistent (counters and `used`
/// are adjusted together), so continuing past a poisoned lock is sound.
fn lock_cache(cache: &Mutex<ResidentCache>) -> std::sync::MutexGuard<'_, ResidentCache> {
    cache
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// One delivered chunk: its id, shared payload and on-disk byte span.
///
/// The payload is behind an `Arc` so cache-backed sources can hand the same
/// decoded chunk to many concurrent queries without copying.
#[derive(Clone, Debug)]
pub struct SourcedChunk {
    /// Chunk id within the store.
    pub id: usize,
    /// Decoded payload (ids + packed vectors).
    pub payload: Arc<ChunkPayload>,
    /// Bytes the disk model charges for this chunk (padded page span) —
    /// identical across sources, including cache hits.
    pub bytes_read: u64,
}

/// A stream of chunks in the order requested from [`ChunkSource::open_stream`].
///
/// Streams own all their state (`'static`), so a session holding one can
/// outlive the scope that opened the store. After yielding an `Err` a
/// stream is exhausted: subsequent calls return `None`.
pub trait ChunkStream: Send {
    /// Delivers the next chunk of the requested order, `None` when done.
    fn next_chunk(&mut self) -> Option<Result<SourcedChunk>>;

    /// Modelled time the stream spent beyond the plain page transfer on the
    /// chunk it just delivered — latency spikes, retry timeouts, backoff.
    /// Consumers take (and thereby reset) the accumulator after a
    /// successful [`ChunkStream::next_chunk`] and charge it to the virtual
    /// disk clock. Plain streams never inject delay, so the default is
    /// always-zero; decorators (fault injection, retry) override it.
    fn take_injected_delay(&mut self) -> crate::diskmodel::VirtualDuration {
        crate::diskmodel::VirtualDuration::ZERO
    }
}

/// A backend that can deliver chunk payloads for a ranked id sequence.
pub trait ChunkSource: Send + Sync {
    /// Opens a stream that yields the chunks in `order`, in order.
    ///
    /// Opening is where file handles are acquired, so a missing or
    /// truncated chunk file surfaces here (or on the first
    /// [`ChunkStream::next_chunk`]) as a clean `Err`.
    fn open_stream(&self, order: Vec<usize>) -> Result<Box<dyn ChunkStream>>;
}

// ---------------------------------------------------------------------------
// FileSource — one synchronous reader per stream.
// ---------------------------------------------------------------------------

/// Reads chunks synchronously through a [`ChunkReader`] — the behaviour of
/// the original in-loop reader, expressed as a source.
#[derive(Clone, Debug)]
pub struct FileSource {
    store: ChunkStore,
}

impl FileSource {
    /// A file-backed source over `store`.
    pub fn new(store: &ChunkStore) -> FileSource {
        FileSource {
            store: store.clone(),
        }
    }
}

impl ChunkSource for FileSource {
    fn open_stream(&self, order: Vec<usize>) -> Result<Box<dyn ChunkStream>> {
        Ok(Box::new(FileStream {
            reader: self.store.reader()?,
            order,
            pos: 0,
            failed: false,
        }))
    }
}

struct FileStream {
    reader: ChunkReader,
    order: Vec<usize>,
    pos: usize,
    failed: bool,
}

impl ChunkStream for FileStream {
    fn next_chunk(&mut self) -> Option<Result<SourcedChunk>> {
        if self.failed {
            return None;
        }
        let id = self.order.get(self.pos).copied()?;
        self.pos += 1;
        let mut payload = ChunkPayload::default();
        match self.reader.read_chunk(id, &mut payload) {
            Ok(bytes_read) => Some(Ok(SourcedChunk {
                id,
                payload: Arc::new(payload),
                bytes_read,
            })),
            Err(e) => {
                self.failed = true;
                Some(Err(e))
            }
        }
    }
}

// ---------------------------------------------------------------------------
// PrefetchSource — background reader thread per stream.
// ---------------------------------------------------------------------------

/// Delivers chunks through [`prefetch_chunks`]: a reader thread stays up to
/// `depth` chunks ahead of the consumer, overlapping real file I/O with
/// processing (the overlap §1.1 of the paper argues for).
#[derive(Clone, Debug)]
pub struct PrefetchSource {
    store: ChunkStore,
    depth: usize,
    /// Shared across clones: streams of the same source coalesce
    /// overlapping in-flight reads into one.
    flight: SingleFlight,
    next_requester: Arc<AtomicU64>,
}

impl PrefetchSource {
    /// A prefetching source over `store` with the given window depth.
    ///
    /// A zero depth is rejected by
    /// [`prefetch_chunks`](crate::prefetch::prefetch_chunks) when the first
    /// stream is opened (a search that never opens a stream — `k = 0`, an
    /// empty budget — tolerates it, matching the in-loop reader it
    /// replaced).
    pub fn new(store: &ChunkStore, depth: usize) -> PrefetchSource {
        PrefetchSource {
            store: store.clone(),
            depth,
            flight: SingleFlight::new(),
            next_requester: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Read-coalescing counters across every stream of this source (and its
    /// clones): how many chunk reads actually hit the file versus joined a
    /// read already in flight.
    pub fn flight_stats(&self) -> FlightStats {
        self.flight.stats()
    }
}

impl ChunkSource for PrefetchSource {
    fn open_stream(&self, order: Vec<usize>) -> Result<Box<dyn ChunkStream>> {
        let requester = self.next_requester.fetch_add(1, Ordering::Relaxed);
        Ok(Box::new(PrefetchStream {
            iter: prefetch_chunks_coalesced(
                &self.store,
                order,
                self.depth,
                self.flight.clone(),
                requester,
            )?,
            failed: false,
        }))
    }
}

struct PrefetchStream {
    iter: PrefetchIter,
    failed: bool,
}

impl ChunkStream for PrefetchStream {
    fn next_chunk(&mut self) -> Option<Result<SourcedChunk>> {
        if self.failed {
            return None;
        }
        match self.iter.next()? {
            Ok(chunk) => Some(Ok(SourcedChunk {
                id: chunk.id,
                payload: chunk.payload,
                bytes_read: chunk.bytes_read,
            })),
            Err(e) => {
                self.failed = true;
                Some(Err(e))
            }
        }
    }
}

// ---------------------------------------------------------------------------
// ResidentSource — byte-budgeted LRU cache shared across queries.
// ---------------------------------------------------------------------------

/// Counters describing a [`ResidentSource`]'s cache behaviour.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ResidentStats {
    /// Chunk requests served from memory (pinned entry, or a payload shared
    /// from a read another requester had in flight).
    pub hits: u64,
    /// Of those hits, how many were served by a chunk a *different*
    /// requester brought in — the cross-query sharing a serving scheduler
    /// exists to maximise.
    pub cross_query_hits: u64,
    /// Chunk requests that went to disk.
    pub misses: u64,
    /// Chunks evicted to respect the byte budget.
    pub evictions: u64,
    /// Decoded bytes currently pinned.
    pub resident_bytes: u64,
    /// Chunks currently pinned.
    pub resident_chunks: usize,
}

#[derive(Debug)]
struct ResidentEntry {
    payload: Arc<ChunkPayload>,
    bytes_read: u64,
    cost: u64,
    last_used: u64,
    /// Requester tag of whoever paid the miss — hit attribution.
    inserted_by: u64,
}

/// The shared LRU state. Entries live in a `BTreeMap` so every traversal
/// (eviction scans, stats, debug dumps) visits chunks in the same order on
/// every run — the auditor's `det.hash_container` rule bans randomized
/// iteration from crates feeding the deterministic search pipeline. The
/// LRU victim itself is already unambiguous (ticks are unique), so the
/// swap changes no observable behaviour, only removes the nondeterminism
/// hazard.
#[derive(Debug)]
struct ResidentCache {
    entries: BTreeMap<usize, ResidentEntry>,
    budget: u64,
    used: u64,
    tick: u64,
    hits: u64,
    cross_query_hits: u64,
    misses: u64,
    evictions: u64,
}

impl ResidentCache {
    /// A pinned-entry hit, counted and attributed; `None` says nothing
    /// about miss accounting — the caller charges the miss (or a
    /// coalesced hit) once it knows who actually performed the read.
    fn lookup(&mut self, id: usize, requester: u64) -> Option<(Arc<ChunkPayload>, u64)> {
        self.tick += 1;
        let tick = self.tick;
        let e = self.entries.get_mut(&id)?;
        e.last_used = tick;
        self.hits += 1;
        if e.inserted_by != requester {
            self.cross_query_hits += 1;
        }
        Some((Arc::clone(&e.payload), e.bytes_read))
    }

    /// Charges a disk read to whoever led it.
    fn note_miss(&mut self) {
        self.misses += 1;
    }

    /// Charges a request that shared another requester's in-flight read —
    /// served from memory, so it counts as a hit.
    fn note_coalesced_hit(&mut self, cross_query: bool) {
        self.hits += 1;
        if cross_query {
            self.cross_query_hits += 1;
        }
    }

    fn insert(&mut self, id: usize, payload: Arc<ChunkPayload>, bytes_read: u64, inserted_by: u64) {
        let cost = payload_bytes(&payload);
        if cost > self.budget {
            return; // a chunk larger than the whole budget stays uncached
        }
        if let Some(old) = self.entries.remove(&id) {
            self.used -= old.cost; // racing streams: replace, don't double-count
        }
        while self.used + cost > self.budget {
            // `used > 0` implies a resident entry; if bookkeeping ever
            // drifted, stop evicting rather than spin or panic.
            let Some(victim) = self
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(&vid, _)| vid)
            else {
                break;
            };
            let Some(evicted) = self.entries.remove(&victim) else {
                break;
            };
            self.used -= evicted.cost;
            self.evictions += 1;
        }
        self.tick += 1;
        self.used += cost;
        self.entries.insert(
            id,
            ResidentEntry {
                payload,
                bytes_read,
                cost,
                last_used: self.tick,
                inserted_by,
            },
        );
    }
}

/// Decoded in-memory footprint of a payload (ids + packed floats + codes).
fn payload_bytes(p: &ChunkPayload) -> u64 {
    (p.ids.len() * std::mem::size_of::<u32>()
        + p.packed.len() * std::mem::size_of::<f32>()
        + p.codes.len()) as u64
}

/// Pins decoded chunks in a byte-budgeted LRU shared across queries — the
/// hot-serving backend.
///
/// Cache hits skip the disk but still report the chunk's on-disk
/// `bytes_read`, so the virtual clock charges exactly the modelled I/O a
/// [`FileSource`] would: reported quality-vs-time figures are unchanged.
/// The budget bounds the *decoded* footprint (ids + packed floats); a
/// single chunk larger than the whole budget is served but never pinned.
#[derive(Clone, Debug)]
pub struct ResidentSource {
    store: ChunkStore,
    cache: Arc<Mutex<ResidentCache>>,
    /// Concurrent misses for one chunk coalesce into one read: the leader
    /// pays the miss, everyone else records a (cross-query) hit.
    flight: SingleFlight,
    next_requester: Arc<AtomicU64>,
}

/// One chunk delivered by [`ResidentSource::fetch`], tagged with whether it
/// came off the disk (this requester led the read) or from memory (pinned
/// entry or a read someone else had in flight).
#[derive(Clone, Debug)]
pub struct Fetched {
    /// The delivered chunk.
    pub chunk: SourcedChunk,
    /// Whether this request performed the underlying disk read.
    pub from_disk: bool,
}

impl ResidentSource {
    /// A resident source over `store` pinning at most `budget_bytes` of
    /// decoded chunk data. Clones share the same cache.
    pub fn new(store: &ChunkStore, budget_bytes: u64) -> ResidentSource {
        ResidentSource {
            store: store.clone(),
            cache: Arc::new(Mutex::new(ResidentCache {
                entries: BTreeMap::new(),
                budget: budget_bytes,
                used: 0,
                tick: 0,
                hits: 0,
                cross_query_hits: 0,
                misses: 0,
                evictions: 0,
            })),
            flight: SingleFlight::new(),
            next_requester: Arc::new(AtomicU64::new(0)),
        }
    }

    /// A snapshot of the cache counters.
    pub fn stats(&self) -> ResidentStats {
        let cache = lock_cache(&self.cache);
        ResidentStats {
            hits: cache.hits,
            cross_query_hits: cache.cross_query_hits,
            misses: cache.misses,
            evictions: cache.evictions,
            resident_bytes: cache.used,
            resident_chunks: cache.entries.len(),
        }
    }

    /// A fresh requester tag for hit attribution. Streams draw one per
    /// [`open_stream`](ChunkSource::open_stream); random-access callers
    /// (the serving scheduler) draw one per query session.
    pub fn new_requester(&self) -> u64 {
        self.next_requester.fetch_add(1, Ordering::Relaxed)
    }

    /// Random-access delivery of chunk `id` on behalf of `requester`:
    /// cache lookup, then a single-flight read on a miss. This is the
    /// entry point the serving scheduler uses — no stream, no fixed order.
    pub fn fetch(&self, requester: u64, id: usize) -> Result<Fetched> {
        self.fetch_through(requester, id, &mut None)
    }

    /// [`fetch`](Self::fetch) reusing a caller-held reader across calls
    /// (opened lazily on the first miss; an all-hit caller never touches
    /// the disk).
    pub fn fetch_through(
        &self,
        requester: u64,
        id: usize,
        reader: &mut Option<ChunkReader>,
    ) -> Result<Fetched> {
        if let Some((payload, bytes_read)) = lock_cache(&self.cache).lookup(id, requester) {
            return Ok(Fetched {
                chunk: SourcedChunk {
                    id,
                    payload,
                    bytes_read,
                },
                from_disk: false,
            });
        }

        // Miss: read outside the lock, coalescing with any read of the
        // same chunk already in flight.
        let outcome = self.flight.read(id, requester, || {
            let r = match reader.as_mut() {
                Some(r) => r,
                None => reader.insert(self.store.reader()?),
            };
            let mut payload = ChunkPayload::default();
            let bytes_read = r.read_chunk(id, &mut payload)?;
            Ok((Arc::new(payload), bytes_read))
        })?;

        let mut cache = lock_cache(&self.cache);
        if outcome.led {
            cache.note_miss();
            cache.insert(
                id,
                Arc::clone(&outcome.payload),
                outcome.bytes_read,
                requester,
            );
        } else {
            cache.note_coalesced_hit(outcome.leader != requester);
        }
        drop(cache);
        Ok(Fetched {
            chunk: SourcedChunk {
                id,
                payload: outcome.payload,
                bytes_read: outcome.bytes_read,
            },
            from_disk: outcome.led,
        })
    }
}

impl ChunkSource for ResidentSource {
    fn open_stream(&self, order: Vec<usize>) -> Result<Box<dyn ChunkStream>> {
        Ok(Box::new(ResidentStream {
            source: self.clone(),
            requester: self.new_requester(),
            reader: None,
            order,
            pos: 0,
            failed: false,
        }))
    }
}

struct ResidentStream {
    source: ResidentSource,
    requester: u64,
    /// Opened on the first cache miss — an all-hit stream never touches disk.
    reader: Option<ChunkReader>,
    order: Vec<usize>,
    pos: usize,
    failed: bool,
}

impl ChunkStream for ResidentStream {
    fn next_chunk(&mut self) -> Option<Result<SourcedChunk>> {
        if self.failed {
            return None;
        }
        let id = self.order.get(self.pos).copied()?;
        self.pos += 1;
        match self
            .source
            .fetch_through(self.requester, id, &mut self.reader)
        {
            Ok(fetched) => Some(Ok(fetched.chunk)),
            Err(e) => {
                self.failed = true;
                Some(Err(e))
            }
        }
    }
}

// ---------------------------------------------------------------------------
// ReplicatedSource — R-way failover across copy sources.
// ---------------------------------------------------------------------------

/// A [`ChunkSource`] decorator with R-way replica failover: each chunk is
/// fetched from the first of `copies` (primary first, per chunk) that can
/// deliver it. A copy that fails with a **permanent**-class error hands
/// over to the next copy; transient-class errors propagate (retry layers
/// sit *inside* a copy's stack, not above it). Only when every copy fails
/// permanently does the stream report the chunk as
/// [`ChunkLost`](crate::Error::ChunkLost), with the modelled time of
/// every failed copy's attempts accumulated into `spent`.
///
/// `copy_order` maps a chunk to the order its copies are tried in (e.g. a
/// shard map's owner list); chunks it returns an empty order for are
/// immediately lost. With a single copy and an identity order this is a
/// bit-identical passthrough.
pub struct ReplicatedSource {
    copies: Vec<Arc<dyn ChunkSource>>,
    copy_order: Arc<dyn Fn(usize) -> Vec<u32> + Send + Sync>,
}

impl ReplicatedSource {
    /// A replicated view over `copies` where every chunk tries the copies
    /// in index order — uniform replication.
    pub fn new(copies: Vec<Arc<dyn ChunkSource>>) -> ReplicatedSource {
        let n = copies.len() as u32;
        ReplicatedSource {
            copies,
            copy_order: Arc::new(move |_| (0..n).collect()),
        }
    }

    /// A replicated view with a per-chunk copy order (a placement map's
    /// owner list). Indices out of range of `copies` are skipped.
    pub fn with_copy_order(
        copies: Vec<Arc<dyn ChunkSource>>,
        copy_order: Arc<dyn Fn(usize) -> Vec<u32> + Send + Sync>,
    ) -> ReplicatedSource {
        ReplicatedSource { copies, copy_order }
    }
}

impl ChunkSource for ReplicatedSource {
    fn open_stream(&self, order: Vec<usize>) -> Result<Box<dyn ChunkStream>> {
        Ok(Box::new(ReplicatedStream {
            copies: self.copies.clone(),
            copy_order: self.copy_order.clone(),
            order,
            pos: 0,
            injected: crate::diskmodel::VirtualDuration::ZERO,
            failed: false,
        }))
    }
}

struct ReplicatedStream {
    copies: Vec<Arc<dyn ChunkSource>>,
    copy_order: Arc<dyn Fn(usize) -> Vec<u32> + Send + Sync>,
    order: Vec<usize>,
    pos: usize,
    injected: crate::diskmodel::VirtualDuration,
    failed: bool,
}

impl ChunkStream for ReplicatedStream {
    fn next_chunk(&mut self) -> Option<Result<SourcedChunk>> {
        if self.failed {
            return None;
        }
        let id = self.order.get(self.pos).copied()?;
        self.pos += 1;
        let mut spent = crate::diskmodel::VirtualDuration::ZERO;
        let mut attempts = 0u32;
        for copy_ix in (self.copy_order)(id) {
            let Some(copy) = self.copies.get(copy_ix as usize) else {
                continue;
            };
            // One single-chunk stream per failover hop: replica reads are
            // the exception, so per-chunk opens keep the common path (the
            // primary delivering) as cheap as the underlying source.
            let mut stream = match copy.open_stream(vec![id]) {
                Ok(s) => s,
                Err(e) if e.class() == ErrorClass::Permanent => {
                    attempts += 1;
                    continue;
                }
                Err(e) => {
                    self.failed = true;
                    return Some(Err(e));
                }
            };
            match stream.next_chunk() {
                Some(Ok(chunk)) => {
                    // Failed earlier copies' modelled cost rides the
                    // injected-delay channel, like a retry layer's backoff.
                    self.injected += spent + stream.take_injected_delay();
                    return Some(Ok(chunk));
                }
                Some(Err(e)) => match e.class() {
                    ErrorClass::Permanent => {
                        if let Error::ChunkLost {
                            spent: s,
                            attempts: a,
                            ..
                        } = &e
                        {
                            spent += *s;
                            attempts += *a;
                        } else {
                            attempts += 1;
                        }
                        spent += stream.take_injected_delay();
                    }
                    _ => {
                        self.failed = true;
                        return Some(Err(e));
                    }
                },
                None => {
                    attempts += 1;
                }
            }
        }
        self.failed = true;
        Some(Err(Error::ChunkLost {
            chunk: id,
            attempts,
            spent,
        }))
    }

    fn take_injected_delay(&mut self) -> crate::diskmodel::VirtualDuration {
        std::mem::take(&mut self.injected)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::ChunkDef;
    use eff2_descriptor::{Descriptor, DescriptorSet, Vector};
    use std::path::PathBuf;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("eff2_source_{tag}"));
        std::fs::create_dir_all(&dir).expect("mkdir");
        dir
    }

    fn store_with_chunks(tag: &str, sizes: &[usize]) -> ChunkStore {
        let n: usize = sizes.iter().sum();
        let set: DescriptorSet = (0..n)
            .map(|i| Descriptor::new(i as u32, Vector::splat(i as f32)))
            .collect();
        let mut chunks = Vec::new();
        let mut next = 0u32;
        for &s in sizes {
            let positions: Vec<u32> = (next..next + s as u32).collect();
            next += s as u32;
            chunks.push(ChunkDef {
                positions,
                centroid: Vector::ZERO,
                radius: 1e9,
            });
        }
        ChunkStore::create(&tmp_dir(tag), "s", &set, &chunks, 512).expect("create")
    }

    fn drain(source: &dyn ChunkSource, order: Vec<usize>) -> Vec<SourcedChunk> {
        let mut stream = source.open_stream(order).expect("open stream");
        let mut out = Vec::new();
        while let Some(item) = stream.next_chunk() {
            out.push(item.expect("chunk"));
        }
        out
    }

    #[test]
    fn file_source_matches_direct_reads() {
        let store = store_with_chunks("file", &[3, 5, 2, 4]);
        let order = vec![2usize, 0, 3, 1];
        let got = drain(&FileSource::new(&store), order.clone());
        let mut reader = store.reader().expect("reader");
        assert_eq!(got.len(), order.len());
        for (chunk, &id) in got.iter().zip(order.iter()) {
            let mut direct = ChunkPayload::default();
            let bytes = reader.read_chunk(id, &mut direct).expect("direct");
            assert_eq!(chunk.id, id);
            assert_eq!(*chunk.payload, direct);
            assert_eq!(chunk.bytes_read, bytes);
        }
    }

    #[test]
    fn prefetch_source_matches_file_source() {
        let store = store_with_chunks("prefetch", &[4, 1, 6, 3, 2]);
        let order = vec![4usize, 1, 3, 0, 2];
        let from_file = drain(&FileSource::new(&store), order.clone());
        let from_prefetch = drain(&PrefetchSource::new(&store, 2), order);
        assert_eq!(from_file.len(), from_prefetch.len());
        for (a, b) in from_file.iter().zip(from_prefetch.iter()) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.payload, b.payload);
            assert_eq!(a.bytes_read, b.bytes_read);
        }
    }

    #[test]
    fn resident_source_is_byte_identical_to_file_source() {
        let store = store_with_chunks("resident_eq", &[3, 5, 2, 4]);
        let order: Vec<usize> = vec![1, 3, 0, 2];
        let resident = ResidentSource::new(&store, u64::MAX);
        let from_file = drain(&FileSource::new(&store), order.clone());
        // Two passes: the second is served entirely from memory and must
        // still be byte-identical, including the modelled bytes_read.
        for pass in 0..2 {
            let from_cache = drain(&resident, order.clone());
            for (a, b) in from_file.iter().zip(from_cache.iter()) {
                assert_eq!(a.id, b.id, "pass {pass}");
                assert_eq!(a.payload, b.payload, "pass {pass}");
                assert_eq!(a.bytes_read, b.bytes_read, "pass {pass}");
            }
        }
        let stats = resident.stats();
        assert_eq!(stats.misses, order.len() as u64);
        assert_eq!(stats.hits, order.len() as u64);
        assert_eq!(stats.evictions, 0);
        assert_eq!(stats.resident_chunks, order.len());
    }

    #[test]
    fn resident_lru_respects_byte_budget() {
        let store = store_with_chunks("resident_lru", &[4, 4, 4, 4]);
        let per_chunk = {
            let probe = ResidentSource::new(&store, u64::MAX);
            drain(&probe, vec![0]);
            probe.stats().resident_bytes
        };
        // Room for exactly two chunks.
        let budget = 2 * per_chunk;
        let resident = ResidentSource::new(&store, budget);
        let mut stream = resident.open_stream(vec![0, 1, 2, 3, 0]).expect("open");
        while let Some(item) = stream.next_chunk() {
            item.expect("chunk");
            let stats = resident.stats();
            assert!(
                stats.resident_bytes <= budget,
                "resident {} exceeds budget {budget}",
                stats.resident_bytes
            );
        }
        let stats = resident.stats();
        // 0,1 cached; 2 evicts 0; 3 evicts 1; re-reading 0 evicts 2.
        assert_eq!(stats.misses, 5);
        assert_eq!(stats.hits, 0);
        assert_eq!(stats.evictions, 3);
        assert_eq!(stats.resident_chunks, 2);
        assert_eq!(stats.resident_bytes, budget);
        // LRU order: 3 and 0 are resident now, so they hit.
        drain(&resident, vec![3, 0]);
        let stats = resident.stats();
        assert_eq!(stats.hits, 2);
        assert_eq!(stats.misses, 5);
    }

    #[test]
    fn resident_oversized_chunk_is_served_uncached() {
        let store = store_with_chunks("resident_big", &[8, 2]);
        let resident = ResidentSource::new(&store, 64); // smaller than chunk 0
        let got = drain(&resident, vec![0, 0]);
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].payload, got[1].payload);
        let stats = resident.stats();
        assert_eq!(stats.misses, 2, "oversized chunk never hits");
        assert_eq!(stats.resident_chunks, 0);
        assert_eq!(stats.resident_bytes, 0);
    }

    #[test]
    fn cross_query_hits_are_attributed() {
        let store = store_with_chunks("xquery", &[3]);
        let resident = ResidentSource::new(&store, u64::MAX);
        let tag_a = resident.new_requester();
        let first = resident.fetch(tag_a, 0).expect("fetch a");
        assert!(first.from_disk);
        let again = resident.fetch(tag_a, 0).expect("refetch a");
        assert!(!again.from_disk);
        let tag_b = resident.new_requester();
        let other = resident.fetch(tag_b, 0).expect("fetch b");
        assert!(!other.from_disk);
        assert_eq!(first.chunk.payload, other.chunk.payload);
        let stats = resident.stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits, 2);
        assert_eq!(
            stats.cross_query_hits, 1,
            "only the hit from requester b crossed queries"
        );
    }

    #[test]
    fn concurrent_same_chunk_requests_charge_one_miss() {
        let store = store_with_chunks("oneflight", &[4]);
        let resident = ResidentSource::new(&store, u64::MAX);
        let n = 8usize;
        let barrier = std::sync::Barrier::new(n);
        std::thread::scope(|scope| {
            for _ in 0..n {
                let resident = resident.clone();
                let barrier = &barrier;
                scope.spawn(move || {
                    barrier.wait();
                    let got = drain(&resident, vec![0]);
                    assert_eq!(got.len(), 1);
                    assert_eq!(got[0].payload.len(), 4);
                });
            }
        });
        let stats = resident.stats();
        assert_eq!(stats.misses, 1, "coalesced: only the leader pays the read");
        assert_eq!(stats.hits, n as u64 - 1);
        assert_eq!(
            stats.cross_query_hits,
            n as u64 - 1,
            "every stream carries its own requester tag"
        );
    }

    #[test]
    fn prefetch_clones_share_flight_accounting() {
        let store = store_with_chunks("pf_flight", &[2, 2, 2]);
        let source = PrefetchSource::new(&store, 2);
        let a = drain(&source, vec![0, 1, 2]);
        let b = drain(&source.clone(), vec![2, 1, 0]);
        assert_eq!(a.len(), 3);
        assert_eq!(b.len(), 3);
        let stats = source.flight_stats();
        assert_eq!(stats.reads + stats.coalesced, 6);
        assert!(stats.reads >= 3, "distinct chunks cannot coalesce");
    }

    #[test]
    fn streams_fuse_after_an_error() {
        let store = store_with_chunks("fuse", &[2, 2]);
        for source in [
            Box::new(FileSource::new(&store)) as Box<dyn ChunkSource>,
            Box::new(PrefetchSource::new(&store, 2)),
            Box::new(ResidentSource::new(&store, u64::MAX)),
        ] {
            let mut stream = source.open_stream(vec![0, 9, 1]).expect("open");
            assert!(stream.next_chunk().expect("first").is_ok());
            assert!(stream.next_chunk().expect("second").is_err());
            assert!(stream.next_chunk().is_none(), "stream must fuse");
        }
    }

    /// A copy source whose listed chunks are permanently unreadable.
    struct HoleySource {
        inner: FileSource,
        holes: Vec<usize>,
        spent_ms: f64,
    }

    struct HoleyStream {
        inner: Box<dyn ChunkStream>,
        holes: Vec<usize>,
        spent_ms: f64,
        order: Vec<usize>,
        pos: usize,
    }

    impl ChunkSource for HoleySource {
        fn open_stream(&self, order: Vec<usize>) -> Result<Box<dyn ChunkStream>> {
            Ok(Box::new(HoleyStream {
                inner: self.inner.open_stream(
                    order
                        .iter()
                        .copied()
                        .filter(|c| !self.holes.contains(c))
                        .collect(),
                )?,
                holes: self.holes.clone(),
                spent_ms: self.spent_ms,
                order,
                pos: 0,
            }))
        }
    }

    impl ChunkStream for HoleyStream {
        fn next_chunk(&mut self) -> Option<Result<SourcedChunk>> {
            let id = self.order.get(self.pos).copied()?;
            self.pos += 1;
            if self.holes.contains(&id) {
                Some(Err(Error::ChunkLost {
                    chunk: id,
                    attempts: 1,
                    spent: crate::diskmodel::VirtualDuration::from_ms(self.spent_ms),
                }))
            } else {
                self.inner.next_chunk()
            }
        }
    }

    #[test]
    fn replicated_single_copy_is_a_passthrough() {
        let store = store_with_chunks("repl_pass", &[2, 2, 2]);
        let direct = drain(&FileSource::new(&store), vec![0, 1, 2]);
        let replicated = ReplicatedSource::new(vec![Arc::new(FileSource::new(&store))]);
        let via = drain(&replicated, vec![0, 1, 2]);
        assert_eq!(direct.len(), via.len());
        for (d, v) in direct.iter().zip(via.iter()) {
            assert_eq!(d.id, v.id);
            assert_eq!(d.bytes_read, v.bytes_read);
            assert_eq!(d.payload.ids, v.payload.ids);
        }
    }

    #[test]
    fn failover_masks_a_primary_loss_and_charges_its_cost() {
        let store = store_with_chunks("repl_fail", &[2, 2, 2]);
        let primary = HoleySource {
            inner: FileSource::new(&store),
            holes: vec![1],
            spent_ms: 25.0,
        };
        let replica = FileSource::new(&store);
        let replicated = ReplicatedSource::new(vec![Arc::new(primary), Arc::new(replica)]);
        let mut stream = replicated.open_stream(vec![0, 1, 2]).expect("open");
        let a = stream.next_chunk().expect("c0").expect("ok");
        assert_eq!(a.id, 0);
        assert_eq!(stream.take_injected_delay().as_ms(), 0.0);
        let b = stream.next_chunk().expect("c1").expect("ok");
        assert_eq!(b.id, 1, "replica must deliver the primary's hole");
        assert!(
            (stream.take_injected_delay().as_ms() - 25.0).abs() < 1e-9,
            "failed primary's spent must ride the injected-delay channel"
        );
        let c = stream.next_chunk().expect("c2").expect("ok");
        assert_eq!(c.id, 2);
    }

    #[test]
    fn all_copies_lost_reports_chunk_lost_with_summed_spent() {
        let store = store_with_chunks("repl_lost", &[2, 2]);
        let copies: Vec<Arc<dyn ChunkSource>> = (0..3)
            .map(|_| {
                Arc::new(HoleySource {
                    inner: FileSource::new(&store),
                    holes: vec![0],
                    spent_ms: 10.0,
                }) as Arc<dyn ChunkSource>
            })
            .collect();
        let replicated = ReplicatedSource::new(copies);
        let mut stream = replicated.open_stream(vec![0]).expect("open");
        match stream.next_chunk().expect("item") {
            Err(Error::ChunkLost {
                chunk,
                attempts,
                spent,
            }) => {
                assert_eq!(chunk, 0);
                assert_eq!(attempts, 3);
                assert!((spent.as_ms() - 30.0).abs() < 1e-9);
            }
            other => panic!("expected ChunkLost, got {other:?}"),
        }
        assert!(stream.next_chunk().is_none(), "stream must fuse");
    }

    #[test]
    fn copy_order_routes_primaries_per_chunk() {
        let store = store_with_chunks("repl_order", &[2, 2]);
        // Copy 0 is missing chunk 0; copy 1 is missing chunk 1. A per-chunk
        // order that starts chunk 0 on copy 1 (and vice versa) never fails
        // over at all.
        let c0 = HoleySource {
            inner: FileSource::new(&store),
            holes: vec![0],
            spent_ms: 5.0,
        };
        let c1 = HoleySource {
            inner: FileSource::new(&store),
            holes: vec![1],
            spent_ms: 5.0,
        };
        let replicated = ReplicatedSource::with_copy_order(
            vec![Arc::new(c0), Arc::new(c1)],
            Arc::new(|chunk| if chunk == 0 { vec![1, 0] } else { vec![0, 1] }),
        );
        let mut stream = replicated.open_stream(vec![0, 1]).expect("open");
        for want in [0usize, 1] {
            let got = stream.next_chunk().expect("item").expect("ok");
            assert_eq!(got.id, want);
            assert_eq!(
                stream.take_injected_delay().as_ms(),
                0.0,
                "well-routed reads never pay failover cost"
            );
        }
    }

    #[test]
    fn clones_share_the_cache() {
        let store = store_with_chunks("share", &[3, 3]);
        let a = ResidentSource::new(&store, u64::MAX);
        let b = a.clone();
        drain(&a, vec![0, 1]);
        drain(&b, vec![0, 1]);
        let stats = a.stats();
        assert_eq!(stats.misses, 2);
        assert_eq!(stats.hits, 2);
        assert_eq!(b.stats(), stats);
    }
}
