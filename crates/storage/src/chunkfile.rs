//! The chunk file: descriptors grouped by chunk, page-padded.
//!
//! §4.2: descriptors of a chunk are stored together, chunks sequentially,
//! each padded to occupy full disk pages. Records use the collection's
//! 100-byte layout (id + 24 components).
//!
//! Since format version 2 every chunk body is followed by a 4-byte FNV-1a
//! checksum (inside the padded page span), so corruption is detected at
//! read time instead of being silently scanned.
//!
//! Format **version 3** additionally stores a quantized copy of every
//! chunk. The layout is strictly additive so a v3 file read through the
//! raw path is indistinguishable from v2:
//!
//! ```text
//! page 0              extended header (magic, version=3, page size,
//!                     n_chunks, total descriptors, codec kind,
//!                     codec blob length, quant region start)
//! pages 1..           codec parameter blob, page-padded
//! raw region          chunks exactly as v2 (records + checksum, padded);
//!                     index-file offsets point here
//! quant region        per chunk: ids (count × u32) + codes
//!                     (count × code_bytes) + FNV-1a checksum, padded
//! ```
//!
//! The quant region's per-chunk offsets are derived arithmetically from
//! the chunk counts and the codec's `code_bytes`, so the index file needs
//! no new fields and v2 readers of the raw region keep working unchanged.

use crate::bytes::{array_at, f32_at, u32_at, u64_at};
use crate::error::{Error, Result};
use crate::indexfile::ChunkMeta;
use eff2_descriptor::quant::{Codec, DescriptorCodec};
use eff2_descriptor::{DescriptorSet, DIM};
use std::io::{Read, Seek, SeekFrom, Write};

/// Magic bytes of a chunk file.
pub const MAGIC: [u8; 4] = *b"EFCH";
/// Format version of raw-only chunk files (and of the raw region every
/// version-3 file embeds unchanged).
pub const VERSION: u32 = 2;
/// Format version of chunk files carrying a quantized region.
pub const VERSION_QUANT: u32 = 3;
/// Header size (one full page is reserved so chunk 0 starts page-aligned,
/// but the logical header is this many bytes).
pub const HEADER_BYTES: usize = 24;
/// Logical header size of a version-3 file (the v2 header plus codec
/// kind, codec blob length and quant-region start).
pub const HEADER_BYTES_QUANT: usize = 40;
/// Bytes per descriptor record.
pub const RECORD_BYTES: usize = 4 + DIM * 4;
/// Bytes of the per-chunk checksum stored after the body.
pub const CHECKSUM_BYTES: u64 = 4;

/// Rounds `len` up to a multiple of `page_size`.
pub fn pad_to_page(len: u64, page_size: u64) -> u64 {
    assert!(page_size > 0, "page size must be positive");
    len.div_ceil(page_size) * page_size
}

/// On-disk page span of a chunk with `byte_len` bytes of records: body plus
/// trailing checksum, padded to full pages.
pub fn chunk_span(byte_len: u64, page_size: u64) -> u64 {
    pad_to_page(byte_len + CHECKSUM_BYTES, page_size)
}

/// FNV-1a over a chunk body; cheap, deterministic, and sensitive to single
/// flipped bytes anywhere in the record block.
pub fn checksum(body: &[u8]) -> u32 {
    let mut hash = 0x811c_9dc5u32;
    for &b in body {
        hash ^= u32::from(b);
        hash = hash.wrapping_mul(0x0100_0193);
    }
    hash
}

/// Writes the chunk file header into a page-sized buffer.
fn header_page(page_size: u32, n_chunks: u32, total_descriptors: u64) -> Vec<u8> {
    let mut page = Vec::with_capacity(page_size as usize);
    page.extend_from_slice(&MAGIC);
    page.extend_from_slice(&VERSION.to_le_bytes());
    page.extend_from_slice(&page_size.to_le_bytes());
    page.extend_from_slice(&n_chunks.to_le_bytes());
    page.extend_from_slice(&total_descriptors.to_le_bytes());
    page.resize(page_size as usize, 0);
    page
}

/// Writes the version-3 chunk file header into a page-sized buffer.
fn header_page_quant(
    page_size: u32,
    n_chunks: u32,
    total_descriptors: u64,
    codec_kind: u32,
    codec_blob_len: u32,
    quant_start: u64,
) -> Vec<u8> {
    let mut page = Vec::with_capacity(page_size as usize);
    page.extend_from_slice(&MAGIC);
    page.extend_from_slice(&VERSION_QUANT.to_le_bytes());
    page.extend_from_slice(&page_size.to_le_bytes());
    page.extend_from_slice(&n_chunks.to_le_bytes());
    page.extend_from_slice(&total_descriptors.to_le_bytes());
    page.extend_from_slice(&codec_kind.to_le_bytes());
    page.extend_from_slice(&codec_blob_len.to_le_bytes());
    page.extend_from_slice(&quant_start.to_le_bytes());
    page.resize(page_size as usize, 0);
    page
}

/// Writes one checksummed block: `body`, its FNV-1a checksum, then zero
/// fill up to the next page boundary. Returns the padded span written —
/// always `chunk_span(body.len(), page_size)`.
fn write_padded_block<W: Write>(w: &mut W, body: &[u8], page_size: u32) -> Result<u64> {
    w.write_all(body)?;
    w.write_all(&checksum(body).to_le_bytes())?;
    let padded = chunk_span(body.len() as u64, u64::from(page_size));
    let padding = padded - body.len() as u64 - CHECKSUM_BYTES;
    w.write_all(&vec![0u8; padding as usize])?;
    Ok(padded)
}

/// The one raw-region writer (v2 layout) shared by [`write_chunks`] and
/// [`write_chunks_quantized`]: emits every chunk's record block starting at
/// file offset `offset` and returns the `(offset, byte_len, count)` triples
/// the index file records. Both format versions — and any future one
/// embedding the raw layout — go through here, so the regions stay
/// byte-identical by construction.
fn write_raw_region<W: Write>(
    set: &DescriptorSet,
    chunks: &[Vec<u32>],
    page_size: u32,
    mut offset: u64,
    w: &mut W,
) -> Result<ChunkLocations> {
    let mut locations = Vec::with_capacity(chunks.len());
    let mut body = Vec::new();
    for members in chunks {
        let byte_len = (members.len() * RECORD_BYTES) as u32;
        body.clear();
        for &pos in members {
            let pos = pos as usize;
            body.extend_from_slice(&set.id(pos).0.to_le_bytes());
            for &c in set.vector(pos) {
                body.extend_from_slice(&c.to_le_bytes());
            }
        }
        let padded = write_padded_block(w, &body, page_size)?;
        locations.push((offset, byte_len, members.len() as u32));
        offset += padded;
    }
    Ok(locations)
}

/// Writes the chunks to `writer` and returns, per chunk, the
/// `(offset, byte_len, count)` triple the index file records.
///
/// `chunks` gives each chunk's member positions into `set`. The first page
/// is the header; every chunk starts on a page boundary.
pub fn write_chunks<W: Write>(
    set: &DescriptorSet,
    chunks: &[Vec<u32>],
    page_size: u32,
    writer: W,
) -> Result<Vec<(u64, u32, u32)>> {
    assert!(
        page_size as usize >= HEADER_BYTES,
        "page size must hold the header"
    );
    let mut w = std::io::BufWriter::new(writer);
    let total = chunks.iter().map(|c| c.len() as u64).sum::<u64>();
    w.write_all(&header_page(page_size, chunks.len() as u32, total))?;
    let locations = write_raw_region(set, chunks, page_size, u64::from(page_size), &mut w)?;
    w.flush()?;
    Ok(locations)
}

/// Per-chunk raw-region locations as `(offset, byte_len, count)` triples.
pub type ChunkLocations = Vec<(u64, u32, u32)>;

/// On-disk byte length of one chunk's quantized record block (ids plus
/// codes, before checksum and padding).
pub fn quant_byte_len(count: u32, code_bytes: usize) -> u64 {
    u64::from(count) * (4 + code_bytes as u64)
}

/// Writes a version-3 chunk file: codec blob, raw chunks (v2 layout), then
/// the quantized region. Returns the raw `(offset, byte_len, count)`
/// triples for the index file plus the quant-region start offset (the
/// per-chunk quant offsets follow arithmetically from the counts).
pub fn write_chunks_quantized<W: Write>(
    set: &DescriptorSet,
    chunks: &[Vec<u32>],
    page_size: u32,
    codec: &Codec,
    writer: W,
) -> Result<(ChunkLocations, u64)> {
    assert!(
        page_size as usize >= HEADER_BYTES_QUANT,
        "page size must hold the extended header"
    );
    let blob = codec.to_bytes();
    let cb = codec.code_bytes();
    let mut w = std::io::BufWriter::new(writer);
    let total = chunks.iter().map(|c| c.len() as u64).sum::<u64>();

    // The whole layout is computable up front, so the file is written in
    // one forward pass with the quant-region start already in the header.
    let blob_pages = pad_to_page(blob.len() as u64, u64::from(page_size));
    let raw_start = u64::from(page_size) + blob_pages;
    let raw_span = chunks
        .iter()
        .map(|c| chunk_span((c.len() * RECORD_BYTES) as u64, u64::from(page_size)))
        .sum::<u64>();
    let quant_start = raw_start + raw_span;

    w.write_all(&header_page_quant(
        page_size,
        chunks.len() as u32,
        total,
        codec.kind(),
        blob.len() as u32,
        quant_start,
    ))?;
    w.write_all(&blob)?;
    w.write_all(&vec![0u8; (blob_pages - blob.len() as u64) as usize])?;

    // Raw region: byte-for-byte the v2 chunk layout, via the shared writer.
    let locations = write_raw_region(set, chunks, page_size, raw_start, &mut w)?;

    // Quant region: ids then codes, checksummed and padded like raw chunks.
    let mut body = Vec::new();
    let mut code = vec![0u8; cb];
    for members in chunks {
        body.clear();
        for &pos in members {
            body.extend_from_slice(&set.id(pos as usize).0.to_le_bytes());
        }
        for &pos in members {
            codec.encode_into(set.vector(pos as usize), &mut code);
            body.extend_from_slice(&code);
        }
        debug_assert_eq!(body.len() as u64, quant_byte_len(members.len() as u32, cb));
        write_padded_block(&mut w, &body, page_size)?;
    }
    w.flush()?;
    Ok((locations, quant_start))
}

/// Parsed header of a chunk file.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChunkFileHeader {
    /// Format version ([`VERSION`] or [`VERSION_QUANT`]).
    pub version: u32,
    /// Page size the file was written with.
    pub page_size: u32,
    /// Number of chunks.
    pub n_chunks: u32,
    /// Total descriptors across all chunks.
    pub total_descriptors: u64,
    /// Codec kind tag; 0 in version-2 files.
    pub codec_kind: u32,
    /// Codec parameter blob length in bytes; 0 in version-2 files.
    pub codec_blob_len: u32,
    /// File offset of the quantized region; 0 in version-2 files.
    pub quant_start: u64,
}

/// Reads and validates the chunk-file header (version 2 or 3).
pub fn read_header<R: Read>(reader: &mut R) -> Result<ChunkFileHeader> {
    let mut buf = [0u8; HEADER_BYTES];
    reader
        .read_exact(&mut buf)
        .map_err(|_| Error::Truncated("chunk file header"))?;
    let what = "chunk file header";
    let magic: [u8; 4] = array_at(&buf, 0, what)?;
    if magic != MAGIC {
        return Err(Error::BadMagic {
            file: "chunk file",
            found: magic,
        });
    }
    let version = u32_at(&buf, 4, what)?;
    if version != VERSION && version != VERSION_QUANT {
        return Err(Error::UnsupportedVersion(version));
    }
    let mut header = ChunkFileHeader {
        version,
        page_size: u32_at(&buf, 8, what)?,
        n_chunks: u32_at(&buf, 12, what)?,
        total_descriptors: u64_at(&buf, 16, what)?,
        codec_kind: 0,
        codec_blob_len: 0,
        quant_start: 0,
    };
    if version == VERSION_QUANT {
        let mut ext = [0u8; HEADER_BYTES_QUANT - HEADER_BYTES];
        reader
            .read_exact(&mut ext)
            .map_err(|_| Error::Truncated("chunk file header"))?;
        header.codec_kind = u32_at(&ext, 0, what)?;
        header.codec_blob_len = u32_at(&ext, 4, what)?;
        header.quant_start = u64_at(&ext, 8, what)?;
    }
    Ok(header)
}

/// Decoded contents of one chunk.
///
/// A payload carries either raw rows (`packed`, from the raw region) or
/// quantized rows (`codes`, from a v3 file's quant region), never both —
/// which one is filled depends on the read mode of the store the chunk
/// came through.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ChunkPayload {
    /// Descriptor identifiers, in storage order.
    pub ids: Vec<u32>,
    /// Packed vector components (`ids.len() * DIM` floats, row-major);
    /// empty for quantized reads.
    pub packed: Vec<f32>,
    /// Packed codec codes (`ids.len() * code_bytes` bytes, row-major);
    /// empty for raw reads.
    pub codes: Vec<u8>,
}

impl ChunkPayload {
    /// Number of descriptors.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether the payload is empty.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Clears without releasing capacity (buffer reuse across chunks).
    pub fn clear(&mut self) {
        self.ids.clear();
        self.packed.clear();
        self.codes.clear();
    }
}

/// Reads one chunk (located by its index entry) from a seekable chunk file
/// into `payload`, reusing its buffers and verifying the stored checksum.
/// Returns the number of bytes read from disk — the padded page span,
/// which is what the disk transfers.
pub fn read_chunk_at<R: Read + Seek>(
    reader: &mut R,
    meta: &ChunkMeta,
    page_size: u32,
    payload: &mut ChunkPayload,
) -> Result<u64> {
    payload.clear();
    reader.seek(SeekFrom::Start(meta.offset))?;
    let padded = chunk_span(u64::from(meta.byte_len), u64::from(page_size));
    let mut raw = vec![0u8; padded as usize];
    reader
        .read_exact(&mut raw)
        .map_err(|_| Error::Truncated("chunk body"))?;
    let body = raw
        .get(..meta.byte_len as usize)
        .ok_or(Error::Truncated("chunk body"))?;
    let stored = raw
        .get(meta.byte_len as usize..meta.byte_len as usize + CHECKSUM_BYTES as usize)
        .and_then(|b| b.try_into().ok())
        .map(u32::from_le_bytes)
        .ok_or(Error::Truncated("chunk checksum"))?;
    let computed = checksum(body);
    if stored != computed {
        return Err(Error::Corrupt {
            offset: meta.offset,
            expected: stored,
            found: computed,
        });
    }
    decode_records(body, meta.count, payload)?;
    Ok(padded)
}

/// Reads one chunk's quantized records from a v3 file's quant region into
/// `payload` (ids + codes; `packed` stays empty), verifying the stored
/// checksum. Returns the padded page span the disk model charges — for a
/// compressing codec this is strictly smaller than the raw chunk's span.
pub fn read_quant_chunk_at<R: Read + Seek>(
    reader: &mut R,
    quant_offset: u64,
    count: u32,
    code_bytes: usize,
    page_size: u32,
    payload: &mut ChunkPayload,
) -> Result<u64> {
    payload.clear();
    reader.seek(SeekFrom::Start(quant_offset))?;
    let byte_len = quant_byte_len(count, code_bytes);
    let padded = chunk_span(byte_len, u64::from(page_size));
    let mut raw = vec![0u8; padded as usize];
    reader
        .read_exact(&mut raw)
        .map_err(|_| Error::Truncated("quantized chunk body"))?;
    let body = raw
        .get(..byte_len as usize)
        .ok_or(Error::Truncated("quantized chunk body"))?;
    let stored = raw
        .get(byte_len as usize..byte_len as usize + CHECKSUM_BYTES as usize)
        .and_then(|b| b.try_into().ok())
        .map(u32::from_le_bytes)
        .ok_or(Error::Truncated("quantized chunk checksum"))?;
    let computed = checksum(body);
    if stored != computed {
        return Err(Error::Corrupt {
            offset: quant_offset,
            expected: stored,
            found: computed,
        });
    }
    let ids_bytes = count as usize * 4;
    let (id_region, code_region) = (
        body.get(..ids_bytes)
            .ok_or(Error::Truncated("quantized chunk ids"))?,
        body.get(ids_bytes..)
            .ok_or(Error::Truncated("quantized chunk codes"))?,
    );
    payload.ids.reserve(count as usize);
    for rec in id_region.chunks_exact(4) {
        payload.ids.push(u32_at(rec, 0, "quantized chunk record")?);
    }
    payload.codes.extend_from_slice(code_region);
    Ok(padded)
}

/// Decodes `count` records from `raw` into `payload`.
pub fn decode_records(raw: &[u8], count: u32, payload: &mut ChunkPayload) -> Result<()> {
    if raw.len() != count as usize * RECORD_BYTES {
        return Err(Error::Inconsistent(format!(
            "chunk body of {} bytes cannot hold {} records",
            raw.len(),
            count
        )));
    }
    payload.ids.reserve(count as usize);
    payload.packed.reserve(count as usize * DIM);
    for rec in raw.chunks_exact(RECORD_BYTES) {
        payload.ids.push(u32_at(rec, 0, "chunk record")?);
        for d in 0..DIM {
            payload.packed.push(f32_at(rec, 4 + d * 4, "chunk record")?);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use eff2_descriptor::{Descriptor, Vector};
    use std::io::Cursor;

    fn sample_set(n: usize) -> DescriptorSet {
        (0..n)
            .map(|i| Descriptor::new(i as u32 * 3, Vector::splat(i as f32 * 0.25)))
            .collect()
    }

    #[test]
    fn pad_rounds_up() {
        assert_eq!(pad_to_page(0, 4096), 0);
        assert_eq!(pad_to_page(1, 4096), 4096);
        assert_eq!(pad_to_page(4096, 4096), 4096);
        assert_eq!(pad_to_page(4097, 4096), 8192);
    }

    #[test]
    fn chunks_are_page_aligned_and_roundtrip() {
        let set = sample_set(10);
        let chunks = vec![vec![0u32, 1, 2], vec![3, 4, 5, 6], vec![7, 8, 9]];
        let page = 512u32;
        let mut buf = Vec::new();
        let locs = write_chunks(&set, &chunks, page, &mut buf).expect("write");
        assert_eq!(locs.len(), 3);
        for (off, _, _) in &locs {
            assert_eq!(off % u64::from(page), 0, "chunk must start on a page");
        }
        // Read back each chunk and compare ids/vectors.
        let mut cursor = Cursor::new(&buf);
        let header = read_header(&mut cursor).expect("header");
        assert_eq!(header.n_chunks, 3);
        assert_eq!(header.total_descriptors, 10);
        assert_eq!(header.page_size, page);
        let mut payload = ChunkPayload::default();
        for (ci, (off, blen, count)) in locs.iter().enumerate() {
            let meta = ChunkMeta {
                centroid: Vector::ZERO,
                radius: 0.0,
                offset: *off,
                byte_len: *blen,
                count: *count,
            };
            let read = read_chunk_at(&mut cursor, &meta, page, &mut payload).expect("read");
            assert_eq!(read % u64::from(page), 0);
            assert_eq!(payload.len(), chunks[ci].len());
            for (k, &pos) in chunks[ci].iter().enumerate() {
                assert_eq!(payload.ids[k], set.id(pos as usize).0);
                assert_eq!(
                    &payload.packed[k * DIM..(k + 1) * DIM],
                    set.vector(pos as usize)
                );
            }
        }
    }

    #[test]
    fn empty_chunk_list() {
        let set = sample_set(1);
        let mut buf = Vec::new();
        let locs = write_chunks(&set, &[], 256, &mut buf).expect("write");
        assert!(locs.is_empty());
        let mut cursor = Cursor::new(&buf);
        let header = read_header(&mut cursor).expect("header");
        assert_eq!(header.n_chunks, 0);
    }

    #[test]
    fn bad_magic_rejected() {
        let mut buf = vec![0u8; 64];
        buf[0..4].copy_from_slice(b"XXXX");
        assert!(matches!(
            read_header(&mut Cursor::new(&buf)),
            Err(Error::BadMagic {
                file: "chunk file",
                ..
            })
        ));
    }

    #[test]
    fn truncated_chunk_detected() {
        let set = sample_set(4);
        let chunks = vec![vec![0u32, 1, 2, 3]];
        let page = 256u32;
        let mut buf = Vec::new();
        let locs = write_chunks(&set, &chunks, page, &mut buf).expect("write");
        buf.truncate(buf.len() - 100);
        let meta = ChunkMeta {
            centroid: Vector::ZERO,
            radius: 0.0,
            offset: locs[0].0,
            byte_len: locs[0].1,
            count: locs[0].2,
        };
        let mut payload = ChunkPayload::default();
        assert!(matches!(
            read_chunk_at(&mut Cursor::new(&buf), &meta, page, &mut payload),
            Err(Error::Truncated(_))
        ));
    }

    #[test]
    fn corrupted_chunk_detected_not_scanned() {
        let set = sample_set(6);
        let chunks = vec![vec![0u32, 1, 2], vec![3, 4, 5]];
        let page = 256u32;
        let mut buf = Vec::new();
        let locs = write_chunks(&set, &chunks, page, &mut buf).expect("write");
        // Flip one byte in the middle of chunk 1's record block.
        let hit = locs[1].0 as usize + locs[1].1 as usize / 2;
        buf[hit] ^= 0x40;
        let mut payload = ChunkPayload::default();
        // Chunk 0 still reads clean.
        let meta0 = ChunkMeta {
            centroid: Vector::ZERO,
            radius: 0.0,
            offset: locs[0].0,
            byte_len: locs[0].1,
            count: locs[0].2,
        };
        read_chunk_at(&mut Cursor::new(&buf), &meta0, page, &mut payload).expect("clean chunk");
        // Chunk 1 is detected as corrupt, with the damage located.
        let meta1 = ChunkMeta {
            centroid: Vector::ZERO,
            radius: 0.0,
            offset: locs[1].0,
            byte_len: locs[1].1,
            count: locs[1].2,
        };
        match read_chunk_at(&mut Cursor::new(&buf), &meta1, page, &mut payload) {
            Err(Error::Corrupt {
                offset,
                expected,
                found,
            }) => {
                assert_eq!(offset, locs[1].0);
                assert_ne!(expected, found);
            }
            other => panic!("expected Corrupt, got {other:?}"),
        }
    }

    #[test]
    fn checksum_is_fnv1a() {
        assert_eq!(checksum(&[]), 0x811c_9dc5);
        // Single-byte sensitivity: any flipped byte changes the sum.
        let base = checksum(b"chunk body bytes");
        assert_ne!(base, checksum(b"chunk bodY bytes"));
    }

    #[test]
    fn chunk_span_reserves_checksum_room() {
        // An exactly page-filling body needs one more page for its checksum.
        assert_eq!(chunk_span(512, 512), 1024);
        assert_eq!(chunk_span(500, 512), 512);
        assert_eq!(chunk_span(0, 512), 512);
    }

    #[test]
    fn v3_raw_region_is_bit_identical_to_v2() {
        use eff2_descriptor::Sq8Codec;
        let set = sample_set(12);
        let chunks = vec![vec![0u32, 1, 2, 3], vec![4, 5], vec![6, 7, 8, 9, 10, 11]];
        let page = 512u32;
        let mut v2 = Vec::new();
        let v2_locs = write_chunks(&set, &chunks, page, &mut v2).expect("v2");
        let codec = Codec::Sq8(Sq8Codec::from_set(&set));
        let mut v3 = Vec::new();
        let (v3_locs, quant_start) =
            write_chunks_quantized(&set, &chunks, page, &codec, &mut v3).expect("v3");
        assert_eq!(v2_locs.len(), v3_locs.len());
        // Same byte_len/count per chunk; offsets shifted by the codec pages.
        let shift = v3_locs[0].0 - v2_locs[0].0;
        for (a, b) in v2_locs.iter().zip(v3_locs.iter()) {
            assert_eq!(a.0 + shift, b.0);
            assert_eq!(a.1, b.1);
            assert_eq!(a.2, b.2);
        }
        // The raw regions are byte-for-byte identical.
        let v2_raw = &v2[v2_locs[0].0 as usize..];
        let v3_raw = &v3[v3_locs[0].0 as usize..quant_start as usize];
        assert_eq!(v2_raw, v3_raw);
        // And each raw chunk reads back through the ordinary v2 path.
        let mut cursor = Cursor::new(&v3);
        let header = read_header(&mut cursor).expect("header");
        assert_eq!(header.version, VERSION_QUANT);
        assert_eq!(header.n_chunks, 3);
        let mut payload = ChunkPayload::default();
        for (ci, (off, blen, count)) in v3_locs.iter().enumerate() {
            let meta = ChunkMeta {
                centroid: Vector::ZERO,
                radius: 0.0,
                offset: *off,
                byte_len: *blen,
                count: *count,
            };
            read_chunk_at(&mut cursor, &meta, page, &mut payload).expect("raw read");
            assert_eq!(payload.len(), chunks[ci].len());
            assert!(payload.codes.is_empty());
        }
    }

    #[test]
    fn v3_quant_region_roundtrips_codes() {
        use eff2_descriptor::{DescriptorCodec, Sq8Codec};
        let set = sample_set(10);
        let chunks = vec![vec![0u32, 1, 2], vec![3, 4, 5, 6], vec![7, 8, 9]];
        let page = 512u32;
        let codec = Codec::Sq8(Sq8Codec::from_set(&set));
        let cb = codec.code_bytes();
        let mut buf = Vec::new();
        let (_locs, quant_start) =
            write_chunks_quantized(&set, &chunks, page, &codec, &mut buf).expect("write");
        let mut cursor = Cursor::new(&buf);
        let mut payload = ChunkPayload::default();
        let mut offset = quant_start;
        let mut expect_code = vec![0u8; cb];
        for members in &chunks {
            let span = read_quant_chunk_at(
                &mut cursor,
                offset,
                members.len() as u32,
                cb,
                page,
                &mut payload,
            )
            .expect("quant read");
            assert_eq!(span % u64::from(page), 0);
            assert!(payload.packed.is_empty());
            assert_eq!(payload.ids.len(), members.len());
            assert_eq!(payload.codes.len(), members.len() * cb);
            for (k, &pos) in members.iter().enumerate() {
                assert_eq!(payload.ids[k], set.id(pos as usize).0);
                codec.encode_into(set.vector(pos as usize), &mut expect_code);
                assert_eq!(&payload.codes[k * cb..(k + 1) * cb], &expect_code[..]);
            }
            offset += span;
        }
    }

    #[test]
    fn quant_corruption_detected() {
        use eff2_descriptor::{DescriptorCodec, Sq8Codec};
        let set = sample_set(8);
        let chunks = vec![vec![0u32, 1, 2, 3, 4, 5, 6, 7]];
        let page = 256u32;
        let codec = Codec::Sq8(Sq8Codec::from_set(&set));
        let mut buf = Vec::new();
        let (_, quant_start) =
            write_chunks_quantized(&set, &chunks, page, &codec, &mut buf).expect("write");
        buf[quant_start as usize + 10] ^= 0x80;
        let mut payload = ChunkPayload::default();
        assert!(matches!(
            read_quant_chunk_at(
                &mut Cursor::new(&buf),
                quant_start,
                8,
                codec.code_bytes(),
                page,
                &mut payload
            ),
            Err(Error::Corrupt { .. })
        ));
    }

    #[test]
    fn unknown_version_rejected() {
        let set = sample_set(2);
        let mut buf = Vec::new();
        write_chunks(&set, &[vec![0, 1]], 256, &mut buf).expect("write");
        buf[4] = 9; // stamp a bogus version
        assert!(matches!(
            read_header(&mut Cursor::new(&buf)),
            Err(Error::UnsupportedVersion(9))
        ));
    }

    #[test]
    fn decode_rejects_wrong_count() {
        let raw = vec![0u8; RECORD_BYTES * 2];
        let mut payload = ChunkPayload::default();
        assert!(matches!(
            decode_records(&raw, 3, &mut payload),
            Err(Error::Inconsistent(_))
        ));
    }

    #[test]
    fn payload_clear_keeps_capacity() {
        let mut p = ChunkPayload {
            ids: Vec::with_capacity(100),
            packed: Vec::with_capacity(100 * DIM),
            codes: Vec::new(),
        };
        p.ids.push(1);
        p.packed.extend(std::iter::repeat_n(0.0, DIM));
        let cap = p.ids.capacity();
        p.clear();
        assert!(p.is_empty());
        assert_eq!(p.ids.capacity(), cap);
    }
}
