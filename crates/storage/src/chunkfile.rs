//! The chunk file: descriptors grouped by chunk, page-padded.
//!
//! §4.2: descriptors of a chunk are stored together, chunks sequentially,
//! each padded to occupy full disk pages. Records use the collection's
//! 100-byte layout (id + 24 components).
//!
//! Since format version 2 every chunk body is followed by a 4-byte FNV-1a
//! checksum (inside the padded page span), so corruption is detected at
//! read time instead of being silently scanned.

use crate::bytes::{array_at, f32_at, u32_at, u64_at};
use crate::error::{Error, Result};
use crate::indexfile::ChunkMeta;
use eff2_descriptor::{DescriptorSet, DIM};
use std::io::{Read, Seek, SeekFrom, Write};

/// Magic bytes of a chunk file.
pub const MAGIC: [u8; 4] = *b"EFCH";
/// Current format version.
pub const VERSION: u32 = 2;
/// Header size (one full page is reserved so chunk 0 starts page-aligned,
/// but the logical header is this many bytes).
pub const HEADER_BYTES: usize = 24;
/// Bytes per descriptor record.
pub const RECORD_BYTES: usize = 4 + DIM * 4;
/// Bytes of the per-chunk checksum stored after the body.
pub const CHECKSUM_BYTES: u64 = 4;

/// Rounds `len` up to a multiple of `page_size`.
pub fn pad_to_page(len: u64, page_size: u64) -> u64 {
    assert!(page_size > 0, "page size must be positive");
    len.div_ceil(page_size) * page_size
}

/// On-disk page span of a chunk with `byte_len` bytes of records: body plus
/// trailing checksum, padded to full pages.
pub fn chunk_span(byte_len: u64, page_size: u64) -> u64 {
    pad_to_page(byte_len + CHECKSUM_BYTES, page_size)
}

/// FNV-1a over a chunk body; cheap, deterministic, and sensitive to single
/// flipped bytes anywhere in the record block.
pub fn checksum(body: &[u8]) -> u32 {
    let mut hash = 0x811c_9dc5u32;
    for &b in body {
        hash ^= u32::from(b);
        hash = hash.wrapping_mul(0x0100_0193);
    }
    hash
}

/// Writes the chunk file header into a page-sized buffer.
fn header_page(page_size: u32, n_chunks: u32, total_descriptors: u64) -> Vec<u8> {
    let mut page = Vec::with_capacity(page_size as usize);
    page.extend_from_slice(&MAGIC);
    page.extend_from_slice(&VERSION.to_le_bytes());
    page.extend_from_slice(&page_size.to_le_bytes());
    page.extend_from_slice(&n_chunks.to_le_bytes());
    page.extend_from_slice(&total_descriptors.to_le_bytes());
    page.resize(page_size as usize, 0);
    page
}

/// Writes the chunks to `writer` and returns, per chunk, the
/// `(offset, byte_len, count)` triple the index file records.
///
/// `chunks` gives each chunk's member positions into `set`. The first page
/// is the header; every chunk starts on a page boundary.
pub fn write_chunks<W: Write>(
    set: &DescriptorSet,
    chunks: &[Vec<u32>],
    page_size: u32,
    writer: W,
) -> Result<Vec<(u64, u32, u32)>> {
    assert!(
        page_size as usize >= HEADER_BYTES,
        "page size must hold the header"
    );
    let mut w = std::io::BufWriter::new(writer);
    let total = chunks.iter().map(|c| c.len() as u64).sum::<u64>();
    w.write_all(&header_page(page_size, chunks.len() as u32, total))?;

    let mut locations = Vec::with_capacity(chunks.len());
    let mut offset = u64::from(page_size);
    let mut body = Vec::new();
    for members in chunks {
        let byte_len = (members.len() * RECORD_BYTES) as u32;
        body.clear();
        for &pos in members {
            let pos = pos as usize;
            body.extend_from_slice(&set.id(pos).0.to_le_bytes());
            for &c in set.vector(pos) {
                body.extend_from_slice(&c.to_le_bytes());
            }
        }
        w.write_all(&body)?;
        w.write_all(&checksum(&body).to_le_bytes())?;
        let padded = chunk_span(u64::from(byte_len), u64::from(page_size));
        let padding = padded - u64::from(byte_len) - CHECKSUM_BYTES;
        // Zero-fill to the page boundary.
        w.write_all(&vec![0u8; padding as usize])?;
        locations.push((offset, byte_len, members.len() as u32));
        offset += padded;
    }
    w.flush()?;
    Ok(locations)
}

/// Parsed header of a chunk file.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChunkFileHeader {
    /// Page size the file was written with.
    pub page_size: u32,
    /// Number of chunks.
    pub n_chunks: u32,
    /// Total descriptors across all chunks.
    pub total_descriptors: u64,
}

/// Reads and validates the chunk-file header.
pub fn read_header<R: Read>(reader: &mut R) -> Result<ChunkFileHeader> {
    let mut buf = [0u8; HEADER_BYTES];
    reader
        .read_exact(&mut buf)
        .map_err(|_| Error::Truncated("chunk file header"))?;
    let what = "chunk file header";
    let magic: [u8; 4] = array_at(&buf, 0, what)?;
    if magic != MAGIC {
        return Err(Error::BadMagic {
            file: "chunk file",
            found: magic,
        });
    }
    let version = u32_at(&buf, 4, what)?;
    if version != VERSION {
        return Err(Error::UnsupportedVersion(version));
    }
    Ok(ChunkFileHeader {
        page_size: u32_at(&buf, 8, what)?,
        n_chunks: u32_at(&buf, 12, what)?,
        total_descriptors: u64_at(&buf, 16, what)?,
    })
}

/// Decoded contents of one chunk.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ChunkPayload {
    /// Descriptor identifiers, in storage order.
    pub ids: Vec<u32>,
    /// Packed vector components (`ids.len() * DIM` floats, row-major).
    pub packed: Vec<f32>,
}

impl ChunkPayload {
    /// Number of descriptors.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether the payload is empty.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Clears without releasing capacity (buffer reuse across chunks).
    pub fn clear(&mut self) {
        self.ids.clear();
        self.packed.clear();
    }
}

/// Reads one chunk (located by its index entry) from a seekable chunk file
/// into `payload`, reusing its buffers and verifying the stored checksum.
/// Returns the number of bytes read from disk — the padded page span,
/// which is what the disk transfers.
pub fn read_chunk_at<R: Read + Seek>(
    reader: &mut R,
    meta: &ChunkMeta,
    page_size: u32,
    payload: &mut ChunkPayload,
) -> Result<u64> {
    payload.clear();
    reader.seek(SeekFrom::Start(meta.offset))?;
    let padded = chunk_span(u64::from(meta.byte_len), u64::from(page_size));
    let mut raw = vec![0u8; padded as usize];
    reader
        .read_exact(&mut raw)
        .map_err(|_| Error::Truncated("chunk body"))?;
    let body = raw
        .get(..meta.byte_len as usize)
        .ok_or(Error::Truncated("chunk body"))?;
    let stored = raw
        .get(meta.byte_len as usize..meta.byte_len as usize + CHECKSUM_BYTES as usize)
        .and_then(|b| b.try_into().ok())
        .map(u32::from_le_bytes)
        .ok_or(Error::Truncated("chunk checksum"))?;
    let computed = checksum(body);
    if stored != computed {
        return Err(Error::Corrupt {
            offset: meta.offset,
            expected: stored,
            found: computed,
        });
    }
    decode_records(body, meta.count, payload)?;
    Ok(padded)
}

/// Decodes `count` records from `raw` into `payload`.
pub fn decode_records(raw: &[u8], count: u32, payload: &mut ChunkPayload) -> Result<()> {
    if raw.len() != count as usize * RECORD_BYTES {
        return Err(Error::Inconsistent(format!(
            "chunk body of {} bytes cannot hold {} records",
            raw.len(),
            count
        )));
    }
    payload.ids.reserve(count as usize);
    payload.packed.reserve(count as usize * DIM);
    for rec in raw.chunks_exact(RECORD_BYTES) {
        payload.ids.push(u32_at(rec, 0, "chunk record")?);
        for d in 0..DIM {
            payload.packed.push(f32_at(rec, 4 + d * 4, "chunk record")?);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use eff2_descriptor::{Descriptor, Vector};
    use std::io::Cursor;

    fn sample_set(n: usize) -> DescriptorSet {
        (0..n)
            .map(|i| Descriptor::new(i as u32 * 3, Vector::splat(i as f32 * 0.25)))
            .collect()
    }

    #[test]
    fn pad_rounds_up() {
        assert_eq!(pad_to_page(0, 4096), 0);
        assert_eq!(pad_to_page(1, 4096), 4096);
        assert_eq!(pad_to_page(4096, 4096), 4096);
        assert_eq!(pad_to_page(4097, 4096), 8192);
    }

    #[test]
    fn chunks_are_page_aligned_and_roundtrip() {
        let set = sample_set(10);
        let chunks = vec![vec![0u32, 1, 2], vec![3, 4, 5, 6], vec![7, 8, 9]];
        let page = 512u32;
        let mut buf = Vec::new();
        let locs = write_chunks(&set, &chunks, page, &mut buf).expect("write");
        assert_eq!(locs.len(), 3);
        for (off, _, _) in &locs {
            assert_eq!(off % u64::from(page), 0, "chunk must start on a page");
        }
        // Read back each chunk and compare ids/vectors.
        let mut cursor = Cursor::new(&buf);
        let header = read_header(&mut cursor).expect("header");
        assert_eq!(header.n_chunks, 3);
        assert_eq!(header.total_descriptors, 10);
        assert_eq!(header.page_size, page);
        let mut payload = ChunkPayload::default();
        for (ci, (off, blen, count)) in locs.iter().enumerate() {
            let meta = ChunkMeta {
                centroid: Vector::ZERO,
                radius: 0.0,
                offset: *off,
                byte_len: *blen,
                count: *count,
            };
            let read = read_chunk_at(&mut cursor, &meta, page, &mut payload).expect("read");
            assert_eq!(read % u64::from(page), 0);
            assert_eq!(payload.len(), chunks[ci].len());
            for (k, &pos) in chunks[ci].iter().enumerate() {
                assert_eq!(payload.ids[k], set.id(pos as usize).0);
                assert_eq!(
                    &payload.packed[k * DIM..(k + 1) * DIM],
                    set.vector(pos as usize)
                );
            }
        }
    }

    #[test]
    fn empty_chunk_list() {
        let set = sample_set(1);
        let mut buf = Vec::new();
        let locs = write_chunks(&set, &[], 256, &mut buf).expect("write");
        assert!(locs.is_empty());
        let mut cursor = Cursor::new(&buf);
        let header = read_header(&mut cursor).expect("header");
        assert_eq!(header.n_chunks, 0);
    }

    #[test]
    fn bad_magic_rejected() {
        let mut buf = vec![0u8; 64];
        buf[0..4].copy_from_slice(b"XXXX");
        assert!(matches!(
            read_header(&mut Cursor::new(&buf)),
            Err(Error::BadMagic {
                file: "chunk file",
                ..
            })
        ));
    }

    #[test]
    fn truncated_chunk_detected() {
        let set = sample_set(4);
        let chunks = vec![vec![0u32, 1, 2, 3]];
        let page = 256u32;
        let mut buf = Vec::new();
        let locs = write_chunks(&set, &chunks, page, &mut buf).expect("write");
        buf.truncate(buf.len() - 100);
        let meta = ChunkMeta {
            centroid: Vector::ZERO,
            radius: 0.0,
            offset: locs[0].0,
            byte_len: locs[0].1,
            count: locs[0].2,
        };
        let mut payload = ChunkPayload::default();
        assert!(matches!(
            read_chunk_at(&mut Cursor::new(&buf), &meta, page, &mut payload),
            Err(Error::Truncated(_))
        ));
    }

    #[test]
    fn corrupted_chunk_detected_not_scanned() {
        let set = sample_set(6);
        let chunks = vec![vec![0u32, 1, 2], vec![3, 4, 5]];
        let page = 256u32;
        let mut buf = Vec::new();
        let locs = write_chunks(&set, &chunks, page, &mut buf).expect("write");
        // Flip one byte in the middle of chunk 1's record block.
        let hit = locs[1].0 as usize + locs[1].1 as usize / 2;
        buf[hit] ^= 0x40;
        let mut payload = ChunkPayload::default();
        // Chunk 0 still reads clean.
        let meta0 = ChunkMeta {
            centroid: Vector::ZERO,
            radius: 0.0,
            offset: locs[0].0,
            byte_len: locs[0].1,
            count: locs[0].2,
        };
        read_chunk_at(&mut Cursor::new(&buf), &meta0, page, &mut payload).expect("clean chunk");
        // Chunk 1 is detected as corrupt, with the damage located.
        let meta1 = ChunkMeta {
            centroid: Vector::ZERO,
            radius: 0.0,
            offset: locs[1].0,
            byte_len: locs[1].1,
            count: locs[1].2,
        };
        match read_chunk_at(&mut Cursor::new(&buf), &meta1, page, &mut payload) {
            Err(Error::Corrupt {
                offset,
                expected,
                found,
            }) => {
                assert_eq!(offset, locs[1].0);
                assert_ne!(expected, found);
            }
            other => panic!("expected Corrupt, got {other:?}"),
        }
    }

    #[test]
    fn checksum_is_fnv1a() {
        assert_eq!(checksum(&[]), 0x811c_9dc5);
        // Single-byte sensitivity: any flipped byte changes the sum.
        let base = checksum(b"chunk body bytes");
        assert_ne!(base, checksum(b"chunk bodY bytes"));
    }

    #[test]
    fn chunk_span_reserves_checksum_room() {
        // An exactly page-filling body needs one more page for its checksum.
        assert_eq!(chunk_span(512, 512), 1024);
        assert_eq!(chunk_span(500, 512), 512);
        assert_eq!(chunk_span(0, 512), 512);
    }

    #[test]
    fn decode_rejects_wrong_count() {
        let raw = vec![0u8; RECORD_BYTES * 2];
        let mut payload = ChunkPayload::default();
        assert!(matches!(
            decode_records(&raw, 3, &mut payload),
            Err(Error::Inconsistent(_))
        ));
    }

    #[test]
    fn payload_clear_keeps_capacity() {
        let mut p = ChunkPayload {
            ids: Vec::with_capacity(100),
            packed: Vec::with_capacity(100 * DIM),
        };
        p.ids.push(1);
        p.packed.extend(std::iter::repeat_n(0.0, DIM));
        let cap = p.ids.capacity();
        p.clear();
        assert!(p.is_empty());
        assert_eq!(p.ids.capacity(), cap);
    }
}
