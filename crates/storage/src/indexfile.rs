//! The index file: one fixed-width entry per chunk.
//!
//! §4.2: *"Each entry of the index stores the coordinates of the centroid
//! of each chunk and the radius of the chunk, as well as its location in
//! the chunk file. The order of the entries in the index is identical to
//! the order of the chunks in the chunk file."* The radius is stored
//! because the to-completion stop rule needs the lower bound
//! `d(q, centroid) − radius` ("computing this minimum distance is the
//! rationale for storing the radii of chunks together with their
//! centroids", §4.3).
//!
//! Layout:
//!
//! ```text
//! [0..4)   magic  b"EFIX"
//! [4..8)   version u32 le
//! [8..12)  n_chunks u32 le
//! [12..16) page_size u32 le
//! [16..)   n_chunks × entry
//! entry: centroid 24 × f32 le | radius f32 le | offset u64 le
//!        | byte_len u32 le | count u32 le          (116 bytes)
//! ```

use crate::bytes::{array_at, f32_at, u32_at, u64_at};
use crate::error::{Error, Result};
use eff2_descriptor::{Vector, DIM};
use std::io::{BufReader, BufWriter, Read, Write};

/// Magic bytes of an index file.
pub const MAGIC: [u8; 4] = *b"EFIX";
/// Current format version.
pub const VERSION: u32 = 1;
/// Bytes per index entry.
pub const ENTRY_BYTES: usize = DIM * 4 + 4 + 8 + 4 + 4;
/// Header size in bytes.
pub const HEADER_BYTES: usize = 16;

/// The index-file entry for one chunk.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ChunkMeta {
    /// Centroid of the chunk's descriptors.
    pub centroid: Vector,
    /// Minimum bounding radius of the chunk around its centroid.
    pub radius: f32,
    /// Byte offset of the chunk in the chunk file (page aligned).
    pub offset: u64,
    /// Length in bytes of the chunk's record area (before padding).
    pub byte_len: u32,
    /// Number of descriptors in the chunk.
    pub count: u32,
}

impl ChunkMeta {
    /// The §4.3 lower bound on the distance from `q` to any descriptor in
    /// this chunk: `max(0, d(q, centroid) − radius)`.
    pub fn min_possible_dist(&self, q: &Vector) -> f32 {
        (self.centroid.dist(q) - self.radius).max(0.0)
    }
}

/// Writes the index file for `metas` (ordered as the chunk file).
pub fn write_index<W: Write>(metas: &[ChunkMeta], page_size: u32, writer: W) -> Result<()> {
    let mut w = BufWriter::new(writer);
    w.write_all(&MAGIC)?;
    w.write_all(&VERSION.to_le_bytes())?;
    w.write_all(&(metas.len() as u32).to_le_bytes())?;
    w.write_all(&page_size.to_le_bytes())?;
    for m in metas {
        for &c in m.centroid.as_slice() {
            w.write_all(&c.to_le_bytes())?;
        }
        w.write_all(&m.radius.to_le_bytes())?;
        w.write_all(&m.offset.to_le_bytes())?;
        w.write_all(&m.byte_len.to_le_bytes())?;
        w.write_all(&m.count.to_le_bytes())?;
    }
    w.flush()?;
    Ok(())
}

/// Reads an index file, returning the entries and the page size.
pub fn read_index<R: Read>(reader: R) -> Result<(Vec<ChunkMeta>, u32)> {
    let mut r = BufReader::new(reader);
    let mut header = [0u8; HEADER_BYTES];
    r.read_exact(&mut header)
        .map_err(|_| Error::Truncated("index header"))?;
    let what = "index header";
    let magic: [u8; 4] = array_at(&header, 0, what)?;
    if magic != MAGIC {
        return Err(Error::BadMagic {
            file: "index file",
            found: magic,
        });
    }
    let version = u32_at(&header, 4, what)?;
    if version != VERSION {
        return Err(Error::UnsupportedVersion(version));
    }
    let n = u32_at(&header, 8, what)? as usize;
    let page_size = u32_at(&header, 12, what)?;

    let mut metas = Vec::with_capacity(n);
    let mut buf = vec![0u8; ENTRY_BYTES];
    for _ in 0..n {
        r.read_exact(&mut buf)
            .map_err(|_| Error::Truncated("index entries"))?;
        let what = "index entry";
        let mut components = [0f32; DIM];
        for (d, slot) in components.iter_mut().enumerate() {
            *slot = f32_at(&buf, d * 4, what)?;
        }
        let centroid = Vector::from_slice(&components);
        let at = DIM * 4;
        let radius = f32_at(&buf, at, what)?;
        let offset = u64_at(&buf, at + 4, what)?;
        let byte_len = u32_at(&buf, at + 12, what)?;
        let count = u32_at(&buf, at + 16, what)?;
        metas.push(ChunkMeta {
            centroid,
            radius,
            offset,
            byte_len,
            count,
        });
    }
    Ok((metas, page_size))
}

/// Total size in bytes of an index file holding `n` entries — the quantity
/// the cost model charges when the search "reads the chunk index"
/// (≈50 ms in the paper's measurements).
pub fn index_file_bytes(n: usize) -> u64 {
    HEADER_BYTES as u64 + (n as u64) * ENTRY_BYTES as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta(i: u32) -> ChunkMeta {
        ChunkMeta {
            centroid: Vector::splat(i as f32),
            radius: i as f32 * 0.5,
            offset: u64::from(i) * 8192,
            byte_len: 100 * (i + 1),
            count: i + 1,
        }
    }

    #[test]
    fn roundtrip() {
        let metas: Vec<ChunkMeta> = (0..5).map(meta).collect();
        let mut buf = Vec::new();
        write_index(&metas, 8192, &mut buf).expect("write");
        assert_eq!(buf.len() as u64, index_file_bytes(5));
        let (back, page) = read_index(&buf[..]).expect("read");
        assert_eq!(page, 8192);
        assert_eq!(back, metas);
    }

    #[test]
    fn empty_index_roundtrip() {
        let mut buf = Vec::new();
        write_index(&[], 4096, &mut buf).expect("write");
        let (back, page) = read_index(&buf[..]).expect("read");
        assert!(back.is_empty());
        assert_eq!(page, 4096);
    }

    #[test]
    fn rejects_bad_magic() {
        let mut buf = Vec::new();
        write_index(&[meta(0)], 4096, &mut buf).expect("write");
        buf[0] = b'Z';
        assert!(matches!(
            read_index(&buf[..]),
            Err(Error::BadMagic {
                file: "index file",
                ..
            })
        ));
    }

    #[test]
    fn rejects_truncation() {
        let mut buf = Vec::new();
        write_index(&[meta(0), meta(1)], 4096, &mut buf).expect("write");
        buf.truncate(buf.len() - 10);
        assert!(matches!(read_index(&buf[..]), Err(Error::Truncated(_))));
    }

    #[test]
    fn min_possible_dist_lower_bounds() {
        let m = ChunkMeta {
            centroid: Vector::ZERO,
            radius: 3.0,
            offset: 0,
            byte_len: 0,
            count: 0,
        };
        // Query inside the sphere → 0.
        assert_eq!(m.min_possible_dist(&Vector::ZERO), 0.0);
        // Query at per-dim 2.0 → distance sqrt(96) ≈ 9.8 → bound ≈ 6.8.
        let q = Vector::splat(2.0);
        let expect = (96f32).sqrt() - 3.0;
        assert!((m.min_possible_dist(&q) - expect).abs() < 1e-5);
    }
}
