//! Single-flight read coalescing: concurrent requests for the same chunk
//! share one underlying read.
//!
//! Under a multi-query serving load many sessions rank the same hot chunks
//! near the front, so several threads ask for one chunk at almost the same
//! moment. Without coalescing each caller pays the read (and, for a cache,
//! each charges a miss). [`SingleFlight`] keeps a table of in-flight chunk
//! ids: the first requester becomes the *leader* and performs the read;
//! everyone else blocks on the leader's slot and receives the same decoded
//! payload when it lands. The table holds no payloads of its own — a slot
//! lives only while its read is in flight — so this is dedup, not a cache.
//!
//! Virtual-time figures are unaffected: a coalesced delivery reports the
//! same `bytes_read` the leader observed, and sources built on top (the
//! resident cache, the prefetcher) keep charging the modelled I/O exactly
//! as before.

use crate::chunkfile::ChunkPayload;
use crate::error::{Error, Result};
use std::collections::BTreeMap;
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};

/// Counters describing a [`SingleFlight`] table's behaviour.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FlightStats {
    /// Underlying reads performed (one per leader).
    pub reads: u64,
    /// Requests that joined an in-flight read instead of issuing their own.
    pub coalesced: u64,
}

/// What one request received: the shared payload plus who produced it.
#[derive(Clone, Debug)]
pub struct FlightOutcome {
    /// Decoded payload, shared with every coalesced requester.
    pub payload: Arc<ChunkPayload>,
    /// On-disk (padded page span) bytes of the chunk, as the leader read it.
    pub bytes_read: u64,
    /// Whether this request performed the read itself.
    pub led: bool,
    /// Requester tag of the leader that produced the payload (== the
    /// caller's own tag when `led`).
    pub leader: u64,
}

/// What a landed read left in its slot: the shared payload and byte count,
/// or the leader's error message. Errors travel as strings because
/// [`Error`] is not `Clone` (each follower mints its own wrapper).
// lint:allow(err.string_error): Error is not Clone, so followers share the leader's message and re-wrap it into their own typed Error
type Landed = std::result::Result<(Arc<ChunkPayload>, u64), String>;

/// One in-flight read. Followers hold an `Arc` to the slot, so the table
/// entry can be removed as soon as the read lands without racing them.
#[derive(Debug)]
struct Slot {
    /// `None` while the read is in flight.
    state: Mutex<Option<Landed>>,
    landed: Condvar,
    leader: u64,
}

#[derive(Debug, Default)]
struct Table {
    in_flight: BTreeMap<usize, Arc<Slot>>,
    reads: u64,
    coalesced: u64,
}

/// A shared in-flight read table; clones coalesce against each other.
#[derive(Clone, Debug, Default)]
pub struct SingleFlight {
    table: Arc<Mutex<Table>>,
}

/// Recovers a guard past a poisoned lock: every critical section leaves the
/// table/slot consistent, so continuing is sound (same policy as the
/// resident cache).
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

impl SingleFlight {
    /// A fresh, empty flight table.
    pub fn new() -> SingleFlight {
        SingleFlight::default()
    }

    /// A snapshot of the coalescing counters.
    pub fn stats(&self) -> FlightStats {
        let table = lock(&self.table);
        FlightStats {
            reads: table.reads,
            coalesced: table.coalesced,
        }
    }

    /// Delivers chunk `id`, coalescing with any read already in flight.
    ///
    /// If no read of `id` is in flight the caller becomes the leader:
    /// `read` runs (outside every lock) and its payload is handed to all
    /// followers that arrived meanwhile. Otherwise the caller blocks until
    /// the leader's read lands and shares its payload. A leader's error is
    /// propagated verbatim to the leader and as [`Error::Inconsistent`]
    /// (message-wrapped) to followers; the slot is always cleared, so a
    /// later request retries the read fresh.
    pub fn read(
        &self,
        id: usize,
        requester: u64,
        read: impl FnOnce() -> Result<(Arc<ChunkPayload>, u64)>,
    ) -> Result<FlightOutcome> {
        let slot = {
            let mut table = lock(&self.table);
            match table.in_flight.get(&id) {
                Some(slot) => {
                    let slot = Arc::clone(slot);
                    table.coalesced += 1;
                    drop(table);
                    return Self::follow(id, &slot);
                }
                None => {
                    let slot = Arc::new(Slot {
                        state: Mutex::new(None),
                        landed: Condvar::new(),
                        leader: requester,
                    });
                    table.in_flight.insert(id, Arc::clone(&slot));
                    table.reads += 1;
                    slot
                }
            }
        };

        // Leader: perform the read with no lock held.
        let result = read();
        // Clear the table entry first so late arrivals start a fresh read
        // instead of waiting on a slot that already landed.
        lock(&self.table).in_flight.remove(&id);
        {
            let mut state = lock(&slot.state);
            *state = Some(match &result {
                Ok((payload, bytes_read)) => Ok((Arc::clone(payload), *bytes_read)),
                Err(e) => Err(e.to_string()),
            });
        }
        slot.landed.notify_all();
        result.map(|(payload, bytes_read)| FlightOutcome {
            payload,
            bytes_read,
            led: true,
            leader: requester,
        })
    }

    /// Blocks on `slot` until the leader's read lands, then shares it.
    fn follow(id: usize, slot: &Slot) -> Result<FlightOutcome> {
        let mut state = lock(&slot.state);
        loop {
            if let Some(outcome) = state.as_ref() {
                return match outcome {
                    Ok((payload, bytes_read)) => Ok(FlightOutcome {
                        payload: Arc::clone(payload),
                        bytes_read: *bytes_read,
                        led: false,
                        leader: slot.leader,
                    }),
                    Err(msg) => Err(Error::Inconsistent(format!(
                        "coalesced read of chunk {id} failed: {msg}"
                    ))),
                };
            }
            state = slot
                .landed
                .wait(state)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn payload(n: usize) -> Arc<ChunkPayload> {
        Arc::new(ChunkPayload {
            ids: (0..n as u32).collect(),
            packed: vec![0.0; n],
            codes: Vec::new(),
        })
    }

    #[test]
    fn sequential_reads_never_coalesce() {
        let flight = SingleFlight::new();
        for pass in 0..3 {
            let got = flight
                .read(7, pass, || Ok((payload(4), 512)))
                .expect("read");
            assert!(got.led);
            assert_eq!(got.leader, pass);
        }
        assert_eq!(
            flight.stats(),
            FlightStats {
                reads: 3,
                coalesced: 0
            }
        );
    }

    #[test]
    fn concurrent_requests_share_one_read() {
        let flight = SingleFlight::new();
        let n = 6u64;
        let performed = std::sync::atomic::AtomicU64::new(0);
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for tag in 1..n {
                let flight = flight.clone();
                handles.push(scope.spawn(move || {
                    // Join only after the leader has registered its slot
                    // (the slot stays in flight until we all arrive).
                    while flight.stats().reads == 0 {
                        std::thread::yield_now();
                    }
                    flight.read(3, tag, || unreachable!("the slot is already in flight"))
                }));
            }
            // The leader's read completes only once every follower has
            // registered against the slot, so coalescing is deterministic.
            let lead = flight.read(3, 0, || {
                while flight.stats().coalesced < n - 1 {
                    std::thread::yield_now();
                }
                performed.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                Ok((payload(9), 1024))
            });
            let lead = lead.expect("leader read");
            assert!(lead.led);
            for h in handles {
                let got = h.join().expect("join").expect("follower read");
                assert!(!got.led);
                assert_eq!(got.leader, 0);
                assert_eq!(got.bytes_read, 1024);
                assert_eq!(got.payload, lead.payload);
            }
        });
        assert_eq!(performed.load(std::sync::atomic::Ordering::SeqCst), 1);
        assert_eq!(
            flight.stats(),
            FlightStats {
                reads: 1,
                coalesced: n - 1
            }
        );
    }

    #[test]
    fn leader_error_reaches_followers_and_clears_the_slot() {
        let flight = SingleFlight::new();
        let n = 4u64;
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for tag in 1..n {
                let flight = flight.clone();
                handles.push(scope.spawn(move || {
                    while flight.stats().reads == 0 {
                        std::thread::yield_now();
                    }
                    flight.read(5, tag, || unreachable!("the slot is already in flight"))
                }));
            }
            let lead = flight.read(5, 0, || {
                while flight.stats().coalesced < n - 1 {
                    std::thread::yield_now();
                }
                Err(Error::Truncated("chunk file"))
            });
            assert!(lead.is_err());
            for h in handles {
                let got = h.join().expect("join");
                assert!(matches!(got, Err(Error::Inconsistent(_))));
            }
        });
        // The failed slot is gone: the next request leads a fresh read.
        let retry = flight.read(5, 9, || Ok((payload(2), 256))).expect("retry");
        assert!(retry.led);
        assert_eq!(flight.stats().reads, 2);
    }

    /// Stress: many rounds of coalesced reads where the leader fails on
    /// every even round. Followers must observe the wrapped error, the
    /// failed slot must always clear, and an immediate retry must lead a
    /// fresh read that succeeds — no wedged slots, no stale payloads.
    #[test]
    fn failing_leaders_never_wedge_the_table_under_threaded_stress() {
        let flight = SingleFlight::new();
        const ROUNDS: usize = 24;
        const FOLLOWERS: u64 = 3;
        let mut want_reads = 0u64;
        let mut want_coalesced = 0u64;
        for round in 0..ROUNDS {
            let id = round % 5;
            let fail = round % 2 == 0;
            let reads_before = flight.stats().reads;
            let coalesced_before = flight.stats().coalesced;
            std::thread::scope(|scope| {
                let mut handles = Vec::new();
                for tag in 1..=FOLLOWERS {
                    let flight = flight.clone();
                    handles.push(scope.spawn(move || {
                        // Join only after this round's leader registered.
                        while flight.stats().reads == reads_before {
                            std::thread::yield_now();
                        }
                        flight.read(id, tag, || unreachable!("the slot is already in flight"))
                    }));
                }
                // The leader holds the slot open until every follower has
                // coalesced, then fails (even rounds) or lands (odd).
                let lead = flight.read(id, 0, || {
                    while flight.stats().coalesced < coalesced_before + FOLLOWERS {
                        std::thread::yield_now();
                    }
                    if fail {
                        Err(Error::Io(std::io::Error::new(
                            std::io::ErrorKind::Interrupted,
                            format!("injected fault in round {round}"),
                        )))
                    } else {
                        Ok((payload(id + 1), 512))
                    }
                });
                assert_eq!(lead.is_err(), fail, "round {round} leader outcome");
                for h in handles {
                    match (fail, h.join().expect("join")) {
                        (true, Err(Error::Inconsistent(msg))) => {
                            assert!(
                                msg.contains(&format!("coalesced read of chunk {id} failed")),
                                "round {round}: {msg}"
                            );
                            assert!(msg.contains("injected fault"), "round {round}: {msg}");
                        }
                        (false, Ok(got)) => {
                            assert!(!got.led);
                            assert_eq!(got.leader, 0);
                            assert_eq!(got.payload.ids.len(), id + 1);
                        }
                        (_, other) => panic!("round {round}: follower got {other:?}"),
                    }
                }
            });
            // The slot always cleared: a retry leads a fresh read and sees
            // current data, not a cached copy of an old round's payload.
            let retry = flight
                .read(id, 99, || Ok((payload(id + 2), 640)))
                .expect("retry after round");
            assert!(retry.led, "round {round} retry must lead");
            assert_eq!(retry.payload.ids.len(), id + 2);
            want_reads += 2;
            want_coalesced += FOLLOWERS;
        }
        assert_eq!(
            flight.stats(),
            FlightStats {
                reads: want_reads,
                coalesced: want_coalesced
            }
        );
    }
}
