//! The epoch manifest: the mutation log that turns a write-once chunk
//! index into a live one without touching the v2/v3 chunk-file formats.
//!
//! Mutability is strictly *additive on disk*. The immutable chunk + index
//! file pair of a generation stays exactly as [`crate::store::ChunkStore`]
//! wrote it; writers append [`DeltaOp`]s to an in-memory [`DeltaChunk`]
//! whose persistent form is the **epoch manifest** (`name.epoch`): the
//! current generation number, how many ops past compactions have folded
//! in, and the not-yet-folded tail of the op log. Opening a plain v2/v3
//! pair that never had a manifest is generation 0 with an empty delta —
//! full read-compat with every store ever written.
//!
//! Readers never see the mutable structures directly: they take a
//! [`DeltaPin`] — an `Arc` onto the op vector plus a prefix length — and
//! fold it once into a [`FoldedDelta`] (tombstones over the base plus the
//! live delta rows). Appends clone-on-write past outstanding pins
//! (`Arc::make_mut`), so a pinned epoch keeps its exact prefix no matter
//! how the log grows or when the compactor folds it.

use crate::bytes::{u32_at, u64_at};
use crate::chunkfile::{checksum, RECORD_BYTES};
use crate::error::{Error, Result};
use eff2_descriptor::{Vector, DIM};
use std::collections::BTreeSet;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Magic bytes of an epoch manifest file.
pub const EPOCH_MAGIC: [u8; 4] = *b"EFEP";
/// Format version of epoch manifests.
pub const EPOCH_VERSION: u32 = 1;

/// One mutation appended to the delta log.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum DeltaOp {
    /// Add (or replace) the descriptor `id` with `vector`. Inserting an id
    /// that exists in the base generation supersedes the base copy;
    /// re-inserting a deleted id revives it.
    Insert {
        /// Descriptor identifier.
        id: u32,
        /// The descriptor's vector.
        vector: Vector,
    },
    /// Remove the descriptor `id` (from the base generation and from any
    /// earlier delta insert).
    Delete {
        /// Descriptor identifier.
        id: u32,
    },
}

impl DeltaOp {
    /// The descriptor id the op concerns.
    pub fn id(&self) -> u32 {
        match self {
            DeltaOp::Insert { id, .. } | DeltaOp::Delete { id } => *id,
        }
    }
}

/// Path of the epoch manifest belonging to the store `dir/name`.
pub fn epoch_path(dir: &Path, name: &str) -> PathBuf {
    dir.join(format!("{name}.epoch"))
}

/// The persistent mutation state of a live index: which compaction
/// generation the base files are, how many ops past compactions consumed,
/// and the un-folded tail of the op log.
#[derive(Clone, Debug, PartialEq)]
pub struct EpochManifest {
    /// Compaction generation of the base chunk/index files.
    pub generation: u64,
    /// Ops consumed by past compactions; the epoch counter continues from
    /// here (epoch = `folded_ops` + delta length).
    pub folded_ops: u64,
    /// The delta ops appended since the last compaction, in append order.
    pub ops: Vec<DeltaOp>,
}

impl EpochManifest {
    /// The manifest of a store that has never been mutated.
    pub fn empty() -> EpochManifest {
        EpochManifest {
            generation: 0,
            folded_ops: 0,
            ops: Vec::new(),
        }
    }

    /// Serializes the manifest: magic, version, generation, folded ops,
    /// op count, the ops (tag byte + id + vector for inserts), then an
    /// FNV-1a checksum over everything after the magic.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(32 + self.ops.len() * (5 + DIM * 4));
        buf.extend_from_slice(&EPOCH_MAGIC);
        buf.extend_from_slice(&EPOCH_VERSION.to_le_bytes());
        buf.extend_from_slice(&self.generation.to_le_bytes());
        buf.extend_from_slice(&self.folded_ops.to_le_bytes());
        buf.extend_from_slice(&(self.ops.len() as u64).to_le_bytes());
        for op in &self.ops {
            match op {
                DeltaOp::Insert { id, vector } => {
                    buf.push(1);
                    buf.extend_from_slice(&id.to_le_bytes());
                    for &c in vector.as_array() {
                        buf.extend_from_slice(&c.to_le_bytes());
                    }
                }
                DeltaOp::Delete { id } => {
                    buf.push(2);
                    buf.extend_from_slice(&id.to_le_bytes());
                }
            }
        }
        let sum = checksum(buf.get(4..).unwrap_or(&[]));
        buf.extend_from_slice(&sum.to_le_bytes());
        buf
    }

    /// Parses a manifest produced by [`to_bytes`](Self::to_bytes).
    pub fn from_bytes(data: &[u8]) -> Result<EpochManifest> {
        let what = "epoch manifest";
        if data.len() < 32 + 4 {
            return Err(Error::Truncated(what));
        }
        let magic: [u8; 4] = data
            .get(..4)
            .ok_or(Error::Truncated(what))?
            .try_into()
            .map_err(|_| Error::Truncated(what))?;
        if magic != EPOCH_MAGIC {
            return Err(Error::BadMagic {
                file: what,
                found: magic,
            });
        }
        let body = data.get(..data.len() - 4).ok_or(Error::Truncated(what))?;
        let stored = u32_at(data, data.len() - 4, what)?;
        let computed = checksum(body.get(4..).ok_or(Error::Truncated(what))?);
        if stored != computed {
            return Err(Error::Corrupt {
                offset: 0,
                expected: stored,
                found: computed,
            });
        }
        let version = u32_at(body, 4, what)?;
        if version != EPOCH_VERSION {
            return Err(Error::UnsupportedVersion(version));
        }
        let generation = u64_at(body, 8, what)?;
        let folded_ops = u64_at(body, 16, what)?;
        let n_ops = u64_at(body, 24, what)? as usize;
        let mut ops = Vec::with_capacity(n_ops);
        let mut at = 32usize;
        for _ in 0..n_ops {
            let tag = *body.get(at).ok_or(Error::Truncated(what))?;
            at += 1;
            let id = u32_at(body, at, what)?;
            at += 4;
            match tag {
                1 => {
                    let mut vector = Vector::ZERO;
                    for d in 0..DIM {
                        let bits = u32_at(body, at + d * 4, what)?;
                        // lint:allow(panic.index): d < DIM bounds the [f32; DIM] vector
                        vector[d] = f32::from_bits(bits);
                    }
                    at += DIM * 4;
                    ops.push(DeltaOp::Insert { id, vector });
                }
                2 => ops.push(DeltaOp::Delete { id }),
                other => {
                    return Err(Error::Inconsistent(format!(
                        "epoch manifest op {} has unknown tag {other}",
                        ops.len()
                    )))
                }
            }
        }
        if at != body.len() {
            return Err(Error::Inconsistent(format!(
                "epoch manifest declares {n_ops} ops but carries {} trailing bytes",
                body.len() - at
            )));
        }
        Ok(EpochManifest {
            generation,
            folded_ops,
            ops,
        })
    }

    /// Writes the manifest to `path` (atomically via a sibling temp file,
    /// so a crash mid-write leaves the previous manifest intact).
    pub fn save(&self, path: &Path) -> Result<()> {
        let tmp = path.with_extension("epoch.tmp");
        std::fs::write(&tmp, self.to_bytes())?;
        std::fs::rename(&tmp, path)?;
        Ok(())
    }

    /// Reads and validates the manifest at `path`.
    pub fn load(path: &Path) -> Result<EpochManifest> {
        EpochManifest::from_bytes(&std::fs::read(path)?)
    }

    /// Loads the manifest belonging to `dir/name`, or the empty manifest
    /// when none exists — the read-compat path for stores written before
    /// epochs existed (any v2/v3 pair opens as generation 0, epoch 0).
    pub fn load_or_empty(dir: &Path, name: &str) -> Result<EpochManifest> {
        let path = epoch_path(dir, name);
        if path.exists() {
            EpochManifest::load(&path)
        } else {
            Ok(EpochManifest::empty())
        }
    }
}

/// The in-memory mutable delta chunk: an append-only op log shared with
/// outstanding pins through an `Arc`. Appending past a pin clones the
/// vector (`Arc::make_mut`), so every pin keeps its exact prefix forever.
#[derive(Clone, Debug, Default)]
pub struct DeltaChunk {
    ops: Arc<Vec<DeltaOp>>,
}

impl DeltaChunk {
    /// An empty delta.
    pub fn new() -> DeltaChunk {
        DeltaChunk::default()
    }

    /// A delta seeded from a manifest's op tail.
    pub fn from_ops(ops: Vec<DeltaOp>) -> DeltaChunk {
        DeltaChunk { ops: Arc::new(ops) }
    }

    /// Appends one op. O(1) amortised while nothing is pinned; clones the
    /// log once when a pin is outstanding.
    pub fn push(&mut self, op: DeltaOp) {
        Arc::make_mut(&mut self.ops).push(op);
    }

    /// Ops appended so far.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the delta is empty.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// The full op log, append order.
    pub fn ops(&self) -> &[DeltaOp] {
        &self.ops
    }

    /// Pins the current prefix: the returned [`DeltaPin`] sees exactly the
    /// ops appended so far, no matter what is appended (or folded) later.
    pub fn pin(&self) -> DeltaPin {
        DeltaPin {
            ops: Arc::clone(&self.ops),
            len: self.ops.len(),
        }
    }

    /// Drops every op (the compactor folded them into a new generation).
    pub fn clear(&mut self) {
        self.ops = Arc::new(Vec::new());
    }
}

/// An immutable view of a delta prefix — what an epoch snapshot holds.
#[derive(Clone, Debug)]
pub struct DeltaPin {
    ops: Arc<Vec<DeltaOp>>,
    len: usize,
}

impl DeltaPin {
    /// The pinned ops (the prefix of the log at pin time).
    pub fn ops(&self) -> &[DeltaOp] {
        self.ops.get(..self.len).unwrap_or(&[])
    }

    /// Number of pinned ops.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the pin covers no ops.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Folds the pinned prefix into its net effect (see [`FoldedDelta`]).
    pub fn fold(&self) -> FoldedDelta {
        FoldedDelta::from_ops(self.ops())
    }
}

/// The net effect of a delta prefix, ready for searching:
///
/// * `tombstones` — ids whose **base-generation** rows are dead, either
///   deleted or superseded by a delta insert (an insert tombstones the
///   base copy and contributes the fresh row instead, which makes inserts
///   of brand-new ids and updates of existing ids one uniform case);
/// * `inserts` — the live delta rows in first-insert order (an id's slot
///   is claimed by its first live insert; later re-inserts update the
///   vector in place, keeping the order deterministic).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FoldedDelta {
    /// Base-generation ids that must not be served.
    pub tombstones: BTreeSet<u32>,
    /// Live `(id, vector)` rows the delta contributes.
    pub inserts: Vec<(u32, Vector)>,
}

impl FoldedDelta {
    /// Folds `ops` in append order.
    pub fn from_ops(ops: &[DeltaOp]) -> FoldedDelta {
        let mut folded = FoldedDelta::default();
        for op in ops {
            match *op {
                DeltaOp::Insert { id, vector } => {
                    folded.tombstones.insert(id);
                    match folded.inserts.iter_mut().find(|(i, _)| *i == id) {
                        Some(slot) => slot.1 = vector,
                        None => folded.inserts.push((id, vector)),
                    }
                }
                DeltaOp::Delete { id } => {
                    folded.tombstones.insert(id);
                    folded.inserts.retain(|(i, _)| *i != id);
                }
            }
        }
        folded
    }

    /// Whether the fold is a no-op (search may take the unfiltered path).
    pub fn is_empty(&self) -> bool {
        self.tombstones.is_empty() && self.inserts.is_empty()
    }

    /// Modelled on-disk footprint of the live delta rows: record-layout
    /// bytes, what a search is charged for reading the delta chunk.
    pub fn scan_bytes(&self) -> u64 {
        (self.inserts.len() * RECORD_BYTES) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(x: f32) -> Vector {
        Vector::splat(x)
    }

    #[test]
    fn manifest_roundtrips_bit_exactly() {
        let m = EpochManifest {
            generation: 3,
            folded_ops: 17,
            ops: vec![
                DeltaOp::Insert {
                    id: 9,
                    vector: v(1.5),
                },
                DeltaOp::Delete { id: 4 },
                DeltaOp::Insert {
                    id: 4,
                    vector: v(-0.25),
                },
            ],
        };
        let back = EpochManifest::from_bytes(&m.to_bytes()).expect("parse");
        assert_eq!(back, m);
    }

    #[test]
    fn manifest_save_load_and_read_compat() {
        let dir = std::env::temp_dir().join("eff2_epoch_manifest");
        std::fs::create_dir_all(&dir).expect("mkdir");
        // No manifest on disk: generation 0, empty delta (read-compat).
        let _ = std::fs::remove_file(epoch_path(&dir, "ix"));
        let fresh = EpochManifest::load_or_empty(&dir, "ix").expect("empty");
        assert_eq!(fresh, EpochManifest::empty());
        let m = EpochManifest {
            generation: 1,
            folded_ops: 2,
            ops: vec![DeltaOp::Delete { id: 11 }],
        };
        m.save(&epoch_path(&dir, "ix")).expect("save");
        let back = EpochManifest::load_or_empty(&dir, "ix").expect("load");
        assert_eq!(back, m);
    }

    #[test]
    fn manifest_detects_corruption_and_bad_magic() {
        let m = EpochManifest {
            generation: 0,
            folded_ops: 0,
            ops: vec![DeltaOp::Insert {
                id: 1,
                vector: v(2.0),
            }],
        };
        let mut bytes = m.to_bytes();
        bytes[10] ^= 0x01;
        assert!(matches!(
            EpochManifest::from_bytes(&bytes),
            Err(Error::Corrupt { .. })
        ));
        let mut bad = m.to_bytes();
        bad[0] = b'X';
        assert!(matches!(
            EpochManifest::from_bytes(&bad),
            Err(Error::BadMagic { .. })
        ));
        assert!(matches!(
            EpochManifest::from_bytes(&bad[..8]),
            Err(Error::Truncated(_))
        ));
    }

    #[test]
    fn pins_are_immune_to_later_appends() {
        let mut delta = DeltaChunk::new();
        delta.push(DeltaOp::Insert {
            id: 1,
            vector: v(1.0),
        });
        let pin = delta.pin();
        delta.push(DeltaOp::Delete { id: 1 });
        delta.push(DeltaOp::Insert {
            id: 2,
            vector: v(2.0),
        });
        assert_eq!(pin.len(), 1);
        assert_eq!(
            pin.ops(),
            &[DeltaOp::Insert {
                id: 1,
                vector: v(1.0)
            }]
        );
        assert_eq!(delta.len(), 3);
        // Clearing (compaction) leaves the pin untouched too.
        delta.clear();
        assert_eq!(pin.len(), 1);
        assert!(delta.is_empty());
    }

    #[test]
    fn fold_supersedes_deletes_and_revives() {
        let ops = [
            DeltaOp::Insert {
                id: 5,
                vector: v(1.0),
            },
            DeltaOp::Insert {
                id: 7,
                vector: v(2.0),
            },
            DeltaOp::Delete { id: 5 },
            DeltaOp::Insert {
                id: 5,
                vector: v(3.0),
            }, // revive with new row
            DeltaOp::Insert {
                id: 7,
                vector: v(4.0),
            }, // update in place
            DeltaOp::Delete { id: 9 }, // base-only delete
        ];
        let folded = FoldedDelta::from_ops(&ops);
        assert_eq!(
            folded.tombstones.iter().copied().collect::<Vec<_>>(),
            vec![5, 7, 9]
        );
        // 5's original slot died with its delete; the revival re-enters at
        // the tail, while 7's update stays in its first-insert slot.
        assert_eq!(folded.inserts, vec![(7, v(4.0)), (5, v(3.0))]);
        assert_eq!(folded.scan_bytes(), (2 * RECORD_BYTES) as u64);
        assert!(!folded.is_empty());
        assert!(FoldedDelta::from_ops(&[]).is_empty());
    }
}
