//! The simulated 2005 testbed: a deterministic virtual clock.
//!
//! The paper's measurements were taken on a Dell workstation with a 2.8 GHz
//! Pentium 4 and a 40 GB ATA disk (§5.4). Its quality-vs-time curves are
//! shaped by the *ratios* between disk seek time, transfer rate and
//! per-descriptor CPU cost; on a modern NVMe machine those ratios are
//! completely different and the curves degenerate. This module therefore
//! provides a virtual clock calibrated to the constants the paper itself
//! reports in §5.5:
//!
//! * reading **and** processing one SR-tree chunk (≈2.5 k descriptors,
//!   ≈250 kB) takes ≈10 ms;
//! * processing BAG's largest chunk (>1 M descriptors) takes ≈1.8 s of CPU;
//! * reading the chunk index (≈2.7 k entries) takes ≈50 ms.
//!
//! Searches still perform the real file I/O; the virtual clock runs
//! alongside and is what the experiment harness reports, making every
//! figure deterministic and machine-independent. [`PipelineClock`] models
//! the I/O–CPU overlap that makes uniform chunk sizes attractive: while the
//! CPU scans chunk *i*, the disk fetches chunk *i + 1*.

use std::ops::{Add, AddAssign, Sub};

/// A span of virtual time, in seconds.
#[derive(Clone, Copy, Debug, Default, PartialEq, PartialOrd)]
pub struct VirtualDuration(f64);

impl VirtualDuration {
    /// Zero time.
    pub const ZERO: VirtualDuration = VirtualDuration(0.0);

    /// From seconds.
    pub fn from_secs(s: f64) -> Self {
        VirtualDuration(s)
    }

    /// From milliseconds.
    pub fn from_ms(ms: f64) -> Self {
        VirtualDuration(ms / 1e3)
    }

    /// From nanoseconds.
    pub fn from_ns(ns: f64) -> Self {
        VirtualDuration(ns / 1e9)
    }

    /// As seconds.
    pub fn as_secs(&self) -> f64 {
        self.0
    }

    /// As milliseconds.
    pub fn as_ms(&self) -> f64 {
        self.0 * 1e3
    }

    /// Component-wise maximum.
    pub fn max(self, other: Self) -> Self {
        VirtualDuration(self.0.max(other.0))
    }
}

impl Add for VirtualDuration {
    type Output = VirtualDuration;
    fn add(self, rhs: Self) -> Self {
        VirtualDuration(self.0 + rhs.0)
    }
}

impl AddAssign for VirtualDuration {
    fn add_assign(&mut self, rhs: Self) {
        self.0 += rhs.0;
    }
}

impl Sub for VirtualDuration {
    type Output = VirtualDuration;
    fn sub(self, rhs: Self) -> Self {
        VirtualDuration(self.0 - rhs.0)
    }
}

impl std::fmt::Display for VirtualDuration {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.0 < 1.0 {
            write!(f, "{:.1}ms", self.as_ms())
        } else {
            write!(f, "{:.3}s", self.0)
        }
    }
}

/// Cost constants of the simulated hardware.
#[derive(Clone, Copy, Debug)]
pub struct DiskModel {
    /// Average positioning time per random chunk access (seek + rotational
    /// latency), in milliseconds.
    pub seek_ms: f64,
    /// Sequential transfer rate, MB/s.
    pub transfer_mb_per_s: f64,
    /// CPU time to scan one descriptor (distance + neighbour-set update),
    /// nanoseconds.
    pub cpu_ns_per_descriptor: f64,
    /// CPU time per index entry during global chunk ranking (distance to
    /// centroid + sort share), nanoseconds.
    pub rank_ns_per_chunk: f64,
}

impl DiskModel {
    /// The paper's testbed: 2.8 GHz P4, 40 GB ATA disk.
    ///
    /// Calibration against §5.5: an SR-tree chunk of ~2.5 k descriptors
    /// (250 kB) costs `5 ms seek + 4.1 ms transfer ≈ 9 ms` of I/O and
    /// `4.5 ms` of CPU → ≈10 ms per chunk with overlap; BAG's chunks of
    /// over 1 M descriptors cost `1.8 µs × 1 M = 1.8 s` of CPU; a
    /// 2,685-entry index costs `10 ms I/O + 2,685 × 15 µs ≈ 50 ms`.
    pub fn ata_2005() -> Self {
        DiskModel {
            seek_ms: 5.0,
            transfer_mb_per_s: 60.0,
            cpu_ns_per_descriptor: 1_800.0,
            rank_ns_per_chunk: 15_000.0,
        }
    }

    /// A zero-cost model (use real wall-clock time instead).
    pub fn instant() -> Self {
        DiskModel {
            seek_ms: 0.0,
            transfer_mb_per_s: f64::INFINITY,
            cpu_ns_per_descriptor: 0.0,
            rank_ns_per_chunk: 0.0,
        }
    }

    /// Time to fetch `bytes` with one positioning operation.
    pub fn io_time(&self, bytes: u64) -> VirtualDuration {
        VirtualDuration::from_ms(self.seek_ms)
            + VirtualDuration::from_secs(bytes as f64 / (self.transfer_mb_per_s * 1e6))
    }

    /// CPU time to scan `n` descriptors against the query.
    pub fn scan_time(&self, n: usize) -> VirtualDuration {
        VirtualDuration::from_ns(self.cpu_ns_per_descriptor * n as f64)
    }

    /// CPU time to rank `n` chunk-index entries.
    pub fn rank_time(&self, n_chunks: usize) -> VirtualDuration {
        VirtualDuration::from_ns(self.rank_ns_per_chunk * n_chunks as f64)
    }

    /// Total cost of reading and ranking an `n`-entry chunk index
    /// (`index_bytes` from [`crate::indexfile::index_file_bytes`]).
    pub fn index_read_time(&self, n_chunks: usize, index_bytes: u64) -> VirtualDuration {
        self.io_time(index_bytes) + self.rank_time(n_chunks)
    }
}

/// A two-stage (disk, CPU) pipeline clock.
///
/// The search processes chunks in ranked order; with prefetching, chunk
/// `i + 1` is being fetched while chunk `i` is being scanned. A chunk's
/// *results* become visible when its CPU stage completes — the paper's
/// observation that "a single chunk is the natural granule of the search"
/// is exactly this: a 1 M-descriptor chunk blocks the CPU stage for 1.8 s
/// before any of its neighbours are reported.
#[derive(Clone, Copy, Debug)]
pub struct PipelineClock {
    io_free_at: f64,
    cpu_free_at: f64,
}

impl PipelineClock {
    /// Starts both stages at `start` (typically after the index read).
    pub fn start_at(start: VirtualDuration) -> Self {
        PipelineClock {
            io_free_at: start.as_secs(),
            cpu_free_at: start.as_secs(),
        }
    }

    /// Accounts one chunk with I/O overlapped against the previous chunk's
    /// CPU; returns the virtual time at which this chunk's results are
    /// available.
    pub fn chunk_overlapped(
        &mut self,
        io: VirtualDuration,
        cpu: VirtualDuration,
    ) -> VirtualDuration {
        let io_done = self.io_done_after(io);
        self.cpu_after(io_done, cpu)
    }

    /// The I/O half of [`chunk_overlapped`](Self::chunk_overlapped):
    /// serialises `io` on this clock's disk stage and returns the time the
    /// transfer finishes. Pairing it with [`cpu_after`](Self::cpu_after) on
    /// *another* clock models a cross-device delivery — the bytes come off
    /// one node's disk while the scan runs on another node's CPU.
    pub fn io_done_after(&mut self, io: VirtualDuration) -> VirtualDuration {
        let io_done = self.io_free_at + io.as_secs();
        self.io_free_at = io_done;
        VirtualDuration::from_secs(io_done)
    }

    /// The CPU half of [`chunk_overlapped`](Self::chunk_overlapped): starts
    /// `cpu` once both this clock's CPU stage and the delivery (`ready`)
    /// are free, and returns the completion time.
    /// `chunk_overlapped(io, cpu)` is bit-identical to
    /// `cpu_after(io_done_after(io), cpu)` on the same clock.
    pub fn cpu_after(&mut self, ready: VirtualDuration, cpu: VirtualDuration) -> VirtualDuration {
        let cpu_start = self.cpu_free_at.max(ready.as_secs());
        let cpu_done = cpu_start + cpu.as_secs();
        self.cpu_free_at = cpu_done;
        VirtualDuration::from_secs(cpu_done)
    }

    /// Accounts one chunk with no overlap (fetch, then scan); returns the
    /// completion time. Used by the overlap-ablation benchmark.
    pub fn chunk_serial(&mut self, io: VirtualDuration, cpu: VirtualDuration) -> VirtualDuration {
        let now = self.io_free_at.max(self.cpu_free_at);
        let done = now + io.as_secs() + cpu.as_secs();
        self.io_free_at = done;
        self.cpu_free_at = done;
        VirtualDuration::from_secs(done)
    }

    /// The current completion time of the CPU stage.
    pub fn now(&self) -> VirtualDuration {
        VirtualDuration::from_secs(self.cpu_free_at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sr_chunk_costs_about_ten_ms() {
        // §5.5: "reading and processing each chunk takes only about 10 ms"
        // for SR-tree chunks of ~2.5k descriptors.
        let m = DiskModel::ata_2005();
        let bytes = 2_500u64 * 100;
        let per_chunk = m.io_time(bytes).max(m.scan_time(2_500));
        assert!(
            (per_chunk.as_ms() - 10.0).abs() < 3.0,
            "steady-state chunk cost {per_chunk} should be ≈10 ms"
        );
    }

    #[test]
    fn million_descriptor_chunk_costs_1_8_s_cpu() {
        // §5.5: "processing the largest chunk of the BAG algorithm took as
        // much as 1.8 seconds".
        let m = DiskModel::ata_2005();
        let cpu = m.scan_time(1_000_000);
        assert!((cpu.as_secs() - 1.8).abs() < 1e-9, "got {cpu}");
    }

    #[test]
    fn index_read_costs_about_fifty_ms() {
        // §5.5: "reading the chunk index takes about 50 milliseconds".
        let m = DiskModel::ata_2005();
        let n = 2_685;
        let bytes = crate::indexfile::index_file_bytes(n);
        let t = m.index_read_time(n, bytes);
        assert!(
            (t.as_ms() - 50.0).abs() < 10.0,
            "index read {t} should be ≈50 ms"
        );
    }

    #[test]
    fn overlap_beats_serial() {
        let m = DiskModel::ata_2005();
        let io = m.io_time(250_000);
        let cpu = m.scan_time(2_500);
        let mut over = PipelineClock::start_at(VirtualDuration::ZERO);
        let mut serial = PipelineClock::start_at(VirtualDuration::ZERO);
        for _ in 0..100 {
            over.chunk_overlapped(io, cpu);
            serial.chunk_serial(io, cpu);
        }
        assert!(over.now() < serial.now());
        // Steady state of overlap is max(io, cpu) per chunk.
        let expect = io.as_secs().max(cpu.as_secs()) * 100.0;
        assert!((over.now().as_secs() - expect).abs() / expect < 0.1);
    }

    #[test]
    fn pipeline_results_are_monotone() {
        let mut clock = PipelineClock::start_at(VirtualDuration::from_ms(50.0));
        let mut last = VirtualDuration::ZERO;
        for i in 0..10 {
            let t = clock.chunk_overlapped(
                VirtualDuration::from_ms(5.0 + i as f64),
                VirtualDuration::from_ms(3.0),
            );
            assert!(t > last);
            last = t;
        }
        assert_eq!(clock.now(), last);
    }

    #[test]
    fn overlap_decomposes_bit_identically() {
        // chunk_overlapped(io, cpu) must equal cpu_after(io_done_after(io), cpu)
        // on a clock in the same state — the fleet scheduler relies on this
        // to charge I/O and CPU on different clocks without drift.
        let m = DiskModel::ata_2005();
        let mut fused = PipelineClock::start_at(VirtualDuration::from_ms(50.0));
        let mut split = PipelineClock::start_at(VirtualDuration::from_ms(50.0));
        for i in 0..50u64 {
            let io = m.io_time(10_000 + i * 977);
            let cpu = m.scan_time(1_000 + (i as usize) * 113);
            let a = fused.chunk_overlapped(io, cpu);
            let ready = split.io_done_after(io);
            let b = split.cpu_after(ready, cpu);
            assert_eq!(a.as_secs().to_bits(), b.as_secs().to_bits());
        }
        assert_eq!(
            fused.now().as_secs().to_bits(),
            split.now().as_secs().to_bits()
        );
    }

    #[test]
    fn instant_model_is_free() {
        let m = DiskModel::instant();
        assert_eq!(m.io_time(1 << 30).as_secs(), 0.0);
        assert_eq!(m.scan_time(1 << 20).as_secs(), 0.0);
        assert_eq!(m.rank_time(10_000).as_secs(), 0.0);
    }

    #[test]
    fn duration_arithmetic_and_display() {
        let a = VirtualDuration::from_ms(500.0);
        let b = VirtualDuration::from_ms(700.0);
        assert_eq!((a + b).as_secs(), 1.2);
        assert!(a < b);
        assert_eq!(a.max(b), b);
        assert_eq!(format!("{a}"), "500.0ms");
        assert_eq!(format!("{}", a + b), "1.200s");
        assert!(((b - a).as_ms() - 200.0).abs() < 1e-9);
    }

    #[test]
    fn io_time_scales_with_bytes() {
        let m = DiskModel::ata_2005();
        let small = m.io_time(4_096);
        let big = m.io_time(100 << 20);
        assert!(big > small);
        // Tiny read is dominated by the seek.
        assert!((small.as_ms() - m.seek_ms).abs() < 1.0);
    }
}
