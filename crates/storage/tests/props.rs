//! Property-based tests for the storage layer: codec round-trips with
//! arbitrary chunk layouts and page sizes, and cost-model monotonicity.

use eff2_descriptor::{Descriptor, DescriptorSet, Vector, DIM};
use eff2_storage::chunkfile::ChunkPayload;
use eff2_storage::diskmodel::{DiskModel, PipelineClock, VirtualDuration};
use eff2_storage::indexfile::{read_index, write_index, ChunkMeta};
use eff2_storage::{ChunkDef, ChunkStore};
use proptest::prelude::*;

fn arb_meta() -> impl Strategy<Value = ChunkMeta> {
    (
        proptest::collection::vec(-1e4f32..1e4, DIM),
        0.0f32..1e4,
        0u64..1 << 40,
        0u32..1 << 20,
        0u32..1 << 16,
    )
        .prop_map(|(c, radius, offset, byte_len, count)| ChunkMeta {
            centroid: Vector::from_slice(&c),
            radius,
            offset,
            byte_len,
            count,
        })
}

/// A random partition of `n` positions into chunks.
fn arb_partition(n: usize) -> impl Strategy<Value = Vec<Vec<u32>>> {
    proptest::collection::vec(0usize..4, n).prop_map(move |assign| {
        let mut chunks: Vec<Vec<u32>> = vec![Vec::new(); 4];
        for (p, &c) in assign.iter().enumerate() {
            chunks[c].push(p as u32);
        }
        chunks.retain(|c| !c.is_empty());
        chunks
    })
}

fn arb_set(n: usize) -> impl Strategy<Value = DescriptorSet> {
    proptest::collection::vec(proptest::collection::vec(-100.0f32..100.0, DIM), n..n + 1).prop_map(
        |rows| {
            rows.into_iter()
                .enumerate()
                .map(|(i, r)| Descriptor::new(i as u32 * 2 + 1, Vector::from_slice(&r)))
                .collect()
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn index_file_roundtrip(metas in proptest::collection::vec(arb_meta(), 0..40), page in 64u32..65536) {
        let mut buf = Vec::new();
        write_index(&metas, page, &mut buf).unwrap();
        let (back, back_page) = read_index(&buf[..]).unwrap();
        prop_assert_eq!(back_page, page);
        prop_assert_eq!(back, metas);
    }

    #[test]
    fn store_roundtrip_arbitrary_partition(
        set in arb_set(40),
        partition in arb_partition(40),
        page_exp in 6u32..13,
        case in 0u64..u64::MAX,
    ) {
        let page = 1u32 << page_exp;
        let dir = std::env::temp_dir().join(format!("eff2_storeprop_{case}"));
        std::fs::create_dir_all(&dir).unwrap();
        let chunks: Vec<ChunkDef> = partition
            .iter()
            .map(|positions| {
                let (centroid, radius) =
                    eff2_srtree_free_centroid(&set, positions);
                ChunkDef { positions: positions.clone(), centroid, radius }
            })
            .collect();
        let store = ChunkStore::create(&dir, "p", &set, &chunks, page).unwrap();
        let reopened = ChunkStore::open(store.chunk_path(), store.index_path()).unwrap();
        prop_assert_eq!(reopened.n_chunks(), chunks.len());
        let mut reader = reopened.reader().unwrap();
        let mut payload = ChunkPayload::default();
        for (ci, chunk) in chunks.iter().enumerate() {
            let bytes = reader.read_chunk(ci, &mut payload).unwrap();
            prop_assert_eq!(bytes % u64::from(page), 0, "padded span must be whole pages");
            prop_assert_eq!(payload.len(), chunk.positions.len());
            for (k, &pos) in chunk.positions.iter().enumerate() {
                prop_assert_eq!(payload.ids[k], set.id(pos as usize).0);
                prop_assert_eq!(&payload.packed[k * DIM..(k + 1) * DIM], set.vector(pos as usize));
            }
        }
    }

    #[test]
    fn io_time_is_monotone_in_bytes(a in 0u64..1 << 32, b in 0u64..1 << 32) {
        let m = DiskModel::ata_2005();
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(m.io_time(lo) <= m.io_time(hi));
    }

    #[test]
    fn overlap_never_slower_than_serial(
        chunks in proptest::collection::vec((0u64..1 << 24, 0usize..100_000), 1..100)
    ) {
        let m = DiskModel::ata_2005();
        let mut over = PipelineClock::start_at(VirtualDuration::ZERO);
        let mut serial = PipelineClock::start_at(VirtualDuration::ZERO);
        for &(bytes, n) in &chunks {
            over.chunk_overlapped(m.io_time(bytes), m.scan_time(n));
            serial.chunk_serial(m.io_time(bytes), m.scan_time(n));
        }
        prop_assert!(over.now() <= serial.now());
        // And overlap can never beat the pure CPU or pure IO lower bound.
        let cpu_total: f64 = chunks.iter().map(|&(_, n)| m.scan_time(n).as_secs()).sum();
        let io_total: f64 = chunks.iter().map(|&(b, _)| m.io_time(b).as_secs()).sum();
        prop_assert!(over.now().as_secs() >= cpu_total - 1e-9);
        prop_assert!(over.now().as_secs() >= io_total - 1e-9);
    }
}

/// Centroid/radius helper without depending on eff2-srtree (dev-dep hygiene
/// for this crate): plain mean + max distance.
fn eff2_srtree_free_centroid(set: &DescriptorSet, positions: &[u32]) -> (Vector, f32) {
    let vectors: Vec<Vector> = positions
        .iter()
        .map(|&p| set.vector_owned(p as usize))
        .collect();
    let centroid = Vector::mean(vectors.iter());
    let radius = vectors
        .iter()
        .map(|v| centroid.dist(v))
        .fold(0.0f32, f32::max);
    (centroid, radius)
}
