#![warn(missing_docs)]

//! # eff2-medrank
//!
//! **Medrank** (Fagin, Kumar, Sivakumar, *"Efficient similarity search and
//! classification via rank aggregation"*, SIGMOD 2003) — the "very
//! different approach to approximate searches" the eff2 paper's related
//! work singles out (§6):
//!
//! > *"all descriptors are projected onto a set of random lines. Then, the
//! > database elements are ranked based on the proximity of the projections
//! > to the projection of the query. A rank aggregation rule picks the
//! > database element that has the best median rank as being, with a high
//! > probability, the true nearest neighbor of the query point. … One of
//! > the very nice properties of this algorithm is that it is I/O bound
//! > (and I/O optimal) because the algorithm is based on the aggregation of
//! > ranking rather than distance calculations."*
//!
//! Implemented here as an additional baseline to set the chunk-index
//! results in context:
//!
//! * [`MedrankIndex::build`] projects the collection onto `L` random unit
//!   lines and sorts each projection (the on-disk layout would be `L`
//!   sorted runs; cost accounting charges sequential access);
//! * [`MedrankIndex::knn`] walks the `L` runs outward from the query's
//!   projection in lockstep (the MEDRANK cursor walk) and emits an element
//!   once it has been seen on **more than half** the lines — its *median
//!   rank* is then minimal among the unseen; no distance in the original
//!   space is ever computed.

pub mod index;

pub use index::{MedrankIndex, MedrankParams, MedrankResult};
