//! The Medrank index: random-line projections and the median-rank cursor
//! walk.
// lint:allow-file(panic.index): rank arrays are sized to the collection by the builder that indexes them

use eff2_descriptor::{DescriptorSet, Vector, DIM};
use eff2_storage::diskmodel::{DiskModel, VirtualDuration};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Build/query parameters.
#[derive(Clone, Copy, Debug)]
pub struct MedrankParams {
    /// Number of random projection lines (`L`). Fagin et al. use a handful;
    /// more lines sharpen the median vote at higher scan cost.
    pub lines: usize,
    /// RNG seed for the line directions.
    pub seed: u64,
    /// A candidate is emitted once seen on strictly more than
    /// `vote_fraction · L` lines (the MEDRANK rule is 1/2).
    pub vote_fraction: f64,
}

impl Default for MedrankParams {
    fn default() -> Self {
        MedrankParams {
            lines: 9,
            seed: 42,
            vote_fraction: 0.5,
        }
    }
}

/// One answer of a Medrank query.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MedrankResult {
    /// Descriptor identifier.
    pub id: u32,
    /// Number of lines on which the element had been seen when emitted.
    pub votes: u32,
}

/// One sorted projection run.
struct Line {
    /// Unit direction.
    direction: [f32; DIM],
    /// `(projection, position)` sorted ascending by projection.
    run: Vec<(f32, u32)>,
}

/// The Medrank index over a collection.
pub struct MedrankIndex {
    lines: Vec<Line>,
    params: MedrankParams,
    ids: Vec<u32>,
    n: usize,
}

/// Per-line outward cursor state.
struct Cursor<'a> {
    run: &'a [(f32, u32)],
    /// Next candidate below the query projection (walks down).
    lo: isize,
    /// Next candidate at/above the query projection (walks up).
    hi: usize,
    q_proj: f32,
}

impl Cursor<'_> {
    /// The next element in order of |projection − q|, or `None` when the
    /// run is exhausted.
    fn next(&mut self) -> Option<u32> {
        let take_lo = match (self.lo >= 0, self.hi < self.run.len()) {
            (true, true) => {
                let d_lo = self.q_proj - self.run[self.lo as usize].0;
                let d_hi = self.run[self.hi].0 - self.q_proj;
                d_lo <= d_hi
            }
            (true, false) => true,
            (false, true) => false,
            (false, false) => return None,
        };
        if take_lo {
            let pos = self.run[self.lo as usize].1;
            self.lo -= 1;
            Some(pos)
        } else {
            let pos = self.run[self.hi].1;
            self.hi += 1;
            Some(pos)
        }
    }
}

impl MedrankIndex {
    /// Builds the index: projects every descriptor of `set` onto
    /// `params.lines` random unit directions and sorts each run.
    pub fn build(set: &DescriptorSet, params: MedrankParams) -> MedrankIndex {
        assert!(params.lines >= 1, "need at least one projection line");
        assert!(
            (0.0..1.0).contains(&params.vote_fraction),
            "vote fraction must be in [0,1)"
        );
        let mut rng = StdRng::seed_from_u64(params.seed);
        let n = set.len();
        let lines = (0..params.lines)
            .map(|_| {
                let direction = random_unit(&mut rng);
                let mut run: Vec<(f32, u32)> = (0..n)
                    .map(|i| (dot(set.vector(i), &direction), i as u32))
                    .collect();
                run.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
                Line { direction, run }
            })
            .collect();
        MedrankIndex {
            lines,
            params,
            ids: set.raw_ids().to_vec(),
            n,
        }
    }

    /// Number of indexed descriptors.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// The build parameters.
    pub fn params(&self) -> &MedrankParams {
        &self.params
    }

    /// Approximate k-nearest neighbours of `query` by median-rank
    /// aggregation. Returns up to `k` results in emission (median-rank)
    /// order, plus the number of cursor steps performed — the algorithm's
    /// cost unit (it never computes a 24-dimensional distance).
    pub fn knn(&self, query: &Vector, k: usize) -> (Vec<MedrankResult>, u64) {
        if k == 0 || self.n == 0 {
            return (Vec::new(), 0);
        }
        let needed_votes =
            ((self.lines.len() as f64) * self.params.vote_fraction).floor() as u32 + 1;
        let mut cursors: Vec<Cursor<'_>> = self
            .lines
            .iter()
            .map(|line| {
                let q_proj = dot(query.as_array(), &line.direction);
                let hi = line.run.partition_point(|&(p, _)| p < q_proj);
                Cursor {
                    run: &line.run,
                    lo: hi as isize - 1,
                    hi,
                    q_proj,
                }
            })
            .collect();

        let mut votes: Vec<u32> = vec![0; self.n];
        let mut out = Vec::with_capacity(k);
        let mut steps: u64 = 0;
        // Round-robin lockstep over the lines: each round advances every
        // cursor by one element ("sorted access" in the aggregation
        // literature).
        'walk: loop {
            let mut any = false;
            for cursor in cursors.iter_mut() {
                if let Some(pos) = cursor.next() {
                    any = true;
                    steps += 1;
                    let v = &mut votes[pos as usize];
                    *v += 1;
                    if *v == needed_votes {
                        out.push(MedrankResult {
                            id: self.ids[pos as usize],
                            votes: *v,
                        });
                        if out.len() == k {
                            break 'walk;
                        }
                    }
                }
            }
            if !any {
                break;
            }
        }
        (out, steps)
    }

    /// Virtual cost of a query under `model`: the cursor walk reads
    /// `steps` run entries sequentially (8 bytes each) after one seek per
    /// line — the "I/O bound and I/O optimal" profile the paper quotes.
    pub fn query_cost(&self, model: &DiskModel, steps: u64) -> VirtualDuration {
        let mut t = VirtualDuration::ZERO;
        for _ in 0..self.lines.len() {
            t += model.io_time(0); // positioning for each run
        }
        t + model.io_time(steps * 8) - model.io_time(0) // transfer, one seek counted above
    }
}

fn dot(a: &[f32; DIM], b: &[f32; DIM]) -> f32 {
    let mut acc = 0.0;
    for i in 0..DIM {
        acc += a[i] * b[i];
    }
    acc
}

fn random_unit<R: Rng>(rng: &mut R) -> [f32; DIM] {
    // Gaussian components normalised — uniform on the sphere.
    loop {
        let mut v = [0.0f32; DIM];
        let mut norm_sq = 0.0f32;
        for x in v.iter_mut() {
            let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
            let u2: f64 = rng.gen();
            *x = ((-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()) as f32;
            norm_sq += *x * *x;
        }
        if norm_sq > 1e-12 {
            let inv = norm_sq.sqrt().recip();
            for x in v.iter_mut() {
                *x *= inv;
            }
            return v;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eff2_descriptor::Descriptor;

    fn lumpy_set(n: usize) -> DescriptorSet {
        (0..n)
            .map(|i| {
                let mut v = Vector::splat((i % 6) as f32 * 25.0);
                v[0] += ((i * 37) % 11) as f32 * 0.05;
                v[5] -= ((i * 13) % 7) as f32 * 0.04;
                Descriptor::new(i as u32, v)
            })
            .collect()
    }

    #[test]
    fn self_query_is_emitted_first() {
        let set = lumpy_set(300);
        let ix = MedrankIndex::build(&set, MedrankParams::default());
        for qi in [0usize, 100, 250] {
            let (res, _) = ix.knn(&set.vector_owned(qi), 5);
            assert!(!res.is_empty());
            assert_eq!(
                res[0].id,
                set.id(qi).0,
                "a dataset point projects exactly onto itself on every line"
            );
        }
    }

    #[test]
    fn returns_k_results_with_enough_walking() {
        let set = lumpy_set(200);
        let ix = MedrankIndex::build(&set, MedrankParams::default());
        let (res, steps) = ix.knn(&Vector::splat(10.0), 10);
        assert_eq!(res.len(), 10);
        assert!(steps > 0);
        // Each emitted element carries at least the required vote count.
        let needed = (9f64 * 0.5).floor() as u32 + 1;
        for r in &res {
            assert!(r.votes >= needed);
        }
    }

    #[test]
    fn results_come_from_the_right_lump() {
        // Query at lump 2 (splat(50)); all emitted ids should belong to
        // that lump (i % 6 == 2) — median-rank aggregation is a real ANN.
        let set = lumpy_set(600);
        let ix = MedrankIndex::build(
            &set,
            MedrankParams {
                lines: 15,
                ..Default::default()
            },
        );
        let (res, _) = ix.knn(&Vector::splat(50.0), 10);
        assert_eq!(res.len(), 10);
        let correct = res.iter().filter(|r| r.id % 6 == 2).count();
        assert!(correct >= 8, "only {correct}/10 from the query's lump");
    }

    #[test]
    fn deterministic_per_seed() {
        let set = lumpy_set(150);
        let a = MedrankIndex::build(&set, MedrankParams::default());
        let b = MedrankIndex::build(&set, MedrankParams::default());
        let q = Vector::splat(3.0);
        assert_eq!(a.knn(&q, 7).0, b.knn(&q, 7).0);
    }

    #[test]
    fn k_zero_and_empty_index() {
        let set = lumpy_set(50);
        let ix = MedrankIndex::build(&set, MedrankParams::default());
        assert!(ix.knn(&Vector::ZERO, 0).0.is_empty());
        let empty = MedrankIndex::build(&DescriptorSet::new(), MedrankParams::default());
        assert!(empty.is_empty());
        assert!(empty.knn(&Vector::ZERO, 5).0.is_empty());
    }

    #[test]
    fn k_exceeding_collection_exhausts_runs() {
        let set = lumpy_set(20);
        let ix = MedrankIndex::build(&set, MedrankParams::default());
        let (res, _) = ix.knn(&Vector::ZERO, 100);
        // Every element eventually crosses the vote threshold.
        assert_eq!(res.len(), 20);
    }

    #[test]
    fn single_line_emits_in_projection_order() {
        let set = lumpy_set(40);
        let ix = MedrankIndex::build(
            &set,
            MedrankParams {
                lines: 1,
                ..Default::default()
            },
        );
        // With one line, needed_votes = 1: emission order is the outward
        // walk order on that line.
        let (res, steps) = ix.knn(&set.vector_owned(7), 5);
        assert_eq!(res.len(), 5);
        assert_eq!(steps, 5);
        assert_eq!(res[0].id, 7);
    }

    #[test]
    fn query_cost_scales_with_steps() {
        let set = lumpy_set(100);
        let ix = MedrankIndex::build(&set, MedrankParams::default());
        let model = DiskModel::ata_2005();
        assert!(ix.query_cost(&model, 10_000) > ix.query_cost(&model, 100));
    }

    #[test]
    fn random_units_are_normalised() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10 {
            let u = random_unit(&mut rng);
            let n: f32 = u.iter().map(|x| x * x).sum();
            assert!((n - 1.0).abs() < 1e-4);
        }
    }
}
