//! Chunk-size sweep benches — **Figures 6 and 7**: search cost as a
//! function of the (uniform) chunk size, on dataset and space queries.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use eff2_bench::fixtures;
use eff2_core::SearchParams;
use std::hint::black_box;

const SWEEP: [usize; 4] = [50, 150, 500, 2_000];

fn sweep(c: &mut Criterion, group: &str, queries: &[eff2_descriptor::Vector]) {
    let mut g = c.benchmark_group(group);
    g.sample_size(10);
    for leaf in SWEEP {
        let index = fixtures::sr_index_with_leaf(leaf);
        g.bench_with_input(BenchmarkId::new("chunk_size", leaf), &index, |b, index| {
            b.iter(|| {
                for q in queries {
                    black_box(index.search(q, &SearchParams::exact(30)).expect("search"));
                }
            })
        });
    }
    g.finish();
}

/// Figure 6: the chunk-size sweep on dataset queries.
fn fig6_chunk_size_sweep_dq(c: &mut Criterion) {
    let queries = fixtures::dq(4).queries;
    sweep(c, "fig6_chunk_size_sweep_dq", &queries);
}

/// Figure 7: the chunk-size sweep on space queries.
fn fig7_chunk_size_sweep_sq(c: &mut Criterion) {
    let queries = fixtures::sq(4).queries;
    sweep(c, "fig7_chunk_size_sweep_sq", &queries);
}

criterion_group!(benches, fig6_chunk_size_sweep_dq, fig7_chunk_size_sweep_sq);
criterion_main!(benches);
