//! Chunk-formation benches — **Table 1** (formation cost of each strategy)
//! and **Figure 1** (chunk-size distribution work), plus the BAG engine
//! ablation (grid pruning vs the paper's exhaustive scan).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use eff2_bag::{Bag, BagConfig, EngineKind};
use eff2_bench::fixtures;
use eff2_core::chunkers::{
    ChunkFormer, HybridChunker, RandomChunker, RoundRobinChunker, SrTreeChunker,
};
use eff2_srtree::bulk::centroid_and_radius;
use std::hint::black_box;

/// Table 1: how long each chunk-forming strategy takes. BAG runs on a
/// sub-collection (its faithful cost is quadratic — the paper needed 12
/// days at 5 M).
fn table1_chunk_formation(c: &mut Criterion) {
    let set = fixtures::collection();
    let mut g = c.benchmark_group("table1_chunk_formation");
    g.sample_size(10);

    g.bench_function("sr_tree", |b| {
        b.iter(|| black_box(SrTreeChunker { leaf_size: 150 }.form(set)))
    });
    g.bench_function("round_robin", |b| {
        b.iter(|| {
            black_box(
                RoundRobinChunker {
                    n_chunks: set.len() / 150,
                }
                .form(set),
            )
        })
    });
    g.bench_function("random", |b| {
        b.iter(|| {
            black_box(
                RandomChunker {
                    n_chunks: set.len() / 150,
                    seed: 1,
                }
                .form(set),
            )
        })
    });
    g.bench_function("hybrid", |b| {
        b.iter(|| {
            black_box(
                HybridChunker {
                    chunk_size: 150,
                    sweeps: 2,
                    ..HybridChunker::default()
                }
                .form(set),
            )
        })
    });

    // BAG on a 2k sub-collection to keep the bench bounded.
    let positions: Vec<usize> = (0..set.len().min(2_000)).collect();
    let sub = set.subset(&positions);
    let mpi = BagConfig::estimate_mpi(&sub, 500, 1);
    g.bench_function("bag_grid_2k", |b| {
        b.iter(|| {
            let cfg = BagConfig {
                mpi,
                max_passes: 300,
                ..BagConfig::default()
            };
            black_box(Bag::new(&sub, cfg).run_to(sub.len() / 150))
        })
    });
    g.finish();
}

/// Figure 1's raw material: summarising every chunk (centroid + minimum
/// bounding radius) — the step the paper found dominating SR-tree index
/// construction ("the actual tree generation took at most 10 minutes,
/// while the rest of the time was spent on calculating the centroid and
/// radius of each chunk").
fn fig1_largest_chunks(c: &mut Criterion) {
    let set = fixtures::collection();
    let partitions = eff2_srtree::bulk::build_leaf_partitions(set, 150);
    let mut g = c.benchmark_group("fig1_largest_chunks");
    g.bench_function("summarise_all_chunks", |b| {
        b.iter(|| {
            let mut sizes: Vec<(usize, f32)> = partitions
                .iter()
                .map(|p| {
                    let (_, r) = centroid_and_radius(set, p);
                    (p.len(), r)
                })
                .collect();
            sizes.sort_by_key(|s| std::cmp::Reverse(s.0));
            black_box(sizes)
        })
    });
    g.finish();
}

/// Ablation: the grid candidate engine vs the paper's exhaustive scan.
/// Identical output; the bench shows the wall-clock gap that substitutes
/// for the paper's 12-day run.
fn bag_engine_ablation(c: &mut Criterion) {
    let set = fixtures::collection();
    let positions: Vec<usize> = (0..set.len().min(1_200)).collect();
    let sub = set.subset(&positions);
    let mpi = BagConfig::estimate_mpi(&sub, 400, 3);
    let target = sub.len() / 150;
    let mut g = c.benchmark_group("bag_engine_ablation");
    g.sample_size(10);
    for engine in [EngineKind::Pruned, EngineKind::Exhaustive] {
        g.bench_with_input(
            BenchmarkId::new("engine", format!("{engine:?}")),
            &engine,
            |b, &engine| {
                b.iter(|| {
                    let cfg = BagConfig {
                        mpi,
                        engine,
                        max_passes: 300,
                        ..BagConfig::default()
                    };
                    black_box(Bag::new(&sub, cfg).run_to(target))
                })
            },
        );
    }
    g.finish();
}

criterion_group!(
    benches,
    table1_chunk_formation,
    fig1_largest_chunks,
    bag_engine_ablation
);
criterion_main!(benches);
