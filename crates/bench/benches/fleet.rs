//! The sharded fleet scheduler: wall-clock cost of scatter–gather serving
//! per shard count, placement policy and replication factor.
//!
//! Every cell computes answers bit-identical to the solo scheduler (see
//! the serve crate's fleet tests), so this bench isolates the fleet
//! orchestration overhead on top of `scheduler_throughput`: shard
//! routing, per-shard clocks, leg splitting, buffered outcome replay and
//! the deterministic merge. `solo` is the single-device scheduler on the
//! same trace.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use eff2_bench::fixtures;
use eff2_core::search::{SearchParams, StopRule};
use eff2_serve::{FleetConfig, FleetScheduler, Policy, Scheduler, SchedulerConfig};
use eff2_shard::Placement;
use eff2_storage::diskmodel::VirtualDuration;
use std::hint::black_box;

fn fleet_scatter_gather(c: &mut Criterion) {
    let snap = fixtures::sr_index().snapshot();
    let queries = fixtures::queries(32);
    let params = SearchParams {
        k: 30,
        stop: StopRule::Chunks(8),
        prefetch_depth: 2,
        log_snapshots: false,
    };
    // The whole fleet arrives at once: maximum contention for the shards.
    let trace: Vec<_> = queries
        .iter()
        .map(|q| (*q, VirtualDuration::ZERO))
        .collect();

    let mut g = c.benchmark_group("fleet_scatter_gather");
    g.sample_size(10);
    g.throughput(Throughput::Elements(queries.len() as u64));
    g.bench_function("solo", |b| {
        b.iter(|| {
            let mut config = SchedulerConfig::new(Policy::MostWantedChunk, 8);
            config.max_queued = trace.len();
            black_box(
                Scheduler::new(snap.clone(), config)
                    .serve_trace(&trace, &params)
                    .expect("solo"),
            )
        })
    });
    for placement in Placement::ALL {
        for shards in [1usize, 4, 16] {
            let label = format!("{}/{shards}", placement.name());
            g.bench_with_input(BenchmarkId::new("shards", label), &shards, |b, &s| {
                b.iter(|| {
                    let mut config = FleetConfig::new(Policy::MostWantedChunk, s, 8);
                    config.placement = placement;
                    config.max_queued = trace.len();
                    black_box(
                        FleetScheduler::new(snap.clone(), config)
                            .serve_trace(&trace, &params)
                            .expect("fleet"),
                    )
                })
            });
        }
    }
    for replication in [1usize, 2, 3] {
        g.bench_with_input(
            BenchmarkId::new("replication", replication),
            &replication,
            |b, &r| {
                b.iter(|| {
                    let mut config = FleetConfig::new(Policy::MostWantedChunk, 4, 8);
                    config.replication = r;
                    config.max_queued = trace.len();
                    black_box(
                        FleetScheduler::new(snap.clone(), config)
                            .serve_trace(&trace, &params)
                            .expect("fleet"),
                    )
                })
            },
        );
    }
    g.finish();
}

criterion_group!(benches, fleet_scatter_gather);
criterion_main!(benches);
