//! The serving layer's scheduler: wall-clock cost of interleaving a fleet
//! of sessions, per policy and concurrency level.
//!
//! Every run computes bit-identical per-query answers (see the serve
//! crate's determinism tests), so this bench isolates the orchestration
//! overhead: admission, per-tick chunk picks, single-flight fetches and
//! fan-out feeds. `serial` is the one-query-at-a-time reference on the
//! same snapshot.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use eff2_bench::fixtures;
use eff2_core::search::{SearchParams, StopRule};
use eff2_serve::{Policy, Scheduler, SchedulerConfig};
use eff2_storage::diskmodel::VirtualDuration;
use std::hint::black_box;

fn scheduler_throughput(c: &mut Criterion) {
    let snap = fixtures::sr_index().snapshot();
    let queries = fixtures::queries(32);
    let params = SearchParams {
        k: 30,
        stop: StopRule::Chunks(8),
        prefetch_depth: 2,
        log_snapshots: false,
    };
    // The whole fleet arrives at once: maximum contention for the device.
    let trace: Vec<_> = queries
        .iter()
        .map(|q| (*q, VirtualDuration::ZERO))
        .collect();

    let mut g = c.benchmark_group("scheduler_throughput");
    g.sample_size(10);
    g.throughput(Throughput::Elements(queries.len() as u64));
    g.bench_function("serial", |b| {
        b.iter(|| {
            for q in &queries {
                black_box(snap.search(q, &params).expect("serial"));
            }
        })
    });
    for policy in Policy::ALL {
        for active in [1usize, 4, 16] {
            let label = format!("{}/{active}", policy.name());
            g.bench_with_input(BenchmarkId::new("policy", label), &active, |b, &a| {
                b.iter(|| {
                    let mut config = SchedulerConfig::new(policy, a);
                    config.max_queued = trace.len();
                    black_box(
                        Scheduler::new(snap.clone(), config)
                            .serve_trace(&trace, &params)
                            .expect("serve"),
                    )
                })
            });
        }
    }
    g.finish();
}

criterion_group!(benches, scheduler_throughput);
criterion_main!(benches);
