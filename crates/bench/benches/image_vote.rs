//! Image-level vote aggregation: the pure fold cost and the end-to-end
//! serving cost of multi-descriptor image queries.
//!
//! `absorb_rank` isolates the [`ImageVoteAccumulator`]: fold N
//! per-descriptor neighbour lists into the tally and produce the sorted
//! image ranking — the per-completion CPU the image scheduler adds on
//! top of ordinary descriptor search. `serve` runs whole image queries
//! through the [`ImageScheduler`] with the run-everything rule vs an
//! early-terminating stable-top rule: their gap is the work the stop
//! rule saves (see eval exp9 for the matching quality figures).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use eff2_bench::fixtures;
use eff2_core::image::ImageStopRule;
use eff2_core::image::ImageVoteAccumulator;
use eff2_core::search::{SearchParams, StopRule};
use eff2_descriptor::Neighbor;
use eff2_serve::{ImageConfig, ImageQuerySpec, ImageScheduler, Policy};
use eff2_storage::diskmodel::VirtualDuration;
use eff2_workload::{image_of_map, image_queries};
use std::hint::black_box;
use std::sync::Arc;

const K: usize = 30;
const N_IMAGES: usize = 64;
const PER_QUERY: usize = 16;
const N_QUERIES: usize = 8;

/// Synthetic per-descriptor neighbour lists: ids sweep the collection so
/// votes spread across many images, distances descend so every absorb
/// updates some best-distance slots.
fn neighbor_lists(n_lists: usize, n_descriptors: usize) -> Vec<Vec<Neighbor>> {
    (0..n_lists)
        .map(|l| {
            (0..K)
                .map(|j| Neighbor {
                    id: ((l * 7919 + j * 131) % n_descriptors) as u32,
                    dist: 100.0 - (l * K + j) as f32 * 1e-3,
                })
                .collect()
        })
        .collect()
}

fn absorb_rank(c: &mut Criterion) {
    let n_descriptors = fixtures::collection().len();
    let image_of = Arc::new(image_of_map(n_descriptors, N_IMAGES, 0.8, 11));

    let mut g = c.benchmark_group("image_vote");
    for n_lists in [64usize, 512] {
        let lists = neighbor_lists(n_lists, n_descriptors);
        g.throughput(Throughput::Elements((n_lists * K) as u64));
        g.bench_with_input(
            BenchmarkId::new("absorb_rank", n_lists),
            &lists,
            |b, lists| {
                b.iter(|| {
                    let mut acc = ImageVoteAccumulator::new(Arc::clone(&image_of), K);
                    for list in lists {
                        acc.absorb(list);
                    }
                    black_box(acc.ranking())
                })
            },
        );
    }
    g.finish();
}

fn serve(c: &mut Criterion) {
    let snapshot = fixtures::sr_index().snapshot();
    let set = fixtures::collection();
    let image_of = Arc::new(image_of_map(set.len(), N_IMAGES, 0.8, 11));
    let queries = image_queries(set, &image_of, N_QUERIES, PER_QUERY, 23);
    let trace: Vec<(ImageQuerySpec, VirtualDuration)> = queries
        .iter()
        .enumerate()
        .map(|(i, q)| {
            (
                ImageQuerySpec {
                    label: q.image,
                    descriptors: q.descriptors.clone(),
                },
                VirtualDuration::from_ms(i as f64),
            )
        })
        .collect();
    let params = SearchParams {
        k: K,
        stop: StopRule::ToCompletionEps(0.5),
        prefetch_depth: 2,
        log_snapshots: false,
    };

    let mut g = c.benchmark_group("image_vote");
    g.sample_size(10);
    g.throughput(Throughput::Elements(N_QUERIES as u64));
    for (tag, stop) in [
        ("run-all", ImageStopRule::RunAll),
        (
            "stable-top3-w2",
            ImageStopRule::StableTop { m: 3, window: 2 },
        ),
    ] {
        g.bench_with_input(BenchmarkId::new("serve", tag), &stop, |b, &stop| {
            b.iter(|| {
                let mut config = ImageConfig::new(Policy::MostWantedChunk, 4, stop);
                config.max_queued = trace.len();
                black_box(
                    ImageScheduler::new(snapshot.clone(), config, Arc::clone(&image_of))
                        .serve_trace(&trace, &params)
                        .expect("serve"),
                )
            })
        });
    }
    g.finish();
}

criterion_group!(benches, absorb_rank, serve);
criterion_main!(benches);
