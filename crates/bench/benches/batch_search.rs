//! Multi-query batch search over a shared read-only chunk store.
//!
//! `sequential` runs the queries one at a time through [`search`];
//! `threads/N` runs the same workload through [`search_batch_threads`]
//! with N workers. The answers (and every per-query `ChunkEvent` trace)
//! are identical by construction — see the determinism test — so this
//! bench measures pure wall-clock scaling of the parallel driver.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use eff2_bench::fixtures;
use eff2_core::search::{search, search_batch_threads};
use eff2_core::SearchParams;
use std::hint::black_box;

fn batch_search(c: &mut Criterion) {
    let store = fixtures::sr_index().store();
    let model = fixtures::model();
    let queries = fixtures::queries(32);
    let params = SearchParams::exact(30);

    let mut g = c.benchmark_group("batch_search");
    g.sample_size(10);
    g.throughput(Throughput::Elements(queries.len() as u64));
    g.bench_function("sequential", |b| {
        b.iter(|| {
            for q in &queries {
                black_box(search(store, &model, q, &params).expect("search"));
            }
        })
    });
    for threads in [1usize, 2, 4, 8] {
        g.bench_with_input(BenchmarkId::new("threads", threads), &threads, |b, &t| {
            b.iter(|| {
                black_box(search_batch_threads(store, &model, &queries, &params, t).expect("batch"))
            })
        });
    }
    g.finish();
}

criterion_group!(benches, batch_search);
criterion_main!(benches);
