//! Live-mutation compaction overhead: wall-clock cost of the epoch
//! layer's fold/rebalance machinery.
//!
//! `begin_compaction` isolates the deterministic compactor itself (fold
//! the pinned delta, reassign inserts, merge/split, write the next
//! generation file pair). The `live_serve` cells run the same merged
//! query + skewed-mutation timeline through a [`LiveServer`] with
//! compaction off vs on: their difference is the orchestration overhead
//! of paying compaction cost in ticks interleaved with serving, on top
//! of identical per-query answers (see the serve crate's live-mutation
//! property test).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use eff2_bench::fixtures;
use eff2_core::chunkers::{ChunkFormer, SrTreeChunker};
use eff2_core::search::{SearchParams, StopRule};
use eff2_epoch::MutableIndex;
use eff2_serve::{merge_timelines, CompactionPolicy, LiveEvent, LiveServer};
use eff2_storage::diskmodel::VirtualDuration;
use eff2_workload::{skewed_mutation_trace, MutationOp};
use std::hint::black_box;
use std::path::PathBuf;

const TARGET_CHUNK: usize = 100;
const N_QUERIES: usize = 16;
const N_OPS: usize = 128;

fn scratch(tag: &str) -> PathBuf {
    let dir = fixtures::bench_dir().join(format!("compaction_{tag}"));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

fn build_index(tag: &str) -> MutableIndex {
    let set = fixtures::collection();
    let formation = SrTreeChunker {
        leaf_size: TARGET_CHUNK,
    }
    .form(set);
    MutableIndex::create(
        &scratch(tag),
        "bench",
        set,
        &formation.chunks,
        4_096,
        None,
        fixtures::model(),
        TARGET_CHUNK,
    )
    .expect("create index")
}

fn mutation_events(n_ops: usize, rate: f64) -> Vec<(VirtualDuration, LiveEvent)> {
    skewed_mutation_trace(fixtures::collection(), n_ops, 0.9, rate, 1.1, 42)
        .events
        .iter()
        .map(|e| {
            let event = match &e.op {
                MutationOp::Insert { id, vector } => LiveEvent::Insert {
                    id: *id,
                    vector: *vector,
                },
                MutationOp::Delete { id } => LiveEvent::Delete { id: *id },
            };
            (VirtualDuration::from_secs(e.at_secs), event)
        })
        .collect()
}

fn compaction_overhead(c: &mut Criterion) {
    let params = SearchParams {
        k: 30,
        stop: StopRule::Chunks(8),
        prefetch_depth: 2,
        log_snapshots: false,
    };

    let mut g = c.benchmark_group("compaction_overhead");
    g.sample_size(10);

    // The compactor alone: fold a pending delta of N ops into the next
    // generation. `begin_compaction` is read-only on the index, so one
    // prepared index serves every iteration.
    for n_ops in [64usize, 256] {
        let mut index = build_index(&format!("fold_{n_ops}"));
        for (_, event) in mutation_events(n_ops, 1_000.0) {
            match event {
                LiveEvent::Insert { id, vector } => index.insert(id, vector).expect("insert"),
                LiveEvent::Delete { id } => index.delete(id).expect("delete"),
                LiveEvent::Query(_) => unreachable!("mutation trace has no queries"),
            }
        }
        g.throughput(Throughput::Elements(n_ops as u64));
        g.bench_with_input(
            BenchmarkId::new("begin_compaction", n_ops),
            &n_ops,
            |b, _| b.iter(|| black_box(index.begin_compaction().expect("compaction plan"))),
        );
    }

    // End-to-end: the same merged timeline served with compaction off vs
    // on. Index construction repeats in both cells, so the difference is
    // the interleaved-compaction overhead.
    let queries: Vec<(_, VirtualDuration)> = fixtures::queries(N_QUERIES)
        .into_iter()
        .map(|q| (q, VirtualDuration::ZERO))
        .collect();
    let trace = merge_timelines(&queries, &mutation_events(N_OPS, 1_000.0));
    g.throughput(Throughput::Elements(N_QUERIES as u64));
    for policy in [CompactionPolicy::Never, CompactionPolicy::EveryOps(64)] {
        g.bench_with_input(
            BenchmarkId::new("live_serve", policy.name()),
            &policy,
            |b, &p| {
                b.iter(|| {
                    let index = build_index("serve");
                    black_box(
                        LiveServer::new(index, params, p)
                            .serve_trace(&trace)
                            .expect("live serve"),
                    )
                })
            },
        );
    }
    g.finish();
}

criterion_group!(benches, compaction_overhead);
criterion_main!(benches);
