//! Kernel micro-benches: the distance kernels every experiment bottoms out
//! in, the neighbour-set heap, the 100-byte record codec, and the SR-tree
//! k-NN vs a sequential scan.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use eff2_bench::fixtures;
use eff2_core::{scan_knn, NeighborSet};
use eff2_descriptor::{
    adc_l2_sq_batch, adc_scan_block_into, as_rows, codec, l2_sq, l2_sq_batch, l2_sq_serial,
    scan_block_into, DescriptorCodec, DIM,
};
use eff2_srtree::{bulk_build, BulkConfig};
use std::hint::black_box;

fn distance_kernels(c: &mut Criterion) {
    let set = fixtures::collection();
    let q = set.vector_owned(0);
    let n = set.len().min(4_096);
    let packed = &set.packed()[..n * DIM];
    let ids = &set.raw_ids()[..n];
    let mut out = vec![0.0f32; n];

    let mut g = c.benchmark_group("distance_kernels");
    g.throughput(Throughput::Elements(n as u64));
    // Scalar baseline: one row at a time through the original
    // single-accumulator kernel (the seed's hot loop).
    g.bench_function("l2_sq_scalar_loop", |b| {
        b.iter(|| {
            let mut acc = 0.0f32;
            for row in as_rows(packed) {
                acc += l2_sq_serial(q.as_array(), row);
            }
            black_box(acc)
        })
    });
    // Lane kernel, still one row at a time.
    g.bench_function("l2_sq_lane_loop", |b| {
        b.iter(|| {
            let mut acc = 0.0f32;
            for row in as_rows(packed) {
                acc += l2_sq(q.as_array(), row);
            }
            black_box(acc)
        })
    });
    // Blocked: four rows per step, unrolled accumulators.
    g.bench_function("l2_sq_batch", |b| {
        b.iter(|| {
            l2_sq_batch(q.as_array(), packed, &mut out);
            black_box(out[0])
        })
    });
    // Fused: blocked distances offered straight into the top-k set, with
    // the kth-distance prune — versus the same scan done scalar.
    g.bench_function("scan_scalar_topk30", |b| {
        b.iter(|| {
            let mut ns = NeighborSet::new(30);
            for (i, row) in as_rows(packed).iter().enumerate() {
                ns.offer(ids[i], l2_sq(q.as_array(), row));
            }
            black_box(ns.kth_dist())
        })
    });
    g.bench_function("scan_fused_topk30", |b| {
        b.iter(|| {
            let mut ns = NeighborSet::new(30);
            scan_block_into(q.as_array(), packed, ids, &mut ns);
            black_box(ns.kth_dist())
        })
    });
    g.finish();
}

/// ADC kernels against the decode-then-exact baseline: the same `n` codes
/// scored per iteration, either decoded back to f32 and run through the
/// blocked exact kernel, or scored directly from the u8 codes with the
/// asymmetric-distance kernels (blocked batch and fused top-k variants).
fn adc_kernels(c: &mut Criterion) {
    let set = fixtures::collection();
    let q = set.vector_owned(0);
    let n = set.len().min(4_096);
    let ids = &set.raw_ids()[..n];

    let mut g = c.benchmark_group("adc_kernels");
    g.throughput(Throughput::Elements(n as u64));
    for (name, quant) in [("sq8", fixtures::sq8_codec()), ("pq", fixtures::pq_codec())] {
        let codes = fixtures::encode_rows(quant, n);
        let prep = quant.prepare(q.as_array());
        let cb = quant.code_bytes();
        let mut decoded = vec![0.0f32; n * DIM];
        let mut out = vec![0.0f32; n];
        // Baseline: decode every code to f32, then the exact blocked kernel.
        g.bench_function(format!("{name}_decode_then_exact"), |b| {
            b.iter(|| {
                let mut row = [0.0f32; DIM];
                for (code, slot) in codes.chunks_exact(cb).zip(decoded.chunks_exact_mut(DIM)) {
                    quant.decode_into(code, &mut row);
                    slot.copy_from_slice(&row);
                }
                l2_sq_batch(q.as_array(), &decoded, &mut out);
                black_box(out[0])
            })
        });
        // Blocked ADC batch: distances straight from the codes.
        g.bench_function(format!("{name}_adc_batch"), |b| {
            let mut dists = Vec::with_capacity(n);
            b.iter(|| {
                adc_l2_sq_batch(&prep, &codes, &mut dists);
                black_box(dists[0])
            })
        });
        // Fused ADC top-k: blocked scoring with the kth-distance prune.
        g.bench_function(format!("{name}_adc_fused_topk30"), |b| {
            b.iter(|| {
                let mut ns = NeighborSet::new(30);
                adc_scan_block_into(&prep, &codes, ids, &mut ns);
                black_box(ns.kth_dist())
            })
        });
    }
    g.finish();
}

fn neighbor_set(c: &mut Criterion) {
    let set = fixtures::collection();
    let q = set.vector_owned(1);
    let n = set.len().min(4_096);
    let mut dists = vec![0.0f32; n];
    l2_sq_batch(q.as_array(), &set.packed()[..n * DIM], &mut dists);

    let mut g = c.benchmark_group("neighbor_set");
    g.throughput(Throughput::Elements(n as u64));
    for k in [10usize, 30, 100] {
        g.bench_with_input(BenchmarkId::new("offer_stream_k", k), &k, |b, &k| {
            b.iter(|| {
                let mut ns = NeighborSet::new(k);
                for (i, &d) in dists.iter().enumerate() {
                    ns.offer(i as u32, d);
                }
                black_box(ns.sorted_ids())
            })
        });
    }
    g.finish();
}

fn record_codec(c: &mut Criterion) {
    let set = fixtures::collection();
    let positions: Vec<usize> = (0..set.len().min(2_000)).collect();
    let sub = set.subset(&positions);
    let mut buf = Vec::new();
    codec::write_collection(&sub, &mut buf).expect("encode");

    let mut g = c.benchmark_group("record_codec");
    g.throughput(Throughput::Bytes(buf.len() as u64));
    g.bench_function("encode_2k", |b| {
        b.iter(|| {
            let mut out = Vec::with_capacity(buf.len());
            codec::write_collection(&sub, &mut out).expect("encode");
            black_box(out.len())
        })
    });
    g.bench_function("decode_2k", |b| {
        b.iter(|| black_box(codec::read_collection(&buf[..]).expect("decode").len()))
    });
    g.finish();
}

fn srtree_knn_vs_scan(c: &mut Criterion) {
    let set = fixtures::collection();
    let tree = bulk_build(
        set,
        BulkConfig {
            leaf_size: 64,
            internal_fanout: 16,
        },
    );
    let queries = fixtures::queries(16);

    let mut g = c.benchmark_group("srtree_knn_vs_scan");
    g.sample_size(20);
    g.bench_function("srtree_knn30", |b| {
        b.iter(|| {
            for q in &queries {
                black_box(tree.knn(q, 30));
            }
        })
    });
    g.bench_function("sequential_scan_knn30", |b| {
        b.iter(|| {
            for q in &queries {
                black_box(scan_knn(set, q, 30));
            }
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    distance_kernels,
    adc_kernels,
    neighbor_set,
    record_codec,
    srtree_knn_vs_scan
);
criterion_main!(benches);
