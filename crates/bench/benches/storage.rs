//! Storage benches: chunk reads (direct vs prefetch-pipelined — the
//! I/O/CPU overlap ablation that motivates uniform chunk sizes) and the
//! chunk-index ranking step.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use eff2_bench::fixtures;
use eff2_core::{ChunkRanking, CoarseQuantizer};
use eff2_storage::diskmodel::{PipelineClock, VirtualDuration};
use eff2_storage::prefetch::prefetch_chunks;
use eff2_storage::ChunkData;
use std::hint::black_box;

/// Overlap ablation on *real* I/O: stream every chunk of the SR index and
/// scan it, either through the prefetch pipeline (reader thread overlaps
/// the scan) or with direct sequential reads.
fn overlap_ablation_real_io(c: &mut Criterion) {
    let store = fixtures::sr_index().store();
    let q = fixtures::collection().vector_owned(0);
    let order: Vec<usize> = (0..store.n_chunks()).collect();

    let scan = |payload: &ChunkData| -> f32 {
        let mut acc = 0.0f32;
        for row in eff2_descriptor::as_rows(&payload.packed) {
            acc += eff2_descriptor::l2_sq(q.as_array(), row);
        }
        acc
    };

    let mut g = c.benchmark_group("overlap_ablation_real_io");
    g.sample_size(10);
    g.throughput(Throughput::Elements(store.total_descriptors()));
    g.bench_function("prefetch_pipelined", |b| {
        b.iter(|| {
            let mut acc = 0.0f32;
            for item in prefetch_chunks(store, order.clone(), 4).expect("prefetch") {
                acc += scan(&item.expect("chunk").payload);
            }
            black_box(acc)
        })
    });
    g.bench_function("direct_sequential", |b| {
        b.iter(|| {
            let mut reader = store.reader().expect("reader");
            let mut payload = ChunkData::default();
            let mut acc = 0.0f32;
            for &id in &order {
                reader.read_chunk(id, &mut payload).expect("read");
                acc += scan(&payload);
            }
            black_box(acc)
        })
    });
    g.finish();
}

/// Overlap ablation on the virtual clock: the deterministic cost-model
/// counterpart (what the paper's elapsed-time figures are built from).
fn overlap_ablation_cost_model(c: &mut Criterion) {
    let model = fixtures::model();
    let chunks: Vec<(u64, usize)> = (0..2_000)
        .map(|i| (8_192 + (i % 7) * 4_096, 1_000 + (i % 13) * 100))
        .map(|(b, n)| (b as u64, n))
        .collect();
    let mut g = c.benchmark_group("overlap_ablation_cost_model");
    for mode in ["overlapped", "serial"] {
        g.bench_with_input(BenchmarkId::new("mode", mode), &mode, |b, &mode| {
            b.iter(|| {
                let mut clock = PipelineClock::start_at(VirtualDuration::ZERO);
                for &(bytes, n) in &chunks {
                    let io = model.io_time(bytes);
                    let cpu = model.scan_time(n);
                    if mode == "overlapped" {
                        clock.chunk_overlapped(io, cpu);
                    } else {
                        clock.chunk_serial(io, cpu);
                    }
                }
                black_box(clock.now())
            })
        });
    }
    g.finish();
}

/// The §4.3 step-1 cost: ranking every chunk centroid against the query.
fn chunk_ranking(c: &mut Criterion) {
    let store = fixtures::sr_index().store();
    let q = fixtures::collection().vector_owned(3);
    let mut g = c.benchmark_group("chunk_ranking");
    g.throughput(Throughput::Elements(store.n_chunks() as u64));
    g.bench_function("rank_all_centroids", |b| {
        b.iter(|| {
            let mut ranked: Vec<(f32, u32)> = store
                .metas()
                .iter()
                .enumerate()
                .map(|(i, m)| (m.centroid.dist(&q), i as u32))
                .collect();
            ranked.sort_by(|a, b| a.0.total_cmp(&b.0));
            black_box(ranked.len())
        })
    });
    g.finish();
}

/// Flat vs two-level chunk ranking: the same step-1 cost when coarse
/// cells defer most centroid distances until a cell is actually expanded.
/// `rank_two_level` alone prices the lazy variant; the `first_wave` bench
/// adds the expansion a query pays before its first chunk read.
fn two_level_ranking(c: &mut Criterion) {
    let store = fixtures::sr_index().store();
    let model = fixtures::model();
    let q = fixtures::collection().vector_owned(3);
    let coarse = CoarseQuantizer::for_store(store);

    let mut g = c.benchmark_group("two_level_ranking");
    g.throughput(Throughput::Elements(store.n_chunks() as u64));
    g.bench_function("rank_flat", |b| {
        b.iter(|| {
            let mut r = ChunkRanking::default();
            r.rank_into(store, &model, &q);
            black_box(r.centroid_evals())
        })
    });
    g.bench_function("rank_two_level", |b| {
        b.iter(|| {
            black_box(ChunkRanking::rank_two_level(store, &model, &q, &coarse).centroid_evals())
        })
    });
    g.bench_function("rank_two_level_first_wave", |b| {
        b.iter(|| {
            let mut r = ChunkRanking::rank_two_level(store, &model, &q, &coarse);
            r.expand_wave(&q);
            black_box(r.centroid_evals())
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    overlap_ablation_real_io,
    overlap_ablation_cost_model,
    chunk_ranking,
    two_level_ranking
);
criterion_main!(benches);
