//! Medrank benches: build cost and query cost of the rank-aggregation
//! baseline vs the chunk index, at the same k.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use eff2_bench::fixtures;
use eff2_core::SearchParams;
use eff2_medrank::{MedrankIndex, MedrankParams};
use std::hint::black_box;

fn medrank_build(c: &mut Criterion) {
    let set = fixtures::collection();
    let mut g = c.benchmark_group("medrank_build");
    g.sample_size(10);
    for lines in [5usize, 9, 15] {
        g.bench_with_input(BenchmarkId::new("lines", lines), &lines, |b, &lines| {
            b.iter(|| {
                black_box(MedrankIndex::build(
                    set,
                    MedrankParams {
                        lines,
                        ..MedrankParams::default()
                    },
                ))
            })
        });
    }
    g.finish();
}

fn medrank_vs_chunk_query(c: &mut Criterion) {
    let set = fixtures::collection();
    let medrank = MedrankIndex::build(set, MedrankParams::default());
    let chunked = fixtures::sr_index();
    let queries = fixtures::queries(8);

    let mut g = c.benchmark_group("medrank_vs_chunk_query");
    g.sample_size(10);
    g.bench_function("medrank_knn30", |b| {
        b.iter(|| {
            for q in &queries {
                black_box(medrank.knn(q, 30));
            }
        })
    });
    g.bench_function("chunk_index_5_chunks_knn30", |b| {
        b.iter(|| {
            for q in &queries {
                black_box(
                    chunked
                        .search(q, &SearchParams::approximate(30, 5))
                        .expect("search"),
                );
            }
        })
    });
    g.finish();
}

criterion_group!(benches, medrank_build, medrank_vs_chunk_query);
criterion_main!(benches);
