//! Search benches — **Figures 2–5** (approximate search under the
//! chunks-read and time-budget stop rules, DQ and SQ) and **Table 2**
//! (search to completion), on both chunk-forming strategies.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use eff2_bench::fixtures;
use eff2_core::{SearchParams, StopRule};
use eff2_storage::diskmodel::VirtualDuration;
use std::hint::black_box;

fn run_workload(
    c: &mut Criterion,
    group: &str,
    queries: &[eff2_descriptor::Vector],
    params: SearchParams,
) {
    let mut g = c.benchmark_group(group);
    g.sample_size(10);
    for (name, index) in [("bag", fixtures::bag_index()), ("sr", fixtures::sr_index())] {
        g.bench_with_input(BenchmarkId::new("index", name), &index, |b, index| {
            b.iter(|| {
                for q in queries {
                    black_box(index.search(q, &params).expect("search"));
                }
            })
        });
    }
    g.finish();
}

/// Figure 2: chunks-read stop rule on dataset queries.
fn fig2_chunks_read_dq(c: &mut Criterion) {
    let queries = fixtures::dq(8).queries;
    run_workload(
        c,
        "fig2_chunks_read_dq",
        &queries,
        SearchParams::approximate(30, 5),
    );
}

/// Figure 3: chunks-read stop rule on space queries.
fn fig3_chunks_read_sq(c: &mut Criterion) {
    let queries = fixtures::sq(8).queries;
    run_workload(
        c,
        "fig3_chunks_read_sq",
        &queries,
        SearchParams::approximate(30, 5),
    );
}

/// Figure 4: a virtual-time budget on dataset queries.
fn fig4_walltime_dq(c: &mut Criterion) {
    let queries = fixtures::dq(8).queries;
    let params = SearchParams {
        k: 30,
        stop: StopRule::VirtualTime(VirtualDuration::from_ms(500.0)),
        prefetch_depth: 2,
        log_snapshots: true,
    };
    run_workload(c, "fig4_walltime_dq", &queries, params);
}

/// Figure 5: a virtual-time budget on space queries.
fn fig5_walltime_sq(c: &mut Criterion) {
    let queries = fixtures::sq(8).queries;
    let params = SearchParams {
        k: 30,
        stop: StopRule::VirtualTime(VirtualDuration::from_ms(500.0)),
        prefetch_depth: 2,
        log_snapshots: true,
    };
    run_workload(c, "fig5_walltime_sq", &queries, params);
}

/// Table 2: run queries to provable completion.
fn table2_time_to_completion(c: &mut Criterion) {
    let dq = fixtures::dq(4).queries;
    let sq = fixtures::sq(4).queries;
    let mut g = c.benchmark_group("table2_time_to_completion");
    g.sample_size(10);
    for (wl_name, queries) in [("dq", &dq), ("sq", &sq)] {
        for (ix_name, index) in [("bag", fixtures::bag_index()), ("sr", fixtures::sr_index())] {
            g.bench_with_input(BenchmarkId::new(ix_name, wl_name), &index, |b, index| {
                b.iter(|| {
                    for q in queries.iter() {
                        black_box(index.search(q, &SearchParams::exact(30)).expect("search"));
                    }
                })
            });
        }
    }
    g.finish();
}

criterion_group!(
    benches,
    fig2_chunks_read_dq,
    fig3_chunks_read_sq,
    fig4_walltime_dq,
    fig5_walltime_sq,
    table2_time_to_completion
);
criterion_main!(benches);
