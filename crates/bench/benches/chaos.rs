//! Chaos benches: what the fault-injection decorators cost on the read
//! path. The quiet stack (rate 0 everywhere) is the number that matters —
//! it is the overhead every chaos-enabled run pays even when nothing
//! faults — with a lossy degraded scan alongside for scale.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use eff2_bench::fixtures;
use eff2_chaos::{FaultConfig, FaultPlan, FaultSource, RetryPolicy, RetrySource};
use eff2_core::search::search;
use eff2_core::session::{SearchSession, SkipPolicy};
use eff2_core::{SearchParams, StopRule};
use eff2_storage::diskmodel::VirtualDuration;
use eff2_storage::source::{ChunkSource, FileSource};
use std::hint::black_box;
use std::sync::Arc;

fn params() -> SearchParams {
    SearchParams {
        k: 10,
        stop: StopRule::Chunks(usize::MAX),
        prefetch_depth: 2,
        log_snapshots: false,
    }
}

/// Full-store scan through the undecorated source vs the quiet chaos
/// stack: the decorators' passthrough overhead.
fn quiet_stack_overhead(c: &mut Criterion) {
    let store = fixtures::sr_index().store();
    let model = fixtures::model();
    let q = fixtures::collection().vector_owned(11);
    let params = params();

    let mut g = c.benchmark_group("chaos_quiet_stack");
    g.sample_size(10);
    g.throughput(Throughput::Elements(store.total_descriptors()));
    g.bench_function("undecorated", |b| {
        b.iter(|| black_box(search(store, &model, &q, &params).expect("search")))
    });
    g.bench_function("fault_retry_stack_rate0", |b| {
        b.iter(|| {
            let stack = Arc::new(RetrySource::new(
                Arc::new(FaultSource::new(
                    Arc::new(FileSource::new(store)),
                    FaultPlan::new(FaultConfig::quiet(7)),
                )),
                RetryPolicy::new(
                    4,
                    VirtualDuration::from_ms(5.0),
                    VirtualDuration::from_ms(1.0),
                ),
            ));
            let mut session = SearchSession::with_source(
                store,
                &model,
                &q,
                &params,
                stack as Arc<dyn ChunkSource>,
            );
            session.run_to_stop().expect("run");
            black_box(session.into_result())
        })
    });
    g.finish();
}

/// A degraded scan: 20% of chunks permanently lost, retries charged, the
/// session skipping past every loss.
fn degraded_scan(c: &mut Criterion) {
    let store = fixtures::sr_index().store();
    let model = fixtures::model();
    let q = fixtures::collection().vector_owned(11);
    let params = params();

    let mut g = c.benchmark_group("chaos_degraded_scan");
    g.sample_size(10);
    g.bench_function("lossy_0.2_skip", |b| {
        b.iter(|| {
            let stack = Arc::new(RetrySource::new(
                Arc::new(FaultSource::new(
                    Arc::new(FileSource::new(store)),
                    FaultPlan::new(FaultConfig::lossy(7, 0.2)),
                )),
                RetryPolicy::new(
                    2,
                    VirtualDuration::from_ms(5.0),
                    VirtualDuration::from_ms(1.0),
                ),
            ));
            let mut session = SearchSession::with_source(
                store,
                &model,
                &q,
                &params,
                stack as Arc<dyn ChunkSource>,
            );
            session.set_skip_policy(SkipPolicy::SkipUnavailable);
            session.run_to_stop().expect("run");
            black_box(session.into_result())
        })
    });
    g.finish();
}

criterion_group!(benches, quiet_stack_overhead, degraded_scan);
criterion_main!(benches);
