//! `bench_report` — collect Criterion medians into one JSON artefact.
//!
//! ```text
//! bench_report [--criterion-dir target/criterion] [--out BENCH_7.json]
//!              [--kv key=value]...
//! ```
//!
//! Walks `<criterion-dir>/**/new/estimates.json`, extracts each bench's
//! median point estimate (nanoseconds, keyed by the slash-joined bench
//! path), merges any `--kv` pairs passed on the command line (numbers
//! where they parse, strings otherwise — e.g. bytes-read figures grepped
//! from the exp6 smoke run, or cross-shard fetch counts from exp7) and
//! writes one JSON object to `--out`. This is the standing perf artefact
//! `scripts/check.sh` commits per PR so kernel speedups and regressions
//! stay visible across the stack; each PR writes its own `BENCH_<n>.json`
//! and leaves the prior artefacts untouched.

// lint:allow-file(hyg.print): command-line binary; progress and errors go to stderr by design

use eff2_json::Json;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

fn usage() -> ! {
    eprintln!("usage: bench_report [--criterion-dir DIR] [--out FILE] [--kv key=value]...");
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut criterion_dir = PathBuf::from("target/criterion");
    let mut out_path = PathBuf::from("BENCH_7.json");
    let mut extra: BTreeMap<String, String> = BTreeMap::new();
    let mut i = 0;
    while i < args.len() {
        match args.get(i).map(String::as_str) {
            Some("--criterion-dir") => {
                i += 1;
                criterion_dir = PathBuf::from(args.get(i).cloned().unwrap_or_else(|| usage()));
            }
            Some("--out") => {
                i += 1;
                out_path = PathBuf::from(args.get(i).cloned().unwrap_or_else(|| usage()));
            }
            Some("--kv") => {
                i += 1;
                let kv = args.get(i).cloned().unwrap_or_else(|| usage());
                match kv.split_once('=') {
                    Some((k, v)) => {
                        extra.insert(k.to_string(), v.to_string());
                    }
                    None => usage(),
                }
            }
            _ => usage(),
        }
        i += 1;
    }

    let mut benches: BTreeMap<String, f64> = BTreeMap::new();
    if criterion_dir.is_dir() {
        if let Err(e) = collect(&criterion_dir, "", &mut benches) {
            eprintln!("error: walking {}: {e}", criterion_dir.display());
            std::process::exit(1);
        }
    } else {
        eprintln!(
            "warning: {} not found; emitting metrics only",
            criterion_dir.display()
        );
    }

    let bench_obj: Vec<(String, Json)> = benches
        .iter()
        .map(|(k, &v)| (k.clone(), Json::num(v)))
        .collect();
    let extra_obj: Vec<(String, Json)> = extra
        .iter()
        .map(|(k, v)| {
            let j = match v.parse::<f64>() {
                Ok(n) if n.is_finite() => Json::num(n),
                _ => Json::Str(v.clone()),
            };
            (k.clone(), j)
        })
        .collect();
    let doc = Json::obj(vec![
        ("schema", Json::Str("eff2-bench-report/v1".to_string())),
        (
            "unit",
            Json::Str("nanoseconds (criterion median)".to_string()),
        ),
        (
            "benches",
            Json::obj(
                bench_obj
                    .iter()
                    .map(|(k, j)| (k.as_str(), j.clone()))
                    .collect(),
            ),
        ),
        (
            "metrics",
            Json::obj(
                extra_obj
                    .iter()
                    .map(|(k, j)| (k.as_str(), j.clone()))
                    .collect(),
            ),
        ),
    ]);
    if let Err(e) = std::fs::write(&out_path, doc.to_string() + "\n") {
        eprintln!("error: writing {}: {e}", out_path.display());
        std::process::exit(1);
    }
    eprintln!(
        "[bench_report] {} benches, {} metrics -> {}",
        benches.len(),
        extra.len(),
        out_path.display()
    );
}

/// Recursively finds every directory holding `new/estimates.json` and
/// records its median point estimate under the slash-joined path key.
/// Criterion's own `report` and `new`/`base` sample dirs are skipped.
fn collect(dir: &Path, prefix: &str, out: &mut BTreeMap<String, f64>) -> std::io::Result<()> {
    let estimates = dir.join("new").join("estimates.json");
    if estimates.is_file() {
        match median_of(&estimates) {
            Some(m) => {
                out.insert(prefix.to_string(), m);
            }
            None => eprintln!("warning: no median in {}", estimates.display()),
        }
        return Ok(());
    }
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.is_dir())
        .collect();
    entries.sort();
    for sub in entries {
        let name = sub.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if matches!(name, "report" | "new" | "base" | "change") {
            continue;
        }
        let key = if prefix.is_empty() {
            name.to_string()
        } else {
            format!("{prefix}/{name}")
        };
        collect(&sub, &key, out)?;
    }
    Ok(())
}

fn median_of(path: &Path) -> Option<f64> {
    let text = std::fs::read_to_string(path).ok()?;
    let json = Json::parse(&text).ok()?;
    json.get("median")?.get("point_estimate")?.as_f64().ok()
}
