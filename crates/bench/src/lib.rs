#![warn(missing_docs)]

//! # eff2-bench
//!
//! Criterion benchmarks, one group per paper table/figure plus kernel and
//! ablation benches. See `benches/` for the targets and
//! [`fixtures`] for the shared bench-scale collection and indexes.

pub mod fixtures;
