//! Shared fixtures for the Criterion benches: a bench-scale collection and
//! prebuilt chunk stores, constructed once per process.
//!
//! The benches run at a reduced scale (10k descriptors by default,
//! `EFF2_BENCH_SCALE` overrides) so `cargo bench` finishes in minutes; the
//! `eff2-eval` binary is the full-scale harness.
// lint:allow-file(panic.unwrap): bench fixture setup; aborting loudly on a broken fixture beats benchmarking garbage
// lint:allow-file(panic.index): fixture slices are bounded by n.min(set.len()) before indexing

use eff2_bag::BagConfig;
use eff2_core::chunkers::{BagChunker, SrTreeChunker};
use eff2_core::ChunkIndex;
use eff2_descriptor::{
    as_rows, Codec, DescriptorCodec, DescriptorSet, PqCodec, Sq8Codec, SyntheticCollection, Vector,
    DIM,
};
use eff2_storage::diskmodel::DiskModel;
use eff2_workload::{dq_workload, sq_workload, Workload};
use std::path::PathBuf;
use std::sync::OnceLock;

/// Bench collection size.
pub fn bench_scale() -> usize {
    std::env::var("EFF2_BENCH_SCALE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(10_000)
}

/// The bench collection (built once).
pub fn collection() -> &'static DescriptorSet {
    static SET: OnceLock<DescriptorSet> = OnceLock::new();
    SET.get_or_init(|| SyntheticCollection::with_size(bench_scale(), 42).set)
}

/// Scratch directory for bench artefacts.
pub fn bench_dir() -> PathBuf {
    let dir = std::env::temp_dir().join("eff2_bench_fixtures");
    std::fs::create_dir_all(&dir).expect("create bench dir");
    dir
}

/// A BAG termination target giving paper-like chunk counts at bench scale.
pub fn bag_target() -> usize {
    (collection().len() / 150).max(4)
}

/// An estimated MPI for the bench collection.
pub fn mpi() -> f32 {
    static MPI: OnceLock<f32> = OnceLock::new();
    *MPI.get_or_init(|| BagConfig::estimate_mpi(collection(), 1_000, 42))
}

/// The BAG chunk index over the bench collection (built once).
pub fn bag_index() -> &'static ChunkIndex {
    static IX: OnceLock<ChunkIndex> = OnceLock::new();
    IX.get_or_init(|| {
        let built = ChunkIndex::build(
            &bench_dir(),
            "bench_bag",
            collection(),
            &BagChunker {
                config: BagConfig {
                    mpi: mpi(),
                    max_passes: 300,
                    ..BagConfig::default()
                },
                target_clusters: bag_target(),
            },
            8192,
            DiskModel::ata_2005(),
        )
        .expect("build bag index");
        built.index
    })
}

/// The SR-tree chunk index over the bench collection (built once), with
/// leaf size matching the BAG index's mean chunk size.
pub fn sr_index() -> &'static ChunkIndex {
    static IX: OnceLock<ChunkIndex> = OnceLock::new();
    IX.get_or_init(|| {
        let bag = bag_index();
        let leaf = (bag.store().total_descriptors() as f64 / bag.store().n_chunks().max(1) as f64)
            .round()
            .max(2.0) as usize;
        let built = ChunkIndex::build(
            &bench_dir(),
            "bench_sr",
            collection(),
            &SrTreeChunker { leaf_size: leaf },
            8192,
            DiskModel::ata_2005(),
        )
        .expect("build sr index");
        built.index
    })
}

/// An SR-tree index with an explicit leaf size (for the Fig 6/7 sweep).
pub fn sr_index_with_leaf(leaf_size: usize) -> ChunkIndex {
    ChunkIndex::build(
        &bench_dir(),
        &format!("bench_sr_{leaf_size}"),
        collection(),
        &SrTreeChunker { leaf_size },
        8192,
        DiskModel::ata_2005(),
    )
    .expect("build sweep index")
    .index
}

/// The cost model every bench prices virtual time under.
pub fn model() -> DiskModel {
    DiskModel::ata_2005()
}

/// The SQ8 codec trained on the bench collection (trained once).
pub fn sq8_codec() -> &'static Codec {
    static C: OnceLock<Codec> = OnceLock::new();
    C.get_or_init(|| Codec::Sq8(Sq8Codec::from_set(collection())))
}

/// The PQ codec trained on the bench collection (trained once).
pub fn pq_codec() -> &'static Codec {
    static C: OnceLock<Codec> = OnceLock::new();
    C.get_or_init(|| Codec::Pq(PqCodec::from_set(collection())))
}

/// The first `n` bench-collection rows encoded under `codec`, row-major.
pub fn encode_rows(codec: &Codec, n: usize) -> Vec<u8> {
    let set = collection();
    let n = n.min(set.len());
    let cb = codec.code_bytes();
    let mut codes = vec![0u8; n * cb];
    for (row, code) in as_rows(&set.packed()[..n * DIM])
        .iter()
        .zip(codes.chunks_exact_mut(cb))
    {
        codec.encode_into(row, code);
    }
    codes
}

/// A small DQ workload over the bench collection.
pub fn dq(n: usize) -> Workload {
    dq_workload(collection(), n, 7)
}

/// A small SQ workload over the bench collection.
pub fn sq(n: usize) -> Workload {
    sq_workload(collection(), n, 0.05, 7)
}

/// Deterministic dataset query points.
pub fn queries(n: usize) -> Vec<Vector> {
    dq(n).queries
}
