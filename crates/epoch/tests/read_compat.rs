//! Read-compat regression suite: chunk files written by the *pre-epoch*
//! writer — raw format v2 and quantized format v3 — must open through the
//! epoch-capable reader with no manifest on disk, search bit-for-bit
//! identically to the plain [`Snapshot`] path, and stay byte-identical on
//! disk throughout. Mutations after adoption land in the manifest only:
//! the original generation-0 file pair never changes.

use eff2_core::chunkers::{ChunkFormer, SrTreeChunker};
use eff2_core::search::{SearchParams, SearchResult, StopRule};
use eff2_core::Snapshot;
use eff2_descriptor::quant::{Codec, Sq8Codec};
use eff2_descriptor::{Descriptor, DescriptorSet, Vector};
use eff2_epoch::MutableIndex;
use eff2_storage::epoch::epoch_path;
use eff2_storage::{ChunkStore, DiskModel};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};

static DIR_SEQ: AtomicUsize = AtomicUsize::new(0);

fn tmp_dir(tag: &str) -> PathBuf {
    let unique = DIR_SEQ.fetch_add(1, Ordering::Relaxed);
    let dir =
        std::env::temp_dir().join(format!("eff2_compat_{tag}_{}_{unique}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir");
    dir
}

fn sample_set(n: usize) -> DescriptorSet {
    (0..n)
        .map(|i| {
            let blob = (i % 7) as f32 * 12.0;
            let mut v = Vector::splat(blob);
            v[0] += ((i * 13) % 29) as f32 * 0.4;
            v[5] -= ((i * 7) % 11) as f32 * 0.6;
            Descriptor::new(i as u32, v)
        })
        .collect()
}

/// Writes a pre-epoch store: the plain checked builder, no manifest.
fn write_pre_epoch_store(dir: &Path, codec: Option<&Codec>) -> (DescriptorSet, ChunkStore) {
    let set = sample_set(300);
    let formation = SrTreeChunker { leaf_size: 24 }.form(&set);
    let store = ChunkStore::build_checked(dir, "legacy", &set, &formation.chunks, 512, codec)
        .expect("build");
    (set, store)
}

fn queries(set: &DescriptorSet) -> Vec<Vector> {
    (0..8)
        .map(|i| set.vector_owned(i * 37 % set.len()))
        .collect()
}

fn params(stop: StopRule) -> SearchParams {
    SearchParams {
        k: 5,
        stop,
        prefetch_depth: 2,
        log_snapshots: false,
    }
}

fn assert_bit_identical(want: &SearchResult, got: &SearchResult, tag: &str) {
    assert_eq!(want.neighbors.len(), got.neighbors.len(), "{tag}: k");
    for (w, g) in want.neighbors.iter().zip(got.neighbors.iter()) {
        assert_eq!(w.id, g.id, "{tag}: neighbor id");
        assert_eq!(w.dist.to_bits(), g.dist.to_bits(), "{tag}: neighbor dist");
    }
    assert_eq!(want.log.chunks_read, got.log.chunks_read, "{tag}: chunks");
    assert_eq!(
        want.log.descriptors_scanned, got.log.descriptors_scanned,
        "{tag}: scanned"
    );
    assert_eq!(want.log.bytes_read, got.log.bytes_read, "{tag}: bytes");
    assert_eq!(
        want.log.total_virtual.as_secs().to_bits(),
        got.log.total_virtual.as_secs().to_bits(),
        "{tag}: virtual clock"
    );
}

fn file_bytes(dir: &Path) -> (Vec<u8>, Vec<u8>) {
    (
        std::fs::read(dir.join("legacy.chunks")).expect("chunks"),
        std::fs::read(dir.join("legacy.index")).expect("index"),
    )
}

/// The compat property both formats must satisfy.
fn check_compat(tag: &str, codec: Option<&Codec>) {
    let dir = tmp_dir(tag);
    let (set, store) = write_pre_epoch_store(&dir, codec);
    assert!(
        !epoch_path(&dir, "legacy").exists(),
        "a pre-epoch writer must not leave a manifest"
    );
    let before = file_bytes(&dir);
    let model = DiskModel::ata_2005();

    let plain = Snapshot::new(store, model);
    let index = MutableIndex::open(&dir, "legacy", model, 24).expect("epoch open");
    assert_eq!(index.generation(), 0, "{tag}: legacy store is generation 0");
    assert_eq!(index.epoch(), 0, "{tag}: no manifest means epoch 0");
    assert_eq!(index.delta_len(), 0, "{tag}: no manifest means empty delta");
    let pinned = index.pin();

    for stop in [
        StopRule::ToCompletion,
        StopRule::Chunks(3),
        StopRule::ToCompletionEps(0.5),
    ] {
        let p = params(stop);
        for (qi, q) in queries(&set).iter().enumerate() {
            let want = plain.search(q, &p).expect("plain search");
            let got = pinned.search(q, &p).expect("epoch search");
            assert_bit_identical(&want, &got, &format!("{tag} q{qi} {stop:?}"));
        }
    }

    let after = file_bytes(&dir);
    assert_eq!(before, after, "{tag}: opening/searching must not write");
}

#[test]
fn v2_raw_store_is_bit_identical_under_the_epoch_reader() {
    check_compat("v2", None);
}

#[test]
fn v3_quantized_store_is_bit_identical_under_the_epoch_reader() {
    let codec = Codec::Sq8(Sq8Codec::from_set(&sample_set(300)));
    check_compat("v3", Some(&codec));
}

#[test]
fn mutations_after_adoption_never_touch_the_legacy_files() {
    let dir = tmp_dir("adopt");
    let (set, _) = write_pre_epoch_store(&dir, None);
    let before = file_bytes(&dir);
    let model = DiskModel::ata_2005();

    let mut index = MutableIndex::open(&dir, "legacy", model, 24).expect("open");
    index.insert(9_000, Vector::splat(3.25)).expect("insert");
    index.delete(0).expect("delete");
    assert!(
        epoch_path(&dir, "legacy").exists(),
        "mutations must persist a manifest"
    );
    assert_eq!(
        before,
        file_bytes(&dir),
        "the generation-0 file pair is immutable"
    );

    // A pre-epoch reader that knows nothing of manifests still opens the
    // files and sees the original, unmutated index — bit for bit.
    let legacy = ChunkStore::open(&dir.join("legacy.chunks"), &dir.join("legacy.index"))
        .expect("legacy reopen");
    let plain = Snapshot::new(legacy, model);
    let p = params(StopRule::ToCompletion);
    let q = set.vector_owned(11);
    let fresh_dir = tmp_dir("adopt-ref");
    let (_, reference) = write_pre_epoch_store(&fresh_dir, None);
    let want = Snapshot::new(reference, model).search(&q, &p).expect("ref");
    let got = plain.search(&q, &p).expect("legacy");
    assert_bit_identical(&want, &got, "legacy after adoption");
}
