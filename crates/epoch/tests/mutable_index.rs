//! The epoch/MVCC contract of [`MutableIndex`]: pins are immutable,
//! mutations are durable, compaction preserves the live set, bounds chunk
//! sizes, and is deterministic.

use eff2_core::chunkers::{ChunkFormer, SrTreeChunker};
use eff2_core::{SearchParams, SearchResult};
use eff2_descriptor::{Descriptor, DescriptorSet, Vector};
use eff2_epoch::MutableIndex;
use eff2_storage::DiskModel;
use std::path::PathBuf;

const TARGET: usize = 25;

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("eff2_epoch_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("mkdir");
    dir
}

fn sample_set(n: usize) -> DescriptorSet {
    (0..n)
        .map(|i| {
            let mut v = Vector::splat((i % 9) as f32 * 3.0);
            v[1] += (i / 9) as f32 * 0.125;
            v[5] -= (i % 4) as f32;
            Descriptor::new(i as u32, v)
        })
        .collect()
}

fn build(tag: &str, n: usize) -> (PathBuf, MutableIndex) {
    let dir = tmp_dir(tag);
    let set = sample_set(n);
    let formation = SrTreeChunker { leaf_size: TARGET }.form(&set);
    let index = MutableIndex::create(
        &dir,
        "live",
        &set,
        &formation.chunks,
        512,
        None,
        DiskModel::ata_2005(),
        TARGET,
    )
    .expect("create");
    (dir, index)
}

fn assert_bit_identical(a: &SearchResult, b: &SearchResult) {
    assert_eq!(a.neighbors.len(), b.neighbors.len());
    for (x, y) in a.neighbors.iter().zip(b.neighbors.iter()) {
        assert_eq!(x.id, y.id);
        assert_eq!(x.dist.to_bits(), y.dist.to_bits());
    }
    assert_eq!(
        a.log.total_virtual.as_secs().to_bits(),
        b.log.total_virtual.as_secs().to_bits()
    );
}

#[test]
fn mutations_visible_through_pin_and_durable_across_reopen() {
    let (dir, mut index) = build("durable", 300);
    let q = Vector::splat(1.5);
    index.insert(7_000, q).expect("insert");
    index.delete(3).expect("delete");
    assert_eq!(index.epoch(), 2);

    let params = SearchParams::exact(4);
    let live = index.pin().search(&q, &params).expect("live");
    assert_eq!(live.neighbors[0].id, 7_000);
    assert!(live.neighbors.iter().all(|n| n.id != 3));

    drop(index);
    let reopened = MutableIndex::open(&dir, "live", DiskModel::ata_2005(), TARGET).expect("reopen");
    assert_eq!(reopened.epoch(), 2);
    assert_eq!(reopened.generation(), 0);
    let replay = reopened.pin().search(&q, &params).expect("replay");
    assert_bit_identical(&live, &replay);
}

#[test]
fn pins_are_immune_to_later_mutations_and_compaction() {
    let (_dir, mut index) = build("immune", 300);
    let q = Vector::splat(4.0);
    let params = SearchParams::exact(5);
    index.insert(8_000, Vector::splat(4.25)).expect("insert");

    let pinned = index.pin();
    let before = pinned.search(&q, &params).expect("before");

    // Everything after the pin: more writes, a delete of the pinned
    // epoch's winner, and a full compaction (generation swap).
    index.delete(before.neighbors[0].id).expect("delete");
    for i in 0..40 {
        index.insert(9_000 + i, Vector::splat(4.0)).expect("insert");
    }
    let stats = index.compact().expect("compact");
    assert_eq!(index.generation(), 1);
    assert_eq!(stats.ops_folded, 42);
    assert_eq!(index.delta_len(), 0);

    let after = pinned.search(&q, &params).expect("after");
    assert_bit_identical(&before, &after);
}

#[test]
fn compaction_preserves_the_live_set_and_epoch_counter() {
    let (_dir, mut index) = build("fold", 300);
    let q = Vector::splat(2.0);
    let params = SearchParams::exact(6);
    for i in 0..30 {
        index
            .insert(5_000 + i, Vector::splat(2.0 + i as f32 * 0.01))
            .expect("insert");
    }
    index.delete(0).expect("delete");
    index.delete(9).expect("delete");
    let epoch_before = index.epoch();
    let pre = index.pin().search(&q, &params).expect("pre");

    index.compact().expect("compact");
    assert_eq!(
        index.epoch(),
        epoch_before,
        "compaction folds, never mutates"
    );
    let post = index.pin().search(&q, &params).expect("post");

    // Same live set, same scalar distances (the fused kernel is
    // bit-identical to the explicit loop); virtual time may differ — the
    // layout changed.
    assert_eq!(
        pre.neighbors.iter().map(|n| n.id).collect::<Vec<_>>(),
        post.neighbors.iter().map(|n| n.id).collect::<Vec<_>>()
    );
    for (x, y) in pre.neighbors.iter().zip(post.neighbors.iter()) {
        assert_eq!(x.dist.to_bits(), y.dist.to_bits());
    }
}

#[test]
fn compactor_bounds_chunks_under_skewed_inserts() {
    let (_dir, mut index) = build("skew", 300);
    // Hammer one region: every insert lands nearest the same centroid.
    for i in 0..(6 * TARGET as u32) {
        let mut v = Vector::splat(0.0);
        v[1] += i as f32 * 0.001;
        index.insert(10_000 + i, v).expect("insert");
    }
    let stats = index.compact().expect("compact");
    assert!(
        stats.max_chunk_before > 2 * TARGET,
        "the skewed chunk must have outgrown the split threshold \
         (got {})",
        stats.max_chunk_before
    );
    assert!(stats.splits >= 1);
    assert!(
        stats.max_chunk_after <= 2 * TARGET,
        "compactor must keep every chunk within 2x target: {} > {}",
        stats.max_chunk_after,
        2 * TARGET
    );
    // The rebalanced generation still serves the full live set: the
    // zero-distance inserts are in the result (base id 0 ties them).
    let q = Vector::splat(0.0);
    let got = index
        .pin()
        .search(&q, &SearchParams::exact(3))
        .expect("search");
    assert_eq!(got.neighbors[0].dist.to_bits(), 0.0f32.to_bits());
    assert!(
        got.neighbors.iter().any(|n| n.id >= 10_000),
        "the skewed inserts must be served from the new generation"
    );
}

#[test]
fn compactor_merges_starved_chunks() {
    let (_dir, mut index) = build("merge", 300);
    // Starve one chunk: delete all but two of the rows actually stored in
    // chunk 0 (SR-tree membership is by proximity, not id range).
    let mut payload = eff2_storage::chunkfile::ChunkPayload::default();
    index
        .base()
        .reader()
        .expect("reader")
        .read_chunk(0, &mut payload)
        .expect("read");
    let victims: Vec<u32> = payload.ids.iter().skip(2).copied().collect();
    assert!(victims.len() + 2 >= TARGET / 2, "chunk 0 is non-trivial");
    for id in victims {
        index.delete(id).expect("delete");
    }
    let stats = index.compact().expect("compact");
    assert!(stats.merges >= 1, "a starved chunk must merge away");
    assert!(stats.chunks_after < stats.chunks_before);
}

#[test]
fn compaction_is_deterministic() {
    let mutate = |tag: &str| {
        let (dir, mut index) = build(tag, 300);
        for i in 0..50 {
            index
                .insert(6_000 + i, Vector::splat((i % 5) as f32))
                .expect("insert");
        }
        for id in [2, 4, 8, 16] {
            index.delete(id).expect("delete");
        }
        index.compact().expect("compact");
        dir
    };
    let a = mutate("det_a");
    let b = mutate("det_b");
    for file in ["live.g1.chunks", "live.g1.index"] {
        let x = std::fs::read(a.join(file)).expect("read a");
        let y = std::fs::read(b.join(file)).expect("read b");
        assert_eq!(x, y, "{file} must be byte-identical across reruns");
    }
}

#[test]
fn writes_during_compaction_survive_as_the_delta_tail() {
    let (_dir, mut index) = build("tail", 300);
    index.insert(7_500, Vector::splat(6.0)).expect("insert");
    let plan = index.begin_compaction().expect("begin");
    // A write that lands while the fold is "running".
    index.insert(7_501, Vector::splat(6.5)).expect("insert");
    let epoch_before = index.epoch();
    index.install_compaction(plan).expect("install");
    assert_eq!(index.epoch(), epoch_before);
    assert_eq!(index.delta_len(), 1, "the in-flight write stays pending");
    let got = index
        .pin()
        .search(&Vector::splat(6.5), &SearchParams::exact(2))
        .expect("search");
    assert_eq!(got.neighbors[0].id, 7_501);
}
