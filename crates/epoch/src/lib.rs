// lint:allow-file(panic.index): compaction bookkeeping (groups, centroids, starvation flags) is sized one-entry-per-base-chunk at fold time and indexed by destinations computed over those same tables
#![warn(missing_docs)]

//! # eff2-epoch
//!
//! Live mutability over the write-once chunk-index files: a
//! [`MutableIndex`] accepts inserts and deletes while searches keep
//! running, by layering an append-only delta op log (persisted in the
//! epoch manifest, see [`eff2_storage::epoch`]) over an immutable base
//! generation of chunk/index files.
//!
//! The MVCC contract:
//!
//! * **Writers never block readers.** Mutations append to the in-memory
//!   delta chunk and the manifest; the base files are never touched.
//! * **Readers pin epochs.** [`MutableIndex::pin`] folds the current
//!   delta prefix into an [`EpochSnapshot`] — an `Arc`-backed view that
//!   stays bit-for-bit stable no matter what writers append or the
//!   compactor folds afterwards. Every in-flight search sees exactly one
//!   epoch.
//! * **Compaction is a new generation, not an overwrite.** The
//!   [compactor](MutableIndex::begin_compaction) folds the pinned delta
//!   into the base rows, rebalances (splits chunks over 2× the target,
//!   merges starved ones) and writes a *fresh* `name.g<N>` file pair via
//!   the same checked builder as every other writer. Old generation files
//!   are retained, so pins taken before the swap keep reading them.
//!
//! All tie-breaks in the compactor (nearest-centroid assignment, merge
//! destinations, split dimension and row order) are total orders over
//! `(value, id)` — two compactions of the same logical state produce
//! byte-identical files.

use eff2_core::{EpochSnapshot, Snapshot};
use eff2_descriptor::quant::Codec;
use eff2_descriptor::{Descriptor, DescriptorSet, Vector, DIM};
use eff2_storage::chunkfile::ChunkPayload;
use eff2_storage::diskmodel::{DiskModel, VirtualDuration};
use eff2_storage::epoch::{epoch_path, DeltaChunk, DeltaOp, EpochManifest};
use eff2_storage::{ChunkDef, ChunkStore, Error, Result};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Base file name of compaction generation `g`: generation zero keeps the
/// plain index name (read-compat with stores created before the epoch
/// layer), later generations append `.g<N>`.
pub fn generation_name(name: &str, generation: u64) -> String {
    if generation == 0 {
        name.to_string()
    } else {
        format!("{name}.g{generation}")
    }
}

/// What one compaction did, plus the modelled cost of doing it — the
/// serving layer charges these on the fleet's pipeline clock while the
/// scheduler keeps feeding sessions.
#[derive(Clone, Debug)]
pub struct CompactionStats {
    /// Chunks in the generation that was folded.
    pub chunks_before: usize,
    /// Chunks in the freshly written generation.
    pub chunks_after: usize,
    /// Largest chunk (descriptors) before folding.
    pub max_chunk_before: usize,
    /// Largest chunk (descriptors) after rebalancing.
    pub max_chunk_after: usize,
    /// Oversized chunks that were split.
    pub splits: usize,
    /// Starved chunks that were merged away.
    pub merges: usize,
    /// Delta ops folded into the new generation.
    pub ops_folded: usize,
    /// Bytes read from the old generation.
    pub bytes_read: u64,
    /// Bytes written for the new generation (chunk + index file).
    pub bytes_written: u64,
    /// Descriptors carried through the fold.
    pub descriptors: u64,
}

impl CompactionStats {
    /// Modelled I/O time of the fold: the old generation streamed in plus
    /// the new one streamed out.
    pub fn io_cost(&self, model: &DiskModel) -> VirtualDuration {
        model.io_time(self.bytes_read + self.bytes_written)
    }

    /// Modelled CPU time of the fold: every carried descriptor touched
    /// once.
    pub fn cpu_cost(&self, model: &DiskModel) -> VirtualDuration {
        model.scan_time(self.descriptors as usize)
    }
}

/// A fully written but not yet installed compaction: the next
/// generation's files are on disk and opened, the delta prefix they fold
/// is recorded. [`MutableIndex::install_compaction`] swaps it in;
/// mutations appended in between survive as the delta tail.
#[derive(Debug)]
pub struct CompactionPlan {
    generation: u64,
    ops_folded: usize,
    store: ChunkStore,
    stats: CompactionStats,
}

impl CompactionPlan {
    /// The generation this plan will install.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// What the fold did and what it cost.
    pub fn stats(&self) -> &CompactionStats {
        &self.stats
    }
}

/// A chunk index that accepts inserts and deletes while serving
/// epoch-pinned searches. See the [module docs](self) for the contract.
#[derive(Debug)]
pub struct MutableIndex {
    dir: PathBuf,
    name: String,
    model: DiskModel,
    page_size: u32,
    /// Rebalancing target (descriptors per chunk): the compactor splits
    /// chunks over `2 * target` and merges chunks under `target / 4`.
    target_chunk_size: usize,
    base: ChunkStore,
    generation: u64,
    folded_ops: u64,
    delta: DeltaChunk,
}

impl MutableIndex {
    /// Creates generation zero from `set`/`chunks` (the same inputs as
    /// [`ChunkStore::build_checked`]) and an empty manifest.
    #[allow(clippy::too_many_arguments)]
    pub fn create(
        dir: &Path,
        name: &str,
        set: &DescriptorSet,
        chunks: &[ChunkDef],
        page_size: u32,
        codec: Option<&Codec>,
        model: DiskModel,
        target_chunk_size: usize,
    ) -> Result<MutableIndex> {
        let base = ChunkStore::build_checked(dir, name, set, chunks, page_size, codec)?;
        let index = MutableIndex {
            dir: dir.to_path_buf(),
            name: name.to_string(),
            model,
            page_size,
            target_chunk_size: target_chunk_size.max(1),
            base,
            generation: 0,
            folded_ops: 0,
            delta: DeltaChunk::new(),
        };
        index.save_manifest()?;
        Ok(index)
    }

    /// Opens an existing index under `dir/name`, epoch-capable. A store
    /// written before the epoch layer existed (no manifest file) opens at
    /// generation zero with an empty delta and serves bit-identically to
    /// the plain reader — the read-compat contract.
    pub fn open(
        dir: &Path,
        name: &str,
        model: DiskModel,
        target_chunk_size: usize,
    ) -> Result<MutableIndex> {
        let manifest = EpochManifest::load_or_empty(dir, name)?;
        let base_name = generation_name(name, manifest.generation);
        let base = ChunkStore::open(
            &dir.join(format!("{base_name}.chunks")),
            &dir.join(format!("{base_name}.index")),
        )?;
        Ok(MutableIndex {
            dir: dir.to_path_buf(),
            name: name.to_string(),
            model,
            page_size: base.page_size(),
            target_chunk_size: target_chunk_size.max(1),
            base,
            generation: manifest.generation,
            folded_ops: manifest.folded_ops,
            delta: DeltaChunk::from_ops(manifest.ops),
        })
    }

    /// The current base generation's store.
    pub fn base(&self) -> &ChunkStore {
        &self.base
    }

    /// The cost model searches and compactions are charged under.
    pub fn model(&self) -> &DiskModel {
        &self.model
    }

    /// Current compaction generation.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The epoch counter: total mutations ever applied (folded into past
    /// generations plus still pending in the delta). Monotone across
    /// mutations and invariant under compaction.
    pub fn epoch(&self) -> u64 {
        self.folded_ops + self.delta.len() as u64
    }

    /// Ops pending in the delta chunk (not yet folded).
    pub fn delta_len(&self) -> usize {
        self.delta.len()
    }

    /// The rebalancing target (descriptors per chunk).
    pub fn target_chunk_size(&self) -> usize {
        self.target_chunk_size
    }

    /// Appends an insert (or, for an id already in the base, an update —
    /// the delta row supersedes the base copy) and persists the manifest.
    pub fn insert(&mut self, id: u32, vector: Vector) -> Result<()> {
        self.delta.push(DeltaOp::Insert { id, vector });
        self.save_manifest()
    }

    /// Appends a delete and persists the manifest. Deleting an id that
    /// was never inserted is a no-op at read time (the tombstone matches
    /// nothing).
    pub fn delete(&mut self, id: u32) -> Result<()> {
        self.delta.push(DeltaOp::Delete { id });
        self.save_manifest()
    }

    /// Pins the current epoch: folds the delta prefix as of now into an
    /// immutable [`EpochSnapshot`]. Later mutations, compactions and
    /// generation swaps never change what this snapshot serves.
    pub fn pin(&self) -> EpochSnapshot {
        let pin = self.delta.pin();
        EpochSnapshot::new(
            Snapshot::new(self.base.clone(), self.model),
            self.generation,
            self.folded_ops + pin.len() as u64,
            Arc::new(pin.fold()),
        )
    }

    /// Folds the current delta prefix and the base generation into a
    /// freshly written, rebalanced next generation — without installing
    /// it. The returned plan is installed with
    /// [`install_compaction`](Self::install_compaction); mutations
    /// appended in between survive as the delta tail. Old generation
    /// files are left on disk so outstanding pins stay valid.
    ///
    /// Rebalancing, in order, all tie-breaks total:
    ///
    /// 1. tombstoned base rows are dropped; delta inserts join the chunk
    ///    with the nearest centroid (ties to the lower chunk id);
    /// 2. starved chunks (fewer than `target / 4` rows) merge into the
    ///    nearest non-starved chunk;
    /// 3. chunks over `2 * target` rows are split along their
    ///    widest-spread dimension into runs of at most `target`.
    pub fn begin_compaction(&self) -> Result<CompactionPlan> {
        let pin = self.delta.pin();
        let folded = pin.fold();
        let target = self.target_chunk_size;

        // Stream the old generation through the raw reader, dropping
        // tombstoned rows.
        let raw = self.base.raw_view();
        let mut reader = raw.reader()?;
        let mut payload = ChunkPayload::default();
        let mut bytes_read = 0u64;
        let metas = self.base.metas();
        let mut groups: Vec<Vec<(u32, Vector)>> = Vec::with_capacity(metas.len());
        let mut max_before = 0usize;
        for chunk_id in 0..self.base.n_chunks() {
            bytes_read += reader.read_chunk(chunk_id, &mut payload)?;
            max_before = max_before.max(payload.len());
            let rows = eff2_descriptor::as_rows(&payload.packed);
            let mut members = Vec::with_capacity(payload.len());
            for (&id, row) in payload.ids.iter().zip(rows.iter()) {
                if !folded.tombstones.contains(&id) {
                    members.push((id, Vector::from(*row)));
                }
            }
            groups.push(members);
        }

        // Delta inserts join the nearest original centroid.
        if groups.is_empty() && !folded.inserts.is_empty() {
            groups.push(Vec::new());
        }
        for (id, vector) in &folded.inserts {
            let dest = nearest_centroid(vector, metas.iter().map(|m| &m.centroid)).unwrap_or(0);
            groups[dest].push((*id, *vector));
        }
        max_before = max_before.max(groups.iter().map(Vec::len).max().unwrap_or(0));

        let merges = merge_starved(
            &mut groups,
            metas.iter().map(|m| m.centroid).collect(),
            target,
        );
        let splits = split_oversized(&mut groups, target);
        groups.retain(|g| !g.is_empty());

        // Write the next generation through the one checked builder, with
        // the base generation's codec so a quantized store stays quantized.
        let mut set = DescriptorSet::with_capacity(groups.iter().map(Vec::len).sum::<usize>());
        let mut defs = Vec::with_capacity(groups.len());
        let mut next = 0u32;
        for members in &groups {
            let positions: Vec<u32> = (next..next + members.len() as u32).collect();
            next += members.len() as u32;
            let centroid = Vector::mean(members.iter().map(|(_, v)| v));
            let radius = members
                .iter()
                .map(|(_, v)| centroid.dist(v))
                .fold(0.0f32, f32::max);
            for (id, vector) in members {
                set.push(Descriptor::new(*id, *vector));
            }
            defs.push(ChunkDef {
                positions,
                centroid,
                radius,
            });
        }
        if defs.is_empty() {
            // A generation must stay openable even if every row died.
            defs.push(ChunkDef {
                positions: Vec::new(),
                centroid: Vector::ZERO,
                radius: 0.0,
            });
        }

        let generation = self.generation + 1;
        let gen_name = generation_name(&self.name, generation);
        let store = ChunkStore::build_checked(
            &self.dir,
            &gen_name,
            &set,
            &defs,
            self.page_size,
            self.base.codec(),
        )?;
        let bytes_written = std::fs::metadata(store.chunk_path())?.len() + store.index_bytes();
        let max_after = store
            .metas()
            .iter()
            .map(|m| m.count as usize)
            .max()
            .unwrap_or(0);
        let stats = CompactionStats {
            chunks_before: self.base.n_chunks(),
            chunks_after: store.n_chunks(),
            max_chunk_before: max_before,
            max_chunk_after: max_after,
            splits,
            merges,
            ops_folded: pin.len(),
            bytes_read,
            bytes_written,
            descriptors: set.len() as u64,
        };
        Ok(CompactionPlan {
            generation,
            ops_folded: pin.len(),
            store,
            stats,
        })
    }

    /// Swaps a finished plan in: the plan's generation becomes the base,
    /// the folded delta prefix is dropped (ops appended since
    /// [`begin_compaction`](Self::begin_compaction) remain pending) and
    /// the manifest is persisted. Pins taken against the old generation
    /// keep serving it — its files are not deleted.
    pub fn install_compaction(&mut self, plan: CompactionPlan) -> Result<CompactionStats> {
        if plan.generation != self.generation + 1 {
            return Err(Error::Inconsistent(format!(
                "compaction plan targets generation {} but the index is at {}",
                plan.generation, self.generation
            )));
        }
        let tail: Vec<DeltaOp> = self.delta.ops()[plan.ops_folded..].to_vec();
        self.base = plan.store;
        self.generation = plan.generation;
        self.folded_ops += plan.ops_folded as u64;
        self.delta = DeltaChunk::from_ops(tail);
        self.save_manifest()?;
        Ok(plan.stats)
    }

    /// [`begin_compaction`](Self::begin_compaction) +
    /// [`install_compaction`](Self::install_compaction) in one step — the
    /// synchronous form used outside a serving loop.
    pub fn compact(&mut self) -> Result<CompactionStats> {
        let plan = self.begin_compaction()?;
        self.install_compaction(plan)
    }

    fn save_manifest(&self) -> Result<()> {
        let manifest = EpochManifest {
            generation: self.generation,
            folded_ops: self.folded_ops,
            ops: self.delta.ops().to_vec(),
        };
        manifest.save(&epoch_path(&self.dir, &self.name))
    }
}

/// Index of the nearest centroid (ties to the lower index); `None` when
/// there are no centroids.
fn nearest_centroid<'a, I>(v: &Vector, centroids: I) -> Option<usize>
where
    I: Iterator<Item = &'a Vector>,
{
    centroids
        .enumerate()
        .map(|(i, c)| (i, c.dist(v)))
        .min_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)))
        .map(|(i, _)| i)
}

/// Merges every starved group (fewer than `target / 4` members) into the
/// nearest non-starved group, measured between the groups' *original*
/// centroids so destinations don't depend on processing order. When every
/// group is starved they all collapse into the lowest-indexed one.
/// Returns the number of groups merged away.
fn merge_starved(
    groups: &mut [Vec<(u32, Vector)>],
    centroids: Vec<Vector>,
    target: usize,
) -> usize {
    let threshold = (target / 4).max(1);
    let starved: Vec<bool> = groups
        .iter()
        .map(|g| !g.is_empty() && g.len() < threshold)
        .collect();
    let mut moves: Vec<(usize, usize)> = Vec::new();
    for (i, is_starved) in starved.iter().enumerate() {
        if !is_starved {
            continue;
        }
        let dest = centroids
            .iter()
            .enumerate()
            .filter(|&(j, _)| j != i && !starved[j] && !groups[j].is_empty())
            .map(|(j, c)| (j, c.dist(&centroids[i])))
            .min_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)))
            .map(|(j, _)| j)
            .or_else(|| starved.iter().position(|&s| s).filter(|&first| first != i));
        if let Some(dest) = dest {
            moves.push((i, dest));
        }
    }
    let merges = moves.len();
    for (from, to) in moves {
        let members = std::mem::take(&mut groups[from]);
        groups[to].extend(members);
    }
    merges
}

/// Splits every group over `2 * target` members along its widest-spread
/// dimension (ties to the lower dimension) into runs of at most `target`,
/// rows ordered by `(component, id)`. Returns the number of groups split.
fn split_oversized(groups: &mut Vec<Vec<(u32, Vector)>>, target: usize) -> usize {
    let mut out: Vec<Vec<(u32, Vector)>> = Vec::with_capacity(groups.len());
    let mut splits = 0usize;
    for mut members in groups.drain(..) {
        if members.len() <= 2 * target {
            out.push(members);
            continue;
        }
        splits += 1;
        let mut spread_dim = 0usize;
        let mut best_spread = f32::NEG_INFINITY;
        for dim in 0..DIM {
            let mut lo = f32::INFINITY;
            let mut hi = f32::NEG_INFINITY;
            for (_, v) in &members {
                lo = lo.min(v[dim]);
                hi = hi.max(v[dim]);
            }
            if hi - lo > best_spread {
                best_spread = hi - lo;
                spread_dim = dim;
            }
        }
        members.sort_by(|a, b| {
            a.1[spread_dim]
                .total_cmp(&b.1[spread_dim])
                .then(a.0.cmp(&b.0))
        });
        for run in members.chunks(target) {
            out.push(run.to_vec());
        }
    }
    *groups = out;
    splits
}
