//! Image-query workloads: descriptor sets voting for a ground-truth image.
//!
//! A real image query is not one descriptor but a *set* of local
//! descriptors extracted from one image. This module builds that workload
//! on top of the collection:
//!
//! 1. [`image_of_map`] partitions the collection's descriptors into
//!    images — a Zipf-skewed assignment (via
//!    [`zipf_assignments`](crate::skew::zipf_assignments)), so some
//!    images own many descriptors and some few, like real photo
//!    collections;
//! 2. [`image_queries`] samples query images and, for each, draws a set
//!    of that image's own descriptors as the query set — the image-level
//!    analogue of the DQ workload, where every query *has* a right
//!    answer (its source image should win the vote).
//!
//! Both are pure functions of their seeds: the same call yields the same
//! workload on every machine.

use crate::skew::zipf_assignments;
use eff2_descriptor::{DescriptorSet, Vector};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One image query: a set of descriptors sampled from a single source
/// image, labelled with that image so precision has a ground truth.
#[derive(Clone, Debug, PartialEq)]
pub struct ImageQuery {
    /// The source image every descriptor was drawn from — the label the
    /// vote aggregation is supposed to rank first.
    pub image: u32,
    /// The query descriptors.
    pub descriptors: Vec<Vector>,
    /// Collection position each descriptor was sampled from (parallel to
    /// `descriptors`).
    pub source_positions: Vec<u32>,
}

impl ImageQuery {
    /// Number of descriptors in the query set.
    pub fn len(&self) -> usize {
        self.descriptors.len()
    }

    /// Whether the query carries no descriptors.
    pub fn is_empty(&self) -> bool {
        self.descriptors.is_empty()
    }
}

/// Assigns every descriptor of an `n_descriptors`-sized collection to one
/// of `n_images` images, image popularity following a Zipf law with
/// `exponent` (0 = uniform sizes). Deterministic per seed; the returned
/// vector is indexed by descriptor id.
pub fn image_of_map(n_descriptors: usize, n_images: usize, exponent: f64, seed: u64) -> Vec<u32> {
    zipf_assignments(n_descriptors, n_images, exponent, seed)
}

/// Builds `n_queries` image queries over `set`: each query picks a source
/// image (by drawing a random collection descriptor and taking its image
/// under `image_of`) and samples `per_query` of that image's member
/// descriptors with replacement. Deterministic per seed.
///
/// Images with no members can never be drawn (selection goes through a
/// member descriptor), so every query holds at least one valid
/// descriptor as long as `per_query > 0`.
///
/// # Panics
///
/// Panics if `set` is empty or `image_of` is shorter than `set`.
pub fn image_queries(
    set: &DescriptorSet,
    image_of: &[u32],
    n_queries: usize,
    per_query: usize,
    seed: u64,
) -> Vec<ImageQuery> {
    assert!(
        !set.is_empty(),
        "cannot sample image queries from an empty collection"
    );
    assert!(
        image_of.len() >= set.len(),
        "image_of covers {} descriptors, collection holds {}",
        image_of.len(),
        set.len()
    );
    // Members per image, in ascending descriptor order.
    let n_images = image_of.iter().take(set.len()).map(|&i| i + 1).max();
    let mut members: Vec<Vec<u32>> = vec![Vec::new(); n_images.unwrap_or(0) as usize];
    for (pos, &image) in image_of.iter().take(set.len()).enumerate() {
        // lint:allow(panic.index): members was sized to max(image) + 1 above
        members[image as usize].push(pos as u32);
    }
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n_queries)
        .map(|_| {
            let anchor = rng.gen_range(0..set.len());
            // lint:allow(panic.index): anchor < set.len() <= image_of.len(), asserted above
            let image = image_of[anchor];
            // lint:allow(panic.index): members was sized to max(image) + 1 above
            let pool = &members[image as usize];
            let source_positions: Vec<u32> = (0..per_query)
                // lint:allow(panic.index): pool holds at least the anchor descriptor
                .map(|_| pool[rng.gen_range(0..pool.len())])
                .collect();
            let descriptors = source_positions
                .iter()
                .map(|&pos| set.vector_owned(pos as usize))
                .collect();
            ImageQuery {
                image,
                descriptors,
                source_positions,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use eff2_descriptor::Descriptor;

    fn line_set(n: usize) -> DescriptorSet {
        (0..n)
            .map(|i| Descriptor::new(i as u32, Vector::splat(i as f32)))
            .collect()
    }

    #[test]
    fn queries_sample_descriptors_of_their_own_image() {
        let set = line_set(200);
        let image_of = image_of_map(set.len(), 12, 0.8, 5);
        let queries = image_queries(&set, &image_of, 30, 8, 9);
        assert_eq!(queries.len(), 30);
        for q in &queries {
            assert_eq!(q.len(), 8);
            for (&pos, vector) in q.source_positions.iter().zip(q.descriptors.iter()) {
                assert_eq!(
                    image_of[pos as usize], q.image,
                    "descriptor {pos} belongs to another image"
                );
                assert_eq!(*vector, set.vector_owned(pos as usize));
            }
        }
    }

    #[test]
    fn image_queries_are_deterministic_per_seed() {
        let set = line_set(150);
        let image_of = image_of_map(set.len(), 10, 1.0, 2);
        let a = image_queries(&set, &image_of, 20, 6, 3);
        let b = image_queries(&set, &image_of, 20, 6, 3);
        assert_eq!(a, b);
        let c = image_queries(&set, &image_of, 20, 6, 4);
        assert_ne!(a, c, "a different seed draws different queries");
    }

    #[test]
    fn skewed_map_makes_popular_images_likelier_anchors() {
        let set = line_set(2_000);
        let image_of = image_of_map(set.len(), 16, 1.2, 7);
        let queries = image_queries(&set, &image_of, 200, 4, 11);
        // Anchors are drawn via member descriptors, so the hot image
        // (which owns the most descriptors) should anchor the most
        // queries.
        let mut counts = vec![0usize; 16];
        for q in &queries {
            counts[q.image as usize] += 1;
        }
        let hot = counts[0];
        let tail = counts[12..].iter().sum::<usize>() / 4;
        assert!(
            hot > tail,
            "hot image anchors {hot} queries, mean tail image {tail}"
        );
    }

    #[test]
    fn zero_queries_or_zero_descriptors_are_fine() {
        let set = line_set(50);
        let image_of = image_of_map(set.len(), 4, 0.5, 1);
        assert!(image_queries(&set, &image_of, 0, 8, 0).is_empty());
        let empties = image_queries(&set, &image_of, 3, 0, 0);
        assert_eq!(empties.len(), 3);
        for q in &empties {
            assert!(q.is_empty(), "per_query = 0 yields empty descriptor sets");
        }
    }

    #[test]
    fn single_image_map_sends_every_query_to_it() {
        let set = line_set(40);
        let image_of = image_of_map(set.len(), 1, 2.0, 0);
        for q in image_queries(&set, &image_of, 10, 3, 5) {
            assert_eq!(q.image, 0);
        }
    }

    #[test]
    #[should_panic(expected = "empty collection")]
    fn empty_collection_is_rejected() {
        image_queries(&DescriptorSet::new(), &[], 1, 1, 0);
    }
}
