//! Seeded Zipf-skewed bucket assignments.
//!
//! Serving experiments want *skewed* query popularity: a few hot queries
//! asked over and over, a long tail asked once. [`zipf_assignments`] maps
//! each of `n_items` draws to one of `n_buckets` buckets where bucket `j`
//! is drawn with probability proportional to `1 / (j + 1)^exponent` —
//! the classic Zipf law. With `exponent = 0` every bucket is equally
//! likely; larger exponents concentrate mass on the low-numbered buckets.
//!
//! Like the arrival traces, the function is pure in its seed: the same
//! call yields the same assignment vector on every machine.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Assign each of `n_items` draws to a bucket in `0..n_buckets`, bucket
/// popularity following a Zipf law with the given `exponent`.
/// Deterministic per seed. Returns an empty vector when `n_buckets` is 0.
///
/// # Panics
///
/// Panics if `exponent` is negative or not finite.
pub fn zipf_assignments(n_items: usize, n_buckets: usize, exponent: f64, seed: u64) -> Vec<u32> {
    assert!(
        exponent.is_finite() && exponent >= 0.0,
        "zipf exponent must be finite and non-negative, got {exponent}"
    );
    if n_buckets == 0 {
        return Vec::new();
    }
    // Cumulative weights of the (unnormalised) Zipf mass function.
    let mut cumulative = Vec::with_capacity(n_buckets);
    let mut total = 0.0f64;
    for j in 0..n_buckets {
        total += 1.0 / ((j + 1) as f64).powf(exponent);
        cumulative.push(total);
    }
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n_items)
        .map(|_| {
            let u: f64 = rng.gen::<f64>() * total;
            // First bucket whose cumulative weight covers the draw.
            cumulative.partition_point(|&c| c < u).min(n_buckets - 1) as u32
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assignments_are_deterministic_per_seed() {
        let a = zipf_assignments(500, 40, 1.0, 7);
        let b = zipf_assignments(500, 40, 1.0, 7);
        assert_eq!(a, b);
        let c = zipf_assignments(500, 40, 1.0, 8);
        assert_ne!(a, c, "a different seed draws a different assignment");
    }

    #[test]
    fn every_assignment_is_a_valid_bucket() {
        for &(buckets, exponent) in &[(1usize, 0.0f64), (3, 0.5), (64, 1.2)] {
            for bucket in zipf_assignments(300, buckets, exponent, 11) {
                assert!((bucket as usize) < buckets, "bucket {bucket} < {buckets}");
            }
        }
    }

    #[test]
    fn skew_concentrates_mass_on_low_buckets() {
        let assignments = zipf_assignments(4_000, 16, 1.2, 3);
        let mut counts = [0usize; 16];
        for b in assignments {
            counts[b as usize] += 1;
        }
        assert!(
            counts[0] > counts[8] && counts[0] > counts[15],
            "bucket 0 ({}) must dominate the tail ({}, {})",
            counts[0],
            counts[8],
            counts[15]
        );
        assert!(
            counts[0] > 4_000 / 16 * 2,
            "with exponent 1.2 the hottest bucket ({}) is far above uniform",
            counts[0]
        );
    }

    #[test]
    fn zero_exponent_is_roughly_uniform() {
        let assignments = zipf_assignments(8_000, 8, 0.0, 5);
        let mut counts = [0usize; 8];
        for b in assignments {
            counts[b as usize] += 1;
        }
        for (j, &c) in counts.iter().enumerate() {
            assert!(
                (c as f64 - 1_000.0).abs() < 250.0,
                "bucket {j} count {c} should be ≈1000"
            );
        }
    }

    #[test]
    fn degenerate_shapes_are_fine() {
        assert!(zipf_assignments(0, 4, 1.0, 0).is_empty());
        assert!(zipf_assignments(10, 0, 1.0, 0).is_empty());
        assert_eq!(zipf_assignments(5, 1, 2.0, 0), vec![0; 5]);
    }

    #[test]
    #[should_panic(expected = "zipf exponent")]
    fn negative_exponents_are_rejected() {
        zipf_assignments(5, 4, -1.0, 0);
    }

    #[test]
    fn bucket_counts_decay_monotonically_in_aggregate() {
        // The empirical distribution should follow the Zipf shape: the
        // first half of the buckets holds more mass than the second, and
        // each quarter at least as much as the next (aggregated to damp
        // sampling noise).
        let assignments = zipf_assignments(20_000, 32, 1.0, 21);
        let mut counts = [0usize; 32];
        for b in assignments {
            counts[b as usize] += 1;
        }
        let quarter = |q: usize| counts[q * 8..(q + 1) * 8].iter().sum::<usize>();
        let quarters = [quarter(0), quarter(1), quarter(2), quarter(3)];
        for w in quarters.windows(2) {
            assert!(
                w[0] >= w[1],
                "quarter mass must decay along the bucket order: {quarters:?}"
            );
        }
        assert!(
            quarters[0] > 2 * quarters[3],
            "head quarter must dominate the tail quarter: {quarters:?}"
        );
    }

    #[test]
    fn empirical_head_frequency_tracks_the_zipf_weight() {
        // Bucket 0's expected share under exponent 1 over 16 buckets is
        // 1 / H_16 ≈ 0.296; the empirical share should land near it.
        let n = 50_000usize;
        let assignments = zipf_assignments(n, 16, 1.0, 13);
        let head = assignments.iter().filter(|&&b| b == 0).count() as f64 / n as f64;
        let h16: f64 = (1..=16).map(|j| 1.0 / j as f64).sum();
        let expected = 1.0 / h16;
        assert!(
            (head - expected).abs() < 0.02,
            "head share {head:.3} should be within 0.02 of {expected:.3}"
        );
    }

    #[test]
    fn item_count_does_not_perturb_the_shared_prefix() {
        // Draws are sequential from one seeded stream: asking for more
        // items extends the vector without rewriting the prefix — what
        // lets experiments grow a workload while keeping cached truth.
        let short = zipf_assignments(100, 8, 0.9, 17);
        let long = zipf_assignments(400, 8, 0.9, 17);
        assert_eq!(short.as_slice(), &long[..100]);
    }
}
