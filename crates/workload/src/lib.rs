// lint:allow-file(panic.index): query tables are sized by the workload spec that indexes them
#![warn(missing_docs)]

//! # eff2-workload
//!
//! The two query workloads of §5.3:
//!
//! * **DQ** ("dataset queries") — descriptors selected at random from the
//!   collection itself, simulating queries that *have* a good match;
//! * **SQ** ("space queries") — points drawn uniformly from the
//!   per-dimension value ranges of the collection after discarding the top
//!   and bottom 5 % of each dimension, simulating queries with *no* match.
//!
//! The paper uses 1,000 queries of each kind, runs each to every chunk
//! index round-robin, and averages the metrics; [`Workload`] is the query
//! container those experiments iterate over.

pub mod arrivals;
pub mod image;
pub mod mutations;
pub mod skew;

pub use arrivals::{burst_arrivals, poisson_arrivals, ArrivalTrace};
pub use image::{image_of_map, image_queries, ImageQuery};
pub use mutations::{skewed_mutation_trace, MutationEvent, MutationOp, MutationTrace};
pub use skew::zipf_assignments;

use eff2_descriptor::{DescriptorSet, TrimmedRanges, Vector, DIM};
use eff2_json::Json;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::path::Path;

/// A named list of query descriptors.
#[derive(Clone, Debug, PartialEq)]
pub struct Workload {
    /// Workload name ("DQ", "SQ", …).
    pub name: String,
    /// The queries.
    pub queries: Vec<Vector>,
    /// For DQ workloads: the collection position each query was sampled
    /// from (parallel to `queries`); empty for synthetic workloads.
    pub source_positions: Vec<u32>,
}

impl Workload {
    /// Number of queries.
    pub fn len(&self) -> usize {
        self.queries.len()
    }

    /// Whether the workload has no queries.
    pub fn is_empty(&self) -> bool {
        self.queries.is_empty()
    }

    /// Serialises to JSON at `path`.
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        let json = Json::obj(vec![
            ("name", Json::Str(self.name.clone())),
            (
                "queries",
                Json::Arr(self.queries.iter().map(|q| Json::f32_array(&q.0)).collect()),
            ),
            ("source_positions", Json::u32_array(&self.source_positions)),
        ]);
        std::fs::write(path, json.to_string())
    }

    /// Loads a workload saved with [`Workload::save`].
    pub fn load(path: &Path) -> std::io::Result<Workload> {
        let json = Json::parse(&std::fs::read_to_string(path)?)?;
        let queries = json
            .field("queries")?
            .as_arr()?
            .iter()
            .map(|q| {
                let comps = q.to_f32_vec()?;
                let arr: [f32; DIM] =
                    comps
                        .try_into()
                        .map_err(|v: Vec<f32>| eff2_json::JsonError {
                            message: format!("query has {} components, expected {DIM}", v.len()),
                            offset: 0,
                        })?;
                Ok(Vector(arr))
            })
            .collect::<eff2_json::Result<Vec<Vector>>>()?;
        Ok(Workload {
            name: json.field("name")?.as_str()?.to_string(),
            queries,
            source_positions: json.field("source_positions")?.to_u32_vec()?,
        })
    }
}

/// Builds the DQ workload: `n_queries` descriptors sampled uniformly (with
/// replacement) from `set`.
///
/// # Panics
///
/// Panics if `set` is empty.
pub fn dq_workload(set: &DescriptorSet, n_queries: usize, seed: u64) -> Workload {
    assert!(
        !set.is_empty(),
        "cannot sample dataset queries from an empty collection"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let mut queries = Vec::with_capacity(n_queries);
    let mut source_positions = Vec::with_capacity(n_queries);
    for _ in 0..n_queries {
        let pos = rng.gen_range(0..set.len());
        queries.push(set.vector_owned(pos));
        source_positions.push(pos as u32);
    }
    Workload {
        name: "DQ".into(),
        queries,
        source_positions,
    }
}

/// Builds the SQ workload: `n_queries` points drawn uniformly from the
/// `trim`-trimmed per-dimension ranges of `set` (the paper trims 5 %).
///
/// # Panics
///
/// Panics if `set` is empty or `trim` is outside `[0, 0.5)`.
pub fn sq_workload(set: &DescriptorSet, n_queries: usize, trim: f32, seed: u64) -> Workload {
    let ranges = TrimmedRanges::compute(set, trim);
    sq_workload_from_ranges(&ranges, n_queries, seed)
}

/// Builds an SQ workload from precomputed ranges (lets several workloads
/// share one range analysis).
pub fn sq_workload_from_ranges(ranges: &TrimmedRanges, n_queries: usize, seed: u64) -> Workload {
    let mut rng = StdRng::seed_from_u64(seed);
    let queries = (0..n_queries)
        .map(|_| {
            let mut v = Vector::ZERO;
            for d in 0..DIM {
                v[d] = if ranges.width(d) > 0.0 {
                    rng.gen_range(ranges.low[d]..=ranges.high[d])
                } else {
                    ranges.low[d]
                };
            }
            v
        })
        .collect();
    Workload {
        name: "SQ".into(),
        queries,
        source_positions: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eff2_descriptor::Descriptor;

    fn line_set(n: usize) -> DescriptorSet {
        (0..n)
            .map(|i| Descriptor::new(i as u32, Vector::splat(i as f32)))
            .collect()
    }

    #[test]
    fn dq_queries_are_dataset_points() {
        let set = line_set(100);
        let w = dq_workload(&set, 50, 7);
        assert_eq!(w.len(), 50);
        assert_eq!(w.name, "DQ");
        for (q, &pos) in w.queries.iter().zip(w.source_positions.iter()) {
            assert_eq!(*q, set.vector_owned(pos as usize));
        }
    }

    #[test]
    fn dq_is_deterministic_per_seed() {
        let set = line_set(100);
        assert_eq!(dq_workload(&set, 20, 1), dq_workload(&set, 20, 1));
        assert_ne!(
            dq_workload(&set, 20, 1).queries,
            dq_workload(&set, 20, 2).queries
        );
    }

    #[test]
    fn sq_queries_stay_in_trimmed_ranges() {
        let set = line_set(100); // values 0..99, 5% trim keeps [5, 94]
        let w = sq_workload(&set, 200, 0.05, 3);
        assert_eq!(w.name, "SQ");
        assert!(w.source_positions.is_empty());
        for q in &w.queries {
            for d in 0..DIM {
                assert!(q[d] >= 5.0 && q[d] <= 94.0, "dim {d} = {}", q[d]);
            }
        }
    }

    #[test]
    fn sq_dimensions_vary_independently() {
        let set = line_set(100);
        let w = sq_workload(&set, 50, 0.05, 3);
        // Unlike the dataset (where all dims are equal), SQ points should
        // have differing components.
        let distinct = w
            .queries
            .iter()
            .filter(|q| (q[0] - q[1]).abs() > 1e-3)
            .count();
        assert!(distinct > 25, "only {distinct} queries vary across dims");
    }

    #[test]
    fn sq_handles_degenerate_dimension() {
        // A collection constant in every dimension.
        let set: DescriptorSet = (0..10)
            .map(|i| Descriptor::new(i, Vector::splat(4.0)))
            .collect();
        let w = sq_workload(&set, 5, 0.05, 0);
        for q in &w.queries {
            assert_eq!(*q, Vector::splat(4.0));
        }
    }

    #[test]
    fn save_load_roundtrip() {
        let set = line_set(50);
        let w = dq_workload(&set, 10, 9);
        let path = std::env::temp_dir().join("eff2_workload_test.json");
        w.save(&path).expect("save");
        let back = Workload::load(&path).expect("load");
        assert_eq!(back, w);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    #[should_panic(expected = "empty collection")]
    fn dq_rejects_empty_collection() {
        dq_workload(&DescriptorSet::new(), 5, 0);
    }

    #[test]
    fn zero_queries_is_fine() {
        let set = line_set(10);
        assert!(dq_workload(&set, 0, 0).is_empty());
        assert!(sq_workload(&set, 0, 0.05, 0).is_empty());
    }
}
