//! Seeded, deterministic query-arrival traces for the serving layer.
//!
//! The paper's experiments replay a fixed query set; the serving
//! scheduler additionally needs *when* each query arrives. Two standard
//! shapes cover the interesting regimes:
//!
//! * [`poisson_arrivals`] — independent arrivals at a constant average
//!   rate (exponential inter-arrival gaps), the classic open-loop load
//!   model;
//! * [`burst_arrivals`] — queries land in simultaneous groups separated by
//!   idle gaps, the adversarial case for chunk sharing: everyone wants the
//!   same hot chunks at the same instant.
//!
//! Both are pure functions of their seed: the same call yields the same
//! trace on every machine, keeping scheduler runs replayable.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A named, non-decreasing list of arrival offsets in virtual seconds.
#[derive(Clone, Debug, PartialEq)]
pub struct ArrivalTrace {
    /// Trace name ("poisson", "burst", …).
    pub name: String,
    /// Arrival times measured from the start of the run, non-decreasing.
    pub arrivals: Vec<f64>,
}

impl ArrivalTrace {
    /// Number of arrivals.
    pub fn len(&self) -> usize {
        self.arrivals.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.arrivals.is_empty()
    }

    /// Average offered load in queries per second (0 for traces shorter
    /// than two arrivals).
    pub fn offered_qps(&self) -> f64 {
        match (self.arrivals.first(), self.arrivals.last()) {
            (Some(first), Some(last)) if *last > *first && self.arrivals.len() > 1 => {
                (self.arrivals.len() - 1) as f64 / (last - first)
            }
            _ => 0.0,
        }
    }
}

/// `n` Poisson arrivals at an average of `rate_qps` queries per second:
/// inter-arrival gaps are exponentially distributed with mean
/// `1 / rate_qps`. Deterministic per seed.
///
/// # Panics
///
/// Panics if `rate_qps` is not finite and positive.
pub fn poisson_arrivals(n: usize, rate_qps: f64, seed: u64) -> ArrivalTrace {
    assert!(
        rate_qps.is_finite() && rate_qps > 0.0,
        "arrival rate must be finite and positive, got {rate_qps}"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let mut t = 0.0f64;
    let arrivals = (0..n)
        .map(|_| {
            // Inverse-CDF sampling; u is in [0, 1) so 1 - u is in (0, 1]
            // and the log is finite.
            let u: f64 = rng.gen();
            t += -(1.0 - u).ln() / rate_qps;
            t
        })
        .collect();
    ArrivalTrace {
        name: "poisson".into(),
        arrivals,
    }
}

/// `n` arrivals in bursts of `burst` simultaneous queries, bursts spaced
/// `gap_secs` apart (the last burst may be partial). `burst` is clamped to
/// a minimum of 1. Deterministic (and seed-free: there is no randomness to
/// seed).
///
/// # Panics
///
/// Panics if `gap_secs` is negative or not finite.
pub fn burst_arrivals(n: usize, burst: usize, gap_secs: f64) -> ArrivalTrace {
    assert!(
        gap_secs.is_finite() && gap_secs >= 0.0,
        "burst gap must be finite and non-negative, got {gap_secs}"
    );
    let burst = burst.max(1);
    let arrivals = (0..n).map(|i| (i / burst) as f64 * gap_secs).collect();
    ArrivalTrace {
        name: "burst".into(),
        arrivals,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisson_is_deterministic_per_seed() {
        let a = poisson_arrivals(200, 50.0, 9);
        let b = poisson_arrivals(200, 50.0, 9);
        assert_eq!(a, b);
        let c = poisson_arrivals(200, 50.0, 10);
        assert_ne!(a.arrivals, c.arrivals);
    }

    #[test]
    fn poisson_arrivals_are_increasing_at_roughly_the_asked_rate() {
        let t = poisson_arrivals(2_000, 100.0, 3);
        assert_eq!(t.len(), 2_000);
        let mut last = 0.0f64;
        for &a in &t.arrivals {
            assert!(a > last, "strictly increasing (gaps are positive)");
            last = a;
        }
        let qps = t.offered_qps();
        assert!(
            (qps - 100.0).abs() < 10.0,
            "offered rate {qps} should be ≈100"
        );
    }

    #[test]
    fn bursts_land_together_and_gap_apart() {
        let t = burst_arrivals(10, 4, 2.0);
        assert_eq!(
            t.arrivals,
            vec![0.0, 0.0, 0.0, 0.0, 2.0, 2.0, 2.0, 2.0, 4.0, 4.0]
        );
        assert_eq!(t.name, "burst");
    }

    #[test]
    fn burst_traces_are_deterministic_and_non_decreasing() {
        // No hidden state: the same parameters always yield the same
        // trace, and offsets never go backwards (even with a partial
        // final burst).
        let a = burst_arrivals(23, 5, 0.25);
        let b = burst_arrivals(23, 5, 0.25);
        assert_eq!(a, b);
        for w in a.arrivals.windows(2) {
            assert!(w[1] >= w[0], "non-decreasing offsets");
        }
        // 23 arrivals over 4 full gaps (bursts at 0, 0.25, 0.5, 0.75, 1.0).
        assert_eq!(a.arrivals.last().copied(), Some(1.0));
        let qps = a.offered_qps();
        assert!(
            (qps - 22.0).abs() < 1e-12,
            "offered rate {qps} should be 22"
        );
    }

    #[test]
    fn zero_gap_bursts_land_at_the_same_instant() {
        let t = burst_arrivals(6, 2, 0.0);
        assert_eq!(t.arrivals, vec![0.0; 6]);
        assert_eq!(t.offered_qps(), 0.0, "no time elapses, no defined rate");
    }

    #[test]
    fn zero_gap_is_independent_of_burst_size_and_stays_admissible() {
        // With a zero gap the burst width is irrelevant — every shape
        // collapses to one instant — and the trace is still a valid
        // (non-decreasing) submission order for the schedulers, which
        // refuse non-monotone arrivals but accept ties.
        for burst in [1usize, 3, 100] {
            let t = burst_arrivals(7, burst, 0.0);
            assert_eq!(t.arrivals, vec![0.0; 7], "burst = {burst}");
            for w in t.arrivals.windows(2) {
                assert!(w[1] >= w[0]);
            }
        }
        // A partial final burst changes nothing at zero gap either.
        assert_eq!(burst_arrivals(5, 4, 0.0).arrivals, vec![0.0; 5]);
    }

    #[test]
    fn tiny_positive_gap_still_separates_bursts() {
        // The zero-gap collapse is exact, not a rounding artefact: any
        // positive gap, however small, keeps bursts at distinct instants.
        let t = burst_arrivals(4, 2, 1e-9);
        assert_eq!(t.arrivals, vec![0.0, 0.0, 1e-9, 1e-9]);
        assert!(t.offered_qps() > 0.0);
    }

    #[test]
    #[should_panic(expected = "burst gap")]
    fn negative_gaps_are_rejected() {
        burst_arrivals(5, 2, -1.0);
    }

    #[test]
    #[should_panic(expected = "burst gap")]
    fn non_finite_gaps_are_rejected() {
        burst_arrivals(5, 2, f64::NAN);
    }

    #[test]
    fn burst_of_zero_is_clamped() {
        let t = burst_arrivals(3, 0, 1.0);
        assert_eq!(t.arrivals, vec![0.0, 1.0, 2.0]);
    }

    #[test]
    fn empty_traces_are_fine() {
        assert!(poisson_arrivals(0, 10.0, 0).is_empty());
        assert!(burst_arrivals(0, 4, 1.0).is_empty());
        assert_eq!(burst_arrivals(0, 4, 1.0).offered_qps(), 0.0);
    }

    #[test]
    #[should_panic(expected = "arrival rate")]
    fn poisson_rejects_zero_rate() {
        poisson_arrivals(5, 0.0, 0);
    }
}
