//! Seeded insert/delete mutation traces for live-serving experiments.
//!
//! The exp8 sweep serves queries while a write stream mutates the index.
//! [`skewed_mutation_trace`] builds that stream: inserts land *near a
//! Zipf-chosen anchor descriptor* — a few hot regions take most of the
//! new rows, which is exactly the skew that bloats one chunk and makes
//! online rebalancing worth measuring — while deletes tombstone uniform
//! base rows. Like every other workload generator the trace is pure in
//! its seed.
//!
//! The trace is serve-agnostic (plain ids, vectors and arrival seconds);
//! the serving layer converts it into its own event type.

use crate::arrivals::poisson_arrivals;
use crate::skew::zipf_assignments;
use eff2_descriptor::{DescriptorSet, Vector, DIM};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One mutation, serve-agnostic.
#[derive(Clone, Debug, PartialEq)]
pub enum MutationOp {
    /// Insert (or supersede) descriptor `id` with `vector`.
    Insert {
        /// Fresh descriptor id (above every base id).
        id: u32,
        /// The new descriptor.
        vector: Vector,
    },
    /// Tombstone descriptor `id`.
    Delete {
        /// A base descriptor id.
        id: u32,
    },
}

/// A mutation arriving at a virtual instant.
#[derive(Clone, Debug, PartialEq)]
pub struct MutationEvent {
    /// Arrival time in virtual seconds (non-decreasing along the trace).
    pub at_secs: f64,
    /// The mutation.
    pub op: MutationOp,
}

/// A named, time-ordered mutation stream.
#[derive(Clone, Debug, PartialEq)]
pub struct MutationTrace {
    /// Trace name for tables and CSV (records rate and skew).
    pub name: String,
    /// Events in arrival order.
    pub events: Vec<MutationEvent>,
}

impl MutationTrace {
    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Inserts in the trace.
    pub fn n_inserts(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e.op, MutationOp::Insert { .. }))
            .count()
    }
}

/// Number of hot anchor descriptors the Zipf law ranks.
const N_ANCHORS: usize = 32;

/// Builds a mutation stream of `n_ops` events arriving Poisson at
/// `rate_ops_per_sec`: a fraction `insert_frac` are inserts whose vectors
/// sit within a small jitter of a Zipf(`zipf_exponent`)-chosen anchor
/// descriptor of `set` (hot clusters under skew); the rest delete
/// uniformly-chosen base ids. Insert ids start one above the largest base
/// id, so they never collide with the collection. Deterministic per seed.
///
/// # Panics
///
/// Panics if `set` is empty, `insert_frac` is outside `[0, 1]`, or the
/// rate is not positive (same contract as [`poisson_arrivals`]).
pub fn skewed_mutation_trace(
    set: &DescriptorSet,
    n_ops: usize,
    insert_frac: f64,
    rate_ops_per_sec: f64,
    zipf_exponent: f64,
    seed: u64,
) -> MutationTrace {
    assert!(!set.is_empty(), "cannot mutate an empty collection");
    assert!(
        (0.0..=1.0).contains(&insert_frac),
        "insert_frac must be in [0, 1], got {insert_frac}"
    );
    let arrivals = poisson_arrivals(n_ops, rate_ops_per_sec, seed);
    let anchors = zipf_assignments(
        n_ops,
        N_ANCHORS.min(set.len()),
        zipf_exponent,
        seed ^ 0x5eed,
    );
    let max_base_id = (0..set.len()).map(|i| set.id(i).0).max().unwrap_or(0);
    let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x9e37_79b9).wrapping_add(1));
    let mut next_id = max_base_id + 1;
    let events = arrivals
        .arrivals
        .iter()
        .zip(anchors.iter())
        .map(|(&at_secs, &anchor)| {
            let op = if rng.gen::<f64>() < insert_frac {
                // Anchor buckets spread across the collection so "hot"
                // means a hot *region*, not just low positions.
                let pos = (anchor as usize * 97) % set.len();
                let mut vector = set.vector_owned(pos);
                for d in 0..DIM {
                    // lint:allow(panic.index): d < DIM bounds the [f32; DIM] vector
                    vector[d] += rng.gen_range(-0.25f32..0.25);
                }
                let id = next_id;
                next_id += 1;
                MutationOp::Insert { id, vector }
            } else {
                MutationOp::Delete {
                    id: set.id(rng.gen_range(0..set.len())).0,
                }
            };
            MutationEvent { at_secs, op }
        })
        .collect();
    MutationTrace {
        name: format!("zipf{zipf_exponent}/ins{insert_frac}/{rate_ops_per_sec}ops"),
        events,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eff2_descriptor::Descriptor;

    fn clustered_set(n: usize) -> DescriptorSet {
        (0..n)
            .map(|i| {
                let mut v = Vector::splat((i % 7) as f32 * 10.0);
                v[2] += (i / 7) as f32 * 0.1;
                Descriptor::new(i as u32, v)
            })
            .collect()
    }

    #[test]
    fn traces_are_deterministic_per_seed() {
        let set = clustered_set(200);
        let a = skewed_mutation_trace(&set, 100, 0.8, 50.0, 1.0, 7);
        let b = skewed_mutation_trace(&set, 100, 0.8, 50.0, 1.0, 7);
        assert_eq!(a, b);
        let c = skewed_mutation_trace(&set, 100, 0.8, 50.0, 1.0, 8);
        assert_ne!(a, c);
    }

    #[test]
    fn arrivals_are_sorted_and_frac_is_respected() {
        let set = clustered_set(200);
        let t = skewed_mutation_trace(&set, 400, 0.75, 100.0, 1.0, 3);
        assert_eq!(t.len(), 400);
        for w in t.events.windows(2) {
            assert!(w[0].at_secs <= w[1].at_secs, "arrivals must not go back");
        }
        let inserts = t.n_inserts();
        assert!(
            (220..=380).contains(&inserts),
            "~75% of 400 ops should be inserts, got {inserts}"
        );
    }

    #[test]
    fn insert_ids_are_fresh_and_deletes_are_base_ids() {
        let set = clustered_set(150);
        let t = skewed_mutation_trace(&set, 200, 0.5, 50.0, 1.0, 11);
        for e in &t.events {
            match &e.op {
                MutationOp::Insert { id, .. } => assert!(*id >= 150, "fresh id, got {id}"),
                MutationOp::Delete { id } => assert!(*id < 150, "base id, got {id}"),
            }
        }
    }

    #[test]
    fn skewed_inserts_concentrate_on_hot_anchors() {
        let set = clustered_set(200);
        let hot = skewed_mutation_trace(&set, 300, 1.0, 100.0, 1.5, 5);
        // Bucket inserts by their nearest anchor position; under a strong
        // Zipf law the hottest anchor takes far more than a uniform share.
        let mut by_anchor = std::collections::BTreeMap::new();
        for e in &hot.events {
            if let MutationOp::Insert { vector, .. } = &e.op {
                let nearest = (0..set.len())
                    .map(|i| (i, set.vector(i)))
                    .min_by(|a, b| {
                        eff2_descriptor::l2_sq(&vector.0, a.1)
                            .total_cmp(&eff2_descriptor::l2_sq(&vector.0, b.1))
                            .then(a.0.cmp(&b.0))
                    })
                    .map(|(i, _)| i)
                    .unwrap_or(0);
                *by_anchor.entry(nearest).or_insert(0usize) += 1;
            }
        }
        let top = by_anchor.values().copied().max().unwrap_or(0);
        assert!(
            top > 300 / N_ANCHORS * 3,
            "the hottest anchor must take several uniform shares, got {top}"
        );
    }

    #[test]
    #[should_panic(expected = "empty collection")]
    fn empty_collection_is_refused() {
        skewed_mutation_trace(&DescriptorSet::new(), 5, 0.5, 10.0, 1.0, 0);
    }
}
