//! Property-based tests for the descriptor substrate: metric axioms,
//! codec round-trips, statistics invariants, and the blocked/fused
//! distance kernels against the single-row kernel.

use eff2_descriptor::kernels::max_dist_sq_gather;
use eff2_descriptor::{
    adc_l2_sq, adc_l2_sq_batch, adc_scan_block_into, as_rows, codec, l2_sq, l2_sq_serial,
    scan_block_into, Codec, Descriptor, DescriptorCodec, DescriptorSet, DimensionStats,
    NeighborSet, PqCodec, Sq8Codec, TrimmedRanges, Vector, DIM,
};
use proptest::prelude::*;

fn arb_vector() -> impl Strategy<Value = Vector> {
    proptest::collection::vec(-1000.0f32..1000.0, DIM).prop_map(|v| Vector::from_slice(&v))
}

/// One adversarial component: mixes huge and tiny magnitudes (stressing
/// rounding and cancellation in the lane reduction) with ordinary values.
/// NaN-free by construction.
fn arb_component() -> impl Strategy<Value = f32> {
    prop_oneof![
        -1000.0f32..1000.0,
        -1.0e18f32..1.0e18,
        -1.0e-18f32..1.0e-18,
        Just(0.0f32),
        Just(-0.0f32),
    ]
}

/// A packed row-major buffer of `0..=37` rows — deliberately covering
/// row counts that are not multiples of the 4-row block.
fn arb_packed() -> impl Strategy<Value = Vec<f32>> {
    (0usize..=37).prop_flat_map(|n| proptest::collection::vec(arb_component(), n * DIM))
}

fn arb_query() -> impl Strategy<Value = [f32; DIM]> {
    proptest::collection::vec(arb_component(), DIM).prop_map(|v| {
        let mut q = [0.0f32; DIM];
        q.copy_from_slice(&v);
        q
    })
}

fn arb_set(max: usize) -> impl Strategy<Value = DescriptorSet> {
    proptest::collection::vec(arb_vector(), 1..max).prop_map(|vs| {
        vs.into_iter()
            .enumerate()
            .map(|(i, v)| Descriptor::new(i as u32, v))
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn distance_non_negative(a in arb_vector(), b in arb_vector()) {
        prop_assert!(a.dist_sq(&b) >= 0.0);
    }

    #[test]
    fn distance_symmetric(a in arb_vector(), b in arb_vector()) {
        prop_assert_eq!(a.dist_sq(&b), b.dist_sq(&a));
    }

    #[test]
    fn distance_identity(a in arb_vector()) {
        prop_assert_eq!(a.dist_sq(&a), 0.0);
    }

    #[test]
    fn triangle_inequality(a in arb_vector(), b in arb_vector(), c in arb_vector()) {
        let ab = a.dist(&b);
        let bc = b.dist(&c);
        let ac = a.dist(&c);
        // Allow relative f32 slack.
        prop_assert!(ac <= ab + bc + 1e-3 * (1.0 + ab + bc));
    }

    #[test]
    fn mean_lies_in_bounding_box(vs in proptest::collection::vec(arb_vector(), 1..50)) {
        let m = Vector::mean(vs.iter());
        for d in 0..DIM {
            let lo = vs.iter().map(|v| v[d]).fold(f32::INFINITY, f32::min);
            let hi = vs.iter().map(|v| v[d]).fold(f32::NEG_INFINITY, f32::max);
            prop_assert!(m[d] >= lo - 1e-3 && m[d] <= hi + 1e-3);
        }
    }

    #[test]
    fn codec_roundtrip(set in arb_set(100)) {
        let mut buf = Vec::new();
        codec::write_collection(&set, &mut buf).unwrap();
        let back = codec::read_collection(&buf[..]).unwrap();
        prop_assert_eq!(back.len(), set.len());
        for i in 0..set.len() {
            prop_assert_eq!(back.get(i), set.get(i));
        }
    }

    #[test]
    fn codec_size_is_exact(set in arb_set(50)) {
        let mut buf = Vec::new();
        codec::write_collection(&set, &mut buf).unwrap();
        prop_assert_eq!(buf.len(), codec::HEADER_BYTES + set.len() * codec::RECORD_BYTES);
    }

    #[test]
    fn trimmed_range_within_extrema(set in arb_set(200), trim in 0.0f32..0.3) {
        let stats = DimensionStats::compute(&set);
        let ranges = TrimmedRanges::compute(&set, trim);
        for d in 0..DIM {
            prop_assert!(ranges.low[d] >= stats.min[d]);
            prop_assert!(ranges.high[d] <= stats.max[d]);
            prop_assert!(ranges.low[d] <= ranges.high[d]);
        }
    }

    #[test]
    fn stats_mean_within_extrema(set in arb_set(200)) {
        let stats = DimensionStats::compute(&set);
        for d in 0..DIM {
            prop_assert!(stats.mean[d] >= stats.min[d] - 1e-3);
            prop_assert!(stats.mean[d] <= stats.max[d] + 1e-3);
            prop_assert!(stats.variance[d] >= 0.0);
        }
    }

    #[test]
    fn subset_of_everything_is_identity(set in arb_set(60)) {
        let all: Vec<usize> = (0..set.len()).collect();
        let sub = set.subset(&all);
        prop_assert_eq!(sub.len(), set.len());
        for i in 0..set.len() {
            prop_assert_eq!(sub.get(i), set.get(i));
        }
    }

    #[test]
    fn blocked_batch_is_bitwise_scalar(q in arb_query(), packed in arb_packed()) {
        // The blocked kernel must be a pure speed-up: every output is
        // bit-identical to the single-row kernel on that row, for any row
        // count (block remainders included) and adversarial values.
        let mut out = Vec::new();
        eff2_descriptor::kernels::l2_sq_batch(&q, &packed, &mut out);
        let rows = as_rows(&packed);
        prop_assert_eq!(out.len(), rows.len());
        for (j, row) in rows.iter().enumerate() {
            prop_assert_eq!(out[j].to_bits(), l2_sq(&q, row).to_bits(), "row {}", j);
        }
    }

    #[test]
    fn lane_kernel_tracks_serial_reference(q in arb_query(), packed in arb_packed()) {
        // The lane kernel reassociates the serial sum; on finite results
        // the two must agree to f32 rounding (relative).
        for row in as_rows(&packed) {
            let lane = l2_sq(&q, row);
            let serial = l2_sq_serial(&q, row);
            if lane.is_finite() && serial.is_finite() {
                let tol = 1e-4f32 * serial.max(lane).max(1e-12);
                prop_assert!((lane - serial).abs() <= tol, "{} vs {}", lane, serial);
            }
        }
    }

    #[test]
    fn fused_scan_is_rowwise_offers(
        q in arb_query(),
        packed in arb_packed(),
        k in 0usize..12,
    ) {
        let n = packed.len() / DIM;
        let ids: Vec<u32> = (0..n as u32).map(|x| x.wrapping_mul(7919)).collect();
        let mut fused = NeighborSet::new(k);
        scan_block_into(&q, &packed, &ids, &mut fused);
        let mut rowwise = NeighborSet::new(k);
        for (row, &id) in as_rows(&packed).iter().zip(ids.iter()) {
            rowwise.offer(id, l2_sq(&q, row));
        }
        prop_assert_eq!(fused.sorted(), rowwise.sorted());
    }

    #[test]
    fn gather_max_is_scatter_max(
        q in arb_query(),
        packed in arb_packed(),
        picks in proptest::collection::vec(0usize..1000, 0..40),
    ) {
        let rows = as_rows(&packed);
        if rows.is_empty() {
            return Ok(());
        }
        let positions: Vec<u32> = picks.iter().map(|&p| (p % rows.len()) as u32).collect();
        let want = positions
            .iter()
            .map(|&p| l2_sq(&q, &rows[p as usize]))
            .fold(0.0f32, f32::max);
        prop_assert_eq!(
            max_dist_sq_gather(&q, rows, &positions).to_bits(),
            want.to_bits()
        );
    }

    #[test]
    fn sq8_roundtrip_error_within_half_step(set in arb_set(120)) {
        // Values inside the training range reconstruct within half a
        // quantisation step per dimension (plus f32 rounding slack from
        // the scale/unscale round-trip).
        let quant = Sq8Codec::from_set(&set);
        let mut code = [0u8; DIM];
        let mut back = [0.0f32; DIM];
        for row in as_rows(set.packed()) {
            quant.encode_into(row, &mut code);
            quant.decode_into(&code, &mut back);
            for d in 0..DIM {
                let bound = quant.step()[d] * 0.5 * (1.0 + 1e-4) + 1e-3;
                prop_assert!(
                    (back[d] - row[d]).abs() <= bound,
                    "dim {}: {} decoded as {} (step {})",
                    d, row[d], back[d], quant.step()[d]
                );
            }
        }
    }

    #[test]
    fn adc_distance_is_decode_then_exact_bitwise(set in arb_set(80), q in arb_query()) {
        // The asymmetric kernel's contract: for any code and any query —
        // adversarial magnitudes included — `adc_l2_sq(prep, code)` is
        // bit-for-bit `l2_sq(q, decode(code))`, and the blocked batch and
        // fused scan paths reproduce the single-code kernel exactly.
        for quant in [
            Codec::Sq8(Sq8Codec::from_set(&set)),
            Codec::Pq(PqCodec::from_set(&set)),
        ] {
            let cb = quant.code_bytes();
            let mut codes = vec![0u8; set.len() * cb];
            for (row, code) in as_rows(set.packed()).iter().zip(codes.chunks_exact_mut(cb)) {
                quant.encode_into(row, code);
            }
            let prep = quant.prepare(&q);
            let mut decoded = [0.0f32; DIM];
            let mut dists = Vec::new();
            adc_l2_sq_batch(&prep, &codes, &mut dists);
            prop_assert_eq!(dists.len(), set.len());
            for (r, code) in codes.chunks_exact(cb).enumerate() {
                quant.decode_into(code, &mut decoded);
                let one = adc_l2_sq(&prep, code);
                prop_assert_eq!(
                    one.to_bits(),
                    l2_sq(&q, &decoded).to_bits(),
                    "codec {} row {}", quant.name(), r
                );
                prop_assert_eq!(dists[r].to_bits(), one.to_bits(), "batch row {}", r);
            }
            let ids: Vec<u32> = (0..set.len() as u32).map(|x| x.wrapping_mul(37)).collect();
            let mut fused = NeighborSet::new(9);
            adc_scan_block_into(&prep, &codes, &ids, &mut fused);
            let mut rowwise = NeighborSet::new(9);
            for (code, &id) in codes.chunks_exact(cb).zip(ids.iter()) {
                rowwise.offer(id, adc_l2_sq(&prep, code));
            }
            prop_assert_eq!(fused.sorted(), rowwise.sorted(), "codec {}", quant.name());
        }
    }

    #[test]
    fn zero_capacity_set_never_accepts(q in arb_query(), packed in arb_packed()) {
        let n = packed.len() / DIM;
        let ids: Vec<u32> = (0..n as u32).collect();
        let mut set = NeighborSet::new(0);
        scan_block_into(&q, &packed, &ids, &mut set);
        prop_assert!(set.is_empty());
        prop_assert_eq!(set.kth_dist(), f32::INFINITY);
    }
}
