//! Property-based tests for the descriptor substrate: metric axioms,
//! codec round-trips, and statistics invariants.

use eff2_descriptor::{codec, Descriptor, DescriptorSet, DimensionStats, TrimmedRanges, Vector, DIM};
use proptest::prelude::*;

fn arb_vector() -> impl Strategy<Value = Vector> {
    proptest::collection::vec(-1000.0f32..1000.0, DIM)
        .prop_map(|v| Vector::from_slice(&v))
}

fn arb_set(max: usize) -> impl Strategy<Value = DescriptorSet> {
    proptest::collection::vec(arb_vector(), 1..max).prop_map(|vs| {
        vs.into_iter()
            .enumerate()
            .map(|(i, v)| Descriptor::new(i as u32, v))
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn distance_non_negative(a in arb_vector(), b in arb_vector()) {
        prop_assert!(a.dist_sq(&b) >= 0.0);
    }

    #[test]
    fn distance_symmetric(a in arb_vector(), b in arb_vector()) {
        prop_assert_eq!(a.dist_sq(&b), b.dist_sq(&a));
    }

    #[test]
    fn distance_identity(a in arb_vector()) {
        prop_assert_eq!(a.dist_sq(&a), 0.0);
    }

    #[test]
    fn triangle_inequality(a in arb_vector(), b in arb_vector(), c in arb_vector()) {
        let ab = a.dist(&b);
        let bc = b.dist(&c);
        let ac = a.dist(&c);
        // Allow relative f32 slack.
        prop_assert!(ac <= ab + bc + 1e-3 * (1.0 + ab + bc));
    }

    #[test]
    fn mean_lies_in_bounding_box(vs in proptest::collection::vec(arb_vector(), 1..50)) {
        let m = Vector::mean(vs.iter());
        for d in 0..DIM {
            let lo = vs.iter().map(|v| v[d]).fold(f32::INFINITY, f32::min);
            let hi = vs.iter().map(|v| v[d]).fold(f32::NEG_INFINITY, f32::max);
            prop_assert!(m[d] >= lo - 1e-3 && m[d] <= hi + 1e-3);
        }
    }

    #[test]
    fn codec_roundtrip(set in arb_set(100)) {
        let mut buf = Vec::new();
        codec::write_collection(&set, &mut buf).unwrap();
        let back = codec::read_collection(&buf[..]).unwrap();
        prop_assert_eq!(back.len(), set.len());
        for i in 0..set.len() {
            prop_assert_eq!(back.get(i), set.get(i));
        }
    }

    #[test]
    fn codec_size_is_exact(set in arb_set(50)) {
        let mut buf = Vec::new();
        codec::write_collection(&set, &mut buf).unwrap();
        prop_assert_eq!(buf.len(), codec::HEADER_BYTES + set.len() * codec::RECORD_BYTES);
    }

    #[test]
    fn trimmed_range_within_extrema(set in arb_set(200), trim in 0.0f32..0.3) {
        let stats = DimensionStats::compute(&set);
        let ranges = TrimmedRanges::compute(&set, trim);
        for d in 0..DIM {
            prop_assert!(ranges.low[d] >= stats.min[d]);
            prop_assert!(ranges.high[d] <= stats.max[d]);
            prop_assert!(ranges.low[d] <= ranges.high[d]);
        }
    }

    #[test]
    fn stats_mean_within_extrema(set in arb_set(200)) {
        let stats = DimensionStats::compute(&set);
        for d in 0..DIM {
            prop_assert!(stats.mean[d] >= stats.min[d] - 1e-3);
            prop_assert!(stats.mean[d] <= stats.max[d] + 1e-3);
            prop_assert!(stats.variance[d] >= 0.0);
        }
    }

    #[test]
    fn subset_of_everything_is_identity(set in arb_set(60)) {
        let all: Vec<usize> = (0..set.len()).collect();
        let sub = set.subset(&all);
        prop_assert_eq!(sub.len(), set.len());
        for i in 0..set.len() {
            prop_assert_eq!(sub.get(i), set.get(i));
        }
    }
}
