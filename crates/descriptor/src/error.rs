//! Error type for descriptor collection I/O and validation.

/// Convenience result alias for this crate.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors raised while encoding, decoding or validating descriptor
/// collections.
#[derive(Debug)]
pub enum Error {
    /// An underlying I/O failure.
    Io(std::io::Error),
    /// The file is not a descriptor collection (bad magic bytes).
    BadMagic {
        /// The magic actually found.
        found: [u8; 4],
    },
    /// The format version is newer than this library understands.
    UnsupportedVersion(u32),
    /// The file advertises a different dimensionality than [`crate::DIM`].
    DimensionMismatch {
        /// Dimensionality recorded in the file.
        found: u32,
    },
    /// The file body is shorter than the header-declared record count needs.
    Truncated {
        /// Number of records the header promised.
        expected_records: u64,
        /// Number of whole records actually present.
        found_records: u64,
    },
    /// A record contained a non-finite component.
    NonFiniteComponent {
        /// Index of the offending record.
        record: u64,
    },
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::Io(e) => write!(f, "i/o error: {e}"),
            Error::BadMagic { found } => {
                write!(f, "not a descriptor collection (magic {found:?})")
            }
            Error::UnsupportedVersion(v) => write!(f, "unsupported collection version {v}"),
            Error::DimensionMismatch { found } => write!(
                f,
                "collection has {found}-dimensional descriptors, expected {}",
                crate::DIM
            ),
            Error::Truncated {
                expected_records,
                found_records,
            } => write!(
                f,
                "collection truncated: header declares {expected_records} records, \
                 body holds {found_records}"
            ),
            Error::NonFiniteComponent { record } => {
                write!(f, "record {record} has a non-finite component")
            }
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_are_informative() {
        let e = Error::BadMagic { found: *b"nope" };
        assert!(e.to_string().contains("magic"));
        let e = Error::Truncated {
            expected_records: 10,
            found_records: 3,
        };
        assert!(e.to_string().contains("10"));
        assert!(e.to_string().contains('3'));
        let e = Error::DimensionMismatch { found: 12 };
        assert!(e.to_string().contains("12"));
        assert!(e.to_string().contains("24"));
    }

    #[test]
    fn io_error_preserves_source() {
        use std::error::Error as _;
        let e = Error::from(std::io::Error::other("boom"));
        assert!(e.source().is_some());
    }
}
