//! The fixed 24-dimensional vector type and its Euclidean distance kernels.
//!
//! All of the paper's machinery — the SR-tree, the BAG clustering algorithm,
//! the chunk ranking and the in-chunk scans — boils down to squared-Euclidean
//! distance evaluations over 24-dimensional `f32` points, so these kernels
//! are the hottest code in the workspace. They operate on fixed-size arrays
//! (`[f32; 24]`) so the compiler can fully unroll and vectorise them, and
//! they stay in the *squared* domain; callers take the square root only at
//! API boundaries where a true metric is required.
// lint:allow-file(panic.index): DIM-bounded component arithmetic over [f32; DIM] arrays

/// Dimensionality of the local image descriptors used throughout the paper.
pub const DIM: usize = 24;

/// A point in the 24-dimensional descriptor space.
///
/// `Vector` is a thin wrapper over `[f32; 24]` that carries the arithmetic
/// needed by the index structures: component-wise accumulation for centroid
/// maintenance, scaling, and distance kernels.
#[derive(Clone, Copy, PartialEq)]
pub struct Vector(pub [f32; DIM]);

impl std::fmt::Debug for Vector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Print only the first few components; full 24-component dumps drown
        // test failure output.
        write!(
            f,
            "Vector[{:.3}, {:.3}, {:.3}, …; dim={}]",
            self.0[0], self.0[1], self.0[2], DIM
        )
    }
}

impl Default for Vector {
    fn default() -> Self {
        Vector([0.0; DIM])
    }
}

impl Vector {
    /// The origin.
    pub const ZERO: Vector = Vector([0.0; DIM]);

    /// Builds a vector whose components are all `value`.
    pub fn splat(value: f32) -> Self {
        Vector([value; DIM])
    }

    /// Borrows the raw components.
    #[inline]
    pub fn as_array(&self) -> &[f32; DIM] {
        &self.0
    }

    /// Borrows the raw components as a slice.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.0
    }

    /// Builds a vector from a slice.
    ///
    /// # Panics
    ///
    /// Panics if `slice.len() != DIM`; this is an internal invariant
    /// violation everywhere it is used.
    #[inline]
    pub fn from_slice(slice: &[f32]) -> Self {
        let arr: [f32; DIM] = slice
            .try_into()
            // lint:allow(panic.unwrap): documented panic contract; every call site passes a DIM-length slice
            .expect("descriptor slice must have 24 dims");
        Vector(arr)
    }

    /// Component-wise addition into `self` (centroid accumulation).
    #[inline]
    pub fn add_assign(&mut self, other: &Vector) {
        for (a, b) in self.0.iter_mut().zip(other.0.iter()) {
            *a += *b;
        }
    }

    /// Component-wise subtraction, returning a new vector.
    #[inline]
    pub fn sub(&self, other: &Vector) -> Vector {
        let mut out = [0.0f32; DIM];
        for ((o, a), b) in out.iter_mut().zip(self.0.iter()).zip(other.0.iter()) {
            *o = a - b;
        }
        Vector(out)
    }

    /// Scales every component by `k`, returning a new vector.
    #[inline]
    pub fn scale(&self, k: f32) -> Vector {
        let mut out = self.0;
        for o in out.iter_mut() {
            *o *= k;
        }
        Vector(out)
    }

    /// Squared Euclidean norm. Serial accumulation in component order —
    /// the same fixed order every run, like the kernels.
    #[inline]
    pub fn norm_sq(&self) -> f32 {
        let mut acc = 0.0f32;
        for x in &self.0 {
            acc += x * x;
        }
        acc
    }

    /// Euclidean norm (the "total length" the paper's alternative outlier
    /// filter thresholds on).
    #[inline]
    pub fn norm(&self) -> f32 {
        self.norm_sq().sqrt()
    }

    /// Squared Euclidean distance to `other`.
    #[inline]
    pub fn dist_sq(&self, other: &Vector) -> f32 {
        l2_sq(&self.0, &other.0)
    }

    /// Euclidean distance to `other`.
    #[inline]
    pub fn dist(&self, other: &Vector) -> f32 {
        self.dist_sq(other).sqrt()
    }

    /// The component-wise mean of `vectors`.
    ///
    /// Accumulates in `f64` so that centroids of very large clusters (the
    /// paper's biggest BAG cluster holds over a million descriptors) do not
    /// drift from `f32` rounding.
    ///
    /// Returns [`Vector::ZERO`] for an empty input.
    pub fn mean<'a, I>(vectors: I) -> Vector
    where
        I: IntoIterator<Item = &'a Vector>,
    {
        let mut acc = [0.0f64; DIM];
        let mut n = 0usize;
        for v in vectors {
            for (a, x) in acc.iter_mut().zip(v.0.iter()) {
                *a += f64::from(*x);
            }
            n += 1;
        }
        if n == 0 {
            return Vector::ZERO;
        }
        let inv = 1.0 / n as f64;
        let mut out = [0.0f32; DIM];
        for (o, a) in out.iter_mut().zip(acc.iter()) {
            *o = (a * inv) as f32;
        }
        Vector(out)
    }
}

impl From<[f32; DIM]> for Vector {
    fn from(arr: [f32; DIM]) -> Self {
        Vector(arr)
    }
}

impl std::ops::Index<usize> for Vector {
    type Output = f32;
    #[inline]
    fn index(&self, i: usize) -> &f32 {
        &self.0[i]
    }
}

impl std::ops::IndexMut<usize> for Vector {
    #[inline]
    fn index_mut(&mut self, i: usize) -> &mut f32 {
        &mut self.0[i]
    }
}

/// Accumulator lanes of the canonical distance kernel. [`DIM`] (24) is an
/// exact multiple, so the lane loop has no remainder and LLVM maps the
/// accumulator array straight onto one 8-wide SIMD register.
pub const LANES: usize = 8;
const _: () = assert!(DIM.is_multiple_of(LANES), "DIM must be a multiple of LANES");

/// Squared Euclidean distance between two 24-dimensional points.
///
/// This is *the* hot kernel: every chunk scan evaluates it once per stored
/// descriptor. It accumulates into [`LANES`] independent partial sums
/// (component `i` goes to lane `i % LANES`) and combines them in the fixed
/// pairwise order of [`sum_lanes`]. The lane split is what lets the
/// autovectorizer emit wide SIMD — a single running sum is a serial
/// dependency chain LLVM must not reassociate (see [`l2_sq_serial`]). The
/// lane order is part of the kernel's defined semantics: every distance
/// path (single-row, blocked, fused, gathered) accumulates in this exact
/// order, so equal inputs give bit-identical distances everywhere.
#[inline]
pub fn l2_sq(a: &[f32; DIM], b: &[f32; DIM]) -> f32 {
    let mut acc = [0.0f32; LANES];
    let mut i = 0;
    while i < DIM {
        for (l, s) in acc.iter_mut().enumerate() {
            let d = a[i + l] - b[i + l];
            *s += d * d;
        }
        i += LANES;
    }
    sum_lanes(&acc)
}

/// Fixed pairwise combine of the lane accumulators.
///
/// Crate-visible so the ADC kernels in [`crate::kernels`] combine their
/// lanes in exactly the same order as [`l2_sq`].
#[inline]
pub(crate) fn sum_lanes(acc: &[f32; LANES]) -> f32 {
    ((acc[0] + acc[4]) + (acc[1] + acc[5])) + ((acc[2] + acc[6]) + (acc[3] + acc[7]))
}

/// The one-accumulator kernel the lane kernel replaced, kept as the
/// reference baseline for the kernel microbench and the property tests.
/// Equal to [`l2_sq`] up to f32 rounding (the lane kernel reassociates
/// the sum); not used on any hot path.
#[inline]
pub fn l2_sq_serial(a: &[f32; DIM], b: &[f32; DIM]) -> f32 {
    let mut acc = 0.0f32;
    for i in 0..DIM {
        let d = a[i] - b[i];
        acc += d * d;
    }
    acc
}

/// Euclidean distance between two 24-dimensional points.
#[inline]
pub fn l2(a: &[f32; DIM], b: &[f32; DIM]) -> f32 {
    l2_sq(a, b).sqrt()
}

/// Squared Euclidean distance between a query and a flat slice of packed
/// vectors, writing one output per packed vector.
///
/// `packed.len()` must be a multiple of [`DIM`]; `out` must hold
/// `packed.len() / DIM` elements. Delegates to the blocked kernel in
/// [`crate::kernels`]; every output is bit-identical to the scalar
/// [`l2_sq`] of that row.
pub fn l2_sq_batch(query: &[f32; DIM], packed: &[f32], out: &mut [f32]) {
    crate::kernels::l2_sq_rows(query, crate::kernels::as_rows(packed), out);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(fill: impl Fn(usize) -> f32) -> Vector {
        let mut arr = [0.0f32; DIM];
        for (i, a) in arr.iter_mut().enumerate() {
            *a = fill(i);
        }
        Vector(arr)
    }

    #[test]
    fn zero_distance_to_self() {
        let a = v(|i| i as f32 * 0.5);
        assert_eq!(a.dist_sq(&a), 0.0);
        assert_eq!(a.dist(&a), 0.0);
    }

    #[test]
    fn unit_axis_distance() {
        let a = Vector::ZERO;
        let mut b = Vector::ZERO;
        b[3] = 1.0;
        assert_eq!(a.dist_sq(&b), 1.0);
        assert_eq!(a.dist(&b), 1.0);
    }

    #[test]
    fn distance_is_symmetric() {
        let a = v(|i| (i as f32).sin());
        let b = v(|i| (i as f32).cos());
        assert_eq!(a.dist_sq(&b), b.dist_sq(&a));
    }

    #[test]
    fn known_distance() {
        // 24 components each differing by 2 → squared distance 24 * 4 = 96.
        let a = Vector::splat(1.0);
        let b = Vector::splat(3.0);
        assert_eq!(a.dist_sq(&b), 96.0);
        assert!((a.dist(&b) - 96.0f32.sqrt()).abs() < 1e-6);
    }

    #[test]
    fn mean_of_two_points_is_midpoint() {
        let a = Vector::splat(0.0);
        let b = Vector::splat(2.0);
        let m = Vector::mean([&a, &b]);
        assert_eq!(m, Vector::splat(1.0));
    }

    #[test]
    fn mean_of_empty_is_zero() {
        assert_eq!(Vector::mean(std::iter::empty()), Vector::ZERO);
    }

    #[test]
    fn mean_is_stable_for_many_points() {
        // 100k copies of the same point must average back to exactly that
        // point (f64 accumulation).
        let p = v(|i| 1.0 + i as f32 * 0.125);
        let points: Vec<Vector> = vec![p; 100_000];
        let m = Vector::mean(points.iter());
        for i in 0..DIM {
            assert!((m[i] - p[i]).abs() < 1e-5, "dim {i}: {} vs {}", m[i], p[i]);
        }
    }

    #[test]
    fn batch_matches_scalar_kernel() {
        let q = v(|i| i as f32 * 0.1);
        let rows: Vec<Vector> = (0..17).map(|r| v(|i| (r * 31 + i) as f32 * 0.01)).collect();
        let mut packed = Vec::new();
        for r in &rows {
            packed.extend_from_slice(r.as_slice());
        }
        let mut out = vec![0.0f32; rows.len()];
        l2_sq_batch(q.as_array(), &packed, &mut out);
        for (r, o) in rows.iter().zip(out.iter()) {
            assert_eq!(*o, q.dist_sq(r));
        }
    }

    #[test]
    #[should_panic(expected = "multiple of DIM")]
    fn batch_rejects_ragged_input() {
        let q = [0.0f32; DIM];
        let packed = vec![0.0f32; DIM + 1];
        let mut out = vec![0.0f32; 1];
        l2_sq_batch(&q, &packed, &mut out);
    }

    #[test]
    fn sub_and_scale() {
        let a = Vector::splat(4.0);
        let b = Vector::splat(1.0);
        assert_eq!(a.sub(&b), Vector::splat(3.0));
        assert_eq!(a.scale(0.25), Vector::splat(1.0));
    }

    #[test]
    fn norm_of_axis_vectors() {
        let mut a = Vector::ZERO;
        a[0] = 3.0;
        a[1] = 4.0;
        assert_eq!(a.norm_sq(), 25.0);
        assert_eq!(a.norm(), 5.0);
    }

    #[test]
    fn add_assign_accumulates() {
        let mut acc = Vector::ZERO;
        acc.add_assign(&Vector::splat(1.5));
        acc.add_assign(&Vector::splat(0.5));
        assert_eq!(acc, Vector::splat(2.0));
    }

    #[test]
    fn from_slice_roundtrip() {
        let a = v(|i| i as f32);
        let b = Vector::from_slice(a.as_slice());
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "24 dims")]
    fn from_slice_rejects_wrong_len() {
        Vector::from_slice(&[1.0, 2.0]);
    }
}
