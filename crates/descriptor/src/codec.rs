//! Binary on-disk format for descriptor collections.
//!
//! The paper stores the whole collection "sequentially in a single file"
//! where "each descriptor consumes 100 bytes" — 24 little-endian `f32`
//! components (96 bytes) plus a 4-byte identifier (§4.1, §5.2). This module
//! reproduces that record layout behind a small self-describing header, and
//! appends an optional image-attribution table after the records (the paper
//! keeps the descriptor→image association out of band).
//!
//! Layout:
//!
//! ```text
//! [0..4)   magic  b"EFF2"
//! [4..8)   version u32 le      (currently 1)
//! [8..12)  dim     u32 le      (must be 24)
//! [12..20) count   u64 le
//! [20..24) flags   u32 le      (bit 0: image table present)
//! [24..)   count × { id u32 le, components 24 × f32 le }   -- 100 B each
//! [...]    count × { image u32 le }                         -- if flag set
//! ```
// lint:allow-file(panic.index): record slicing uses constant offsets inside fixed-size header/record buffers

use crate::descriptor::DescriptorSet;
use crate::error::{Error, Result};
use crate::vector::DIM;
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Magic bytes identifying a collection file.
pub const MAGIC: [u8; 4] = *b"EFF2";
/// Current format version.
pub const VERSION: u32 = 1;
/// Bytes per descriptor record: 4-byte id + 24 × 4-byte components.
pub const RECORD_BYTES: usize = 4 + DIM * 4;
/// Header size in bytes.
pub const HEADER_BYTES: usize = 24;

const FLAG_IMAGES: u32 = 1;

/// Writes `set` to `writer` in the collection format.
pub fn write_collection<W: Write>(set: &DescriptorSet, writer: W) -> Result<()> {
    let mut w = BufWriter::new(writer);
    w.write_all(&MAGIC)?;
    w.write_all(&VERSION.to_le_bytes())?;
    w.write_all(&(DIM as u32).to_le_bytes())?;
    w.write_all(&(set.len() as u64).to_le_bytes())?;
    let flags = if set.has_images() { FLAG_IMAGES } else { 0 };
    w.write_all(&flags.to_le_bytes())?;

    let packed = set.packed();
    for i in 0..set.len() {
        w.write_all(&set.id(i).0.to_le_bytes())?;
        for &c in &packed[i * DIM..(i + 1) * DIM] {
            w.write_all(&c.to_le_bytes())?;
        }
    }
    if set.has_images() {
        for i in 0..set.len() {
            let img = set.image(i).map(|im| im.0).unwrap_or(u32::MAX);
            w.write_all(&img.to_le_bytes())?;
        }
    }
    w.flush()?;
    Ok(())
}

/// Writes `set` to the file at `path`.
pub fn save_collection<P: AsRef<Path>>(set: &DescriptorSet, path: P) -> Result<()> {
    let file = std::fs::File::create(path)?;
    write_collection(set, file)
}

/// Little-endian field at a fixed offset of a header or record buffer; a
/// short buffer reports as truncation instead of panicking.
fn field<const N: usize>(buf: &[u8], at: usize, count: u64, rec: u64) -> Result<[u8; N]> {
    at.checked_add(N)
        .and_then(|end| buf.get(at..end))
        .and_then(|s| <[u8; N]>::try_from(s).ok())
        .ok_or(Error::Truncated {
            expected_records: count,
            found_records: rec,
        })
}

/// Reads a collection from `reader`, validating the header and every record.
pub fn read_collection<R: Read>(reader: R) -> Result<DescriptorSet> {
    let mut r = BufReader::new(reader);
    let mut header = [0u8; HEADER_BYTES];
    read_exact_or_truncated(&mut r, &mut header, 0, 0)?;

    let magic: [u8; 4] = field(&header, 0, 0, 0)?;
    if magic != MAGIC {
        return Err(Error::BadMagic { found: magic });
    }
    let version = u32::from_le_bytes(field(&header, 4, 0, 0)?);
    if version != VERSION {
        return Err(Error::UnsupportedVersion(version));
    }
    let dim = u32::from_le_bytes(field(&header, 8, 0, 0)?);
    if dim as usize != DIM {
        return Err(Error::DimensionMismatch { found: dim });
    }
    let count = u64::from_le_bytes(field(&header, 12, 0, 0)?);
    let flags = u32::from_le_bytes(field(&header, 20, 0, 0)?);

    let n = usize::try_from(count).map_err(|_| Error::Truncated {
        expected_records: count,
        found_records: 0,
    })?;

    let mut data = Vec::with_capacity(n * DIM);
    let mut ids = Vec::with_capacity(n);
    let mut record = vec![0u8; RECORD_BYTES];
    for rec in 0..count {
        read_exact_or_truncated(&mut r, &mut record, count, rec)?;
        ids.push(u32::from_le_bytes(field(&record, 0, count, rec)?));
        for d in 0..DIM {
            let off = 4 + d * 4;
            let c = f32::from_le_bytes(field(&record, off, count, rec)?);
            if !c.is_finite() {
                return Err(Error::NonFiniteComponent { record: rec });
            }
            data.push(c);
        }
    }

    let image_of = if flags & FLAG_IMAGES != 0 {
        let mut map = Vec::with_capacity(n);
        let mut buf = [0u8; 4];
        for rec in 0..count {
            read_exact_or_truncated(&mut r, &mut buf, count, rec)?;
            map.push(u32::from_le_bytes(buf));
        }
        Some(map)
    } else {
        None
    };

    Ok(DescriptorSet::from_parts(data, ids, image_of))
}

/// Reads a collection from the file at `path`.
pub fn load_collection<P: AsRef<Path>>(path: P) -> Result<DescriptorSet> {
    let file = std::fs::File::open(path)?;
    read_collection(file)
}

fn read_exact_or_truncated<R: Read>(
    r: &mut R,
    buf: &mut [u8],
    expected_records: u64,
    found_records: u64,
) -> Result<()> {
    r.read_exact(buf).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            Error::Truncated {
                expected_records,
                found_records,
            }
        } else {
            Error::Io(e)
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::descriptor::{Descriptor, ImageId};
    use crate::vector::Vector;

    fn sample(n: usize, with_images: bool) -> DescriptorSet {
        let mut set = DescriptorSet::new();
        for i in 0..n as u32 {
            let mut v = Vector::splat(i as f32 * 0.5);
            v[0] = -(i as f32);
            if with_images {
                set.push_with_image(Descriptor::new(i, v), ImageId(i / 3));
            } else {
                set.push(Descriptor::new(i, v));
            }
        }
        set
    }

    fn roundtrip(set: &DescriptorSet) -> DescriptorSet {
        let mut buf = Vec::new();
        write_collection(set, &mut buf).expect("write");
        read_collection(&buf[..]).expect("read")
    }

    #[test]
    fn roundtrip_without_images() {
        let set = sample(10, false);
        let back = roundtrip(&set);
        assert_eq!(back.len(), 10);
        for i in 0..10 {
            assert_eq!(back.get(i), set.get(i));
            assert_eq!(back.image(i), None);
        }
    }

    #[test]
    fn roundtrip_with_images() {
        let set = sample(7, true);
        let back = roundtrip(&set);
        for i in 0..7 {
            assert_eq!(back.get(i), set.get(i));
            assert_eq!(back.image(i), set.image(i));
        }
    }

    #[test]
    fn roundtrip_empty() {
        let back = roundtrip(&DescriptorSet::new());
        assert!(back.is_empty());
    }

    #[test]
    fn record_is_100_bytes() {
        // The paper: "each descriptor consumes 100 bytes".
        assert_eq!(RECORD_BYTES, 100);
        let set = sample(3, false);
        let mut buf = Vec::new();
        write_collection(&set, &mut buf).expect("write");
        assert_eq!(buf.len(), HEADER_BYTES + 3 * 100);
    }

    #[test]
    fn rejects_bad_magic() {
        let set = sample(1, false);
        let mut buf = Vec::new();
        write_collection(&set, &mut buf).expect("write");
        buf[0] = b'X';
        match read_collection(&buf[..]) {
            Err(Error::BadMagic { .. }) => {}
            other => panic!("expected BadMagic, got {other:?}"),
        }
    }

    #[test]
    fn rejects_unsupported_version() {
        let set = sample(1, false);
        let mut buf = Vec::new();
        write_collection(&set, &mut buf).expect("write");
        buf[4] = 99;
        match read_collection(&buf[..]) {
            Err(Error::UnsupportedVersion(99)) => {}
            other => panic!("expected UnsupportedVersion, got {other:?}"),
        }
    }

    #[test]
    fn rejects_dimension_mismatch() {
        let set = sample(1, false);
        let mut buf = Vec::new();
        write_collection(&set, &mut buf).expect("write");
        buf[8] = 12;
        match read_collection(&buf[..]) {
            Err(Error::DimensionMismatch { found: 12 }) => {}
            other => panic!("expected DimensionMismatch, got {other:?}"),
        }
    }

    #[test]
    fn rejects_truncated_body() {
        let set = sample(5, false);
        let mut buf = Vec::new();
        write_collection(&set, &mut buf).expect("write");
        buf.truncate(HEADER_BYTES + 2 * RECORD_BYTES + 10);
        match read_collection(&buf[..]) {
            Err(Error::Truncated {
                expected_records: 5,
                found_records: 2,
            }) => {}
            other => panic!("expected Truncated, got {other:?}"),
        }
    }

    #[test]
    fn rejects_truncated_header() {
        let buf = [0u8; 10];
        assert!(matches!(
            read_collection(&buf[..]),
            Err(Error::Truncated { .. })
        ));
    }

    #[test]
    fn rejects_non_finite_component() {
        let set = sample(2, false);
        let mut buf = Vec::new();
        write_collection(&set, &mut buf).expect("write");
        // Poison the second component of record 1 with NaN.
        let off = HEADER_BYTES + RECORD_BYTES + 4 + 4;
        buf[off..off + 4].copy_from_slice(&f32::NAN.to_le_bytes());
        match read_collection(&buf[..]) {
            Err(Error::NonFiniteComponent { record: 1 }) => {}
            other => panic!("expected NonFiniteComponent, got {other:?}"),
        }
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("eff2_codec_test");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("collection.eff2");
        let set = sample(20, true);
        save_collection(&set, &path).expect("save");
        let back = load_collection(&path).expect("load");
        assert_eq!(back.len(), set.len());
        assert_eq!(back.get(19), set.get(19));
        std::fs::remove_file(&path).ok();
    }
}
