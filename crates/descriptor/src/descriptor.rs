//! Identified descriptors and the structure-of-arrays collection container.
//!
//! The paper's collection is "typically stored sequentially in a single
//! file" with each descriptor carrying an identifier (§4.1, §5.2). We keep
//! the identifier as the descriptor's position-independent handle: the
//! ground-truth scan records identifiers, and precision of intermediate
//! results is computed by identifier intersection (§5.4).
//!
//! [`DescriptorSet`] stores vectors in one flat `f32` buffer (structure of
//! arrays) so that chunk scans and sequential scans run over contiguous
//! memory, and identifiers in a parallel `u32` buffer. An optional parallel
//! image map records which image each descriptor came from — the paper keeps
//! this association to aggregate descriptor hits into image-level answers.
// lint:allow-file(panic.index): SoA accessors rely on the data.len() == len * DIM invariant every constructor maintains

use crate::vector::{Vector, DIM};

/// Identifier of a single descriptor, unique within a collection.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct DescriptorId(pub u32);

impl std::fmt::Display for DescriptorId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "d{}", self.0)
    }
}

/// Identifier of the image a descriptor was computed from.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct ImageId(pub u32);

impl std::fmt::Display for ImageId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "img{}", self.0)
    }
}

/// One identified local descriptor.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Descriptor {
    /// Collection-unique identifier.
    pub id: DescriptorId,
    /// The 24-dimensional point.
    pub vector: Vector,
}

impl Descriptor {
    /// Creates a descriptor.
    pub fn new(id: u32, vector: Vector) -> Self {
        Descriptor {
            id: DescriptorId(id),
            vector,
        }
    }
}

/// A collection of descriptors in structure-of-arrays layout.
///
/// Invariants:
/// * `data.len() == len * DIM`;
/// * `ids.len() == len`;
/// * `image_of`, when present, has `len` entries.
#[derive(Clone, Debug, Default)]
pub struct DescriptorSet {
    data: Vec<f32>,
    ids: Vec<u32>,
    image_of: Option<Vec<u32>>,
}

impl DescriptorSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty set with capacity for `n` descriptors.
    pub fn with_capacity(n: usize) -> Self {
        DescriptorSet {
            data: Vec::with_capacity(n * DIM),
            ids: Vec::with_capacity(n),
            image_of: None,
        }
    }

    /// Number of descriptors held.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Appends a descriptor without image attribution.
    pub fn push(&mut self, d: Descriptor) {
        self.data.extend_from_slice(d.vector.as_slice());
        self.ids.push(d.id.0);
        if let Some(map) = &mut self.image_of {
            // Keep the parallel map aligned; attribute to a sentinel image.
            map.push(u32::MAX);
        }
    }

    /// Appends a descriptor attributed to `image`.
    ///
    /// The first attributed push switches the set into image-tracking mode;
    /// descriptors pushed earlier without attribution are assigned the
    /// sentinel `u32::MAX`.
    pub fn push_with_image(&mut self, d: Descriptor, image: ImageId) {
        let n_before = self.ids.len();
        self.image_of
            .get_or_insert_with(|| vec![u32::MAX; n_before])
            .push(image.0);
        self.data.extend_from_slice(d.vector.as_slice());
        self.ids.push(d.id.0);
    }

    /// The identifier of descriptor `i`.
    #[inline]
    pub fn id(&self, i: usize) -> DescriptorId {
        DescriptorId(self.ids[i])
    }

    /// The vector of descriptor `i` as a fixed-size array reference.
    #[inline]
    pub fn vector(&self, i: usize) -> &[f32; DIM] {
        let start = i * DIM;
        self.data[start..start + DIM]
            .try_into()
            // lint:allow(panic.unwrap): hot-path accessor; the SoA length invariant is maintained by every constructor
            .expect("SoA invariant: data.len() == len * DIM")
    }

    /// The vector of descriptor `i` as an owned [`Vector`].
    #[inline]
    pub fn vector_owned(&self, i: usize) -> Vector {
        Vector(*self.vector(i))
    }

    /// The descriptor at position `i`.
    pub fn get(&self, i: usize) -> Descriptor {
        Descriptor {
            id: self.id(i),
            vector: self.vector_owned(i),
        }
    }

    /// The image of descriptor `i`, if image attribution is tracked.
    pub fn image(&self, i: usize) -> Option<ImageId> {
        match &self.image_of {
            Some(map) if map[i] != u32::MAX => Some(ImageId(map[i])),
            _ => None,
        }
    }

    /// Whether image attribution is tracked.
    pub fn has_images(&self) -> bool {
        self.image_of.is_some()
    }

    /// The flat, packed vector buffer (`len * DIM` floats, row-major).
    pub fn packed(&self) -> &[f32] {
        &self.data
    }

    /// The raw identifier buffer.
    pub fn raw_ids(&self) -> &[u32] {
        &self.ids
    }

    /// Iterates over descriptors in storage order.
    pub fn iter(&self) -> impl Iterator<Item = Descriptor> + '_ {
        (0..self.len()).map(move |i| self.get(i))
    }

    /// Builds a subset containing the descriptors at `positions`, preserving
    /// identifiers and image attribution.
    pub fn subset(&self, positions: &[usize]) -> DescriptorSet {
        let mut out = DescriptorSet::with_capacity(positions.len());
        if self.image_of.is_some() {
            out.image_of = Some(Vec::with_capacity(positions.len()));
        }
        for &p in positions {
            out.data.extend_from_slice(self.vector(p));
            out.ids.push(self.ids[p]);
            if let (Some(dst), Some(src)) = (&mut out.image_of, &self.image_of) {
                dst.push(src[p]);
            }
        }
        out
    }

    /// Builds a set from owned parts.
    ///
    /// # Panics
    ///
    /// Panics if the buffer lengths violate the SoA invariants.
    pub fn from_parts(data: Vec<f32>, ids: Vec<u32>, image_of: Option<Vec<u32>>) -> Self {
        assert_eq!(data.len(), ids.len() * DIM, "data/ids length mismatch");
        if let Some(map) = &image_of {
            assert_eq!(map.len(), ids.len(), "image map length mismatch");
        }
        DescriptorSet {
            data,
            ids,
            image_of,
        }
    }
}

impl FromIterator<Descriptor> for DescriptorSet {
    fn from_iter<I: IntoIterator<Item = Descriptor>>(iter: I) -> Self {
        let mut set = DescriptorSet::new();
        for d in iter {
            set.push(d);
        }
        set
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(n: usize) -> DescriptorSet {
        (0..n)
            .map(|i| Descriptor::new(i as u32 * 10, Vector::splat(i as f32)))
            .collect()
    }

    #[test]
    fn push_and_get_roundtrip() {
        let set = sample(5);
        assert_eq!(set.len(), 5);
        for i in 0..5 {
            let d = set.get(i);
            assert_eq!(d.id, DescriptorId(i as u32 * 10));
            assert_eq!(d.vector, Vector::splat(i as f32));
        }
    }

    #[test]
    fn empty_set_properties() {
        let set = DescriptorSet::new();
        assert!(set.is_empty());
        assert_eq!(set.len(), 0);
        assert!(set.packed().is_empty());
        assert!(!set.has_images());
    }

    #[test]
    fn packed_layout_is_row_major() {
        let set = sample(3);
        let packed = set.packed();
        assert_eq!(packed.len(), 3 * DIM);
        assert_eq!(packed[0], 0.0);
        assert_eq!(packed[DIM], 1.0);
        assert_eq!(packed[2 * DIM], 2.0);
    }

    #[test]
    fn image_attribution() {
        let mut set = DescriptorSet::new();
        set.push(Descriptor::new(0, Vector::ZERO));
        set.push_with_image(Descriptor::new(1, Vector::ZERO), ImageId(7));
        set.push_with_image(Descriptor::new(2, Vector::ZERO), ImageId(9));
        assert!(set.has_images());
        assert_eq!(set.image(0), None); // pushed before tracking started
        assert_eq!(set.image(1), Some(ImageId(7)));
        assert_eq!(set.image(2), Some(ImageId(9)));
    }

    #[test]
    fn push_after_image_tracking_keeps_alignment() {
        let mut set = DescriptorSet::new();
        set.push_with_image(Descriptor::new(0, Vector::ZERO), ImageId(1));
        set.push(Descriptor::new(1, Vector::ZERO));
        assert_eq!(set.image(0), Some(ImageId(1)));
        assert_eq!(set.image(1), None);
    }

    #[test]
    fn subset_preserves_ids_and_images() {
        let mut set = DescriptorSet::new();
        for i in 0..6u32 {
            set.push_with_image(Descriptor::new(i, Vector::splat(i as f32)), ImageId(i / 2));
        }
        let sub = set.subset(&[4, 1]);
        assert_eq!(sub.len(), 2);
        assert_eq!(sub.id(0), DescriptorId(4));
        assert_eq!(sub.id(1), DescriptorId(1));
        assert_eq!(sub.image(0), Some(ImageId(2)));
        assert_eq!(sub.image(1), Some(ImageId(0)));
        assert_eq!(sub.vector_owned(0), Vector::splat(4.0));
    }

    #[test]
    fn iter_visits_all_in_order() {
        let set = sample(4);
        let ids: Vec<u32> = set.iter().map(|d| d.id.0).collect();
        assert_eq!(ids, vec![0, 10, 20, 30]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn from_parts_validates_lengths() {
        DescriptorSet::from_parts(vec![0.0; DIM], vec![1, 2], None);
    }

    #[test]
    fn from_parts_valid() {
        let set = DescriptorSet::from_parts(vec![1.0; 2 * DIM], vec![5, 6], Some(vec![0, 1]));
        assert_eq!(set.len(), 2);
        assert_eq!(set.image(1), Some(ImageId(1)));
    }
}
