#![warn(missing_docs)]

//! # eff2-descriptor
//!
//! The data substrate for the `eff2` reproduction of *"The Quality vs. Time
//! Trade-off for Approximate Image Descriptor Search"* (ICDE Workshops 2005).
//!
//! The paper describes images with **24-dimensional local descriptors** — a
//! few hundred per image — derived from the grey-level differential
//! invariants of Florack et al., as extended to colour by Amsaleg & Gros.
//! Similarity between images is a nearest-neighbour search in Euclidean
//! space over those descriptors. Each descriptor occupies 100 bytes on disk
//! (24 × 4-byte floats plus a 4-byte identifier).
//!
//! This crate provides:
//!
//! * [`Vector`] — the fixed 24-dimensional point type and its distance
//!   kernels ([`l2_sq`], [`l2`]);
//! * [`Descriptor`] / [`DescriptorSet`] — identified descriptors and a
//!   structure-of-arrays collection container;
//! * [`codec`] — the 100-byte-per-descriptor binary collection format;
//! * [`gen`] — a synthetic collection generator that simulates the density
//!   skew of real local-descriptor collections (the paper's collection has a
//!   few *enormous* natural clusters — its largest BAG chunk holds more than
//!   a million of the five million descriptors);
//! * [`stats`] — per-dimension statistics, including the 5 %-trimmed value
//!   ranges the paper uses to create its "space query" (SQ) workload;
//! * [`quant`] — database-side compression codecs (a scalar 8-bit
//!   quantizer and a product quantizer) whose asymmetric-distance kernels
//!   in [`kernels`] scan `u8` codes against `f32` queries, bit-identical
//!   to decoding and running the exact kernel.

pub mod codec;
pub mod descriptor;
pub mod error;
pub mod gen;
pub mod kernels;
pub mod neighbors;
pub mod quant;
pub mod stats;
pub mod vector;

pub use descriptor::{Descriptor, DescriptorId, DescriptorSet, ImageId};
pub use error::{Error, Result};
pub use gen::{CollectionSpec, SyntheticCollection};
pub use kernels::{
    adc_l2_sq, adc_l2_sq_batch, adc_l2_sq_x4, adc_scan_block_into, as_rows, l2_sq_x4,
    scan_block_into,
};
pub use neighbors::{Neighbor, NeighborSet};
pub use quant::{Codec, DescriptorCodec, PqCodec, PreparedQuery, Sq8Codec};
pub use stats::{DimensionStats, TrimmedRanges};
pub use vector::{l2, l2_sq, l2_sq_batch, l2_sq_serial, Vector, DIM, LANES};
