//! Synthetic descriptor collection generator.
//!
//! The paper evaluates on 5,017,298 real 24-dimensional local descriptors
//! from 52,273 images (610 INRIA stills plus television broadcasts). That
//! collection is not available, so this module synthesises one with the
//! three properties the experiments actually depend on:
//!
//! 1. **Density skew.** Real local-descriptor collections are extremely
//!    unevenly distributed: the paper's largest BAG cluster holds more than
//!    a *million* of the five million descriptors (Fig. 1). We model this
//!    with a Zipf-popular vocabulary of "visual elements": a handful of
//!    ubiquitous elements (think station logos, studio backgrounds in TV
//!    footage) attract enormous descriptor populations.
//! 2. **Per-image bursts.** A few hundred descriptors per image, each drawn
//!    near one of the image's elements, with a small per-image offset so
//!    that repeated footage produces tight near-duplicate groups — this is
//!    why the paper's DQ queries "search their own chunk first and find
//!    there a high number of nearest neighbors" (§5.5).
//! 3. **Background noise.** A fraction of descriptors is drawn uniformly
//!    from the bounding box of the space; these become the 8–12 % outliers
//!    that BAG discards (Table 1).
//!
//! Determinism: the generator is fully reproducible from `seed`.
// lint:allow-file(panic.index): DIM-bounded component loops of the synthetic generator

use crate::descriptor::{Descriptor, DescriptorSet, ImageId};
use crate::vector::{Vector, DIM};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters of a synthetic collection.
#[derive(Clone, Debug)]
pub struct CollectionSpec {
    /// Number of images to simulate.
    pub n_images: usize,
    /// Mean number of descriptors per image (the paper: "a few hundreds").
    /// Actual counts are uniform in `[mean/2, 3*mean/2]`.
    pub mean_descriptors_per_image: usize,
    /// Size of the visual-element vocabulary.
    pub n_elements: usize,
    /// Zipf exponent of element popularity; larger ⇒ more skew ⇒ bigger
    /// natural clusters. The paper's Fig. 1 skew corresponds to ≈1.1.
    pub zipf_exponent: f64,
    /// Mean number of distinct elements appearing in one image.
    pub elements_per_image: usize,
    /// Half-extent of the cube element centres are drawn from.
    pub space_half_extent: f32,
    /// Standard deviation of descriptors around their element centre.
    pub element_sigma: f32,
    /// Standard deviation of the per-image offset applied to an element.
    pub image_jitter_sigma: f32,
    /// Fraction of descriptors drawn uniformly from the (enlarged) space
    /// (outliers).
    pub noise_fraction: f64,
    /// Noise points are drawn from a cube this many times larger than the
    /// element cube, so they sit in the sparse periphery like real rare
    /// descriptors (inside the cloud they would simply be absorbed).
    pub noise_extent_factor: f32,
    /// RNG seed.
    pub seed: u64,
}

impl CollectionSpec {
    /// A specification sized to produce roughly `n` descriptors with the
    /// paper-like default shape parameters.
    ///
    /// The paper's ratio is ≈96 descriptors per image (5,017,298 / 52,273);
    /// we keep that ratio so that scaling `n` scales the image count.
    pub fn sized(n: usize, seed: u64) -> Self {
        let per_image = 96;
        let n_images = (n / per_image).max(1);
        CollectionSpec {
            n_images,
            mean_descriptors_per_image: per_image,
            // Vocabulary grows sub-linearly with the collection: new footage
            // mostly re-observes known elements.
            n_elements: ((n as f64).sqrt() as usize * 2).clamp(64, 50_000),
            zipf_exponent: 1.1,
            elements_per_image: 6,
            // The ratio of element spread to space extent controls the
            // distance *contrast* of the collection, and with it how well
            // the centroid−radius bound prunes. Real 24-d local-descriptor
            // clouds have low contrast (distance concentration): the
            // paper's completion times (16–45 s ≈ a full scan for both
            // strategies) show pruning only bites at the very end. With
            // σ = 8 against a ±20 cube, cluster diameters (≈ 2·8·√24 ≈ 78)
            // are commensurate with inter-element distances (≈ 80), so
            // bounding spheres overlap heavily and the search degrades
            // towards a guided scan — while the density modes BAG needs
            // are still present.
            space_half_extent: 20.0,
            element_sigma: 8.0,
            image_jitter_sigma: 1.5,
            noise_fraction: 0.10,
            noise_extent_factor: 2.5,
            seed,
        }
    }

    /// Expected number of descriptors this spec will generate (approximate;
    /// the realised count varies with per-image draws).
    pub fn expected_len(&self) -> usize {
        self.n_images * self.mean_descriptors_per_image
    }
}

impl Default for CollectionSpec {
    fn default() -> Self {
        CollectionSpec::sized(100_000, 42)
    }
}

/// A generated collection together with the specification that produced it.
#[derive(Clone, Debug)]
pub struct SyntheticCollection {
    /// The descriptors (with image attribution).
    pub set: DescriptorSet,
    /// The generating specification.
    pub spec: CollectionSpec,
}

impl SyntheticCollection {
    /// Generates a collection from `spec`.
    pub fn generate(spec: CollectionSpec) -> Self {
        let mut rng = StdRng::seed_from_u64(spec.seed);

        // Element centres: uniform in the cube. Popularity: Zipf over rank.
        let centres: Vec<Vector> = (0..spec.n_elements)
            .map(|_| uniform_vector(&mut rng, spec.space_half_extent))
            .collect();
        let popularity = ZipfSampler::new(spec.n_elements, spec.zipf_exponent);

        let mut set = DescriptorSet::with_capacity(spec.expected_len());
        let mut next_id: u32 = 0;
        for image in 0..spec.n_images {
            // Which elements appear in this image, and where (jittered).
            let n_el = spec.elements_per_image.max(1);
            let mut image_elements = Vec::with_capacity(n_el);
            for _ in 0..n_el {
                let el = popularity.sample(&mut rng);
                let mut centre = centres[el];
                for d in 0..DIM {
                    centre[d] += gaussian(&mut rng) * spec.image_jitter_sigma;
                }
                image_elements.push(centre);
            }

            let lo = spec.mean_descriptors_per_image / 2;
            let hi = spec.mean_descriptors_per_image * 3 / 2;
            let n_desc = if hi > lo { rng.gen_range(lo..=hi) } else { lo }.max(1);
            for _ in 0..n_desc {
                let v = if rng.gen_bool(spec.noise_fraction) {
                    uniform_vector(&mut rng, spec.space_half_extent * spec.noise_extent_factor)
                } else {
                    let centre = &image_elements[rng.gen_range(0..image_elements.len())];
                    let mut v = *centre;
                    for d in 0..DIM {
                        v[d] += gaussian(&mut rng) * spec.element_sigma;
                    }
                    v
                };
                set.push_with_image(Descriptor::new(next_id, v), ImageId(image as u32));
                next_id += 1;
            }
        }
        SyntheticCollection { set, spec }
    }

    /// Shorthand: generate roughly `n` descriptors with seed `seed`.
    pub fn with_size(n: usize, seed: u64) -> Self {
        Self::generate(CollectionSpec::sized(n, seed))
    }
}

/// Samples ranks with probability ∝ 1/(rank+1)^s via inverse-CDF lookup.
struct ZipfSampler {
    cumulative: Vec<f64>,
}

impl ZipfSampler {
    fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf sampler needs a non-empty support");
        let mut cumulative = Vec::with_capacity(n);
        let mut total = 0.0;
        for k in 0..n {
            total += 1.0 / ((k + 1) as f64).powf(s);
            cumulative.push(total);
        }
        // Normalise so the last entry is exactly 1.
        for c in cumulative.iter_mut() {
            *c /= total;
        }
        ZipfSampler { cumulative }
    }

    fn sample<R: Rng>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        self.cumulative
            .partition_point(|&c| c < u)
            .min(self.cumulative.len() - 1)
    }
}

/// One standard-normal draw (Box–Muller; we deliberately discard the paired
/// second variate to keep the sampler stateless).
fn gaussian<R: Rng>(rng: &mut R) -> f32 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen();
    ((-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()) as f32
}

fn uniform_vector<R: Rng>(rng: &mut R, half_extent: f32) -> Vector {
    let mut v = Vector::ZERO;
    for d in 0..DIM {
        v[d] = rng.gen_range(-half_extent..half_extent);
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = SyntheticCollection::with_size(2_000, 7);
        let b = SyntheticCollection::with_size(2_000, 7);
        assert_eq!(a.set.len(), b.set.len());
        for i in (0..a.set.len()).step_by(97) {
            assert_eq!(a.set.get(i), b.set.get(i));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = SyntheticCollection::with_size(1_000, 1);
        let b = SyntheticCollection::with_size(1_000, 2);
        // Same spec shape, but the actual points must differ.
        let differs = (0..a.set.len().min(b.set.len()))
            .any(|i| a.set.vector_owned(i) != b.set.vector_owned(i));
        assert!(differs);
    }

    #[test]
    fn size_is_close_to_requested() {
        let c = SyntheticCollection::with_size(10_000, 3);
        let n = c.set.len();
        assert!(n > 7_000 && n < 13_000, "got {n}");
    }

    #[test]
    fn ids_are_dense_and_unique() {
        let c = SyntheticCollection::with_size(3_000, 5);
        for i in 0..c.set.len() {
            assert_eq!(c.set.id(i).0 as usize, i);
        }
    }

    #[test]
    fn images_are_attributed_and_monotone() {
        let c = SyntheticCollection::with_size(2_000, 5);
        assert!(c.set.has_images());
        let mut last = 0u32;
        for i in 0..c.set.len() {
            let img = c
                .set
                .image(i)
                .expect("generator attributes every descriptor")
                .0;
            assert!(
                img >= last,
                "image ids must be non-decreasing in storage order"
            );
            last = img;
        }
        assert!((last as usize) < c.spec.n_images);
    }

    #[test]
    fn points_stay_in_plausible_box() {
        let c = SyntheticCollection::with_size(5_000, 11);
        let ext =
            c.spec.space_half_extent * c.spec.noise_extent_factor + 8.0 * c.spec.element_sigma;
        for i in 0..c.set.len() {
            for &x in c.set.vector(i) {
                assert!(x.abs() <= ext, "component {x} escapes the space box");
                assert!(x.is_finite());
            }
        }
    }

    #[test]
    fn popular_elements_dominate() {
        // Density skew check: the most crowded small ball should hold far
        // more descriptors than an average one. We proxy this by counting
        // duplicates of the nearest element for a sample of points.
        let spec = CollectionSpec::sized(20_000, 13);
        let c = SyntheticCollection::generate(spec);
        // Coarse grid occupancy: bucket by sign pattern of first 8 dims.
        let mut buckets = std::collections::HashMap::new();
        for i in 0..c.set.len() {
            let v = c.set.vector(i);
            let mut key = 0u32;
            for (d, &x) in v.iter().take(8).enumerate() {
                if x > 0.0 {
                    key |= 1 << d;
                }
            }
            *buckets.entry(key).or_insert(0usize) += 1;
        }
        let max = *buckets.values().max().expect("non-empty");
        let mean = c.set.len() / buckets.len().max(1);
        assert!(
            max > mean * 3,
            "expected a heavily skewed occupancy, max {max} vs mean {mean}"
        );
    }

    #[test]
    fn zipf_sampler_prefers_low_ranks() {
        let z = ZipfSampler::new(100, 1.1);
        let mut rng = StdRng::seed_from_u64(0);
        let mut counts = vec![0usize; 100];
        for _ in 0..10_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[10] && counts[0] > counts[50]);
        assert!(counts[0] > 500, "rank 0 should dominate, got {}", counts[0]);
    }

    #[test]
    fn gaussian_moments() {
        let mut rng = StdRng::seed_from_u64(9);
        let n = 20_000;
        let (mut sum, mut sum_sq) = (0.0f64, 0.0f64);
        for _ in 0..n {
            let g = f64::from(gaussian(&mut rng));
            sum += g;
            sum_sq += g * g;
        }
        let mean = sum / n as f64;
        let var = sum_sq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn expected_len_matches_shape() {
        let spec = CollectionSpec::sized(50_000, 0);
        assert_eq!(
            spec.expected_len(),
            spec.n_images * spec.mean_descriptors_per_image
        );
    }
}
