//! The current-neighbour set maintained during a chunk scan.
//!
//! This lives in the descriptor crate (rather than `eff2-core`, which
//! re-exports it) so the fused scan kernel in [`crate::kernels`] can fold
//! the top-k offer loop directly into the blocked distance computation.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// One search answer: a descriptor identifier and its distance to the
/// query.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Neighbor {
    /// Descriptor identifier.
    pub id: u32,
    /// Euclidean distance to the query.
    pub dist: f32,
}

/// A bounded max-heap holding the best `k` neighbours seen so far.
///
/// "This might in turn update the current set of neighbors" (§4.3): every
/// scanned descriptor is offered; only improvements are retained.
///
/// Candidates are totally ordered by `(dist_sq, id)`, so the retained set
/// is the exact k smallest under that order **regardless of offer order**.
/// That determinism is what lets the batched scan kernels and the parallel
/// batch driver produce bit-identical results to a sequential scan even
/// when distance ties cross the kth boundary.
#[derive(Debug)]
pub struct NeighborSet {
    k: usize,
    heap: BinaryHeap<HeapEntry>,
}

#[derive(Debug)]
struct HeapEntry {
    dist_sq: f32,
    id: u32,
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.dist_sq == other.dist_sq && self.id == other.id
    }
}
impl Eq for HeapEntry {}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        self.dist_sq
            .total_cmp(&other.dist_sq)
            .then(self.id.cmp(&other.id))
    }
}

impl NeighborSet {
    /// Creates a set that retains the best `k` offers. `k == 0` is a valid
    /// degenerate set that accepts nothing (used by the k = 0 search path).
    pub fn new(k: usize) -> Self {
        NeighborSet {
            k,
            heap: BinaryHeap::with_capacity(k + 1),
        }
    }

    /// The capacity `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of neighbours currently held.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no neighbour has been accepted yet.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Whether `k` neighbours are held.
    pub fn is_full(&self) -> bool {
        self.heap.len() >= self.k
    }

    /// Offers a candidate with **squared** distance; returns whether it was
    /// accepted. Ties at the kth boundary break towards the smaller id, so
    /// the retained set does not depend on offer order.
    #[inline]
    pub fn offer(&mut self, id: u32, dist_sq: f32) -> bool {
        if self.k == 0 {
            return false;
        }
        let accepted = if self.heap.len() < self.k {
            self.heap.push(HeapEntry { dist_sq, id });
            true
        } else if self.heap.peek().is_some_and(|worst| {
            dist_sq < worst.dist_sq || (dist_sq == worst.dist_sq && id < worst.id)
        }) {
            self.heap.pop();
            self.heap.push(HeapEntry { dist_sq, id });
            true
        } else {
            false
        };
        debug_assert!(
            self.heap.len() <= self.k,
            "neighbour set must never exceed k entries"
        );
        self.check_strict();
        accepted
    }

    /// Expensive O(k·log k) structural checks behind the `strict-invariants`
    /// feature: the heap top really is the maximum under `(dist_sq, id)` and
    /// [`Self::sorted`] is monotone. Debug builds without the feature pay
    /// only the O(1) size assertion above.
    #[cfg(feature = "strict-invariants")]
    fn check_strict(&self) {
        if let Some(top) = self.heap.peek() {
            debug_assert!(
                self.heap.iter().all(|e| e <= top),
                "heap top must dominate every retained entry"
            );
        }
        let sorted = self.sorted();
        debug_assert!(
            sorted
                .windows(2)
                .all(|w| w.first().map(|n| n.dist) <= w.get(1).map(|n| n.dist)),
            "sorted() must be non-decreasing in distance"
        );
    }

    #[cfg(not(feature = "strict-invariants"))]
    #[inline(always)]
    fn check_strict(&self) {}

    /// The current kth-best (i.e. worst retained) squared distance, or
    /// `f32::INFINITY` while fewer than `k` neighbours are held (any
    /// candidate would still be accepted).
    pub fn kth_dist_sq(&self) -> f32 {
        if self.is_full() {
            self.heap.peek().map_or(f32::INFINITY, |e| e.dist_sq)
        } else {
            f32::INFINITY
        }
    }

    /// The current kth-best distance (non-squared), `f32::INFINITY` while
    /// not full.
    pub fn kth_dist(&self) -> f32 {
        let d = self.kth_dist_sq();
        if d.is_finite() {
            d.sqrt()
        } else {
            f32::INFINITY
        }
    }

    /// The current contents, sorted by increasing distance (ties by id).
    pub fn sorted(&self) -> Vec<Neighbor> {
        let mut out: Vec<Neighbor> = self
            .heap
            .iter()
            .map(|e| Neighbor {
                id: e.id,
                dist: e.dist_sq.sqrt(),
            })
            .collect();
        out.sort_by(|a, b| a.dist.total_cmp(&b.dist).then(a.id.cmp(&b.id)));
        out
    }

    /// The current neighbour identifiers, in increasing-distance order.
    pub fn sorted_ids(&self) -> Vec<u32> {
        self.sorted().into_iter().map(|n| n.id).collect()
    }

    /// The current contents as raw `(id, dist_sq)` pairs sorted by
    /// `(dist_sq, id)` — the heap's own total order, **without** the sqrt
    /// applied by [`sorted`](Self::sorted). Re-offering these entries into
    /// another `NeighborSet` reproduces the retained set bit-for-bit, which
    /// is what the scatter–gather merge needs: round-tripping through the
    /// sqrt'd [`Neighbor`] values would perturb tie-breaking at the kth
    /// boundary.
    pub fn entries(&self) -> Vec<(u32, f32)> {
        let mut out: Vec<(u32, f32)> = self.heap.iter().map(|e| (e.id, e.dist_sq)).collect();
        out.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keeps_best_k() {
        let mut set = NeighborSet::new(3);
        for (id, d) in [(0u32, 9.0f32), (1, 4.0), (2, 1.0), (3, 16.0), (4, 0.25)] {
            set.offer(id, d);
        }
        let ids = set.sorted_ids();
        assert_eq!(ids, vec![4, 2, 1]);
        assert!((set.kth_dist() - 2.0).abs() < 1e-6); // sqrt(4.0)
    }

    #[test]
    fn rejects_worse_candidates_when_full() {
        let mut set = NeighborSet::new(2);
        assert!(set.offer(0, 1.0));
        assert!(set.offer(1, 2.0));
        assert!(!set.offer(2, 3.0));
        assert!(set.offer(3, 0.5));
        assert_eq!(set.sorted_ids(), vec![3, 0]);
    }

    #[test]
    fn kth_dist_is_infinite_until_full() {
        let mut set = NeighborSet::new(3);
        set.offer(0, 1.0);
        set.offer(1, 2.0);
        assert_eq!(set.kth_dist_sq(), f32::INFINITY);
        set.offer(2, 3.0);
        assert_eq!(set.kth_dist_sq(), 3.0);
    }

    #[test]
    fn k_zero_accepts_nothing() {
        let mut set = NeighborSet::new(0);
        assert!(!set.offer(0, 1.0));
        assert!(set.is_empty());
        assert!(set.is_full());
        assert!(set.sorted().is_empty());
        assert_eq!(set.kth_dist_sq(), f32::INFINITY);
    }

    #[test]
    fn sorted_distances_are_sqrted() {
        let mut set = NeighborSet::new(1);
        set.offer(7, 9.0);
        let n = set.sorted();
        assert_eq!(n[0].id, 7);
        assert_eq!(n[0].dist, 3.0);
    }

    #[test]
    fn ties_break_by_id() {
        let mut set = NeighborSet::new(2);
        set.offer(5, 1.0);
        set.offer(3, 1.0);
        assert_eq!(set.sorted_ids(), vec![3, 5]);
    }

    #[test]
    fn boundary_ties_prefer_smaller_id_in_any_order() {
        // Three candidates at the same distance competing for k = 2 slots:
        // whatever the offer order, the two smallest ids must win.
        use_all_orders(&[(8, 4.0), (2, 4.0), (5, 4.0)], &[2, 5]);
        // A boundary tie against a worse incumbent.
        use_all_orders(&[(9, 4.0), (1, 1.0), (4, 4.0)], &[1, 4]);
    }

    fn use_all_orders(cands: &[(u32, f32)], expect: &[u32]) {
        let mut order: Vec<usize> = (0..cands.len()).collect();
        // Heap's algorithm, iterative, over the small candidate count.
        let n = order.len();
        let mut c = vec![0usize; n];
        let check = |order: &[usize]| {
            let mut set = NeighborSet::new(2);
            for &i in order {
                set.offer(cands[i].0, cands[i].1);
            }
            assert_eq!(set.sorted_ids(), expect, "order {order:?}");
        };
        check(&order);
        let mut i = 0;
        while i < n {
            if c[i] < i {
                if i % 2 == 0 {
                    order.swap(0, i);
                } else {
                    order.swap(c[i], i);
                }
                check(&order);
                c[i] += 1;
                i = 0;
            } else {
                c[i] = 0;
                i += 1;
            }
        }
    }

    #[test]
    fn entries_round_trip_bit_identically() {
        let mut set = NeighborSet::new(4);
        for (id, d) in [(9u32, 2.5f32), (1, 2.5), (4, 0.1), (7, 8.0), (2, 2.5)] {
            set.offer(id, d);
        }
        let entries = set.entries();
        // Raw squared distances, ordered by (dist_sq, id).
        assert_eq!(entries, vec![(4, 0.1), (1, 2.5), (2, 2.5), (9, 2.5)]);
        let mut merged = NeighborSet::new(4);
        for (id, d) in entries {
            merged.offer(id, d);
        }
        assert_eq!(merged.sorted_ids(), set.sorted_ids());
        assert_eq!(merged.kth_dist_sq().to_bits(), set.kth_dist_sq().to_bits());
    }

    #[test]
    fn len_tracks_offers() {
        let mut set = NeighborSet::new(5);
        assert_eq!(set.len(), 0);
        set.offer(0, 1.0);
        set.offer(1, 2.0);
        assert_eq!(set.len(), 2);
        assert!(!set.is_full());
    }
}
