//! Blocked and fused distance kernels over packed row-major buffers.
//!
//! Chunk scans dominate query cost: every descriptor in every fetched
//! chunk is one squared-distance evaluation against the query (§4.3). The
//! canonical [`l2_sq`] kernel accumulates into lanes so LLVM vectorises
//! *within* one row; the kernels here additionally process rows in blocks
//! of [`BLOCK`], which
//!
//! * shares the query loads across the block and gives the CPU `BLOCK`
//!   independent reductions to overlap, and
//! * keeps each row's accumulation order identical to [`l2_sq`] (the same
//!   lane scheme), so every distance is **bit-identical** to the
//!   single-row kernel (property-tested in `tests/props.rs`) — the
//!   blocked path is a pure speed-up, never a semantic change.
//!
//! [`scan_block_into`] additionally fuses the top-k offer loop into the
//! block scan: distances stay in registers (no per-chunk distance buffer)
//! and a whole block is skipped against the current kth distance before
//! any heap traffic happens.
// lint:allow-file(panic.index): blocked distance kernels index fixed-size lane arrays at compile-time-constant offsets

use crate::neighbors::NeighborSet;
use crate::quant::PreparedQuery;
use crate::vector::{l2_sq, sum_lanes, DIM, LANES};

/// Rows per block. Four rows keeps all accumulators in registers on
/// every x86-64/aarch64 target while already saturating the gain; eight
/// measured no better (see `EXPERIMENTS.md`).
pub const BLOCK: usize = 4;

/// Reinterprets a packed row-major buffer as `DIM`-sized rows.
///
/// This is the one safe choke point replacing the
/// `try_into().expect(...)` pattern every `chunks_exact(DIM)` consumer
/// used to carry.
///
/// # Panics
///
/// Panics if `packed.len()` is not a multiple of [`DIM`]; everywhere this
/// is used that is an internal invariant violation.
#[inline]
pub fn as_rows(packed: &[f32]) -> &[[f32; DIM]] {
    let (rows, rest) = packed.as_chunks::<DIM>();
    assert!(
        rest.is_empty(),
        "packed vector data must be a multiple of DIM"
    );
    rows
}

/// Squared distances from `q` to four rows.
///
/// Each row runs the canonical lane kernel, so
/// `l2_sq_x4(q, a, b, c, d)[0] == l2_sq(q, a)` exactly, bit for bit; the
/// four inlined reductions are independent and overlap in the pipeline.
#[inline]
pub fn l2_sq_x4(
    q: &[f32; DIM],
    r0: &[f32; DIM],
    r1: &[f32; DIM],
    r2: &[f32; DIM],
    r3: &[f32; DIM],
) -> [f32; 4] {
    [l2_sq(q, r0), l2_sq(q, r1), l2_sq(q, r2), l2_sq(q, r3)]
}

/// Blocked squared distances from `q` to every row, written to `out`.
///
/// # Panics
///
/// Panics if `out.len() != rows.len()`.
pub fn l2_sq_rows(q: &[f32; DIM], rows: &[[f32; DIM]], out: &mut [f32]) {
    assert_eq!(out.len(), rows.len(), "output length mismatch");
    let mut i = 0;
    while i + BLOCK <= rows.len() {
        let d = l2_sq_x4(q, &rows[i], &rows[i + 1], &rows[i + 2], &rows[i + 3]);
        out[i..i + BLOCK].copy_from_slice(&d);
        i += BLOCK;
    }
    for j in i..rows.len() {
        out[j] = l2_sq(q, &rows[j]);
    }
}

/// Blocked squared distances from `q` to a packed buffer, reusing `out`'s
/// capacity (`out` is cleared first).
///
/// # Panics
///
/// Panics if `packed.len()` is not a multiple of [`DIM`].
pub fn l2_sq_batch(q: &[f32; DIM], packed: &[f32], out: &mut Vec<f32>) {
    let rows = as_rows(packed);
    out.clear();
    out.resize(rows.len(), 0.0);
    l2_sq_rows(q, rows, out);
}

/// Fused block scan: computes blocked distances to `packed` and offers
/// each `(id, dist_sq)` to `best`, skipping candidates the current kth
/// distance already prunes. Distances never touch memory.
///
/// Equivalent to offering `l2_sq(q, row)` row by row — the [`NeighborSet`]
/// total order `(dist_sq, id)` makes the outcome independent of both the
/// pruning and the offer order.
///
/// # Panics
///
/// Panics if `packed.len()` is not a multiple of [`DIM`] or if there is
/// not exactly one id per row.
pub fn scan_block_into(q: &[f32; DIM], packed: &[f32], ids: &[u32], best: &mut NeighborSet) {
    let rows = as_rows(packed);
    assert_eq!(rows.len(), ids.len(), "one id per packed row");
    if best.k() == 0 {
        return;
    }
    let mut i = 0;
    while i + BLOCK <= rows.len() {
        let d = l2_sq_x4(q, &rows[i], &rows[i + 1], &rows[i + 2], &rows[i + 3]);
        // The kth distance only shrinks inside the block, so the value at
        // block entry is a conservative prune: a skipped candidate could
        // never be accepted, an admitted one is re-checked by `offer`.
        let kth = best.kth_dist_sq();
        for (j, &dj) in d.iter().enumerate() {
            if dj <= kth {
                best.offer(ids[i + j], dj);
            }
        }
        i += BLOCK;
    }
    for j in i..rows.len() {
        best.offer(ids[j], l2_sq(q, &rows[j]));
    }
}

/// Max squared distance from `q` to the rows at `positions` (a scattered
/// gather over a packed buffer); `0.0` for no positions.
///
/// This is the radius-recomputation kernel: BAG's exact merged radius is
/// the max distance from a candidate centroid to every member of both
/// clusters, gathered by position from the collection's packed storage.
///
/// # Panics
///
/// Panics if any position is out of range.
pub fn max_dist_sq_gather(q: &[f32; DIM], rows: &[[f32; DIM]], positions: &[u32]) -> f32 {
    let mut m0 = 0.0f32;
    let mut m1 = 0.0f32;
    let mut m2 = 0.0f32;
    let mut m3 = 0.0f32;
    let mut chunks = positions.chunks_exact(BLOCK);
    for p in &mut chunks {
        let d = l2_sq_x4(
            q,
            &rows[p[0] as usize],
            &rows[p[1] as usize],
            &rows[p[2] as usize],
            &rows[p[3] as usize],
        );
        m0 = m0.max(d[0]);
        m1 = m1.max(d[1]);
        m2 = m2.max(d[2]);
        m3 = m3.max(d[3]);
    }
    for &p in chunks.remainder() {
        m0 = m0.max(l2_sq(q, &rows[p as usize]));
    }
    m0.max(m1).max(m2).max(m3)
}

/// The SQ8 arm of [`adc_l2_sq`]: decode (`lo + code·step`) fused into the
/// lane-accumulated distance, on a fixed-size code so the loop vectorises
/// like `l2_sq` does.
#[inline(always)]
fn adc_sq8_one(q: &[f32; DIM], lo: &[f32; DIM], step: &[f32; DIM], code: &[u8]) -> f32 {
    assert_eq!(code.len(), DIM, "SQ8 code is one byte per dimension");
    let code: &[u8; DIM] = match code.try_into() {
        Ok(a) => a,
        // lint:allow(panic.macro): the conversion cannot fail — length asserted above
        Err(_) => unreachable!("length asserted above"),
    };
    let mut acc = [0.0f32; LANES];
    let mut i = 0;
    while i < DIM {
        for (l, s) in acc.iter_mut().enumerate() {
            let r = lo[i + l] + f32::from(code[i + l]) * step[i + l];
            let d = q[i + l] - r;
            *s += d * d;
        }
        i += LANES;
    }
    sum_lanes(&acc)
}

/// The PQ arm of [`adc_l2_sq`]: per-subspace LUT rows added into the lane
/// scheme. Component `j·sub + t` lands in lane `(j·sub + t) % LANES`; the
/// indices are consecutive, so the lane is a wrapping counter — no
/// per-element div/mod on the hot path.
#[inline(always)]
fn adc_pq_one(lut: &[f32], m: usize, k: usize, code: &[u8]) -> f32 {
    assert_eq!(code.len(), m, "PQ code is one byte per subspace");
    let sub = DIM / m;
    // Lane-aligned fast paths: when a whole number of subspaces covers
    // exactly LANES components, every accumulator index is a compile-time
    // constant and the adds stay in registers. Same terms into the same
    // lanes in the same order as the generic walk below.
    match sub {
        4 => return adc_pq_lanes::<4, 2>(lut, k, code),
        8 => return adc_pq_lanes::<8, 1>(lut, k, code),
        _ => {}
    }
    let mut acc = [0.0f32; LANES];
    let mut lane = 0;
    for (j, &c) in code.iter().enumerate() {
        // Same out-of-range clamp as `decode_into`, so the kernel stays
        // bit-identical to decode-then-scan on any input.
        let base = (j * k + usize::from(c).min(k - 1)) * sub;
        for &term in &lut[base..base + sub] {
            acc[lane] += term;
            lane += 1;
            if lane == LANES {
                lane = 0;
            }
        }
    }
    sum_lanes(&acc)
}

/// Lane-aligned PQ accumulation: `PER` subspaces of `SUB` components fill
/// the [`LANES`] accumulators exactly once per group (`SUB · PER ==
/// LANES`), so component `j·SUB + t` lands in lane `(j·SUB + t) % LANES`
/// at a compile-time constant index. Bit-identical to the wrapping-lane
/// walk in [`adc_pq_one`]: per lane, the same terms are added in the same
/// order.
#[inline(always)]
fn adc_pq_lanes<const SUB: usize, const PER: usize>(lut: &[f32], k: usize, code: &[u8]) -> f32 {
    const { assert!(SUB * PER == LANES) }
    let mut acc = [0.0f32; LANES];
    let mut groups = code.chunks_exact(PER);
    let mut j = 0usize;
    for group in &mut groups {
        for (p, &c) in group.iter().enumerate() {
            let base = ((j + p) * k + usize::from(c).min(k - 1)) * SUB;
            let terms: &[f32; SUB] = match lut[base..base + SUB].try_into() {
                Ok(a) => a,
                // lint:allow(panic.macro): the conversion cannot fail — slice is SUB long by construction
                Err(_) => unreachable!("slice is SUB long by construction"),
            };
            for (t, &term) in terms.iter().enumerate() {
                acc[p * SUB + t] += term;
            }
        }
        j += PER;
    }
    // Remainder subspaces when `m` is not a multiple of `PER`: full groups
    // consumed a multiple of LANES components, so the wrap restarts at
    // lane 0 — the generic walk continues from exactly this state.
    let mut lane = 0;
    for (r, &c) in groups.remainder().iter().enumerate() {
        let base = ((j + r) * k + usize::from(c).min(k - 1)) * SUB;
        for &term in &lut[base..base + SUB] {
            acc[lane] += term;
            lane += 1;
            if lane == LANES {
                lane = 0;
            }
        }
    }
    sum_lanes(&acc)
}

/// Asymmetric squared distance from a prepared query to one encoded
/// descriptor.
///
/// Reproduces `l2_sq(q, decode(code))` **bit for bit**: each per-component
/// term is computed by exactly the float operations the codec's
/// `decode_into` would perform, accumulated into the same [`LANES`]
/// scheme (component `i` → lane `i % LANES`, combined by the fixed
/// pairwise rule) as [`l2_sq`]. For SQ8 the decode (`lo + code·step`)
/// fuses into the distance; for PQ each component's squared difference is
/// a table lookup prepared once per query.
///
/// # Panics
///
/// Panics if `code.len()` is not the prepared query's `code_bytes()`.
#[inline]
pub fn adc_l2_sq(prep: &PreparedQuery, code: &[u8]) -> f32 {
    match prep {
        PreparedQuery::Sq8 { q, lo, step } => adc_sq8_one(q, lo, step, code),
        PreparedQuery::Pq { lut, m, k } => adc_pq_one(lut, *m, *k, code),
    }
}

/// Asymmetric squared distances from a prepared query to four codes.
///
/// Four independent [`adc_l2_sq`] reductions, so
/// `adc_l2_sq_x4(p, a, b, c, d)[0] == adc_l2_sq(p, a)` exactly.
#[inline]
pub fn adc_l2_sq_x4(prep: &PreparedQuery, c0: &[u8], c1: &[u8], c2: &[u8], c3: &[u8]) -> [f32; 4] {
    [
        adc_l2_sq(prep, c0),
        adc_l2_sq(prep, c1),
        adc_l2_sq(prep, c2),
        adc_l2_sq(prep, c3),
    ]
}

/// Blocked asymmetric distances from a prepared query to a packed code
/// buffer, reusing `out`'s capacity (`out` is cleared first). Every
/// output is bit-identical to [`adc_l2_sq`] of that code row.
///
/// # Panics
///
/// Panics if `codes.len()` is not a multiple of the prepared query's
/// `code_bytes()`.
pub fn adc_l2_sq_batch(prep: &PreparedQuery, codes: &[u8], out: &mut Vec<f32>) {
    let cb = prep.code_bytes();
    assert!(
        codes.len().is_multiple_of(cb),
        "code data must be a multiple of code_bytes"
    );
    let n = codes.len() / cb;
    out.clear();
    out.resize(n, 0.0);
    // One variant dispatch for the whole buffer: the specialised row
    // kernel inlines into the blocked loop of its arm.
    match prep {
        PreparedQuery::Sq8 { q, lo, step } => {
            // Row at a time: the SQ8 reduction already carries LANES
            // independent chains plus the u8→f32 conversion temporaries;
            // a 4-row block spills registers and measures slower.
            for (code, slot) in codes.chunks_exact(cb).zip(out.iter_mut()) {
                *slot = adc_sq8_one(q, lo, step, code);
            }
        }
        PreparedQuery::Pq { lut, m, k } => {
            adc_rows_into(codes, cb, out, |code| adc_pq_one(lut, *m, *k, code));
        }
    }
}

/// Blocked row driver shared by the [`adc_l2_sq_batch`] arms: [`BLOCK`]
/// independent reductions per step, remainder row by row.
#[inline(always)]
fn adc_rows_into(codes: &[u8], cb: usize, out: &mut [f32], one: impl Fn(&[u8]) -> f32) {
    let row = |r: usize| &codes[r * cb..(r + 1) * cb];
    let n = out.len();
    let mut i = 0;
    while i + BLOCK <= n {
        let d = [
            one(row(i)),
            one(row(i + 1)),
            one(row(i + 2)),
            one(row(i + 3)),
        ];
        out[i..i + BLOCK].copy_from_slice(&d);
        i += BLOCK;
    }
    for (j, slot) in out.iter_mut().enumerate().skip(i) {
        *slot = one(row(j));
    }
}

/// Fused asymmetric block scan: blocked [`adc_l2_sq`] distances offered
/// straight to `best`, skipping candidates the current kth distance
/// already prunes — the ADC twin of [`scan_block_into`]. Distances never
/// touch memory and the retained set equals row-by-row [`adc_l2_sq`]
/// offers exactly (the [`NeighborSet`] total order is offer-order
/// independent).
///
/// # Panics
///
/// Panics if `codes.len()` is not a multiple of the prepared query's
/// `code_bytes()` or if there is not exactly one id per code row.
pub fn adc_scan_block_into(
    prep: &PreparedQuery,
    codes: &[u8],
    ids: &[u32],
    best: &mut NeighborSet,
) {
    let cb = prep.code_bytes();
    assert!(
        codes.len().is_multiple_of(cb),
        "code data must be a multiple of code_bytes"
    );
    let n = codes.len() / cb;
    assert_eq!(n, ids.len(), "one id per code row");
    if best.k() == 0 {
        return;
    }
    match prep {
        PreparedQuery::Sq8 { q, lo, step } => {
            adc_scan_rows(codes, cb, ids, best, |code| adc_sq8_one(q, lo, step, code));
        }
        PreparedQuery::Pq { lut, m, k } => {
            adc_scan_rows(codes, cb, ids, best, |code| adc_pq_one(lut, *m, *k, code));
        }
    }
}

/// Blocked scan driver shared by the [`adc_scan_block_into`] arms.
#[inline(always)]
fn adc_scan_rows(
    codes: &[u8],
    cb: usize,
    ids: &[u32],
    best: &mut NeighborSet,
    one: impl Fn(&[u8]) -> f32,
) {
    let row = |r: usize| &codes[r * cb..(r + 1) * cb];
    let n = ids.len();
    let mut i = 0;
    while i + BLOCK <= n {
        let d = [
            one(row(i)),
            one(row(i + 1)),
            one(row(i + 2)),
            one(row(i + 3)),
        ];
        // Same conservative block prune as `scan_block_into`.
        let kth = best.kth_dist_sq();
        for (j, &dj) in d.iter().enumerate() {
            if dj <= kth {
                best.offer(ids[i + j], dj);
            }
        }
        i += BLOCK;
    }
    for (j, &id) in ids.iter().enumerate().skip(i) {
        best.offer(id, one(row(j)));
    }
}

/// Index of the nearest row to `q` among `rows`, with its squared
/// distance; `None` for an empty slice. Ties resolve to the smallest
/// index (same determinism rule as [`NeighborSet`]).
pub fn nearest_row(q: &[f32; DIM], rows: &[[f32; DIM]]) -> Option<(usize, f32)> {
    let mut best: Option<(usize, f32)> = None;
    let mut i = 0;
    while i + BLOCK <= rows.len() {
        let d = l2_sq_x4(q, &rows[i], &rows[i + 1], &rows[i + 2], &rows[i + 3]);
        for (j, &dj) in d.iter().enumerate() {
            if best.is_none_or(|(_, bd)| dj < bd) {
                best = Some((i + j, dj));
            }
        }
        i += BLOCK;
    }
    for (j, row) in rows.iter().enumerate().skip(i) {
        let dj = l2_sq(q, row);
        if best.is_none_or(|(_, bd)| dj < bd) {
            best = Some((j, dj));
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vector::Vector;

    fn rows_of(n: usize, f: impl Fn(usize, usize) -> f32) -> Vec<f32> {
        let mut packed = Vec::with_capacity(n * DIM);
        for r in 0..n {
            for i in 0..DIM {
                packed.push(f(r, i));
            }
        }
        packed
    }

    #[test]
    fn as_rows_splits_exactly() {
        let packed = rows_of(5, |r, i| (r * DIM + i) as f32);
        let rows = as_rows(&packed);
        assert_eq!(rows.len(), 5);
        assert_eq!(rows[2][0], (2 * DIM) as f32);
    }

    #[test]
    #[should_panic(expected = "multiple of DIM")]
    fn as_rows_rejects_ragged() {
        as_rows(&[0.0f32; DIM + 3]);
    }

    #[test]
    fn x4_matches_scalar_bitwise() {
        let q: [f32; DIM] = std::array::from_fn(|i| (i as f32).sin() * 3.7);
        let packed = rows_of(4, |r, i| ((r * 31 + i * 7) as f32).cos() * 11.1);
        let rows = as_rows(&packed);
        let d = l2_sq_x4(&q, &rows[0], &rows[1], &rows[2], &rows[3]);
        for (j, &dj) in d.iter().enumerate() {
            assert_eq!(dj.to_bits(), l2_sq(&q, &rows[j]).to_bits(), "row {j}");
        }
    }

    #[test]
    fn batch_handles_non_block_multiples() {
        let q: [f32; DIM] = std::array::from_fn(|i| i as f32 * 0.25);
        for n in [0usize, 1, 3, 4, 5, 7, 8, 13] {
            let packed = rows_of(n, |r, i| (r + i) as f32 * 0.5);
            let mut out = Vec::new();
            l2_sq_batch(&q, &packed, &mut out);
            assert_eq!(out.len(), n);
            for (j, row) in as_rows(&packed).iter().enumerate() {
                assert_eq!(out[j].to_bits(), l2_sq(&q, row).to_bits(), "n={n} row {j}");
            }
        }
    }

    #[test]
    fn fused_scan_equals_rowwise_offers() {
        let q: [f32; DIM] = std::array::from_fn(|i| ((i * i) % 13) as f32);
        for n in [0usize, 1, 4, 6, 50] {
            let packed = rows_of(n, |r, i| ((r * 17 + i * 3) % 23) as f32);
            let ids: Vec<u32> = (0..n as u32).map(|x| x * 10 + 1).collect();
            let mut fused = NeighborSet::new(5);
            scan_block_into(&q, &packed, &ids, &mut fused);
            let mut rowwise = NeighborSet::new(5);
            for (row, &id) in as_rows(&packed).iter().zip(ids.iter()) {
                rowwise.offer(id, l2_sq(&q, row));
            }
            assert_eq!(fused.sorted(), rowwise.sorted(), "n={n}");
        }
    }

    #[test]
    fn fused_scan_k_zero_is_noop() {
        let packed = rows_of(8, |r, i| (r + i) as f32);
        let ids: Vec<u32> = (0..8).collect();
        let mut set = NeighborSet::new(0);
        scan_block_into(&[0.0; DIM], &packed, &ids, &mut set);
        assert!(set.is_empty());
    }

    #[test]
    fn gather_max_matches_scatter_loop() {
        let q: [f32; DIM] = std::array::from_fn(|i| i as f32);
        let packed = rows_of(20, |r, i| ((r * 7 + i) % 11) as f32);
        let rows = as_rows(&packed);
        for positions in [
            vec![],
            vec![3u32],
            vec![19, 0, 7],
            (0..20u32).rev().collect(),
        ] {
            let want = positions
                .iter()
                .map(|&p| l2_sq(&q, &rows[p as usize]))
                .fold(0.0f32, f32::max);
            assert_eq!(max_dist_sq_gather(&q, rows, &positions), want);
        }
    }

    #[test]
    fn adc_matches_decode_then_exact_bitwise() {
        use crate::descriptor::{Descriptor, DescriptorSet};
        use crate::quant::{Codec, DescriptorCodec, PqCodec, Sq8Codec};

        let set: DescriptorSet = (0..160)
            .map(|i| {
                let mut v = [0.0f32; DIM];
                for (d, x) in v.iter_mut().enumerate() {
                    *x = ((i * 13 + d * 5) % 89) as f32 * 0.21 - 7.0;
                }
                Descriptor::new(i as u32, Vector(v))
            })
            .collect();
        let q: [f32; DIM] = std::array::from_fn(|i| (i as f32).sin() * 4.0);
        for codec in [
            Codec::Sq8(Sq8Codec::from_set(&set)),
            Codec::Pq(PqCodec::from_set(&set)),
        ] {
            let cb = codec.code_bytes();
            let mut codes = vec![0u8; set.len() * cb];
            for (r, row) in as_rows(set.packed()).iter().enumerate() {
                codec.encode_into(row, &mut codes[r * cb..(r + 1) * cb]);
            }
            let prep = codec.prepare(&q);
            assert_eq!(prep.code_bytes(), cb);
            let mut decoded = [0.0f32; DIM];
            for r in 0..set.len() {
                let code = &codes[r * cb..(r + 1) * cb];
                codec.decode_into(code, &mut decoded);
                assert_eq!(
                    adc_l2_sq(&prep, code).to_bits(),
                    l2_sq(&q, &decoded).to_bits(),
                    "codec {} row {r}",
                    codec.name()
                );
            }
            // Blocked + batch paths are bit-identical to the single-code
            // kernel.
            let mut out = Vec::new();
            adc_l2_sq_batch(&prep, &codes, &mut out);
            assert_eq!(out.len(), set.len());
            for (r, d) in out.iter().enumerate() {
                let code = &codes[r * cb..(r + 1) * cb];
                assert_eq!(d.to_bits(), adc_l2_sq(&prep, code).to_bits(), "row {r}");
            }
            // Fused scan retains exactly what row-wise offers retain.
            let ids: Vec<u32> = (0..set.len() as u32).collect();
            let mut fused = NeighborSet::new(7);
            adc_scan_block_into(&prep, &codes, &ids, &mut fused);
            let mut rowwise = NeighborSet::new(7);
            for (r, &id) in ids.iter().enumerate() {
                rowwise.offer(id, adc_l2_sq(&prep, &codes[r * cb..(r + 1) * cb]));
            }
            assert_eq!(fused.sorted(), rowwise.sorted(), "codec {}", codec.name());
        }
    }

    #[test]
    fn adc_scan_k_zero_is_noop() {
        use crate::descriptor::DescriptorSet;
        use crate::quant::{DescriptorCodec, Sq8Codec};
        let codec = Sq8Codec::from_set(&DescriptorSet::new());
        let prep = codec.prepare(&[0.0; DIM]);
        let codes = vec![0u8; 8 * DIM];
        let ids: Vec<u32> = (0..8).collect();
        let mut set = NeighborSet::new(0);
        adc_scan_block_into(&prep, &codes, &ids, &mut set);
        assert!(set.is_empty());
    }

    #[test]
    #[should_panic(expected = "multiple of code_bytes")]
    fn adc_batch_rejects_ragged_codes() {
        use crate::descriptor::DescriptorSet;
        use crate::quant::{DescriptorCodec, Sq8Codec};
        let codec = Sq8Codec::from_set(&DescriptorSet::new());
        let prep = codec.prepare(&[0.0; DIM]);
        adc_l2_sq_batch(&prep, &[0u8; DIM + 1], &mut Vec::new());
    }

    #[test]
    fn nearest_row_finds_exact_match_and_breaks_ties_low() {
        let v = |x: f32| Vector::splat(x).0;
        let rows = [v(5.0), v(1.0), v(3.0), v(1.0), v(9.0), v(2.0)];
        let (idx, d) = nearest_row(&v(1.0), &rows).expect("non-empty");
        assert_eq!((idx, d), (1, 0.0));
        assert!(nearest_row(&v(0.0), &[]).is_none());
    }
}
