//! Blocked and fused distance kernels over packed row-major buffers.
//!
//! Chunk scans dominate query cost: every descriptor in every fetched
//! chunk is one squared-distance evaluation against the query (§4.3). The
//! canonical [`l2_sq`] kernel accumulates into lanes so LLVM vectorises
//! *within* one row; the kernels here additionally process rows in blocks
//! of [`BLOCK`], which
//!
//! * shares the query loads across the block and gives the CPU `BLOCK`
//!   independent reductions to overlap, and
//! * keeps each row's accumulation order identical to [`l2_sq`] (the same
//!   lane scheme), so every distance is **bit-identical** to the
//!   single-row kernel (property-tested in `tests/props.rs`) — the
//!   blocked path is a pure speed-up, never a semantic change.
//!
//! [`scan_block_into`] additionally fuses the top-k offer loop into the
//! block scan: distances stay in registers (no per-chunk distance buffer)
//! and a whole block is skipped against the current kth distance before
//! any heap traffic happens.
// lint:allow-file(panic.index): blocked distance kernels index fixed-size lane arrays at compile-time-constant offsets

use crate::neighbors::NeighborSet;
use crate::vector::{l2_sq, DIM};

/// Rows per block. Four rows keeps all accumulators in registers on
/// every x86-64/aarch64 target while already saturating the gain; eight
/// measured no better (see `EXPERIMENTS.md`).
pub const BLOCK: usize = 4;

/// Reinterprets a packed row-major buffer as `DIM`-sized rows.
///
/// This is the one safe choke point replacing the
/// `try_into().expect(...)` pattern every `chunks_exact(DIM)` consumer
/// used to carry.
///
/// # Panics
///
/// Panics if `packed.len()` is not a multiple of [`DIM`]; everywhere this
/// is used that is an internal invariant violation.
#[inline]
pub fn as_rows(packed: &[f32]) -> &[[f32; DIM]] {
    let (rows, rest) = packed.as_chunks::<DIM>();
    assert!(
        rest.is_empty(),
        "packed vector data must be a multiple of DIM"
    );
    rows
}

/// Squared distances from `q` to four rows.
///
/// Each row runs the canonical lane kernel, so
/// `l2_sq_x4(q, a, b, c, d)[0] == l2_sq(q, a)` exactly, bit for bit; the
/// four inlined reductions are independent and overlap in the pipeline.
#[inline]
pub fn l2_sq_x4(
    q: &[f32; DIM],
    r0: &[f32; DIM],
    r1: &[f32; DIM],
    r2: &[f32; DIM],
    r3: &[f32; DIM],
) -> [f32; 4] {
    [l2_sq(q, r0), l2_sq(q, r1), l2_sq(q, r2), l2_sq(q, r3)]
}

/// Blocked squared distances from `q` to every row, written to `out`.
///
/// # Panics
///
/// Panics if `out.len() != rows.len()`.
pub fn l2_sq_rows(q: &[f32; DIM], rows: &[[f32; DIM]], out: &mut [f32]) {
    assert_eq!(out.len(), rows.len(), "output length mismatch");
    let mut i = 0;
    while i + BLOCK <= rows.len() {
        let d = l2_sq_x4(q, &rows[i], &rows[i + 1], &rows[i + 2], &rows[i + 3]);
        out[i..i + BLOCK].copy_from_slice(&d);
        i += BLOCK;
    }
    for j in i..rows.len() {
        out[j] = l2_sq(q, &rows[j]);
    }
}

/// Blocked squared distances from `q` to a packed buffer, reusing `out`'s
/// capacity (`out` is cleared first).
///
/// # Panics
///
/// Panics if `packed.len()` is not a multiple of [`DIM`].
pub fn l2_sq_batch(q: &[f32; DIM], packed: &[f32], out: &mut Vec<f32>) {
    let rows = as_rows(packed);
    out.clear();
    out.resize(rows.len(), 0.0);
    l2_sq_rows(q, rows, out);
}

/// Fused block scan: computes blocked distances to `packed` and offers
/// each `(id, dist_sq)` to `best`, skipping candidates the current kth
/// distance already prunes. Distances never touch memory.
///
/// Equivalent to offering `l2_sq(q, row)` row by row — the [`NeighborSet`]
/// total order `(dist_sq, id)` makes the outcome independent of both the
/// pruning and the offer order.
///
/// # Panics
///
/// Panics if `packed.len()` is not a multiple of [`DIM`] or if there is
/// not exactly one id per row.
pub fn scan_block_into(q: &[f32; DIM], packed: &[f32], ids: &[u32], best: &mut NeighborSet) {
    let rows = as_rows(packed);
    assert_eq!(rows.len(), ids.len(), "one id per packed row");
    if best.k() == 0 {
        return;
    }
    let mut i = 0;
    while i + BLOCK <= rows.len() {
        let d = l2_sq_x4(q, &rows[i], &rows[i + 1], &rows[i + 2], &rows[i + 3]);
        // The kth distance only shrinks inside the block, so the value at
        // block entry is a conservative prune: a skipped candidate could
        // never be accepted, an admitted one is re-checked by `offer`.
        let kth = best.kth_dist_sq();
        for (j, &dj) in d.iter().enumerate() {
            if dj <= kth {
                best.offer(ids[i + j], dj);
            }
        }
        i += BLOCK;
    }
    for j in i..rows.len() {
        best.offer(ids[j], l2_sq(q, &rows[j]));
    }
}

/// Max squared distance from `q` to the rows at `positions` (a scattered
/// gather over a packed buffer); `0.0` for no positions.
///
/// This is the radius-recomputation kernel: BAG's exact merged radius is
/// the max distance from a candidate centroid to every member of both
/// clusters, gathered by position from the collection's packed storage.
///
/// # Panics
///
/// Panics if any position is out of range.
pub fn max_dist_sq_gather(q: &[f32; DIM], rows: &[[f32; DIM]], positions: &[u32]) -> f32 {
    let mut m0 = 0.0f32;
    let mut m1 = 0.0f32;
    let mut m2 = 0.0f32;
    let mut m3 = 0.0f32;
    let mut chunks = positions.chunks_exact(BLOCK);
    for p in &mut chunks {
        let d = l2_sq_x4(
            q,
            &rows[p[0] as usize],
            &rows[p[1] as usize],
            &rows[p[2] as usize],
            &rows[p[3] as usize],
        );
        m0 = m0.max(d[0]);
        m1 = m1.max(d[1]);
        m2 = m2.max(d[2]);
        m3 = m3.max(d[3]);
    }
    for &p in chunks.remainder() {
        m0 = m0.max(l2_sq(q, &rows[p as usize]));
    }
    m0.max(m1).max(m2).max(m3)
}

/// Index of the nearest row to `q` among `rows`, with its squared
/// distance; `None` for an empty slice. Ties resolve to the smallest
/// index (same determinism rule as [`NeighborSet`]).
pub fn nearest_row(q: &[f32; DIM], rows: &[[f32; DIM]]) -> Option<(usize, f32)> {
    let mut best: Option<(usize, f32)> = None;
    let mut i = 0;
    while i + BLOCK <= rows.len() {
        let d = l2_sq_x4(q, &rows[i], &rows[i + 1], &rows[i + 2], &rows[i + 3]);
        for (j, &dj) in d.iter().enumerate() {
            if best.is_none_or(|(_, bd)| dj < bd) {
                best = Some((i + j, dj));
            }
        }
        i += BLOCK;
    }
    for (j, row) in rows.iter().enumerate().skip(i) {
        let dj = l2_sq(q, row);
        if best.is_none_or(|(_, bd)| dj < bd) {
            best = Some((j, dj));
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vector::Vector;

    fn rows_of(n: usize, f: impl Fn(usize, usize) -> f32) -> Vec<f32> {
        let mut packed = Vec::with_capacity(n * DIM);
        for r in 0..n {
            for i in 0..DIM {
                packed.push(f(r, i));
            }
        }
        packed
    }

    #[test]
    fn as_rows_splits_exactly() {
        let packed = rows_of(5, |r, i| (r * DIM + i) as f32);
        let rows = as_rows(&packed);
        assert_eq!(rows.len(), 5);
        assert_eq!(rows[2][0], (2 * DIM) as f32);
    }

    #[test]
    #[should_panic(expected = "multiple of DIM")]
    fn as_rows_rejects_ragged() {
        as_rows(&[0.0f32; DIM + 3]);
    }

    #[test]
    fn x4_matches_scalar_bitwise() {
        let q: [f32; DIM] = std::array::from_fn(|i| (i as f32).sin() * 3.7);
        let packed = rows_of(4, |r, i| ((r * 31 + i * 7) as f32).cos() * 11.1);
        let rows = as_rows(&packed);
        let d = l2_sq_x4(&q, &rows[0], &rows[1], &rows[2], &rows[3]);
        for (j, &dj) in d.iter().enumerate() {
            assert_eq!(dj.to_bits(), l2_sq(&q, &rows[j]).to_bits(), "row {j}");
        }
    }

    #[test]
    fn batch_handles_non_block_multiples() {
        let q: [f32; DIM] = std::array::from_fn(|i| i as f32 * 0.25);
        for n in [0usize, 1, 3, 4, 5, 7, 8, 13] {
            let packed = rows_of(n, |r, i| (r + i) as f32 * 0.5);
            let mut out = Vec::new();
            l2_sq_batch(&q, &packed, &mut out);
            assert_eq!(out.len(), n);
            for (j, row) in as_rows(&packed).iter().enumerate() {
                assert_eq!(out[j].to_bits(), l2_sq(&q, row).to_bits(), "n={n} row {j}");
            }
        }
    }

    #[test]
    fn fused_scan_equals_rowwise_offers() {
        let q: [f32; DIM] = std::array::from_fn(|i| ((i * i) % 13) as f32);
        for n in [0usize, 1, 4, 6, 50] {
            let packed = rows_of(n, |r, i| ((r * 17 + i * 3) % 23) as f32);
            let ids: Vec<u32> = (0..n as u32).map(|x| x * 10 + 1).collect();
            let mut fused = NeighborSet::new(5);
            scan_block_into(&q, &packed, &ids, &mut fused);
            let mut rowwise = NeighborSet::new(5);
            for (row, &id) in as_rows(&packed).iter().zip(ids.iter()) {
                rowwise.offer(id, l2_sq(&q, row));
            }
            assert_eq!(fused.sorted(), rowwise.sorted(), "n={n}");
        }
    }

    #[test]
    fn fused_scan_k_zero_is_noop() {
        let packed = rows_of(8, |r, i| (r + i) as f32);
        let ids: Vec<u32> = (0..8).collect();
        let mut set = NeighborSet::new(0);
        scan_block_into(&[0.0; DIM], &packed, &ids, &mut set);
        assert!(set.is_empty());
    }

    #[test]
    fn gather_max_matches_scatter_loop() {
        let q: [f32; DIM] = std::array::from_fn(|i| i as f32);
        let packed = rows_of(20, |r, i| ((r * 7 + i) % 11) as f32);
        let rows = as_rows(&packed);
        for positions in [
            vec![],
            vec![3u32],
            vec![19, 0, 7],
            (0..20u32).rev().collect(),
        ] {
            let want = positions
                .iter()
                .map(|&p| l2_sq(&q, &rows[p as usize]))
                .fold(0.0f32, f32::max);
            assert_eq!(max_dist_sq_gather(&q, rows, &positions), want);
        }
    }

    #[test]
    fn nearest_row_finds_exact_match_and_breaks_ties_low() {
        let v = |x: f32| Vector::splat(x).0;
        let rows = [v(5.0), v(1.0), v(3.0), v(1.0), v(9.0), v(2.0)];
        let (idx, d) = nearest_row(&v(1.0), &rows).expect("non-empty");
        assert_eq!((idx, d), (1, 0.0));
        assert!(nearest_row(&v(0.0), &[]).is_none());
    }
}
