//! Descriptor compression codecs for asymmetric-distance search.
//!
//! The raw collection spends 100 bytes per descriptor and the exact scan
//! streams all of it through [`crate::vector::l2_sq`]. Following the
//! IVF/ADC recipe (Baranchuk et al., *Revisiting the Inverted Indices for
//! Billion-Scale ANN*), this module compresses the database side to `u8`
//! codes while queries stay `f32`:
//!
//! * [`Sq8Codec`] — a per-dimension affine scalar quantizer (24 bytes per
//!   descriptor, trained from the collection's [`DimensionStats`] extrema);
//! * [`PqCodec`] — a product quantizer over `M` sub-vectors with a small
//!   per-subspace codebook trained by a deterministic k-means (6 bytes per
//!   descriptor at the default geometry).
//!
//! Both implement [`DescriptorCodec`] and both admit an *asymmetric*
//! distance kernel (query `f32` vs database codes) that reproduces
//! `l2_sq(query, decode(code))` **bit for bit**: the per-component terms
//! are computed by exactly the float operations `decode_into` would
//! perform, accumulated in the canonical LANES=8 order of `l2_sq`. A
//! query is lowered once into a [`PreparedQuery`] (for PQ, a table of
//! per-component squared differences to every codeword) and the kernels
//! in [`crate::kernels`] then scan codes without touching `f32` rows.
//!
//! Everything here is deterministic: codebook training uses fixed stride
//! initialisation, a fixed iteration count, and `f64` accumulation in
//! storage order, so the same collection always yields the same codec.
// lint:allow-file(panic.index): DIM/M-bounded component arithmetic over fixed-size code and codebook tables

use crate::descriptor::DescriptorSet;
use crate::stats::DimensionStats;
use crate::vector::DIM;

/// Number of PQ subspaces in the default geometry (4 dims each).
pub const PQ_M: usize = 6;
/// Codewords per PQ subspace in the default geometry.
pub const PQ_K: usize = 16;
/// K-means refinement rounds used by [`PqCodec::train`].
const PQ_TRAIN_ITERS: usize = 8;
/// Training-sample cap: collections larger than this are strided down so
/// codebook training stays cheap and deterministic at any scale.
const PQ_TRAIN_CAP: usize = 4096;

/// A database-side descriptor compressor.
///
/// Implementations encode a 24-d `f32` descriptor into `code_bytes()`
/// bytes and decode it back into a (lossy) reconstruction. `prepare`
/// lowers a query into whatever table the asymmetric kernels need so the
/// hot loop never re-derives per-query state.
pub trait DescriptorCodec {
    /// Bytes per encoded descriptor.
    fn code_bytes(&self) -> usize;
    /// Encodes `vector` into `code` (exactly `code_bytes()` long).
    fn encode_into(&self, vector: &[f32; DIM], code: &mut [u8]);
    /// Decodes `code` into the reconstruction the ADC kernels score
    /// against.
    fn decode_into(&self, code: &[u8], out: &mut [f32; DIM]);
    /// Lowers `query` into the state the ADC kernels consume.
    fn prepare(&self, query: &[f32; DIM]) -> PreparedQuery;
    /// Short stable name for tables and file labels.
    fn name(&self) -> &'static str;
}

/// Per-query state for the asymmetric kernels in [`crate::kernels`].
///
/// Variants mirror the codecs; dispatch happens once per block, not per
/// component, and the hot loops below stay monomorphic.
// Built once per query and passed by reference into the kernels; boxing
// the Sq8 tables would put every hot-loop load behind a pointer to save
// 264 bytes of one-per-query state.
#[allow(clippy::large_enum_variant)]
#[derive(Clone, Debug)]
pub enum PreparedQuery {
    /// Scalar-quantizer query: the raw query plus the affine table, so the
    /// kernel can fuse decode (`lo + code·step`) into the distance.
    Sq8 {
        /// The query vector.
        q: [f32; DIM],
        /// Per-dimension reconstruction offset.
        lo: [f32; DIM],
        /// Per-dimension reconstruction step.
        step: [f32; DIM],
    },
    /// Product-quantizer query: `lut[(s·K + j)·SUB + t]` holds the squared
    /// difference between query component `s·SUB + t` and codeword `j` of
    /// subspace `s` — per-component partials, so accumulation replays the
    /// exact `l2_sq` lane order.
    Pq {
        /// Per-component squared-difference table, `m · k · sub` entries.
        lut: Vec<f32>,
        /// Subspace count.
        m: usize,
        /// Codewords per subspace.
        k: usize,
    },
}

impl PreparedQuery {
    /// Bytes per encoded descriptor this prepared query scores.
    #[inline]
    pub fn code_bytes(&self) -> usize {
        match self {
            PreparedQuery::Sq8 { .. } => DIM,
            PreparedQuery::Pq { m, .. } => *m,
        }
    }
}

/// Per-dimension affine 8-bit scalar quantizer.
///
/// Dimension `d` maps `x` to `round((x − lo_d) / step_d)` clamped to
/// `[0, 255]`, with `lo_d = min_d` and `step_d = (max_d − min_d) / 255`
/// from the training collection. Reconstruction is `lo_d + code·step_d`,
/// so in-range values round-trip within `step_d / 2`.
#[derive(Clone, Debug, PartialEq)]
pub struct Sq8Codec {
    lo: [f32; DIM],
    step: [f32; DIM],
}

impl Sq8Codec {
    /// Trains the quantizer from per-dimension collection extrema.
    pub fn train(stats: &DimensionStats) -> Self {
        let mut step = [0.0f32; DIM];
        for ((slot, &hi), &lo) in step.iter_mut().zip(&stats.max).zip(&stats.min) {
            let span = hi - lo;
            if span > 0.0 {
                *slot = span / 255.0;
            }
        }
        Sq8Codec {
            lo: stats.min,
            step,
        }
    }

    /// Trains from a collection (stats are computed internally).
    pub fn from_set(set: &DescriptorSet) -> Self {
        Self::train(&DimensionStats::compute(set))
    }

    /// Per-dimension reconstruction step (the round-trip error bound is
    /// half of this, per dimension).
    pub fn step(&self) -> &[f32; DIM] {
        &self.step
    }
}

impl DescriptorCodec for Sq8Codec {
    fn code_bytes(&self) -> usize {
        DIM
    }

    fn encode_into(&self, vector: &[f32; DIM], code: &mut [u8]) {
        assert_eq!(code.len(), DIM, "SQ8 code is one byte per dimension");
        for d in 0..DIM {
            code[d] = if self.step[d] > 0.0 {
                ((vector[d] - self.lo[d]) / self.step[d])
                    .round()
                    .clamp(0.0, 255.0) as u8
            } else {
                // Degenerate dimension: every training value was identical,
                // the code carries no information.
                0
            };
        }
    }

    fn decode_into(&self, code: &[u8], out: &mut [f32; DIM]) {
        assert_eq!(code.len(), DIM, "SQ8 code is one byte per dimension");
        for d in 0..DIM {
            out[d] = self.lo[d] + f32::from(code[d]) * self.step[d];
        }
    }

    fn prepare(&self, query: &[f32; DIM]) -> PreparedQuery {
        PreparedQuery::Sq8 {
            q: *query,
            lo: self.lo,
            step: self.step,
        }
    }

    fn name(&self) -> &'static str {
        "sq8"
    }
}

/// Product quantizer: `m` subspaces of `DIM / m` dimensions, each with a
/// `k`-codeword codebook, one byte of code per subspace.
///
/// Training is a deterministic k-means per subspace: centers initialise
/// by fixed stride over the (strided, order-preserving) training sample,
/// assignment ties resolve to the lowest codeword index, and center
/// updates accumulate in `f64` in storage order — the same collection
/// always produces the same codebook, bit for bit.
#[derive(Clone, Debug, PartialEq)]
pub struct PqCodec {
    m: usize,
    k: usize,
    /// Codebook, `m · k · sub` floats: codeword `j` of subspace `s` spans
    /// `centroids[(s·k + j)·sub ..][..sub]`.
    centroids: Vec<f32>,
}

impl PqCodec {
    /// Trains a codebook over `set` with the default geometry
    /// ([`PQ_M`] × [`PQ_K`]).
    pub fn from_set(set: &DescriptorSet) -> Self {
        Self::train(set, PQ_M, PQ_K)
    }

    /// Trains a codebook with `m` subspaces of `k` codewords each.
    ///
    /// # Panics
    ///
    /// Panics if `m` does not divide [`DIM`], or `k` is 0 or above 256
    /// (codes are single bytes).
    pub fn train(set: &DescriptorSet, m: usize, k: usize) -> Self {
        assert!(m > 0 && DIM.is_multiple_of(m), "m must divide DIM");
        assert!((1..=256).contains(&k), "k must fit a one-byte code");
        let sub = DIM / m;
        let rows = crate::kernels::as_rows(set.packed());
        // Deterministic training sample: a fixed stride preserving storage
        // order, capped so training cost is flat in collection size.
        let stride = (rows.len() / PQ_TRAIN_CAP).max(1);
        let sample: Vec<&[f32; DIM]> = rows.iter().step_by(stride).collect();

        let mut centroids = vec![0.0f32; m * k * sub];
        if sample.is_empty() {
            return PqCodec { m, k, centroids };
        }
        for s in 0..m {
            // Stride initialisation over the sample.
            for j in 0..k {
                let row = sample[(j * sample.len() / k).min(sample.len() - 1)];
                for t in 0..sub {
                    centroids[(s * k + j) * sub + t] = row[s * sub + t];
                }
            }
            let mut sums = vec![0.0f64; k * sub];
            let mut counts = vec![0usize; k];
            for _ in 0..PQ_TRAIN_ITERS {
                sums.fill(0.0);
                counts.fill(0);
                for row in &sample {
                    let j = nearest_codeword(&centroids, s, k, sub, row);
                    counts[j] += 1;
                    for t in 0..sub {
                        sums[j * sub + t] += f64::from(row[s * sub + t]);
                    }
                }
                for j in 0..k {
                    // An empty cluster keeps its previous center.
                    if counts[j] > 0 {
                        let inv = 1.0 / counts[j] as f64;
                        for t in 0..sub {
                            centroids[(s * k + j) * sub + t] = (sums[j * sub + t] * inv) as f32;
                        }
                    }
                }
            }
        }
        PqCodec { m, k, centroids }
    }

    /// Subspace count.
    pub fn m(&self) -> usize {
        self.m
    }

    /// Codewords per subspace.
    pub fn k(&self) -> usize {
        self.k
    }
}

/// Nearest codeword of subspace `s` to `row`'s subvector; ties to the
/// lowest index. Serial per-component accumulation in a fixed order.
#[inline]
fn nearest_codeword(centroids: &[f32], s: usize, k: usize, sub: usize, row: &[f32; DIM]) -> usize {
    let mut best_j = 0usize;
    let mut best_d = f32::INFINITY;
    for j in 0..k {
        let base = (s * k + j) * sub;
        let mut d = 0.0f32;
        for t in 0..sub {
            let diff = row[s * sub + t] - centroids[base + t];
            d += diff * diff;
        }
        if d < best_d {
            best_d = d;
            best_j = j;
        }
    }
    best_j
}

impl DescriptorCodec for PqCodec {
    fn code_bytes(&self) -> usize {
        self.m
    }

    fn encode_into(&self, vector: &[f32; DIM], code: &mut [u8]) {
        assert_eq!(code.len(), self.m, "PQ code is one byte per subspace");
        let sub = DIM / self.m;
        for (s, c) in code.iter_mut().enumerate() {
            *c = nearest_codeword(&self.centroids, s, self.k, sub, vector) as u8;
        }
    }

    fn decode_into(&self, code: &[u8], out: &mut [f32; DIM]) {
        assert_eq!(code.len(), self.m, "PQ code is one byte per subspace");
        let sub = DIM / self.m;
        for (s, &c) in code.iter().enumerate() {
            let j = usize::from(c).min(self.k - 1);
            let base = (s * self.k + j) * sub;
            for t in 0..sub {
                out[s * sub + t] = self.centroids[base + t];
            }
        }
    }

    fn prepare(&self, query: &[f32; DIM]) -> PreparedQuery {
        let sub = DIM / self.m;
        let mut lut = vec![0.0f32; self.m * self.k * sub];
        for s in 0..self.m {
            for j in 0..self.k {
                let base = (s * self.k + j) * sub;
                for t in 0..sub {
                    // Exactly the float ops decode + l2_sq would perform
                    // for this component, precomputed per codeword.
                    let d = query[s * sub + t] - self.centroids[base + t];
                    lut[base + t] = d * d;
                }
            }
        }
        PreparedQuery::Pq {
            lut,
            m: self.m,
            k: self.k,
        }
    }

    fn name(&self) -> &'static str {
        "pq"
    }
}

/// A concrete codec choice, closed over the two implementations so
/// storage can persist and reopen it without trait objects.
#[derive(Clone, Debug, PartialEq)]
pub enum Codec {
    /// Scalar 8-bit quantizer.
    Sq8(Sq8Codec),
    /// Product quantizer.
    Pq(PqCodec),
}

/// On-disk kind tag for [`Codec::Sq8`].
pub const CODEC_KIND_SQ8: u32 = 1;
/// On-disk kind tag for [`Codec::Pq`].
pub const CODEC_KIND_PQ: u32 = 2;

impl Codec {
    /// The on-disk kind tag ([`CODEC_KIND_SQ8`] / [`CODEC_KIND_PQ`]).
    pub fn kind(&self) -> u32 {
        match self {
            Codec::Sq8(_) => CODEC_KIND_SQ8,
            Codec::Pq(_) => CODEC_KIND_PQ,
        }
    }

    /// Serialises the codec parameters (little-endian, no framing — the
    /// chunk file header records kind and length).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Codec::Sq8(c) => {
                for x in c.lo.iter().chain(c.step.iter()) {
                    out.extend_from_slice(&x.to_le_bytes());
                }
            }
            Codec::Pq(c) => {
                out.extend_from_slice(&(c.m as u32).to_le_bytes());
                out.extend_from_slice(&(c.k as u32).to_le_bytes());
                for x in &c.centroids {
                    out.extend_from_slice(&x.to_le_bytes());
                }
            }
        }
        out
    }

    /// Reconstructs a codec from its kind tag and parameter blob; `None`
    /// if the tag is unknown or the blob has the wrong shape.
    pub fn from_bytes(kind: u32, blob: &[u8]) -> Option<Codec> {
        fn f32_at(blob: &[u8], i: usize) -> Option<f32> {
            let b: [u8; 4] = blob.get(i * 4..i * 4 + 4)?.try_into().ok()?;
            Some(f32::from_le_bytes(b))
        }
        match kind {
            CODEC_KIND_SQ8 => {
                if blob.len() != 2 * DIM * 4 {
                    return None;
                }
                let mut lo = [0.0f32; DIM];
                let mut step = [0.0f32; DIM];
                for d in 0..DIM {
                    lo[d] = f32_at(blob, d)?;
                    step[d] = f32_at(blob, DIM + d)?;
                }
                Some(Codec::Sq8(Sq8Codec { lo, step }))
            }
            CODEC_KIND_PQ => {
                let m = u32::from_le_bytes(blob.get(0..4)?.try_into().ok()?) as usize;
                let k = u32::from_le_bytes(blob.get(4..8)?.try_into().ok()?) as usize;
                if m == 0 || !DIM.is_multiple_of(m) || !(1..=256).contains(&k) {
                    return None;
                }
                let sub = DIM / m;
                let n = m * k * sub;
                if blob.len() != 8 + n * 4 {
                    return None;
                }
                let mut centroids = vec![0.0f32; n];
                for (i, c) in centroids.iter_mut().enumerate() {
                    *c = f32_at(&blob[8..], i)?;
                }
                Some(Codec::Pq(PqCodec { m, k, centroids }))
            }
            _ => None,
        }
    }
}

impl DescriptorCodec for Codec {
    fn code_bytes(&self) -> usize {
        match self {
            Codec::Sq8(c) => c.code_bytes(),
            Codec::Pq(c) => c.code_bytes(),
        }
    }

    fn encode_into(&self, vector: &[f32; DIM], code: &mut [u8]) {
        match self {
            Codec::Sq8(c) => c.encode_into(vector, code),
            Codec::Pq(c) => c.encode_into(vector, code),
        }
    }

    fn decode_into(&self, code: &[u8], out: &mut [f32; DIM]) {
        match self {
            Codec::Sq8(c) => c.decode_into(code, out),
            Codec::Pq(c) => c.decode_into(code, out),
        }
    }

    fn prepare(&self, query: &[f32; DIM]) -> PreparedQuery {
        match self {
            Codec::Sq8(c) => c.prepare(query),
            Codec::Pq(c) => c.prepare(query),
        }
    }

    fn name(&self) -> &'static str {
        match self {
            Codec::Sq8(c) => c.name(),
            Codec::Pq(c) => c.name(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::descriptor::Descriptor;
    use crate::vector::{l2_sq, Vector};

    fn test_set(n: usize) -> DescriptorSet {
        (0..n)
            .map(|i| {
                let mut v = [0.0f32; DIM];
                for (d, x) in v.iter_mut().enumerate() {
                    *x = ((i * 31 + d * 7) % 97) as f32 * 0.37 - 12.0;
                }
                Descriptor::new(i as u32, Vector(v))
            })
            .collect()
    }

    #[test]
    fn sq8_roundtrip_within_half_step() {
        let set = test_set(200);
        let codec = Sq8Codec::from_set(&set);
        let mut code = [0u8; DIM];
        let mut back = [0.0f32; DIM];
        for row in crate::kernels::as_rows(set.packed()) {
            codec.encode_into(row, &mut code);
            codec.decode_into(&code, &mut back);
            for d in 0..DIM {
                let bound = codec.step()[d] * 0.5 + 1e-4;
                assert!(
                    (back[d] - row[d]).abs() <= bound,
                    "dim {d}: {} vs {}",
                    back[d],
                    row[d]
                );
            }
        }
    }

    #[test]
    fn sq8_clamps_out_of_range_values() {
        let set = test_set(50);
        let codec = Sq8Codec::from_set(&set);
        let mut code = [0u8; DIM];
        codec.encode_into(&[1e9; DIM], &mut code);
        assert!(code.iter().all(|&c| c == 255));
        codec.encode_into(&[-1e9; DIM], &mut code);
        assert!(code.iter().all(|&c| c == 0));
    }

    #[test]
    fn sq8_degenerate_dimension_encodes_zero() {
        let set: DescriptorSet = (0..10)
            .map(|i| Descriptor::new(i, Vector::splat(4.25)))
            .collect();
        let codec = Sq8Codec::from_set(&set);
        let mut code = [7u8; DIM];
        codec.encode_into(&[4.25; DIM], &mut code);
        assert!(code.iter().all(|&c| c == 0));
        let mut back = [0.0f32; DIM];
        codec.decode_into(&code, &mut back);
        assert_eq!(back, [4.25; DIM]);
    }

    #[test]
    fn pq_geometry_and_determinism() {
        let set = test_set(300);
        let a = PqCodec::from_set(&set);
        let b = PqCodec::from_set(&set);
        assert_eq!(a, b, "training must be deterministic");
        assert_eq!(a.code_bytes(), PQ_M);
        assert_eq!(a.m(), PQ_M);
        assert_eq!(a.k(), PQ_K);
    }

    #[test]
    fn pq_decode_reconstructs_near_codewords() {
        let set = test_set(300);
        let codec = PqCodec::from_set(&set);
        let rows = crate::kernels::as_rows(set.packed());
        let mut code = vec![0u8; codec.code_bytes()];
        let mut back = [0.0f32; DIM];
        // A trained codebook must reconstruct better than collapsing
        // every descriptor to the collection mean would.
        let mut total_err = 0.0f64;
        for row in rows {
            codec.encode_into(row, &mut code);
            codec.decode_into(&code, &mut back);
            total_err += f64::from(l2_sq(row, &back));
        }
        let mean_err = total_err / rows.len() as f64;
        let mut var = 0.0f64;
        let stats = DimensionStats::compute(&set);
        for d in 0..DIM {
            var += f64::from(stats.variance[d]);
        }
        assert!(
            mean_err < var,
            "PQ reconstruction ({mean_err}) should beat collection variance ({var})"
        );
    }

    #[test]
    fn codec_blob_roundtrip() {
        let set = test_set(120);
        for codec in [
            Codec::Sq8(Sq8Codec::from_set(&set)),
            Codec::Pq(PqCodec::from_set(&set)),
        ] {
            let blob = codec.to_bytes();
            let back = Codec::from_bytes(codec.kind(), &blob).expect("valid blob");
            assert_eq!(codec, back);
        }
    }

    #[test]
    fn codec_from_bytes_rejects_garbage() {
        assert!(Codec::from_bytes(99, &[]).is_none());
        assert!(Codec::from_bytes(CODEC_KIND_SQ8, &[0u8; 7]).is_none());
        assert!(Codec::from_bytes(CODEC_KIND_PQ, &[0u8; 8]).is_none());
    }

    #[test]
    fn empty_set_trains_trivial_codecs() {
        let set = DescriptorSet::new();
        let sq = Sq8Codec::from_set(&set);
        let pq = PqCodec::from_set(&set);
        let mut code = vec![0u8; sq.code_bytes()];
        sq.encode_into(&[3.0; DIM], &mut code);
        assert!(code.iter().all(|&c| c == 0));
        let mut code = vec![0u8; pq.code_bytes()];
        pq.encode_into(&[3.0; DIM], &mut code);
        let mut back = [9.0f32; DIM];
        pq.decode_into(&code, &mut back);
        assert_eq!(back, [0.0; DIM]);
    }
}
