//! Image-granularity quality metrics.
//!
//! The descriptor-level curves ([`crate::curves`]) measure quality per
//! chunk read; image queries add one more axis — quality per *descriptor
//! search spent*. An [`ImageOutcome`](eff2_core::image::ImageOutcome)
//! records its top-`m` snapshot after every absorbed descriptor
//! completion, so a workload of image queries yields a
//! descriptors-spent curve: how image precision@m grows as a fraction of
//! the query set is consumed — the paper's "a fraction of the query
//! points suffices" claim measured directly.

use crate::curves::precision_at;
use eff2_core::image::ImageOutcome;

/// Image precision@m: the fraction of `truth_top` (the full-information
/// top-`m` image ids) present anywhere in `ranked_top`. Order-insensitive,
/// like the descriptor-level [`precision_at`]; with both sides cut at the
/// same `m` it coincides with recall.
pub fn image_precision_at(ranked_top: &[u32], truth_top: &[u32], m: usize) -> f64 {
    let ranked: Vec<u32> = ranked_top.iter().take(m).copied().collect();
    let truth: Vec<u32> = truth_top.iter().take(m).copied().collect();
    precision_at(&ranked, &truth)
}

/// One point of a descriptors-spent curve.
#[derive(Clone, Debug, PartialEq)]
pub struct ImageQualityPoint {
    /// Descriptor completions absorbed (1-based).
    pub completions: usize,
    /// Mean image precision@m at that spend, over all queries
    /// (carry-forward: a query that stopped earlier contributes its final
    /// ranking).
    pub avg_precision: f64,
    /// Queries that had actually absorbed this many completions (the rest
    /// are carried forward).
    pub queries_live: usize,
}

/// The workload-averaged quality-per-descriptor-spent curve.
///
/// `outcomes[i]` is compared against `truths[i]` — the full-information
/// top image ids for the same query (e.g. from a run-to-completion solo
/// pass). The curve extends to the longest query's completion count;
/// queries that stopped earlier (early termination, smaller sets) carry
/// their final snapshot forward, which is exactly how a fleet would serve
/// them. Queries with no events (empty descriptor sets) contribute their
/// final — empty — ranking at every point.
///
/// # Panics
///
/// Panics if `outcomes` and `truths` differ in length.
pub fn descriptors_spent_curve(
    outcomes: &[&ImageOutcome],
    truths: &[Vec<u32>],
    m: usize,
) -> Vec<ImageQualityPoint> {
    assert_eq!(
        outcomes.len(),
        truths.len(),
        "every outcome needs a ground-truth ranking"
    );
    let longest = outcomes
        .iter()
        .map(|o| o.events.last().map_or(0, |e| e.completions))
        .max()
        .unwrap_or(0);
    let mut curve = Vec::with_capacity(longest);
    for c in 1..=longest {
        let mut sum = 0.0f64;
        let mut live = 0usize;
        for (o, truth) in outcomes.iter().zip(truths.iter()) {
            // The latest snapshot at or before `c` completions; events are
            // absorbed in order, so this is a reverse scan.
            let snap = o.events.iter().rev().find(|e| e.completions <= c);
            if o.events.iter().any(|e| e.completions == c) {
                live += 1;
            }
            let top: &[u32] = snap.map_or(&[], |e| &e.top);
            sum += image_precision_at(top, truth, m);
        }
        let avg = if outcomes.is_empty() {
            0.0
        } else {
            sum / outcomes.len() as f64
        };
        curve.push(ImageQualityPoint {
            completions: c,
            avg_precision: avg,
            queries_live: live,
        });
    }
    curve
}

/// Mean fraction of each query's descriptor set actually spent
/// (`descriptors_spent / descriptors_total`; empty sets count as 1.0 —
/// nothing was left unspent). 0 for an empty slice.
pub fn avg_spent_fraction(outcomes: &[&ImageOutcome]) -> f64 {
    if outcomes.is_empty() {
        return 0.0;
    }
    // Serial loop: float accumulation order is the slice order, which is
    // itself deterministic.
    let mut sum = 0.0f64;
    for o in outcomes {
        sum += if o.descriptors_total == 0 {
            1.0
        } else {
            o.descriptors_spent as f64 / o.descriptors_total as f64
        };
    }
    sum / outcomes.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use eff2_core::image::ImageVoteEvent;
    use eff2_core::search::ResultFidelity;

    fn outcome(events: Vec<(usize, Vec<u32>)>, total: usize, spent: usize) -> ImageOutcome {
        ImageOutcome {
            label: 0,
            ranking: Vec::new(),
            descriptors_total: total,
            descriptors_spent: spent,
            descriptors_abandoned: total - spent,
            certificate: true,
            fidelity: ResultFidelity::Exact,
            chunks_read: 0,
            descriptors_lost: 0,
            unmapped_votes: 0,
            events: events
                .into_iter()
                .map(|(completions, top)| ImageVoteEvent { completions, top })
                .collect(),
        }
    }

    #[test]
    fn precision_cuts_both_sides_at_m() {
        assert_eq!(image_precision_at(&[1, 2, 3], &[1, 2, 9], 2), 1.0);
        assert_eq!(image_precision_at(&[1, 2], &[3, 4], 2), 0.0);
        assert_eq!(image_precision_at(&[2, 1], &[1, 2], 2), 1.0, "unordered");
        assert_eq!(image_precision_at(&[], &[], 5), 1.0, "empty truth is met");
    }

    #[test]
    fn curve_carries_short_queries_forward() {
        // Query A improves over 3 completions; query B stops after 1.
        let a = outcome(vec![(1, vec![7]), (2, vec![7, 1]), (3, vec![1, 2])], 3, 3);
        let b = outcome(vec![(1, vec![5])], 4, 1);
        let truths = vec![vec![1, 2], vec![5, 6]];
        let curve = descriptors_spent_curve(&[&a, &b], &truths, 2);
        assert_eq!(curve.len(), 3, "extends to the longest query");
        // c=1: A has {7} → 0 hits of {1,2}; B has {5} → 1 of {5,6}.
        assert!((curve[0].avg_precision - 0.25).abs() < 1e-12);
        assert_eq!(curve[0].queries_live, 2);
        // c=2: A has {7,1} → 1/2; B carries {5} forward → 1/2.
        assert!((curve[1].avg_precision - 0.5).abs() < 1e-12);
        assert_eq!(curve[1].queries_live, 1, "only A absorbed a 2nd result");
        // c=3: A has {1,2} → 2/2; B still 1/2.
        assert!((curve[2].avg_precision - 0.75).abs() < 1e-12);
    }

    #[test]
    fn eventless_outcomes_contribute_empty_rankings() {
        let a = outcome(vec![(1, vec![3])], 1, 1);
        let empty = outcome(vec![], 0, 0);
        let truths = vec![vec![3], vec![9]];
        let curve = descriptors_spent_curve(&[&a, &empty], &truths, 1);
        assert_eq!(curve.len(), 1);
        // A scores 1, the empty query scores 0 against a non-empty truth.
        assert!((curve[0].avg_precision - 0.5).abs() < 1e-12);
        assert_eq!(curve[0].queries_live, 1);
    }

    #[test]
    fn empty_inputs_yield_an_empty_curve() {
        assert!(descriptors_spent_curve(&[], &[], 3).is_empty());
        assert_eq!(avg_spent_fraction(&[]), 0.0);
    }

    #[test]
    fn spent_fraction_averages_per_query() {
        let a = outcome(vec![], 4, 2); // 0.5
        let b = outcome(vec![], 4, 4); // 1.0
        let c = outcome(vec![], 0, 0); // empty set counts as fully spent
        assert!((avg_spent_fraction(&[&a, &b, &c]) - (0.5 + 1.0 + 1.0) / 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "ground-truth")]
    fn mismatched_truths_are_rejected() {
        let a = outcome(vec![], 1, 1);
        let _ = descriptors_spent_curve(&[&a], &[], 1);
    }
}
