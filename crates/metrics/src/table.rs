//! Aligned text tables and CSV output for the experiment harness.

use std::io::Write;
use std::path::Path;

/// A simple column-aligned text table.
#[derive(Clone, Debug, Default)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: &str, headers: &[&str]) -> Self {
        Table {
            title: title.to_string(),
            headers: headers.iter().map(|h| h.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width must match header width"
        );
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.chars().count());
            }
        }
        let mut out = String::new();
        if !self.title.is_empty() {
            out.push_str(&self.title);
            out.push('\n');
        }
        let fmt_row = |cells: &[String]| -> String {
            cells
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:>w$}", w = w))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.headers));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }

    /// Writes the table as CSV at `path`.
    pub fn save_csv(&self, path: &Path) -> std::io::Result<()> {
        write_csv(
            path,
            &self.headers.iter().map(String::as_str).collect::<Vec<_>>(),
            self.rows.iter().map(|r| r.as_slice()),
        )
    }
}

/// Writes rows of string cells as a CSV file (quoting cells containing
/// commas or quotes).
pub fn write_csv<'a, R>(path: &Path, headers: &[&str], rows: R) -> std::io::Result<()>
where
    R: IntoIterator<Item = &'a [String]>,
{
    let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
    writeln!(
        f,
        "{}",
        headers
            .iter()
            .map(|h| quote(h))
            .collect::<Vec<_>>()
            .join(",")
    )?;
    for row in rows {
        writeln!(
            f,
            "{}",
            row.iter().map(|c| quote(c)).collect::<Vec<_>>().join(",")
        )?;
    }
    f.flush()
}

fn quote(cell: &str) -> String {
    if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
        format!("\"{}\"", cell.replace('"', "\"\""))
    } else {
        cell.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new("Demo", &["name", "count"]);
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["long-name".into(), "12345".into()]);
        let s = t.render();
        assert!(s.starts_with("Demo\n"));
        let lines: Vec<&str> = s.lines().collect();
        // Header and rows share the same width.
        assert_eq!(lines[1].len(), lines[3].len());
        assert!(lines[4].contains("long-name"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn rejects_ragged_rows() {
        Table::new("x", &["a", "b"]).row(vec!["only-one".into()]);
    }

    #[test]
    fn csv_roundtrip_with_quoting() {
        let path = std::env::temp_dir().join("eff2_table_test.csv");
        let mut t = Table::new("t", &["k", "v"]);
        t.row(vec!["plain".into(), "a,b".into()]);
        t.row(vec!["quoted\"q".into(), "x".into()]);
        t.save_csv(&path).expect("save");
        let body = std::fs::read_to_string(&path).expect("read");
        assert!(body.contains("\"a,b\""));
        assert!(body.contains("\"quoted\"\"q\""));
        assert_eq!(body.lines().count(), 3);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_table_renders_header_only() {
        let t = Table::new("", &["h1", "h2"]);
        assert!(t.is_empty());
        let s = t.render();
        assert!(s.contains("h1"));
        assert_eq!(s.lines().count(), 2); // header + rule
    }
}
