//! Load-balance metrics shared across layers.
//!
//! The Tavenard/Amsaleg/Jégou *imbalance factor* — max load over mean
//! load — is reported in two places that must agree on the definition:
//! exp7's shard placement (loads = primary chunks per shard node) and
//! exp8's live-mutation serving (loads = descriptors per chunk of the
//! final generation, where online compaction is what keeps the factor
//! down under skewed inserts). This module is the one definition both
//! columns cite.

/// Max load over mean load: 1.0 is perfect balance, `n` means the
/// hottest bucket carries `n` uniform shares. Degenerate inputs — no
/// buckets, or all loads zero — are trivially balanced (1.0).
pub fn imbalance_factor(loads: &[usize]) -> f64 {
    if loads.is_empty() {
        return 1.0;
    }
    let max = loads.iter().copied().max().unwrap_or(0) as f64;
    let mean = loads.iter().sum::<usize>() as f64 / loads.len() as f64;
    if mean == 0.0 {
        1.0
    } else {
        max / mean
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_loads_are_perfectly_balanced() {
        assert!((imbalance_factor(&[5, 5, 5, 5]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn skew_is_the_hot_buckets_share() {
        // 9 + 1 + 1 + 1 over 4 buckets: mean 3, max 9 → factor 3.
        assert!((imbalance_factor(&[9, 1, 1, 1]) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_inputs_are_trivially_balanced() {
        assert!((imbalance_factor(&[]) - 1.0).abs() < 1e-12);
        assert!((imbalance_factor(&[0, 0, 0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn zero_buckets_count_toward_the_mean() {
        // 6 + 0 + 0: mean 2, max 6 → factor 3 (an idle bucket is skew).
        assert!((imbalance_factor(&[6, 0, 0]) - 3.0).abs() < 1e-12);
    }
}
