//! Quality-vs-time curves over intermediate results.
//!
//! The paper logs, after every processed chunk, how many of the eventual
//! top-30 have already been found, and reports workload averages of
//!
//! * the number of chunks read to find *m* neighbours (Figs. 2–3),
//! * the elapsed time to find *m* neighbours (Figs. 4–7), and
//! * the time to completion (Table 2).
//!
//! [`quality_curve`] runs every query of a workload to completion against
//! one chunk store and produces exactly those series.
// lint:allow-file(panic.index): aligned series share one length established at construction

use crate::truth::GroundTruth;
use eff2_core::search::{SearchParams, StopRule};
use eff2_core::session::SearchSession;
use eff2_json::Json;
use eff2_storage::diskmodel::DiskModel;
use eff2_storage::{ChunkStore, Result};
use eff2_workload::Workload;

/// Precision@k: the fraction of `truth` present in `result` (the paper
/// notes that with a fixed answer size, precision and recall coincide).
pub fn precision_at(result: &[u32], truth: &[u32]) -> f64 {
    if truth.is_empty() {
        return 1.0;
    }
    let mut sorted = truth.to_vec();
    sorted.sort_unstable();
    let hits = result
        .iter()
        .filter(|id| sorted.binary_search(id).is_ok())
        .count();
    hits as f64 / truth.len() as f64
}

/// Workload-averaged quality-vs-time series for one chunk index.
#[derive(Clone, Debug)]
pub struct QualityCurve {
    /// Index label (e.g. "BAG / SMALL").
    pub label: String,
    /// Workload name ("DQ" / "SQ").
    pub workload: String,
    /// Result size k.
    pub k: usize,
    /// Queries evaluated.
    pub n_queries: usize,
    /// `avg_chunks_for_m[m-1]` = average chunks read until `m` true
    /// neighbours were found, over the queries that reached `m`.
    pub avg_chunks_for_m: Vec<f64>,
    /// `avg_time_for_m[m-1]` = average virtual seconds until `m` true
    /// neighbours were found.
    pub avg_time_for_m: Vec<f64>,
    /// How many queries ever found `m` true neighbours (an index that
    /// dropped outliers may top out below k for some queries).
    pub reach_count: Vec<usize>,
    /// Average virtual seconds to run a query to completion (Table 2).
    pub avg_completion_secs: f64,
    /// Average chunks read to completion.
    pub avg_completion_chunks: f64,
    /// Average virtual milliseconds spent reading/ranking the chunk index.
    pub avg_index_read_ms: f64,
}

struct PerQuery {
    chunks_for_m: Vec<Option<u32>>,
    time_for_m: Vec<Option<f64>>,
    completion_secs: f64,
    completion_chunks: usize,
    index_read_ms: f64,
}

fn reduce_query(
    store: &ChunkStore,
    model: &DiskModel,
    query: &eff2_descriptor::Vector,
    truth_sorted: &[u32],
    k: usize,
) -> Result<PerQuery> {
    let params = SearchParams {
        k,
        stop: StopRule::ToCompletion,
        prefetch_depth: 2,
        log_snapshots: true,
    };
    // Step the session chunk by chunk and fold each event as it appears —
    // the anytime consumption pattern, rather than post-processing a
    // finished log. The figures are identical either way.
    let mut session = SearchSession::open(store, model, query, &params);
    let mut chunks_for_m = vec![None; k];
    let mut time_for_m = vec![None; k];
    while !session.stop_satisfied() {
        let Some(event) = session.step()? else { break };
        let found = event
            .topk_ids
            .iter()
            .filter(|id| truth_sorted.binary_search(id).is_ok())
            .count();
        // `found` is monotone across events: a true top-k member can only
        // be evicted by a strictly closer descriptor, which must itself be
        // a true top-k member.
        for m in 1..=found.min(k) {
            if chunks_for_m[m - 1].is_none() {
                chunks_for_m[m - 1] = Some(event.rank as u32 + 1);
                time_for_m[m - 1] = Some(event.completed_at.as_secs());
            }
        }
    }
    let result = session.into_result();
    Ok(PerQuery {
        chunks_for_m,
        time_for_m,
        completion_secs: result.log.total_virtual.as_secs(),
        completion_chunks: result.log.chunks_read,
        index_read_ms: result.log.index_read_time.as_ms(),
    })
}

/// Runs every query of `workload` to completion against `store` and
/// averages the quality-vs-time metrics. `truth` must have been computed
/// for the same store and `k`.
///
/// # Panics
///
/// Panics if `truth` does not cover the workload or was computed for a
/// different k.
pub fn quality_curve(
    store: &ChunkStore,
    model: &DiskModel,
    workload: &Workload,
    truth: &GroundTruth,
    k: usize,
    label: &str,
) -> Result<QualityCurve> {
    assert_eq!(
        truth.ids.len(),
        workload.len(),
        "truth does not cover the workload"
    );
    assert_eq!(truth.k, k, "truth was computed for k = {}", truth.k);

    let per_query: Vec<PerQuery> = eff2_parallel::try_par_map(&workload.queries, |qi, q| {
        let truth_sorted = truth.sorted_set(qi);
        reduce_query(store, model, q, &truth_sorted, k)
    })?;

    let nq = per_query.len();
    let mut curve = QualityCurve {
        label: label.to_string(),
        workload: workload.name.clone(),
        k,
        n_queries: nq,
        avg_chunks_for_m: vec![0.0; k],
        avg_time_for_m: vec![0.0; k],
        reach_count: vec![0; k],
        avg_completion_secs: 0.0,
        avg_completion_chunks: 0.0,
        avg_index_read_ms: 0.0,
    };
    for pq in &per_query {
        curve.avg_completion_secs += pq.completion_secs;
        curve.avg_completion_chunks += pq.completion_chunks as f64;
        curve.avg_index_read_ms += pq.index_read_ms;
        for m in 0..k {
            if let (Some(c), Some(t)) = (pq.chunks_for_m[m], pq.time_for_m[m]) {
                curve.avg_chunks_for_m[m] += f64::from(c);
                curve.avg_time_for_m[m] += t;
                curve.reach_count[m] += 1;
            }
        }
    }
    if nq > 0 {
        curve.avg_completion_secs /= nq as f64;
        curve.avg_completion_chunks /= nq as f64;
        curve.avg_index_read_ms /= nq as f64;
    }
    for m in 0..k {
        if curve.reach_count[m] > 0 {
            curve.avg_chunks_for_m[m] /= curve.reach_count[m] as f64;
            curve.avg_time_for_m[m] /= curve.reach_count[m] as f64;
        } else {
            curve.avg_chunks_for_m[m] = f64::NAN;
            curve.avg_time_for_m[m] = f64::NAN;
        }
    }
    Ok(curve)
}

impl QualityCurve {
    /// Average chunks read until `m` neighbours were found.
    pub fn chunks_for(&self, m: usize) -> f64 {
        self.avg_chunks_for_m[m - 1]
    }

    /// Average virtual seconds until `m` neighbours were found.
    pub fn time_for(&self, m: usize) -> f64 {
        self.avg_time_for_m[m - 1]
    }

    /// Converts to JSON. Unreached `m` slots are NaN and serialise as
    /// `null`; [`QualityCurve::from_json`] restores them to NaN.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("label", Json::Str(self.label.clone())),
            ("workload", Json::Str(self.workload.clone())),
            ("k", Json::from_usize(self.k)),
            ("n_queries", Json::from_usize(self.n_queries)),
            ("avg_chunks_for_m", Json::f64_array(&self.avg_chunks_for_m)),
            ("avg_time_for_m", Json::f64_array(&self.avg_time_for_m)),
            (
                "reach_count",
                Json::Arr(
                    self.reach_count
                        .iter()
                        .map(|&c| Json::from_usize(c))
                        .collect(),
                ),
            ),
            ("avg_completion_secs", Json::num(self.avg_completion_secs)),
            (
                "avg_completion_chunks",
                Json::num(self.avg_completion_chunks),
            ),
            ("avg_index_read_ms", Json::num(self.avg_index_read_ms)),
        ])
    }

    /// Parses a curve previously written by [`QualityCurve::to_json`].
    pub fn from_json(json: &Json) -> eff2_json::Result<QualityCurve> {
        Ok(QualityCurve {
            label: json.field("label")?.as_str()?.to_string(),
            workload: json.field("workload")?.as_str()?.to_string(),
            k: json.field("k")?.as_usize()?,
            n_queries: json.field("n_queries")?.as_usize()?,
            avg_chunks_for_m: json.field("avg_chunks_for_m")?.to_f64_vec()?,
            avg_time_for_m: json.field("avg_time_for_m")?.to_f64_vec()?,
            reach_count: json.field("reach_count")?.to_usize_vec()?,
            avg_completion_secs: json.field("avg_completion_secs")?.as_f64()?,
            avg_completion_chunks: json.field("avg_completion_chunks")?.as_f64()?,
            avg_index_read_ms: json.field("avg_index_read_ms")?.as_f64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eff2_core::chunkers::{ChunkFormer, SrTreeChunker};
    use eff2_descriptor::{Descriptor, DescriptorSet, Vector};
    use eff2_workload::dq_workload;

    fn setup(tag: &str) -> (DescriptorSet, ChunkStore) {
        let set: DescriptorSet = (0..400)
            .map(|i| {
                let mut v = Vector::splat((i % 8) as f32 * 12.0);
                v[0] += ((i * 13) % 29) as f32 * 0.1;
                Descriptor::new(i as u32, v)
            })
            .collect();
        let f = SrTreeChunker { leaf_size: 40 }.form(&set);
        let dir = std::env::temp_dir().join(format!("eff2_curves_{tag}"));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let store = ChunkStore::create(&dir, "c", &set, &f.chunks, 512).expect("create");
        (set, store)
    }

    #[test]
    fn precision_basics() {
        assert_eq!(precision_at(&[1, 2, 3], &[1, 2, 3]), 1.0);
        assert_eq!(precision_at(&[1, 9, 8], &[1, 2, 3]), 1.0 / 3.0);
        assert_eq!(precision_at(&[], &[1, 2]), 0.0);
        assert_eq!(precision_at(&[5], &[]), 1.0);
    }

    #[test]
    fn curve_is_complete_and_monotone() {
        let (set, store) = setup("mono");
        let w = dq_workload(&set, 15, 3);
        let k = 10;
        let truth = GroundTruth::compute(&store, &w, k).expect("truth");
        let curve =
            quality_curve(&store, &DiskModel::ata_2005(), &w, &truth, k, "SR").expect("curve");
        assert_eq!(curve.n_queries, 15);
        // Every query ran to completion, so every m must be reached.
        for m in 0..k {
            assert_eq!(curve.reach_count[m], 15, "m = {}", m + 1);
        }
        // Chunks- and time-to-m are non-decreasing in m.
        for m in 1..k {
            assert!(curve.avg_chunks_for_m[m] >= curve.avg_chunks_for_m[m - 1]);
            assert!(curve.avg_time_for_m[m] >= curve.avg_time_for_m[m - 1]);
        }
        // Completion dominates everything.
        assert!(curve.avg_completion_secs >= curve.avg_time_for_m[k - 1]);
        assert!(curve.avg_completion_chunks >= curve.avg_chunks_for_m[k - 1]);
        assert!(curve.avg_index_read_ms > 0.0);
    }

    #[test]
    fn dataset_queries_find_first_neighbors_in_first_chunk() {
        let (set, store) = setup("first");
        let w = dq_workload(&set, 10, 7);
        let k = 5;
        let truth = GroundTruth::compute(&store, &w, k).expect("truth");
        let curve =
            quality_curve(&store, &DiskModel::ata_2005(), &w, &truth, k, "SR").expect("curve");
        // A dataset query's own chunk is ranked first and contains it.
        assert!(
            curve.chunks_for(1) < 1.5,
            "first neighbour should come from the first chunk, got {}",
            curve.chunks_for(1)
        );
    }

    #[test]
    #[should_panic(expected = "truth was computed for k")]
    fn k_mismatch_panics() {
        let (set, store) = setup("kmis");
        let w = dq_workload(&set, 3, 0);
        let truth = GroundTruth::compute(&store, &w, 5).expect("truth");
        let _ = quality_curve(&store, &DiskModel::ata_2005(), &w, &truth, 7, "x");
    }

    #[test]
    fn empty_workload_curve() {
        let (set, store) = setup("empty");
        let w = eff2_workload::Workload {
            name: "DQ".into(),
            queries: vec![],
            source_positions: vec![],
        };
        let _ = set;
        let truth = GroundTruth { k: 3, ids: vec![] };
        let curve =
            quality_curve(&store, &DiskModel::ata_2005(), &w, &truth, 3, "e").expect("curve");
        assert_eq!(curve.n_queries, 0);
        assert!(curve.avg_chunks_for_m[0].is_nan());
    }
}
