#![warn(missing_docs)]

//! # eff2-metrics
//!
//! Measurement machinery for the paper's experiments (§5.4):
//!
//! * [`truth`] — ground truth by sequential scan: "we first ran a
//!   sequential scan of the collection, and stored the identifiers of the
//!   returned descriptors";
//! * [`curves`] — quality-vs-time curves over intermediate results:
//!   metrics "were logged after the processing of every chunk. As we
//!   always ran queries to conclusion, we were able to measure the quality
//!   of intermediate results";
//! * [`table`] — aligned text tables and CSV output for the experiment
//!   harness;
//! * [`image`] — image-granularity precision@m and the
//!   descriptors-spent curve: quality as a function of how much of an
//!   image query's descriptor set was consumed.

pub mod balance;
pub mod curves;
pub mod image;
pub mod latency;
pub mod table;
pub mod truth;

pub use balance::imbalance_factor;
pub use curves::{precision_at, quality_curve, QualityCurve};
pub use image::{
    avg_spent_fraction, descriptors_spent_curve, image_precision_at, ImageQualityPoint,
};
pub use latency::{fleet_quality_curve, FleetQualityPoint, LatencySummary};
pub use table::{write_csv, Table};
pub use truth::GroundTruth;
