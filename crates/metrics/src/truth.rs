//! Ground truth by sequential scan.
//!
//! Precision of an approximate result is measured against the exact top-k
//! of a sequential scan (§5.4). Ground truth is computed per *chunk index*
//! (over the descriptors it retains) because an index can only ever return
//! what its chunk file holds — BAG indexes exclude their outliers, so
//! measuring them against a scan of the full collection would conflate
//! outlier-removal loss with the chunk-ordering quality the paper studies.

use eff2_core::scan::scan_store_knn;
use eff2_descriptor::Vector;
use eff2_json::Json;
use eff2_storage::{ChunkStore, Result};
use eff2_workload::Workload;
use std::path::Path;

/// Exact top-k identifiers for every query of a workload against one chunk
/// store.
#[derive(Clone, Debug, PartialEq)]
pub struct GroundTruth {
    /// The k the truth was computed for.
    pub k: usize,
    /// Per query: the exact top-k identifiers in increasing-distance order
    /// (shorter if the store holds fewer than k descriptors).
    pub ids: Vec<Vec<u32>>,
}

impl GroundTruth {
    /// Computes ground truth for `workload` against `store` by sequential
    /// scan, one query per parallel task.
    pub fn compute(store: &ChunkStore, workload: &Workload, k: usize) -> Result<GroundTruth> {
        let ids = eff2_parallel::try_par_map(&workload.queries, |_, q| {
            scan_store_knn(store, q, k).map(|nn| nn.into_iter().map(|n| n.id).collect())
        })?;
        Ok(GroundTruth { k, ids })
    }

    /// Computes ground truth against an in-memory collection instead of a
    /// store (useful in tests and for the full-collection reference).
    pub fn compute_in_memory(
        set: &eff2_descriptor::DescriptorSet,
        workload: &Workload,
        k: usize,
    ) -> GroundTruth {
        let ids = eff2_parallel::par_map(&workload.queries, |_, q| {
            eff2_core::scan::scan_knn(set, q, k)
                .into_iter()
                .map(|n| n.id)
                .collect()
        });
        GroundTruth { k, ids }
    }

    /// The truth set of query `qi` as a sorted vector (for fast
    /// intersection tests).
    pub fn sorted_set(&self, qi: usize) -> Vec<u32> {
        let mut s = self.ids.get(qi).cloned().unwrap_or_default();
        s.sort_unstable();
        s
    }

    /// Serialises to JSON.
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        let json = Json::obj(vec![
            ("k", Json::from_usize(self.k)),
            (
                "ids",
                Json::Arr(self.ids.iter().map(|v| Json::u32_array(v)).collect()),
            ),
        ]);
        std::fs::write(path, json.to_string())
    }

    /// Loads a saved ground truth.
    pub fn load(path: &Path) -> std::io::Result<GroundTruth> {
        let json = Json::parse(&std::fs::read_to_string(path)?)?;
        let k = json.field("k")?.as_usize()?;
        let ids = json
            .field("ids")?
            .as_arr()?
            .iter()
            .map(Json::to_u32_vec)
            .collect::<eff2_json::Result<Vec<Vec<u32>>>>()?;
        Ok(GroundTruth { k, ids })
    }
}

/// One query's exact ids against one store (convenience for tests).
pub fn truth_for_query(store: &ChunkStore, query: &Vector, k: usize) -> Result<Vec<u32>> {
    Ok(scan_store_knn(store, query, k)?
        .into_iter()
        .map(|n| n.id)
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use eff2_core::chunkers::{ChunkFormer, SrTreeChunker};
    use eff2_descriptor::{Descriptor, DescriptorSet};
    use eff2_workload::dq_workload;

    fn setup(n: usize, tag: &str) -> (DescriptorSet, ChunkStore) {
        let set: DescriptorSet = (0..n)
            .map(|i| {
                let mut v = Vector::splat((i % 11) as f32);
                v[1] += i as f32 * 0.01;
                Descriptor::new(i as u32, v)
            })
            .collect();
        let f = SrTreeChunker { leaf_size: 32 }.form(&set);
        let dir = std::env::temp_dir().join(format!("eff2_truth_{tag}"));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let store = ChunkStore::create(&dir, "t", &set, &f.chunks, 512).expect("create");
        (set, store)
    }

    #[test]
    fn store_truth_matches_memory_truth_when_nothing_excluded() {
        let (set, store) = setup(300, "match");
        let w = dq_workload(&set, 20, 5);
        let a = GroundTruth::compute(&store, &w, 10).expect("truth");
        let b = GroundTruth::compute_in_memory(&set, &w, 10);
        assert_eq!(a, b);
    }

    #[test]
    fn dq_truth_contains_the_query_itself() {
        let (set, store) = setup(200, "self");
        let w = dq_workload(&set, 10, 3);
        let t = GroundTruth::compute(&store, &w, 5).expect("truth");
        for (qi, &pos) in w.source_positions.iter().enumerate() {
            let qid = set.id(pos as usize).0;
            assert_eq!(
                t.ids[qi][0], qid,
                "nearest neighbour of a dataset point is itself"
            );
        }
    }

    #[test]
    fn save_load_roundtrip() {
        let (set, store) = setup(100, "save");
        let w = dq_workload(&set, 5, 1);
        let t = GroundTruth::compute(&store, &w, 8).expect("truth");
        let path = std::env::temp_dir().join("eff2_truth_roundtrip.json");
        t.save(&path).expect("save");
        assert_eq!(GroundTruth::load(&path).expect("load"), t);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn sorted_set_is_sorted() {
        let t = GroundTruth {
            k: 3,
            ids: vec![vec![9, 2, 5]],
        };
        assert_eq!(t.sorted_set(0), vec![2, 5, 9]);
    }
}
