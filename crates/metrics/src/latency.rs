//! Fleet-level serving metrics: latency percentiles and quality-over-time
//! under load.
//!
//! The paper reports per-query quality-vs-time; a serving layer
//! additionally answers "how long did queries *wait* under concurrent
//! load, and how fast did answer quality accumulate across the fleet?".
//! These helpers are deliberately plain-data — they take seconds and
//! (time, precision) pairs rather than scheduler types, so any layer can
//! feed them.

/// Order statistics over a set of latencies (virtual seconds).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct LatencySummary {
    /// Sample count.
    pub n: usize,
    /// Arithmetic mean.
    pub mean_secs: f64,
    /// Median (nearest-rank).
    pub p50_secs: f64,
    /// 90th percentile (nearest-rank).
    pub p90_secs: f64,
    /// 99th percentile (nearest-rank).
    pub p99_secs: f64,
    /// Maximum.
    pub max_secs: f64,
}

/// Nearest-rank percentile over an ascending-sorted slice: the smallest
/// value with at least `q`% of the sample at or below it.
fn nearest_rank(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((q / 100.0) * sorted.len() as f64).ceil() as usize;
    let idx = rank.max(1).min(sorted.len()) - 1;
    sorted.get(idx).copied().unwrap_or(0.0)
}

impl LatencySummary {
    /// Summarises `latencies` (any order; an empty slice yields zeros).
    pub fn from_secs(latencies: &[f64]) -> LatencySummary {
        let mut sorted = latencies.to_vec();
        sorted.sort_by(f64::total_cmp);
        let mut total = 0.0f64;
        for l in &sorted {
            total += *l;
        }
        let n = sorted.len();
        LatencySummary {
            n,
            mean_secs: if n > 0 { total / n as f64 } else { 0.0 },
            p50_secs: nearest_rank(&sorted, 50.0),
            p90_secs: nearest_rank(&sorted, 90.0),
            p99_secs: nearest_rank(&sorted, 99.0),
            max_secs: sorted.last().copied().unwrap_or(0.0),
        }
    }
}

/// One point of a fleet quality-vs-time curve: after `at_secs` of fleet
/// time, `completed` queries have finished with `mean_precision` average
/// answer quality so far.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FleetQualityPoint {
    /// Fleet-clock time of this completion.
    pub at_secs: f64,
    /// Queries completed at or before `at_secs`.
    pub completed: usize,
    /// Running mean precision over those completions.
    pub mean_precision: f64,
}

/// Builds the cumulative fleet quality curve from per-query
/// `(finish_secs, precision)` pairs (any order): one point per completion,
/// sorted by finish time, carrying the running mean precision.
pub fn fleet_quality_curve(completions: &[(f64, f64)]) -> Vec<FleetQualityPoint> {
    let mut ordered = completions.to_vec();
    ordered.sort_by(|a, b| a.0.total_cmp(&b.0));
    let mut out = Vec::with_capacity(ordered.len());
    let mut total_precision = 0.0f64;
    for (done, (at, precision)) in ordered.iter().enumerate() {
        total_precision += *precision;
        out.push(FleetQualityPoint {
            at_secs: *at,
            completed: done + 1,
            mean_precision: total_precision / (done + 1) as f64,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_empty_is_zero() {
        assert_eq!(LatencySummary::from_secs(&[]), LatencySummary::default());
    }

    #[test]
    fn summary_of_known_sample() {
        // 1..=100 in shuffled order: percentiles are exact under
        // nearest-rank.
        let mut xs: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        xs.reverse();
        let s = LatencySummary::from_secs(&xs);
        assert_eq!(s.n, 100);
        assert_eq!(s.p50_secs, 50.0);
        assert_eq!(s.p90_secs, 90.0);
        assert_eq!(s.p99_secs, 99.0);
        assert_eq!(s.max_secs, 100.0);
        assert!((s.mean_secs - 50.5).abs() < 1e-12);
    }

    #[test]
    fn single_sample_is_every_percentile() {
        let s = LatencySummary::from_secs(&[0.25]);
        assert_eq!(s.p50_secs, 0.25);
        assert_eq!(s.p99_secs, 0.25);
        assert_eq!(s.max_secs, 0.25);
        assert_eq!(s.mean_secs, 0.25);
    }

    #[test]
    fn all_equal_samples_collapse_every_statistic() {
        let s = LatencySummary::from_secs(&[0.7; 9]);
        assert_eq!(s.n, 9);
        assert!((s.mean_secs - 0.7).abs() < 1e-12);
        assert_eq!(s.p50_secs, 0.7);
        assert_eq!(s.p90_secs, 0.7);
        assert_eq!(s.p99_secs, 0.7);
        assert_eq!(s.max_secs, 0.7);
    }

    #[test]
    fn two_samples_split_at_the_median_rank() {
        // Nearest-rank: p50 of two samples is the *lower* one (the
        // smallest value with ≥50% of the sample at or below it).
        let s = LatencySummary::from_secs(&[2.0, 1.0]);
        assert_eq!(s.p50_secs, 1.0);
        assert_eq!(s.p90_secs, 2.0);
        assert_eq!(s.p99_secs, 2.0);
        assert_eq!(s.max_secs, 2.0);
        assert_eq!(s.mean_secs, 1.5);
    }

    #[test]
    fn fleet_curve_accumulates_in_time_order() {
        let curve = fleet_quality_curve(&[(3.0, 0.5), (1.0, 1.0), (2.0, 0.0)]);
        assert_eq!(curve.len(), 3);
        let times: Vec<f64> = curve.iter().map(|p| p.at_secs).collect();
        assert_eq!(times, vec![1.0, 2.0, 3.0]);
        let counts: Vec<usize> = curve.iter().map(|p| p.completed).collect();
        assert_eq!(counts, vec![1, 2, 3]);
        let means: Vec<f64> = curve.iter().map(|p| p.mean_precision).collect();
        assert_eq!(means, vec![1.0, 0.5, 0.5]);
    }

    #[test]
    fn fleet_curve_of_empty_is_empty() {
        assert!(fleet_quality_curve(&[]).is_empty());
    }
}
