//! The dynamic SR-tree: insertion with forced reinsertion, node splitting,
//! and exact k-nearest-neighbour search.
//!
//! The eff2 paper's experiments use the *static* build (see [`crate::bulk`])
//! because it is faster and guarantees uniform leaf size; the dynamic path
//! here completes the index structure as published — descent by nearest
//! centroid, R\*-style forced reinsertion on first leaf overflow, and
//! margin-minimising topological splits.
// lint:allow-file(panic.index): chunks_exact(4) blocks are indexed 0..4 by the blocked leaf scan

use crate::geometry::{region_min_dist_sq, Rect};
use crate::node::{ChildRef, LeafEntry, Node};
use eff2_descriptor::{l2_sq_x4, Vector, DIM};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Tuning parameters of the dynamic SR-tree.
#[derive(Clone, Copy, Debug)]
pub struct SRTreeConfig {
    /// Maximum number of points in a leaf.
    pub leaf_capacity: usize,
    /// Maximum number of children of an internal node.
    pub internal_capacity: usize,
    /// Fraction of a leaf forcibly reinserted on its first overflow
    /// (the R\*-tree recommends ≈30 %).
    pub reinsert_fraction: f32,
    /// Minimum fill fraction of each side of a split (R\*: 40 %).
    pub min_fill: f32,
}

impl Default for SRTreeConfig {
    fn default() -> Self {
        SRTreeConfig {
            leaf_capacity: 64,
            internal_capacity: 32,
            reinsert_fraction: 0.3,
            min_fill: 0.4,
        }
    }
}

impl SRTreeConfig {
    /// Validates the parameters, panicking on nonsense values; called once
    /// at tree construction.
    fn validate(&self) {
        assert!(self.leaf_capacity >= 2, "leaf capacity must be at least 2");
        assert!(
            self.internal_capacity >= 2,
            "internal fan-out must be at least 2"
        );
        assert!(
            (0.0..1.0).contains(&self.reinsert_fraction),
            "reinsert fraction must be in [0,1)"
        );
        assert!(
            (0.0..=0.5).contains(&self.min_fill),
            "min fill must be in [0,0.5]"
        );
    }
}

/// A dynamic SR-tree over 24-dimensional descriptors.
///
/// Points are identified by their position (`u32`) in a backing
/// [`eff2_descriptor::DescriptorSet`]; the tree stores vector copies in its
/// leaves for scan locality.
#[derive(Debug)]
pub struct SRTree {
    root: ChildRef,
    config: SRTreeConfig,
    len: usize,
}

/// One k-NN result: squared distance and the point's collection position.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Neighbor {
    /// Squared Euclidean distance to the query.
    pub dist_sq: f32,
    /// Position in the backing collection.
    pub pos: u32,
}

impl SRTree {
    /// Creates an empty tree.
    pub fn new(config: SRTreeConfig) -> Self {
        config.validate();
        SRTree {
            root: ChildRef::summarise(Box::new(Node::empty_leaf())),
            config,
            len: 0,
        }
    }

    /// Creates an empty tree with default parameters.
    pub fn with_defaults() -> Self {
        Self::new(SRTreeConfig::default())
    }

    /// Number of points stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The tree's configuration.
    pub fn config(&self) -> &SRTreeConfig {
        &self.config
    }

    /// Height of the tree (a lone leaf has height 1).
    pub fn height(&self) -> usize {
        let mut h = 1;
        let mut node: &Node = &self.root.node;
        while let Node::Internal { children } = node {
            h += 1;
            node = &children[0].node;
        }
        h
    }

    /// Borrows the root reference (used by chunk extraction and tests).
    pub fn root(&self) -> &ChildRef {
        &self.root
    }

    /// Assembles a tree from a pre-built root (the static build path).
    pub(crate) fn from_parts(root: ChildRef, config: SRTreeConfig, len: usize) -> Self {
        config.validate();
        SRTree { root, config, len }
    }

    /// Inserts a point.
    pub fn insert(&mut self, pos: u32, vector: Vector) {
        let mut pending = vec![LeafEntry { pos, vector }];
        let mut reinserted = false;
        while let Some(entry) = pending.pop() {
            if let Some(sibling) = insert_rec(
                &mut self.root,
                entry,
                &self.config,
                &mut pending,
                &mut reinserted,
            ) {
                // Root split: grow the tree by one level.
                let old_root = std::mem::replace(
                    &mut self.root,
                    ChildRef::summarise(Box::new(Node::empty_leaf())),
                );
                self.root = ChildRef::summarise(Box::new(Node::Internal {
                    children: vec![old_root, sibling],
                }));
            }
        }
        self.len += 1;
    }

    /// Exact k-nearest-neighbour search, returning up to `k` results in
    /// increasing distance order.
    pub fn knn(&self, query: &Vector, k: usize) -> Vec<Neighbor> {
        if k == 0 || self.len == 0 {
            return Vec::new();
        }
        // Max-heap of current best k (by distance), so peek() is the worst.
        let mut best: BinaryHeap<HeapNeighbor> = BinaryHeap::with_capacity(k + 1);
        // Min-heap of frontier nodes by region mindist.
        let mut frontier: BinaryHeap<Frontier<'_>> = BinaryHeap::new();
        frontier.push(Frontier {
            dist_sq: region_min_dist_sq(&self.root.rect, &self.root.sphere, query),
            node: &self.root.node,
        });
        while let Some(Frontier { dist_sq, node }) = frontier.pop() {
            if best.len() == k && best.peek().is_some_and(|b| dist_sq > b.0.dist_sq) {
                break; // every remaining region is farther than the kth best
            }
            match node {
                Node::Leaf { entries } => {
                    // Blocked leaf scan: four distances per step, one
                    // accumulator chain per entry (see
                    // `eff2_descriptor::kernels`); same visit order as the
                    // row-at-a-time loop it replaces.
                    let mut blocks = entries.chunks_exact(4);
                    for blk in &mut blocks {
                        let d = l2_sq_x4(
                            query.as_array(),
                            blk[0].vector.as_array(),
                            blk[1].vector.as_array(),
                            blk[2].vector.as_array(),
                            blk[3].vector.as_array(),
                        );
                        for (e, &dj) in blk.iter().zip(d.iter()) {
                            offer_leaf(&mut best, k, e.pos, dj);
                        }
                    }
                    for e in blocks.remainder() {
                        offer_leaf(&mut best, k, e.pos, query.dist_sq(&e.vector));
                    }
                }
                Node::Internal { children } => {
                    for c in children {
                        let d = region_min_dist_sq(&c.rect, &c.sphere, query);
                        if best.len() < k || best.peek().is_some_and(|b| d <= b.0.dist_sq) {
                            frontier.push(Frontier {
                                dist_sq: d,
                                node: &c.node,
                            });
                        }
                    }
                }
            }
        }
        let mut out: Vec<Neighbor> = best.into_iter().map(|h| h.0).collect();
        out.sort_by(|a, b| a.dist_sq.total_cmp(&b.dist_sq).then(a.pos.cmp(&b.pos)));
        out
    }

    /// Checks every structural invariant, panicking with a description on
    /// the first violation. Test/diagnostic helper — O(n log n).
    pub fn validate(&self) {
        let counted = validate_rec(&self.root, &self.config, true);
        assert_eq!(
            counted, self.len,
            "stored count {} != len {}",
            counted, self.len
        );
    }
}

fn insert_rec(
    child: &mut ChildRef,
    entry: LeafEntry,
    cfg: &SRTreeConfig,
    pending: &mut Vec<LeafEntry>,
    reinserted: &mut bool,
) -> Option<ChildRef> {
    let result = match child.node.as_mut() {
        Node::Leaf { entries } => {
            entries.push(entry);
            if entries.len() <= cfg.leaf_capacity {
                None
            } else if !*reinserted && cfg.reinsert_fraction > 0.0 {
                *reinserted = true;
                force_reinsert(entries, cfg.reinsert_fraction, pending);
                None
            } else {
                let sibling_entries = split_leaf(entries, cfg);
                Some(ChildRef::summarise(Box::new(Node::Leaf {
                    entries: sibling_entries,
                })))
            }
        }
        Node::Internal { children } => {
            // SR-tree choose-subtree: descend into the child whose centroid
            // is nearest to the new point.
            let mut best = 0usize;
            let mut best_d = f32::INFINITY;
            for (i, c) in children.iter().enumerate() {
                let d = entry.vector.dist_sq(&c.sphere.center);
                if d < best_d {
                    best_d = d;
                    best = i;
                }
            }
            let split = insert_rec(&mut children[best], entry, cfg, pending, reinserted);
            if let Some(sibling) = split {
                children.push(sibling);
            }
            if children.len() > cfg.internal_capacity {
                let sibling_children = split_internal(children, cfg);
                Some(ChildRef::summarise(Box::new(Node::Internal {
                    children: sibling_children,
                })))
            } else {
                None
            }
        }
    };
    child.refresh();
    result
}

/// Removes the `fraction` of `entries` farthest from their centroid and
/// queues them for reinsertion (R\*-tree forced reinsert).
fn force_reinsert(entries: &mut Vec<LeafEntry>, fraction: f32, pending: &mut Vec<LeafEntry>) {
    let centroid = Vector::mean(entries.iter().map(|e| &e.vector).collect::<Vec<_>>());
    let p = (((entries.len() as f32) * fraction).ceil() as usize)
        .max(1)
        .min(entries.len() - 1);
    // Sort ascending by distance; the farthest p entries sit at the tail.
    entries.sort_by(|a, b| {
        centroid
            .dist_sq(&a.vector)
            .total_cmp(&centroid.dist_sq(&b.vector))
    });
    let tail = entries.split_off(entries.len() - p);
    pending.extend(tail);
}

/// Splits an over-full leaf in place, returning the entries of the new
/// sibling. Axis: maximum variance; split point: minimum total margin among
/// balanced candidates.
fn split_leaf(entries: &mut Vec<LeafEntry>, cfg: &SRTreeConfig) -> Vec<LeafEntry> {
    let axis = max_variance_axis(entries.iter().map(|e| &e.vector));
    entries.sort_by(|a, b| a.vector[axis].total_cmp(&b.vector[axis]));
    let k = best_split_point(entries.len(), cfg, |i| entries[i].vector);
    entries.split_off(k)
}

/// Splits an over-full internal node in place (on child centroids),
/// returning the children of the new sibling.
fn split_internal(children: &mut Vec<ChildRef>, cfg: &SRTreeConfig) -> Vec<ChildRef> {
    let axis = max_variance_axis(children.iter().map(|c| &c.sphere.center));
    children.sort_by(|a, b| a.sphere.center[axis].total_cmp(&b.sphere.center[axis]));
    let k = best_split_point(children.len(), cfg, |i| children[i].sphere.center);
    children.split_off(k)
}

/// Chooses the split index `k` (left gets `0..k`) minimising the sum of the
/// two groups' rectangle margins, over candidates satisfying the minimum
/// fill. `point_at` yields the representative point of element `i` in the
/// already-sorted order.
fn best_split_point(n: usize, cfg: &SRTreeConfig, point_at: impl Fn(usize) -> Vector) -> usize {
    let m = (((n as f32) * cfg.min_fill).floor() as usize).max(1);
    let lo = m;
    let hi = n - m;
    if lo >= hi {
        return n / 2;
    }
    // Prefix/suffix rectangles let each candidate be evaluated in O(1).
    let mut prefix = Vec::with_capacity(n);
    let mut rect = Rect::empty();
    for i in 0..n {
        rect.expand_point(&point_at(i));
        prefix.push(rect);
    }
    let mut suffix = vec![Rect::empty(); n + 1];
    let mut rect = Rect::empty();
    for i in (0..n).rev() {
        rect.expand_point(&point_at(i));
        suffix[i] = rect;
    }
    let mut best_k = n / 2;
    let mut best_margin = f32::INFINITY;
    for k in lo..=hi {
        let margin = prefix[k - 1].margin() + suffix[k].margin();
        if margin < best_margin {
            best_margin = margin;
            best_k = k;
        }
    }
    best_k
}

fn max_variance_axis<'a, I>(points: I) -> usize
where
    I: Iterator<Item = &'a Vector> + Clone,
{
    let mut sum = [0.0f64; DIM];
    let mut sum_sq = [0.0f64; DIM];
    let mut n = 0usize;
    for p in points {
        for d in 0..DIM {
            let x = f64::from(p[d]);
            sum[d] += x;
            sum_sq[d] += x * x;
        }
        n += 1;
    }
    if n == 0 {
        return 0;
    }
    let inv = 1.0 / n as f64;
    let mut best = 0;
    let mut best_var = f64::NEG_INFINITY;
    for d in 0..DIM {
        let mean = sum[d] * inv;
        let var = sum_sq[d] * inv - mean * mean;
        if var > best_var {
            best_var = var;
            best = d;
        }
    }
    best
}

fn validate_rec(child: &ChildRef, cfg: &SRTreeConfig, is_root: bool) -> usize {
    match child.node.as_ref() {
        Node::Leaf { entries } => {
            assert!(
                entries.len() <= cfg.leaf_capacity,
                "leaf overflow: {} > {}",
                entries.len(),
                cfg.leaf_capacity
            );
            for e in entries {
                assert!(
                    child.rect.contains(&e.vector),
                    "rect must contain leaf point"
                );
                assert!(
                    child.sphere.contains(&e.vector),
                    "sphere must contain leaf point"
                );
            }
            assert_eq!(child.count, entries.len(), "leaf count mismatch");
            entries.len()
        }
        Node::Internal { children } => {
            assert!(children.len() <= cfg.internal_capacity, "internal overflow");
            // A 1-child internal is legal (an internal at capacity 2
            // overflowing with 3 children can only split 1+2); it must
            // simply be non-empty. Later inserts fill such nodes back up.
            assert!(
                is_root || !children.is_empty(),
                "non-root internal node must not be empty"
            );
            let mut total = 0;
            for c in children {
                assert!(
                    child.rect.contains_rect(&c.rect),
                    "parent rect must contain child rect"
                );
                total += validate_rec(c, cfg, false);
            }
            assert_eq!(child.count, total, "internal count mismatch");
            total
        }
    }
}

/// Max-heap adapter ordering neighbours by distance.
/// The bounded top-k offer of the leaf scan (shared by the blocked and
/// remainder paths of [`SRTree::knn`]).
#[inline]
fn offer_leaf(best: &mut BinaryHeap<HeapNeighbor>, k: usize, pos: u32, d: f32) {
    if best.len() < k {
        best.push(HeapNeighbor(Neighbor { dist_sq: d, pos }));
    } else if best.peek().is_some_and(|b| d < b.0.dist_sq) {
        best.pop();
        best.push(HeapNeighbor(Neighbor { dist_sq: d, pos }));
    }
}

struct HeapNeighbor(Neighbor);

impl PartialEq for HeapNeighbor {
    fn eq(&self, other: &Self) -> bool {
        self.0.dist_sq == other.0.dist_sq && self.0.pos == other.0.pos
    }
}
impl Eq for HeapNeighbor {}
impl PartialOrd for HeapNeighbor {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapNeighbor {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0
            .dist_sq
            .total_cmp(&other.0.dist_sq)
            .then(self.0.pos.cmp(&other.0.pos))
    }
}

/// Min-heap adapter ordering frontier nodes by region mindist.
struct Frontier<'a> {
    dist_sq: f32,
    node: &'a Node,
}

impl PartialEq for Frontier<'_> {
    fn eq(&self, other: &Self) -> bool {
        self.dist_sq == other.dist_sq
    }
}
impl Eq for Frontier<'_> {}
impl PartialOrd for Frontier<'_> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Frontier<'_> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: BinaryHeap is a max-heap, we want the nearest region first.
        other.dist_sq.total_cmp(&self.dist_sq)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_points(n: usize) -> Vec<Vector> {
        // Deterministic, well-spread points.
        (0..n)
            .map(|i| {
                let mut v = Vector::ZERO;
                for d in 0..DIM {
                    v[d] = (((i * 31 + d * 17) % 97) as f32) * 0.37 - 18.0;
                }
                v
            })
            .collect()
    }

    fn build(n: usize, cfg: SRTreeConfig) -> (SRTree, Vec<Vector>) {
        let pts = grid_points(n);
        let mut tree = SRTree::new(cfg);
        for (i, p) in pts.iter().enumerate() {
            tree.insert(i as u32, *p);
        }
        (tree, pts)
    }

    fn brute_knn(pts: &[Vector], q: &Vector, k: usize) -> Vec<Neighbor> {
        let mut all: Vec<Neighbor> = pts
            .iter()
            .enumerate()
            .map(|(i, p)| Neighbor {
                dist_sq: q.dist_sq(p),
                pos: i as u32,
            })
            .collect();
        all.sort_by(|a, b| a.dist_sq.total_cmp(&b.dist_sq).then(a.pos.cmp(&b.pos)));
        all.truncate(k);
        all
    }

    #[test]
    fn empty_tree() {
        let tree = SRTree::with_defaults();
        assert!(tree.is_empty());
        assert_eq!(tree.height(), 1);
        assert!(tree.knn(&Vector::ZERO, 5).is_empty());
        tree.validate();
    }

    #[test]
    fn insert_below_capacity_stays_single_leaf() {
        let (tree, _) = build(10, SRTreeConfig::default());
        assert_eq!(tree.len(), 10);
        assert_eq!(tree.height(), 1);
        tree.validate();
    }

    #[test]
    fn overflow_splits_and_grows() {
        let cfg = SRTreeConfig {
            leaf_capacity: 8,
            internal_capacity: 4,
            ..SRTreeConfig::default()
        };
        let (tree, _) = build(200, cfg);
        assert_eq!(tree.len(), 200);
        assert!(tree.height() >= 3, "height {}", tree.height());
        tree.validate();
    }

    #[test]
    fn knn_matches_brute_force() {
        let cfg = SRTreeConfig {
            leaf_capacity: 10,
            internal_capacity: 5,
            ..SRTreeConfig::default()
        };
        let (tree, pts) = build(500, cfg);
        for qi in [0usize, 123, 456] {
            let q = pts[qi];
            let got = tree.knn(&q, 10);
            let want = brute_knn(&pts, &q, 10);
            assert_eq!(got.len(), want.len());
            for (g, w) in got.iter().zip(want.iter()) {
                assert!((g.dist_sq - w.dist_sq).abs() < 1e-4, "{g:?} vs {w:?}");
            }
        }
    }

    #[test]
    fn knn_from_off_dataset_query() {
        let (tree, pts) = build(300, SRTreeConfig::default());
        let q = Vector::splat(50.0);
        let got = tree.knn(&q, 7);
        let want = brute_knn(&pts, &q, 7);
        for (g, w) in got.iter().zip(want.iter()) {
            assert!((g.dist_sq - w.dist_sq).abs() < 1e-3);
        }
    }

    #[test]
    fn knn_k_larger_than_n_returns_all() {
        let (tree, pts) = build(20, SRTreeConfig::default());
        let got = tree.knn(&Vector::ZERO, 100);
        assert_eq!(got.len(), pts.len());
    }

    #[test]
    fn knn_k_zero() {
        let (tree, _) = build(20, SRTreeConfig::default());
        assert!(tree.knn(&Vector::ZERO, 0).is_empty());
    }

    #[test]
    fn duplicate_points_are_retained() {
        let mut tree = SRTree::new(SRTreeConfig {
            leaf_capacity: 4,
            internal_capacity: 3,
            ..SRTreeConfig::default()
        });
        for i in 0..50u32 {
            tree.insert(i, Vector::splat(1.0));
        }
        assert_eq!(tree.len(), 50);
        tree.validate();
        let got = tree.knn(&Vector::splat(1.0), 50);
        assert_eq!(got.len(), 50);
        assert!(got.iter().all(|n| n.dist_sq == 0.0));
    }

    #[test]
    fn validate_after_heavy_inserts() {
        let cfg = SRTreeConfig {
            leaf_capacity: 6,
            internal_capacity: 4,
            reinsert_fraction: 0.3,
            min_fill: 0.4,
        };
        let (tree, _) = build(1_000, cfg);
        tree.validate();
        assert_eq!(tree.len(), 1_000);
    }

    #[test]
    fn no_reinsertion_path_also_valid() {
        let cfg = SRTreeConfig {
            leaf_capacity: 6,
            internal_capacity: 4,
            reinsert_fraction: 0.0,
            min_fill: 0.4,
        };
        let (tree, pts) = build(400, cfg);
        tree.validate();
        let got = tree.knn(&pts[7], 5);
        let want = brute_knn(&pts, &pts[7], 5);
        for (g, w) in got.iter().zip(want.iter()) {
            assert!((g.dist_sq - w.dist_sq).abs() < 1e-4);
        }
    }

    #[test]
    #[should_panic(expected = "leaf capacity")]
    fn config_rejects_tiny_leaf() {
        SRTree::new(SRTreeConfig {
            leaf_capacity: 1,
            ..SRTreeConfig::default()
        });
    }
}
