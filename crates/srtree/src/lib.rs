#![warn(missing_docs)]

//! # eff2-srtree
//!
//! An SR-tree (Katayama & Satoh, *"The SR-tree: An Index Structure for
//! High-Dimensional Nearest Neighbor Queries"*, SIGMOD 1997) over
//! 24-dimensional image descriptors, built for the chunk-formation study of
//! the eff2 paper (§2):
//!
//! > *"we adapted the SR-tree to yield chunks, by making two minor changes
//! > to the code. First, we added a parameter to control the size of the
//! > leaves, and second, we added a method to generate chunks from the
//! > leaves, thus throwing away the upper levels of the tree. We used the
//! > static build method, as it was much faster and guaranteed uniform leaf
//! > size."*
//!
//! Three public surfaces:
//!
//! * [`SRTree`] — the dynamic index: insert with R\*-style forced
//!   reinsertion, bounding *sphere ∩ rectangle* regions, exact k-NN search.
//! * [`bulk::bulk_build`] — the static build: a variance-split recursive
//!   partitioning that guarantees every leaf holds the requested number of
//!   descriptors (±1) and is *roundish* because splits follow the widest
//!   dimension. This is what the paper's experiments use.
//! * [`chunks::extract_chunks`] / [`chunks::chunks_from_collection`] — the
//!   paper's adaptation: take the leaves as chunks (with centroid and
//!   minimum bounding radius) and discard the upper levels.

pub mod bulk;
pub mod chunks;
pub mod geometry;
pub mod node;
pub mod tree;

pub use bulk::{bulk_build, BulkConfig};
pub use chunks::{chunks_from_collection, extract_chunks, LeafChunk};
pub use geometry::{Rect, Sphere};
pub use tree::{SRTree, SRTreeConfig};
