//! Chunk extraction — the paper's adaptation of the SR-tree.
//!
//! §2: *"we added a method to generate chunks from the leaves, thus throwing
//! away the upper levels of the tree"*. A chunk is the set of descriptors of
//! one leaf, summarised by its centroid and minimum bounding radius —
//! exactly the pair the chunk-index file of §4.2 stores per chunk. The
//! paper also notes that most of the chunk-index construction time went to
//! *"calculating the centroid and radius of each chunk"*; that computation
//! lives in [`crate::bulk::centroid_and_radius`].

use crate::bulk::{build_leaf_partitions, centroid_and_radius};
use crate::node::Node;
use crate::tree::SRTree;
use eff2_descriptor::{DescriptorSet, Vector};

/// One chunk produced from an SR-tree leaf: member positions plus the
/// centroid/radius summary the chunk index stores.
#[derive(Clone, Debug)]
pub struct LeafChunk {
    /// Positions of the member descriptors in the backing collection.
    pub positions: Vec<u32>,
    /// Centroid of the members.
    pub centroid: Vector,
    /// Minimum bounding radius around the centroid.
    pub radius: f32,
}

impl LeafChunk {
    /// Number of member descriptors.
    pub fn len(&self) -> usize {
        self.positions.len()
    }

    /// Whether the chunk is empty.
    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }
}

/// Extracts one chunk per leaf of `tree`, throwing away the upper levels.
pub fn extract_chunks(tree: &SRTree) -> Vec<LeafChunk> {
    let mut out = Vec::new();
    collect_leaves(&tree.root().node, &mut out);
    out
}

fn collect_leaves(node: &Node, out: &mut Vec<LeafChunk>) {
    match node {
        Node::Leaf { entries } => {
            if entries.is_empty() {
                return;
            }
            let centroid = Vector::mean(entries.iter().map(|e| &e.vector).collect::<Vec<_>>());
            let radius = entries
                .iter()
                .map(|e| centroid.dist(&e.vector))
                .fold(0.0f32, f32::max);
            out.push(LeafChunk {
                positions: entries.iter().map(|e| e.pos).collect(),
                centroid,
                radius,
            });
        }
        Node::Internal { children } => {
            for c in children {
                collect_leaves(&c.node, out);
            }
        }
    }
}

/// The experiments' fast path: partition `set` into uniform leaves of
/// `leaf_size` and summarise each, without materialising the tree's upper
/// levels (which would be thrown away anyway).
///
/// Leaf summaries are independent of one another, so the
/// centroid-and-radius phase runs one task per leaf in parallel; the
/// output order (and therefore every downstream chunk id) is identical to
/// the sequential path.
pub fn chunks_from_collection(set: &DescriptorSet, leaf_size: usize) -> Vec<LeafChunk> {
    let partitions = build_leaf_partitions(set, leaf_size);
    eff2_parallel::par_map(&partitions, |_, positions| {
        let (centroid, radius) = centroid_and_radius(set, positions);
        LeafChunk {
            positions: positions.clone(),
            centroid,
            radius,
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bulk::{bulk_build, BulkConfig};
    use eff2_descriptor::{Descriptor, DIM};

    fn spread_set(n: usize) -> DescriptorSet {
        (0..n)
            .map(|i| {
                let mut v = Vector::ZERO;
                for d in 0..DIM {
                    v[d] = (((i * 57 + d * 41) % 173) as f32) * 0.19 - 16.0;
                }
                Descriptor::new(i as u32, v)
            })
            .collect()
    }

    #[test]
    fn extract_covers_collection() {
        let set = spread_set(500);
        let tree = bulk_build(
            &set,
            BulkConfig {
                leaf_size: 32,
                internal_fanout: 8,
            },
        );
        let chunks = extract_chunks(&tree);
        let total: usize = chunks.iter().map(|c| c.len()).sum();
        assert_eq!(total, 500);
        let mut seen = vec![false; 500];
        for c in &chunks {
            for &p in &c.positions {
                assert!(!seen[p as usize]);
                seen[p as usize] = true;
            }
        }
    }

    #[test]
    fn chunk_summaries_cover_members() {
        let set = spread_set(400);
        for chunks in [
            extract_chunks(&bulk_build(
                &set,
                BulkConfig {
                    leaf_size: 50,
                    internal_fanout: 6,
                },
            )),
            chunks_from_collection(&set, 50),
        ] {
            for c in &chunks {
                assert!(!c.is_empty());
                for &p in &c.positions {
                    let d = c.centroid.dist(&set.vector_owned(p as usize));
                    assert!(d <= c.radius * (1.0 + 1e-5) + 1e-4);
                }
            }
        }
    }

    #[test]
    fn fast_path_matches_tree_path() {
        // Both paths wrap the same partitioning, so chunk memberships must
        // be identical (as sets of position sets).
        let set = spread_set(600);
        let via_tree: Vec<Vec<u32>> = extract_chunks(&bulk_build(
            &set,
            BulkConfig {
                leaf_size: 64,
                internal_fanout: 4,
            },
        ))
        .into_iter()
        .map(|c| {
            let mut p = c.positions;
            p.sort_unstable();
            p
        })
        .collect();
        let via_fast: Vec<Vec<u32>> = chunks_from_collection(&set, 64)
            .into_iter()
            .map(|c| {
                let mut p = c.positions;
                p.sort_unstable();
                p
            })
            .collect();
        let mut a = via_tree;
        let mut b = via_fast;
        a.sort();
        b.sort();
        assert_eq!(a, b);
    }

    #[test]
    fn uniform_sizes_from_fast_path() {
        let set = spread_set(1_001);
        let chunks = chunks_from_collection(&set, 100);
        assert_eq!(chunks.len(), 11);
        for c in &chunks {
            assert!(c.len() == 91 || c.len() == 92, "size {}", c.len());
        }
    }

    #[test]
    fn empty_collection_yields_no_chunks() {
        assert!(chunks_from_collection(&DescriptorSet::new(), 10).is_empty());
        let tree = bulk_build(&DescriptorSet::new(), BulkConfig::default());
        assert!(extract_chunks(&tree).is_empty());
    }
}
