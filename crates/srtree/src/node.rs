//! Node types of the dynamic SR-tree and their summary maintenance.
//!
//! Every subtree is described to its parent by a [`ChildRef`]: the owned
//! node plus the SR-tree region summary — bounding rectangle, bounding
//! sphere and subtree point count. The sphere centre is the *centroid of
//! all points in the subtree* (this is the SR-tree's departure from the
//! SS-tree: centroids weighted by subtree cardinality), and its radius is
//! the smaller of the two available upper bounds: the farthest child sphere
//! and the farthest rectangle corner.
// lint:allow-file(panic.index): entry arrays are bounded by the node capacity checks around them

use crate::geometry::{Rect, Sphere};
use eff2_descriptor::Vector;

/// One point stored in a leaf: its position in the backing collection plus
/// a copy of the vector for scan locality.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LeafEntry {
    /// Position of the descriptor in the backing [`eff2_descriptor::DescriptorSet`].
    pub pos: u32,
    /// The descriptor vector.
    pub vector: Vector,
}

/// An SR-tree node.
#[derive(Debug)]
pub enum Node {
    /// A leaf holding points.
    Leaf {
        /// The stored points.
        entries: Vec<LeafEntry>,
    },
    /// An internal node holding summarised subtrees.
    Internal {
        /// The child subtrees.
        children: Vec<ChildRef>,
    },
}

impl Node {
    /// Creates an empty leaf.
    pub fn empty_leaf() -> Node {
        Node::Leaf {
            entries: Vec::new(),
        }
    }

    /// Whether this node is a leaf.
    pub fn is_leaf(&self) -> bool {
        matches!(self, Node::Leaf { .. })
    }

    /// Number of immediate entries (points for leaves, children for
    /// internal nodes).
    pub fn fan(&self) -> usize {
        match self {
            Node::Leaf { entries } => entries.len(),
            Node::Internal { children } => children.len(),
        }
    }
}

/// An owned subtree plus its region summary.
#[derive(Debug)]
pub struct ChildRef {
    /// The owned subtree.
    pub node: Box<Node>,
    /// Minimum bounding rectangle of all points below.
    pub rect: Rect,
    /// Bounding sphere centred on the subtree centroid.
    pub sphere: Sphere,
    /// Number of points below.
    pub count: usize,
}

impl ChildRef {
    /// Builds a reference around `node`, computing its summary.
    pub fn summarise(node: Box<Node>) -> ChildRef {
        let (rect, sphere, count) = summary_of(&node);
        ChildRef {
            node,
            rect,
            sphere,
            count,
        }
    }

    /// Recomputes this reference's summary from its node's current
    /// immediate entries (children summaries are trusted, not recursed
    /// into — maintenance is O(fan-out) per level).
    pub fn refresh(&mut self) {
        let (rect, sphere, count) = summary_of(&self.node);
        self.rect = rect;
        self.sphere = sphere;
        self.count = count;
    }
}

/// Computes (rect, sphere, count) for a node from its immediate entries.
pub fn summary_of(node: &Node) -> (Rect, Sphere, usize) {
    match node {
        Node::Leaf { entries } => {
            let mut rect = Rect::empty();
            let mut sum = [0.0f64; eff2_descriptor::DIM];
            for e in entries {
                rect.expand_point(&e.vector);
                for (a, &x) in sum.iter_mut().zip(e.vector.as_slice()) {
                    *a += f64::from(x);
                }
            }
            let count = entries.len();
            if count == 0 {
                return (rect, Sphere::point(&Vector::ZERO), 0);
            }
            let mut center = Vector::ZERO;
            for d in 0..eff2_descriptor::DIM {
                center[d] = (sum[d] / count as f64) as f32;
            }
            let max_point = entries
                .iter()
                .map(|e| center.dist(&e.vector))
                .fold(0.0f32, f32::max);
            // The rectangle-corner bound can only be looser for a leaf, but
            // take the min anyway for symmetry with internal nodes.
            let radius = max_point.min(rect.max_dist_from(&center));
            (rect, Sphere { center, radius }, count)
        }
        Node::Internal { children } => {
            let mut rect = Rect::empty();
            let mut sum = [0.0f64; eff2_descriptor::DIM];
            let mut count = 0usize;
            for c in children {
                rect.expand_rect(&c.rect);
                count += c.count;
                for (a, &x) in sum.iter_mut().zip(c.sphere.center.as_slice()) {
                    *a += f64::from(x) * c.count as f64;
                }
            }
            if count == 0 {
                return (rect, Sphere::point(&Vector::ZERO), 0);
            }
            let mut center = Vector::ZERO;
            for d in 0..eff2_descriptor::DIM {
                center[d] = (sum[d] / count as f64) as f32;
            }
            // SR-tree radius: min of the two available upper bounds.
            let by_spheres = children
                .iter()
                .map(|c| center.dist(&c.sphere.center) + c.sphere.radius)
                .fold(0.0f32, f32::max);
            let by_rect = rect.max_dist_from(&center);
            (
                rect,
                Sphere {
                    center,
                    radius: by_spheres.min(by_rect),
                },
                count,
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eff2_descriptor::DIM;

    fn entry(pos: u32, fill: f32) -> LeafEntry {
        LeafEntry {
            pos,
            vector: Vector::splat(fill),
        }
    }

    #[test]
    fn leaf_summary_covers_entries() {
        let node = Node::Leaf {
            entries: vec![entry(0, 0.0), entry(1, 2.0), entry(2, 4.0)],
        };
        let (rect, sphere, count) = summary_of(&node);
        assert_eq!(count, 3);
        assert_eq!(rect.min, Vector::splat(0.0));
        assert_eq!(rect.max, Vector::splat(4.0));
        // Centroid is splat(2); farthest point splat(0)/splat(4) at
        // distance sqrt(24 * 4).
        assert_eq!(sphere.center, Vector::splat(2.0));
        let expect = (DIM as f32 * 4.0).sqrt();
        assert!((sphere.radius - expect).abs() < 1e-4);
        for e in [entry(0, 0.0), entry(1, 2.0), entry(2, 4.0)] {
            assert!(sphere.contains(&e.vector));
            assert!(rect.contains(&e.vector));
        }
    }

    #[test]
    fn empty_leaf_summary() {
        let (rect, sphere, count) = summary_of(&Node::empty_leaf());
        assert_eq!(count, 0);
        assert!(rect.is_empty());
        assert_eq!(sphere.radius, 0.0);
    }

    #[test]
    fn internal_summary_weights_centroids() {
        // Child A: 3 points at splat(0); child B: 1 point at splat(4).
        let a = ChildRef::summarise(Box::new(Node::Leaf {
            entries: vec![entry(0, 0.0), entry(1, 0.0), entry(2, 0.0)],
        }));
        let b = ChildRef::summarise(Box::new(Node::Leaf {
            entries: vec![entry(3, 4.0)],
        }));
        let parent = Node::Internal {
            children: vec![a, b],
        };
        let (rect, sphere, count) = summary_of(&parent);
        assert_eq!(count, 4);
        // Weighted centroid: (3*0 + 1*4)/4 = 1 per dimension.
        assert_eq!(sphere.center, Vector::splat(1.0));
        assert_eq!(rect.max, Vector::splat(4.0));
        // The sphere must cover both child spheres.
        let far = Vector::splat(4.0);
        assert!(sphere.contains(&far));
    }

    #[test]
    fn internal_radius_takes_tighter_bound() {
        // One point per child: the sphere-derived bound equals the true
        // farthest distance; the rect-corner bound coincides here, so the
        // radius must exactly cover the farthest point, not exceed it much.
        let a = ChildRef::summarise(Box::new(Node::Leaf {
            entries: vec![entry(0, 0.0)],
        }));
        let b = ChildRef::summarise(Box::new(Node::Leaf {
            entries: vec![entry(1, 2.0)],
        }));
        let parent = Node::Internal {
            children: vec![a, b],
        };
        let (_, sphere, _) = summary_of(&parent);
        let true_far = sphere.center.dist(&Vector::splat(2.0));
        assert!(sphere.radius >= true_far - 1e-5);
        assert!(sphere.radius <= true_far + 1e-4);
    }

    #[test]
    fn refresh_tracks_mutation() {
        let mut c = ChildRef::summarise(Box::new(Node::Leaf {
            entries: vec![entry(0, 0.0)],
        }));
        match c.node.as_mut() {
            Node::Leaf { entries } => entries.push(entry(1, 10.0)),
            _ => unreachable!(),
        }
        c.refresh();
        assert_eq!(c.count, 2);
        assert!(c.rect.contains(&Vector::splat(10.0)));
        assert!(c.sphere.contains(&Vector::splat(10.0)));
    }

    #[test]
    fn fan_counts_immediate_entries() {
        let leaf = Node::Leaf {
            entries: vec![entry(0, 0.0), entry(1, 1.0)],
        };
        assert_eq!(leaf.fan(), 2);
        assert!(leaf.is_leaf());
        let internal = Node::Internal {
            children: vec![ChildRef::summarise(Box::new(leaf))],
        };
        assert_eq!(internal.fan(), 1);
        assert!(!internal.is_leaf());
    }
}
