//! Static (bulk) build of the SR-tree.
//!
//! The paper: *"We used the static build method, as it was much faster and
//! guaranteed uniform leaf size. Unfortunately, it requires the collection
//! to fit in memory"* (§2). This module implements that build as a
//! recursive variance-split partitioning:
//!
//! 1. compute the number of leaves `L = ceil(n / leaf_size)`;
//! 2. split the point set along its maximum-variance dimension into two
//!    parts whose sizes are proportional to the leaf counts assigned to
//!    each side (`select_nth_unstable` — no full sort needed);
//! 3. recurse until a single leaf's worth of points remains.
//!
//! Every leaf ends up with either `⌊n/L⌋` or `⌈n/L⌉` points — the uniform
//! size the paper relies on — and leaves are *roundish* because splits
//! always cut the widest spread. The upper levels are then assembled
//! bottom-up with a fixed fan-out, yielding a complete, valid [`SRTree`].
// lint:allow-file(panic.index): partition boundaries are derived from the lengths of the slices they cut

use crate::node::{ChildRef, LeafEntry, Node};
use crate::tree::{SRTree, SRTreeConfig};
use eff2_descriptor::{DescriptorSet, Vector, DIM};

/// Parameters of the static build.
#[derive(Clone, Copy, Debug)]
pub struct BulkConfig {
    /// Target number of points per leaf — the paper's "parameter to control
    /// the size of the leaves".
    pub leaf_size: usize,
    /// Fan-out of the internal levels assembled above the leaves.
    pub internal_fanout: usize,
}

impl Default for BulkConfig {
    fn default() -> Self {
        BulkConfig {
            leaf_size: 64,
            internal_fanout: 16,
        }
    }
}

/// Statically builds an SR-tree over every descriptor in `set`.
///
/// # Panics
///
/// Panics if `leaf_size == 0` or `internal_fanout < 2`.
pub fn bulk_build(set: &DescriptorSet, cfg: BulkConfig) -> SRTree {
    assert!(cfg.leaf_size > 0, "leaf size must be positive");
    assert!(
        cfg.internal_fanout >= 2,
        "internal fan-out must be at least 2"
    );

    let tree_cfg = SRTreeConfig {
        // The dynamic invariants must admit what the static build produces.
        leaf_capacity: cfg.leaf_size.max(2),
        internal_capacity: cfg.internal_fanout,
        ..SRTreeConfig::default()
    };
    if set.is_empty() {
        return SRTree::new(tree_cfg);
    }

    let leaves = build_leaf_partitions(set, cfg.leaf_size);

    // Materialise the leaves.
    let mut level: Vec<ChildRef> = leaves
        .into_iter()
        .map(|positions| {
            let entries: Vec<LeafEntry> = positions
                .into_iter()
                .map(|pos| LeafEntry {
                    pos,
                    vector: set.vector_owned(pos as usize),
                })
                .collect();
            ChildRef::summarise(Box::new(Node::Leaf { entries }))
        })
        .collect();

    // Assemble internal levels bottom-up. Adjacent leaves come from
    // adjacent recursion branches, so grouping in order preserves locality.
    while level.len() > 1 {
        let mut next = Vec::with_capacity(level.len().div_ceil(cfg.internal_fanout));
        let mut iter = level.into_iter().peekable();
        while iter.peek().is_some() {
            let group: Vec<ChildRef> = iter.by_ref().take(cfg.internal_fanout).collect();
            next.push(ChildRef::summarise(Box::new(Node::Internal {
                children: group,
            })));
        }
        level = next;
    }
    let Some(root) = level.pop() else {
        return SRTree::new(tree_cfg);
    };
    let len = root.count;
    SRTree::from_parts(root, tree_cfg, len)
}

/// Partitions the positions `0..set.len()` into leaves of uniform size
/// (every leaf holds `⌊n/L⌋` or `⌈n/L⌉` points, `L = ceil(n/leaf_size)`).
///
/// This is the work-horse the experiments call directly through
/// [`crate::chunks::chunks_from_collection`]: building chunks does not
/// require materialising the upper tree levels at all.
pub fn build_leaf_partitions(set: &DescriptorSet, leaf_size: usize) -> Vec<Vec<u32>> {
    assert!(leaf_size > 0, "leaf size must be positive");
    let n = set.len();
    if n == 0 {
        return Vec::new();
    }
    let mut positions: Vec<u32> = (0..n as u32).collect();
    let n_leaves = n.div_ceil(leaf_size);
    let mut out = Vec::with_capacity(n_leaves);
    partition_rec(set, &mut positions, n_leaves, &mut out);
    out
}

fn partition_rec(
    set: &DescriptorSet,
    positions: &mut [u32],
    n_leaves: usize,
    out: &mut Vec<Vec<u32>>,
) {
    if n_leaves <= 1 {
        out.push(positions.to_vec());
        return;
    }
    let axis = max_variance_axis(set, positions);
    let left_leaves = n_leaves / 2;
    // Sizes proportional to leaf counts keep every leaf within ±1 of n/L.
    let split_at = positions.len() * left_leaves / n_leaves;
    let key = |p: &u32| set.vector(*p as usize)[axis];
    positions.select_nth_unstable_by(split_at, |a, b| key(a).total_cmp(&key(b)));
    let (left, right) = positions.split_at_mut(split_at);
    partition_rec(set, left, left_leaves, out);
    partition_rec(set, right, n_leaves - left_leaves, out);
}

fn max_variance_axis(set: &DescriptorSet, positions: &[u32]) -> usize {
    let mut sum = [0.0f64; DIM];
    let mut sum_sq = [0.0f64; DIM];
    for &p in positions {
        let v = set.vector(p as usize);
        for d in 0..DIM {
            let x = f64::from(v[d]);
            sum[d] += x;
            sum_sq[d] += x * x;
        }
    }
    let inv = 1.0 / positions.len().max(1) as f64;
    let mut best = 0;
    let mut best_var = f64::NEG_INFINITY;
    for d in 0..DIM {
        let mean = sum[d] * inv;
        let var = sum_sq[d] * inv - mean * mean;
        if var > best_var {
            best_var = var;
            best = d;
        }
    }
    best
}

/// Centroid and minimum bounding radius of the points at `positions`.
pub fn centroid_and_radius(set: &DescriptorSet, positions: &[u32]) -> (Vector, f32) {
    let mut sum = [0.0f64; DIM];
    for &p in positions {
        let v = set.vector(p as usize);
        for d in 0..DIM {
            sum[d] += f64::from(v[d]);
        }
    }
    let inv = 1.0 / positions.len().max(1) as f64;
    let mut centroid = Vector::ZERO;
    for d in 0..DIM {
        centroid[d] = (sum[d] * inv) as f32;
    }
    // The paper observes that most chunk-index construction time is spent
    // here; the radius scan is the blocked gather kernel.
    let radius = eff2_descriptor::kernels::max_dist_sq_gather(
        centroid.as_array(),
        eff2_descriptor::as_rows(set.packed()),
        positions,
    )
    .sqrt();
    (centroid, radius)
}

#[cfg(test)]
mod tests {
    use super::*;
    use eff2_descriptor::Descriptor;

    fn spread_set(n: usize) -> DescriptorSet {
        (0..n)
            .map(|i| {
                let mut v = Vector::ZERO;
                for d in 0..DIM {
                    v[d] = (((i * 131 + d * 29) % 211) as f32) * 0.11 - 11.0;
                }
                Descriptor::new(i as u32, v)
            })
            .collect()
    }

    #[test]
    fn partitions_cover_everything_exactly_once() {
        let set = spread_set(1_000);
        let leaves = build_leaf_partitions(&set, 64);
        let mut seen = vec![false; set.len()];
        for leaf in &leaves {
            for &p in leaf {
                assert!(!seen[p as usize], "position {p} appears twice");
                seen[p as usize] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "every position must be covered");
    }

    #[test]
    fn leaf_sizes_are_uniform_within_one() {
        for (n, leaf_size) in [
            (1_000usize, 64usize),
            (997, 100),
            (5_000, 7),
            (64, 64),
            (65, 64),
        ] {
            let set = spread_set(n);
            let leaves = build_leaf_partitions(&set, leaf_size);
            let l = n.div_ceil(leaf_size);
            assert_eq!(leaves.len(), l, "n={n} leaf_size={leaf_size}");
            let lo = n / l;
            let hi = n.div_ceil(l);
            for leaf in &leaves {
                assert!(
                    leaf.len() == lo || leaf.len() == hi,
                    "n={n} leaf_size={leaf_size}: leaf of {} not in [{lo},{hi}]",
                    leaf.len()
                );
            }
        }
    }

    #[test]
    fn single_leaf_when_collection_fits() {
        let set = spread_set(10);
        let leaves = build_leaf_partitions(&set, 64);
        assert_eq!(leaves.len(), 1);
        assert_eq!(leaves[0].len(), 10);
    }

    #[test]
    fn empty_collection_yields_no_leaves() {
        let set = DescriptorSet::new();
        assert!(build_leaf_partitions(&set, 10).is_empty());
    }

    #[test]
    fn bulk_tree_is_valid_and_complete() {
        let set = spread_set(2_000);
        let tree = bulk_build(
            &set,
            BulkConfig {
                leaf_size: 50,
                internal_fanout: 8,
            },
        );
        assert_eq!(tree.len(), 2_000);
        tree.validate();
        assert!(tree.height() >= 3);
    }

    #[test]
    fn bulk_tree_knn_matches_brute_force() {
        let set = spread_set(800);
        let tree = bulk_build(
            &set,
            BulkConfig {
                leaf_size: 32,
                internal_fanout: 8,
            },
        );
        let q = set.vector_owned(137);
        let got = tree.knn(&q, 5);
        // Brute force.
        let mut want: Vec<(f32, u32)> = (0..set.len())
            .map(|i| (q.dist_sq(&set.vector_owned(i)), i as u32))
            .collect();
        want.sort_by(|a, b| a.0.total_cmp(&b.0));
        for (g, w) in got.iter().zip(want.iter()) {
            assert!((g.dist_sq - w.0).abs() < 1e-4);
        }
    }

    #[test]
    fn bulk_empty_collection() {
        let tree = bulk_build(&DescriptorSet::new(), BulkConfig::default());
        assert!(tree.is_empty());
        tree.validate();
    }

    #[test]
    fn splits_partition_space_not_just_counts() {
        // With two well-separated blobs and leaf_size = half, the two
        // leaves should separate the blobs.
        let mut set = DescriptorSet::new();
        for i in 0..50u32 {
            set.push(Descriptor::new(i, Vector::splat(0.0 + (i as f32) * 1e-3)));
        }
        for i in 50..100u32 {
            set.push(Descriptor::new(i, Vector::splat(100.0 + (i as f32) * 1e-3)));
        }
        let leaves = build_leaf_partitions(&set, 50);
        assert_eq!(leaves.len(), 2);
        for leaf in &leaves {
            let first_group = set.vector(leaf[0] as usize)[0] < 50.0;
            for &p in leaf {
                assert_eq!(set.vector(p as usize)[0] < 50.0, first_group);
            }
        }
    }

    #[test]
    fn centroid_and_radius_cover_members() {
        let set = spread_set(200);
        let positions: Vec<u32> = (0..200).collect();
        let (c, r) = centroid_and_radius(&set, &positions);
        for &p in &positions {
            let d = c.dist(&set.vector_owned(p as usize));
            assert!(
                d <= r * (1.0 + 1e-5) + 1e-4,
                "point {p} at {d} > radius {r}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "leaf size")]
    fn rejects_zero_leaf_size() {
        build_leaf_partitions(&spread_set(5), 0);
    }
}
