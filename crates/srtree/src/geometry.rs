//! Bounding regions of the SR-tree: rectangles, spheres, and their
//! intersection semantics.
//!
//! The defining idea of the SR-tree is that every node region is the
//! *intersection* of a minimum bounding rectangle and a bounding sphere:
//! rectangles have small volume in high dimensions, spheres have small
//! diameter, and intersecting the two tightens both. The distance from a
//! query to a node region is therefore
//! `max(mindist(q, rect), mindist(q, sphere))`.
// lint:allow-file(panic.index): DIM-bounded rect/sphere loops over [f32; DIM] arrays

use eff2_descriptor::{Vector, DIM};

/// A minimum bounding rectangle in descriptor space.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Rect {
    /// Lower corner.
    pub min: Vector,
    /// Upper corner.
    pub max: Vector,
}

impl Rect {
    /// The degenerate rectangle covering exactly `point`.
    pub fn point(point: &Vector) -> Self {
        Rect {
            min: *point,
            max: *point,
        }
    }

    /// The "empty" rectangle: any union with it yields the other operand.
    pub fn empty() -> Self {
        Rect {
            min: Vector::splat(f32::INFINITY),
            max: Vector::splat(f32::NEG_INFINITY),
        }
    }

    /// Whether the rectangle contains no points.
    pub fn is_empty(&self) -> bool {
        (0..DIM).any(|d| self.min[d] > self.max[d])
    }

    /// Grows `self` to cover `point`.
    pub fn expand_point(&mut self, point: &Vector) {
        for d in 0..DIM {
            if point[d] < self.min[d] {
                self.min[d] = point[d];
            }
            if point[d] > self.max[d] {
                self.max[d] = point[d];
            }
        }
    }

    /// Grows `self` to cover `other`.
    pub fn expand_rect(&mut self, other: &Rect) {
        for d in 0..DIM {
            if other.min[d] < self.min[d] {
                self.min[d] = other.min[d];
            }
            if other.max[d] > self.max[d] {
                self.max[d] = other.max[d];
            }
        }
    }

    /// The union of two rectangles.
    pub fn union(mut self, other: &Rect) -> Rect {
        self.expand_rect(other);
        self
    }

    /// Whether `point` lies inside (inclusive).
    pub fn contains(&self, point: &Vector) -> bool {
        (0..DIM).all(|d| self.min[d] <= point[d] && point[d] <= self.max[d])
    }

    /// Whether `other` lies entirely inside `self` (inclusive).
    pub fn contains_rect(&self, other: &Rect) -> bool {
        (0..DIM).all(|d| self.min[d] <= other.min[d] && other.max[d] <= self.max[d])
    }

    /// The centre of the rectangle.
    pub fn center(&self) -> Vector {
        let mut c = Vector::ZERO;
        for d in 0..DIM {
            c[d] = 0.5 * (self.min[d] + self.max[d]);
        }
        c
    }

    /// Sum of edge lengths — the R\*-tree "margin" used as a split goodness
    /// measure (24-dimensional volumes under/overflow `f32`, margins don't).
    /// Accumulated serially in dimension order so the value is bit-identical
    /// everywhere this is computed (it feeds split decisions, hence tree
    /// shape, hence every trace).
    pub fn margin(&self) -> f32 {
        let mut acc = 0.0f32;
        for d in 0..DIM {
            acc += (self.max[d] - self.min[d]).max(0.0);
        }
        acc
    }

    /// Squared minimum distance from `q` to any point of the rectangle
    /// (zero when `q` is inside).
    #[inline]
    pub fn min_dist_sq(&self, q: &Vector) -> f32 {
        let mut acc = 0.0f32;
        for d in 0..DIM {
            let x = q[d];
            let lo = self.min[d];
            let hi = self.max[d];
            let delta = if x < lo {
                lo - x
            } else if x > hi {
                x - hi
            } else {
                0.0
            };
            acc += delta * delta;
        }
        acc
    }

    /// The farthest distance from `center` to any corner of the rectangle —
    /// the SR-tree's rectangle-derived bound on a node's sphere radius.
    pub fn max_dist_from(&self, center: &Vector) -> f32 {
        let mut acc = 0.0f32;
        for d in 0..DIM {
            let lo = (center[d] - self.min[d]).abs();
            let hi = (center[d] - self.max[d]).abs();
            let m = lo.max(hi);
            acc += m * m;
        }
        acc.sqrt()
    }
}

/// A bounding sphere.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Sphere {
    /// Centre of the sphere.
    pub center: Vector,
    /// Radius of the sphere.
    pub radius: f32,
}

impl Sphere {
    /// The degenerate sphere covering exactly `point`.
    pub fn point(point: &Vector) -> Self {
        Sphere {
            center: *point,
            radius: 0.0,
        }
    }

    /// Whether `point` lies inside (inclusive, with an f32 slack
    /// proportional to the radius).
    pub fn contains(&self, point: &Vector) -> bool {
        self.center.dist(point) <= self.radius * (1.0 + 1e-5) + 1e-5
    }

    /// Squared minimum distance from `q` to the sphere surface/interior
    /// (zero inside).
    #[inline]
    pub fn min_dist_sq(&self, q: &Vector) -> f32 {
        let d = self.center.dist(q) - self.radius;
        if d <= 0.0 {
            0.0
        } else {
            d * d
        }
    }

    /// Minimum (non-squared) distance from `q` to the sphere.
    #[inline]
    pub fn min_dist(&self, q: &Vector) -> f32 {
        (self.center.dist(q) - self.radius).max(0.0)
    }
}

/// Squared minimum distance from `q` to the *intersection region*
/// `rect ∩ sphere` — the SR-tree node distance bound.
///
/// The true mindist to an intersection is at least the max of the two
/// individual mindists, which is the (safe, and standard) bound the SR-tree
/// uses for pruning.
#[inline]
pub fn region_min_dist_sq(rect: &Rect, sphere: &Sphere, q: &Vector) -> f32 {
    rect.min_dist_sq(q).max(sphere.min_dist_sq(q))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(x: f32) -> Vector {
        Vector::splat(x)
    }

    #[test]
    fn empty_rect_union_is_identity() {
        let r = Rect::point(&v(3.0));
        let u = Rect::empty().union(&r);
        assert_eq!(u, r);
        assert!(Rect::empty().is_empty());
        assert!(!u.is_empty());
    }

    #[test]
    fn expand_point_grows_bounds() {
        let mut r = Rect::point(&v(0.0));
        r.expand_point(&v(2.0));
        assert_eq!(r.min, v(0.0));
        assert_eq!(r.max, v(2.0));
        assert!(r.contains(&v(1.0)));
        assert!(!r.contains(&v(2.5)));
    }

    #[test]
    fn contains_rect_semantics() {
        let outer = Rect {
            min: v(0.0),
            max: v(10.0),
        };
        let inner = Rect {
            min: v(2.0),
            max: v(8.0),
        };
        assert!(outer.contains_rect(&inner));
        assert!(!inner.contains_rect(&outer));
    }

    #[test]
    fn rect_min_dist_zero_inside() {
        let r = Rect {
            min: v(0.0),
            max: v(4.0),
        };
        assert_eq!(r.min_dist_sq(&v(2.0)), 0.0);
    }

    #[test]
    fn rect_min_dist_outside() {
        let r = Rect {
            min: v(0.0),
            max: v(1.0),
        };
        // Query at splat(2): each dim contributes (2-1)^2 = 1 → 24.
        assert_eq!(r.min_dist_sq(&v(2.0)), DIM as f32);
    }

    #[test]
    fn rect_center_and_margin() {
        let r = Rect {
            min: v(0.0),
            max: v(2.0),
        };
        assert_eq!(r.center(), v(1.0));
        assert_eq!(r.margin(), 2.0 * DIM as f32);
    }

    #[test]
    fn rect_max_dist_reaches_far_corner() {
        let r = Rect {
            min: v(0.0),
            max: v(2.0),
        };
        // From the min corner, the far corner is at distance sqrt(24*4).
        let d = r.max_dist_from(&v(0.0));
        assert!((d - (DIM as f32 * 4.0).sqrt()).abs() < 1e-4);
    }

    #[test]
    fn sphere_contains_and_min_dist() {
        let s = Sphere {
            center: v(0.0),
            radius: 2.0,
        };
        assert!(s.contains(&v(0.0)));
        assert_eq!(s.min_dist_sq(&v(0.0)), 0.0);
        // splat(1.0) is at distance sqrt(24) ≈ 4.9 > 2 → outside.
        let q = v(1.0);
        assert!(!s.contains(&q));
        let expect = (DIM as f32).sqrt() - 2.0;
        assert!((s.min_dist(&q) - expect).abs() < 1e-5);
        assert!((s.min_dist_sq(&q) - expect * expect).abs() < 1e-4);
    }

    #[test]
    fn region_min_dist_takes_max() {
        // Tight rect, loose sphere: the rect bound dominates.
        let rect = Rect {
            min: v(0.0),
            max: v(1.0),
        };
        let sphere = Sphere {
            center: v(0.5),
            radius: 100.0,
        };
        let q = v(3.0);
        assert_eq!(region_min_dist_sq(&rect, &sphere, &q), rect.min_dist_sq(&q));

        // Loose rect, tight sphere: the sphere bound dominates.
        let rect2 = Rect {
            min: v(-100.0),
            max: v(100.0),
        };
        let sphere2 = Sphere {
            center: v(0.0),
            radius: 0.5,
        };
        assert_eq!(
            region_min_dist_sq(&rect2, &sphere2, &q),
            sphere2.min_dist_sq(&q)
        );
    }
}
