//! Property-based tests for the SR-tree: structural invariants under
//! arbitrary insert sequences, exact k-NN vs brute force, and the static
//! build's uniform-leaf guarantee.

use eff2_descriptor::{Descriptor, DescriptorSet, Vector, DIM};
use eff2_srtree::bulk::build_leaf_partitions;
use eff2_srtree::{bulk_build, BulkConfig, SRTree, SRTreeConfig};
use proptest::prelude::*;

fn arb_vector() -> impl Strategy<Value = Vector> {
    proptest::collection::vec(-100.0f32..100.0, DIM).prop_map(|v| Vector::from_slice(&v))
}

fn arb_points(max: usize) -> impl Strategy<Value = Vec<Vector>> {
    proptest::collection::vec(arb_vector(), 1..max)
}

fn arb_config() -> impl Strategy<Value = SRTreeConfig> {
    (2usize..20, 2usize..10, 0.0f32..0.45, 0.05f32..0.5).prop_map(|(leaf, fan, reinsert, fill)| {
        SRTreeConfig {
            leaf_capacity: leaf,
            internal_capacity: fan,
            reinsert_fraction: reinsert,
            min_fill: fill,
        }
    })
}

fn brute_knn(points: &[Vector], q: &Vector, k: usize) -> Vec<f32> {
    let mut d: Vec<f32> = points.iter().map(|p| q.dist_sq(p)).collect();
    d.sort_by(f32::total_cmp);
    d.truncate(k);
    d
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn invariants_hold_after_any_insert_sequence(points in arb_points(200), cfg in arb_config()) {
        let mut tree = SRTree::new(cfg);
        for (i, p) in points.iter().enumerate() {
            tree.insert(i as u32, *p);
        }
        prop_assert_eq!(tree.len(), points.len());
        tree.validate();
    }

    #[test]
    fn knn_is_exact(points in arb_points(300), k in 1usize..12) {
        let mut tree = SRTree::new(SRTreeConfig {
            leaf_capacity: 8,
            internal_capacity: 4,
            ..SRTreeConfig::default()
        });
        for (i, p) in points.iter().enumerate() {
            tree.insert(i as u32, *p);
        }
        let q = points[points.len() / 3];
        let got: Vec<f32> = tree.knn(&q, k).into_iter().map(|n| n.dist_sq).collect();
        let want = brute_knn(&points, &q, k);
        prop_assert_eq!(got.len(), want.len());
        for (g, w) in got.iter().zip(want.iter()) {
            prop_assert!((g - w).abs() <= 1e-3 * (1.0 + w.abs()), "{} vs {}", g, w);
        }
    }

    #[test]
    fn every_inserted_point_is_findable(points in arb_points(150)) {
        let mut tree = SRTree::new(SRTreeConfig {
            leaf_capacity: 6,
            internal_capacity: 4,
            ..SRTreeConfig::default()
        });
        for (i, p) in points.iter().enumerate() {
            tree.insert(i as u32, *p);
        }
        // Querying each point for k=1 must return distance 0.
        for p in points.iter().step_by(7) {
            let nn = tree.knn(p, 1);
            prop_assert_eq!(nn.len(), 1);
            prop_assert_eq!(nn[0].dist_sq, 0.0);
        }
    }

    #[test]
    fn static_build_leaves_are_uniform(points in arb_points(400), leaf in 2usize..50) {
        let set: DescriptorSet = points
            .iter()
            .enumerate()
            .map(|(i, p)| Descriptor::new(i as u32, *p))
            .collect();
        let leaves = build_leaf_partitions(&set, leaf);
        let n = set.len();
        let l = n.div_ceil(leaf);
        prop_assert_eq!(leaves.len(), l);
        let (lo, hi) = (n / l, n.div_ceil(l));
        let mut seen = vec![false; n];
        for leaf in &leaves {
            prop_assert!(leaf.len() == lo || leaf.len() == hi, "leaf {} not in [{lo},{hi}]", leaf.len());
            for &p in leaf {
                prop_assert!(!seen[p as usize]);
                seen[p as usize] = true;
            }
        }
        prop_assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn bulk_and_dynamic_agree_on_knn(points in arb_points(200), k in 1usize..8) {
        let set: DescriptorSet = points
            .iter()
            .enumerate()
            .map(|(i, p)| Descriptor::new(i as u32, *p))
            .collect();
        let bulk = bulk_build(&set, BulkConfig { leaf_size: 10, internal_fanout: 5 });
        bulk.validate();
        let mut dynamic = SRTree::new(SRTreeConfig {
            leaf_capacity: 10,
            internal_capacity: 5,
            ..SRTreeConfig::default()
        });
        for (i, p) in points.iter().enumerate() {
            dynamic.insert(i as u32, *p);
        }
        let q = points[0];
        let a: Vec<f32> = bulk.knn(&q, k).into_iter().map(|n| n.dist_sq).collect();
        let b: Vec<f32> = dynamic.knn(&q, k).into_iter().map(|n| n.dist_sq).collect();
        prop_assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b.iter()) {
            prop_assert!((x - y).abs() <= 1e-3 * (1.0 + x.abs()));
        }
    }
}
