//! Cluster state and merge arithmetic.
//!
//! A BAG cluster tracks its members, an exactly-maintained centroid (via an
//! `f64` component sum), its **minimum bounding radius** (`tight_radius`)
//! and its **maintained radius** (`radius`). The two radii differ because
//! the paper's rule 3 inflates the radius of non-merging clusters by MPI
//! each pass, "making their radius non-minimal"; merge decisions compare
//! against the maintained radius, while the merged cluster's new radius is
//! recomputed exactly.
// lint:allow-file(panic.index): member lists and DIM-bounded component loops stay inside lengths computed in this module

use eff2_descriptor::kernels::{as_rows, max_dist_sq_gather};
use eff2_descriptor::{DescriptorSet, Vector, DIM};

/// One BAG cluster.
#[derive(Clone, Debug)]
pub struct Cluster {
    /// Member positions in the backing collection.
    pub members: Vec<u32>,
    /// Component sum of the members (exact centroid bookkeeping).
    sum: [f64; DIM],
    /// The current centroid (sum / |members|).
    pub centroid: Vector,
    /// Minimum bounding radius: max distance from centroid to any member.
    pub tight_radius: f32,
    /// Maintained radius: starts equal to `tight_radius` after a merge and
    /// grows by MPI on passes where the cluster does not merge.
    pub radius: f32,
}

impl Cluster {
    /// A singleton cluster of radius zero.
    pub fn singleton(pos: u32, set: &DescriptorSet) -> Cluster {
        let v = set.vector_owned(pos as usize);
        let mut sum = [0.0f64; DIM];
        for (s, &x) in sum.iter_mut().zip(v.as_slice()) {
            *s = f64::from(x);
        }
        Cluster {
            members: vec![pos],
            sum,
            centroid: v,
            tight_radius: 0.0,
            radius: 0.0,
        }
    }

    /// Number of member descriptors.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the cluster has no members.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// The centroid the union of `a` and `b` would have (exact).
    pub fn merged_centroid(a: &Cluster, b: &Cluster) -> Vector {
        let n = (a.len() + b.len()) as f64;
        let mut c = Vector::ZERO;
        for d in 0..DIM {
            c[d] = ((a.sum[d] + b.sum[d]) / n) as f32;
        }
        c
    }

    /// Cheap *upper* bound on the merged minimum bounding radius: every
    /// member of `x` lies within `tight_radius` of `x.centroid`, so it lies
    /// within `d(c_new, c_x) + x.tight_radius` of the new centroid.
    pub fn merged_radius_upper(a: &Cluster, b: &Cluster, c_new: &Vector) -> f32 {
        let ra = c_new.dist(&a.centroid) + a.tight_radius;
        let rb = c_new.dist(&b.centroid) + b.tight_radius;
        ra.max(rb)
    }

    /// Cheap *lower* bound on the merged minimum bounding radius.
    ///
    /// The merged radius cannot shrink below either tight radius minus the
    /// centroid shift (triangle inequality), and the farther original
    /// centroid keeps at least its own displacement as a floor because some
    /// member sits on the far side of it in expectation of the bound
    /// `max_m d(c_new, m) ≥ d(c_new, c_x)` (the centroid of x is a convex
    /// combination of x's members, so the farthest member is at least as
    /// far from `c_new` as `c_x` is).
    pub fn merged_radius_lower(a: &Cluster, b: &Cluster, c_new: &Vector) -> f32 {
        let da = c_new.dist(&a.centroid);
        let db = c_new.dist(&b.centroid);
        (a.tight_radius - da)
            .max(b.tight_radius - db)
            .max(da)
            .max(db)
            .max(0.0)
    }

    /// Exact merged minimum bounding radius — O(|a| + |b|) member scan,
    /// blocked gather over the collection's packed storage.
    pub fn merged_radius_exact(
        a: &Cluster,
        b: &Cluster,
        c_new: &Vector,
        set: &DescriptorSet,
    ) -> f32 {
        let rows = as_rows(set.packed());
        let q = c_new.as_array();
        max_dist_sq_gather(q, rows, &a.members)
            .max(max_dist_sq_gather(q, rows, &b.members))
            .sqrt()
    }

    /// Merges `b` into `a`, consuming both, with the exact new centroid and
    /// minimum bounding radius. The maintained radius resets to the tight
    /// radius (the merged radius is minimal by construction).
    pub fn merge(mut a: Cluster, mut b: Cluster, set: &DescriptorSet) -> Cluster {
        let c_new = Cluster::merged_centroid(&a, &b);
        let tight = Cluster::merged_radius_exact(&a, &b, &c_new, set);
        for d in 0..DIM {
            a.sum[d] += b.sum[d];
        }
        a.members.append(&mut b.members);
        a.centroid = c_new;
        a.tight_radius = tight;
        a.radius = tight;
        a
    }

    /// Recomputes `tight_radius` from scratch (diagnostic; the incremental
    /// path maintains it exactly already).
    pub fn recompute_tight_radius(&mut self, set: &DescriptorSet) {
        self.tight_radius = max_dist_sq_gather(
            self.centroid.as_array(),
            as_rows(set.packed()),
            &self.members,
        )
        .sqrt();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eff2_descriptor::Descriptor;

    fn set_of(points: &[f32]) -> DescriptorSet {
        points
            .iter()
            .enumerate()
            .map(|(i, &x)| Descriptor::new(i as u32, Vector::splat(x)))
            .collect()
    }

    #[test]
    fn singleton_has_zero_radius() {
        let set = set_of(&[1.0, 2.0]);
        let c = Cluster::singleton(1, &set);
        assert_eq!(c.len(), 1);
        assert_eq!(c.tight_radius, 0.0);
        assert_eq!(c.radius, 0.0);
        assert_eq!(c.centroid, Vector::splat(2.0));
    }

    #[test]
    fn merge_of_two_singletons() {
        let set = set_of(&[0.0, 2.0]);
        let a = Cluster::singleton(0, &set);
        let b = Cluster::singleton(1, &set);
        let m = Cluster::merge(a, b, &set);
        assert_eq!(m.len(), 2);
        assert_eq!(m.centroid, Vector::splat(1.0));
        // Each point is at distance sqrt(24) from the midpoint.
        let expect = (DIM as f32).sqrt();
        assert!((m.tight_radius - expect).abs() < 1e-5);
        assert_eq!(m.radius, m.tight_radius);
    }

    #[test]
    fn merged_centroid_is_weighted() {
        let set = set_of(&[0.0, 0.0, 0.0, 4.0]);
        let mut a = Cluster::singleton(0, &set);
        a = Cluster::merge(a, Cluster::singleton(1, &set), &set);
        a = Cluster::merge(a, Cluster::singleton(2, &set), &set);
        let b = Cluster::singleton(3, &set);
        let c = Cluster::merged_centroid(&a, &b);
        assert_eq!(c, Vector::splat(1.0)); // (3·0 + 1·4)/4
    }

    #[test]
    fn bounds_bracket_exact_radius() {
        let set = set_of(&[0.0, 1.0, 5.0, 9.0, 10.0]);
        let mut a = Cluster::singleton(0, &set);
        a = Cluster::merge(a, Cluster::singleton(1, &set), &set);
        let mut b = Cluster::singleton(3, &set);
        b = Cluster::merge(b, Cluster::singleton(4, &set), &set);
        let c_new = Cluster::merged_centroid(&a, &b);
        let lower = Cluster::merged_radius_lower(&a, &b, &c_new);
        let exact = Cluster::merged_radius_exact(&a, &b, &c_new, &set);
        let upper = Cluster::merged_radius_upper(&a, &b, &c_new);
        assert!(lower <= exact + 1e-4, "lower {lower} > exact {exact}");
        assert!(exact <= upper + 1e-4, "exact {exact} > upper {upper}");
    }

    #[test]
    fn merge_preserves_membership() {
        let set = set_of(&[0.0, 1.0, 2.0]);
        let a = Cluster::singleton(0, &set);
        let b = Cluster::singleton(2, &set);
        let m = Cluster::merge(a, b, &set);
        let mut members = m.members.clone();
        members.sort_unstable();
        assert_eq!(members, vec![0, 2]);
    }

    #[test]
    fn recompute_matches_incremental() {
        let set = set_of(&[0.0, 3.0, 7.0]);
        let mut m = Cluster::singleton(0, &set);
        m = Cluster::merge(m, Cluster::singleton(1, &set), &set);
        m = Cluster::merge(m, Cluster::singleton(2, &set), &set);
        let incremental = m.tight_radius;
        m.recompute_tight_radius(&set);
        assert!((m.tight_radius - incremental).abs() < 1e-5);
    }

    #[test]
    fn radius_covers_all_members_after_chain_of_merges() {
        let set = set_of(&[0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let mut m = Cluster::singleton(0, &set);
        for i in 1..7 {
            m = Cluster::merge(m, Cluster::singleton(i, &set), &set);
        }
        for &p in &m.members {
            let d = m.centroid.dist(&set.vector_owned(p as usize));
            assert!(d <= m.tight_radius * (1.0 + 1e-5) + 1e-5);
        }
    }
}
