//! The BAG pass loop: merging, radius inflation, per-pass destruction,
//! termination and outlier extraction.
// lint:allow-file(panic.index): slot and partition tables are indexed by ids the pass itself allocates and keeps dense

use crate::cluster::Cluster;
use crate::engine::{CandidateEngine, EngineKind};
use eff2_descriptor::DescriptorSet;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters of a BAG run.
#[derive(Clone, Copy, Debug)]
pub struct BagConfig {
    /// The Maximum Possible Increment for radii (the paper's "one key
    /// value, called MPI"). Governs both the merge rule threshold and the
    /// per-pass inflation of non-merging clusters.
    pub mpi: f32,
    /// Per-pass destruction threshold: clusters holding fewer than this
    /// fraction of the average population are destroyed and their members
    /// become singletons again (the paper uses 20 %).
    pub destroy_fraction: f32,
    /// Final outlier threshold: at termination, clusters below this
    /// fraction of the average population are destroyed and their members
    /// are declared outliers (the paper applies the same 20 % rule).
    pub outlier_fraction: f32,
    /// Safety bound on the number of passes.
    pub max_passes: usize,
    /// Candidate engine (see [`EngineKind`]).
    pub engine: EngineKind,
    /// Skip runs of provably idle passes in one step (see
    /// [`Bag::stall_skip`]). Exactness-preserving: the skipped passes could
    /// not have merged or destroyed anything, only inflated radii, which
    /// the skip applies directly. Disable to mimic the paper's
    /// pass-by-pass execution (the ablation benches do).
    pub fast_forward: bool,
    /// Only attempt the stall skip while at most this many clusters are
    /// alive. The skip scans all Θ(n²) pairs; early idle passes (huge n,
    /// tiny radii) resolve far cheaper through ordinary grid-pruned passes,
    /// whereas late stalls (n small, radii large) are where whole streaks
    /// of idle passes get jumped.
    pub fast_forward_max_clusters: usize,
}

impl Default for BagConfig {
    fn default() -> Self {
        BagConfig {
            mpi: 1.0,
            destroy_fraction: 0.2,
            outlier_fraction: 0.2,
            max_passes: 200,
            engine: EngineKind::Pruned,
            fast_forward: true,
            fast_forward_max_clusters: 25_000,
        }
    }
}

impl BagConfig {
    /// Estimates a workable MPI for `set`: half the *median*
    /// nearest-neighbour distance within a random sample. MPI sets the
    /// granularity at which clusters coalesce per pass; the paper treats it
    /// as a given. The median (not the mean) is essential: descriptor
    /// collections carry ~10 % outliers whose nearest-neighbour distances
    /// are an order of magnitude larger and would blow the estimate up.
    pub fn estimate_mpi(set: &DescriptorSet, sample_size: usize, seed: u64) -> f32 {
        let n = set.len();
        if n < 2 {
            return 1.0;
        }
        let m = sample_size.clamp(2, n);
        let mut rng = StdRng::seed_from_u64(seed);
        let sample: Vec<usize> = (0..m).map(|_| rng.gen_range(0..n)).collect();
        // Gather the sample into a dense row block once, then run the
        // blocked distance kernel per sample point — each point's
        // nearest-in-sample search is independent, so the m×m phase
        // parallelises across sample points.
        let rows = eff2_descriptor::as_rows(set.packed());
        let sample_rows: Vec<[f32; eff2_descriptor::DIM]> =
            sample.iter().map(|&i| rows[i]).collect();
        let mut nn_dists: Vec<f32> = eff2_parallel::par_map(&sample_rows, |a, q| {
            let mut dists = vec![0.0f32; m];
            eff2_descriptor::kernels::l2_sq_rows(q, &sample_rows, &mut dists);
            let mut best = f32::INFINITY;
            for (b, &d) in dists.iter().enumerate() {
                if b != a && d < best {
                    best = d;
                }
            }
            best.sqrt()
        });
        nn_dists.sort_by(f32::total_cmp);
        (nn_dists[m / 2] * 0.5).max(1e-6)
    }
}

/// Statistics of one pass.
#[derive(Clone, Copy, Debug)]
pub struct PassStats {
    /// 1-based pass number.
    pub pass: usize,
    /// Cluster count at the start of the pass.
    pub clusters_before: usize,
    /// Merges performed.
    pub merges: usize,
    /// Clusters destroyed at the end of the pass (members re-singletoned).
    pub destroyed: usize,
    /// Cluster count at the end of the pass (after destruction, including
    /// the singletons reborn from destroyed clusters).
    pub clusters_after: usize,
    /// Clusters that *survived* destruction this pass. Termination compares
    /// this against the user target: the reborn singletons are raw material
    /// for the next pass, not clusters in their own right — otherwise the
    /// count could never fall below the outlier population and the paper's
    /// 8–12 % unabsorbed outliers at termination would be impossible.
    pub survivors: usize,
    /// Exact merged-radius evaluations performed.
    pub exact_tests: u64,
    /// Merge tests the paper's exhaustive scan would have performed — the
    /// faithful formation-cost model ("almost 12 days" at 5M descriptors).
    pub exhaustive_equivalent_tests: u64,
}

/// The outcome of running BAG down to a target cluster count.
#[derive(Clone, Debug)]
pub struct BagSnapshot {
    /// The requested target cluster count.
    pub target: usize,
    /// Retained clusters (after outlier destruction).
    pub clusters: Vec<Cluster>,
    /// Positions of the descriptors declared outliers.
    pub outliers: Vec<u32>,
    /// Passes executed so far.
    pub passes: usize,
    /// Whether the run actually reached the target (`false` means the
    /// `max_passes` safety bound fired first).
    pub converged: bool,
    /// Cumulative exact merged-radius evaluations.
    pub exact_tests: u64,
    /// Cumulative exhaustive-equivalent merge tests (formation cost model).
    pub exhaustive_equivalent_tests: u64,
}

impl BagSnapshot {
    /// Total descriptors accounted for (cluster members + outliers).
    pub fn total_descriptors(&self) -> usize {
        self.clusters.iter().map(Cluster::len).sum::<usize>() + self.outliers.len()
    }

    /// Mean population of the retained clusters.
    pub fn mean_cluster_size(&self) -> f64 {
        if self.clusters.is_empty() {
            0.0
        } else {
            self.clusters.iter().map(Cluster::len).sum::<usize>() as f64
                / self.clusters.len() as f64
        }
    }
}

/// Convenience alias: the result of [`Bag::run_to`].
pub type BagResult = BagSnapshot;

/// A BAG clustering run over a borrowed collection.
#[derive(Debug)]
pub struct Bag<'a> {
    set: &'a DescriptorSet,
    cfg: BagConfig,
    clusters: Vec<Cluster>,
    passes: usize,
    history: Vec<PassStats>,
    exact_tests: u64,
    exhaustive_tests: u64,
}

impl<'a> Bag<'a> {
    /// Initialises the run: one singleton cluster per descriptor.
    pub fn new(set: &'a DescriptorSet, cfg: BagConfig) -> Self {
        assert!(cfg.mpi > 0.0, "MPI must be positive");
        assert!(
            (0.0..1.0).contains(&cfg.destroy_fraction),
            "destroy fraction must be in [0,1)"
        );
        assert!(
            (0.0..1.0).contains(&cfg.outlier_fraction),
            "outlier fraction must be in [0,1)"
        );
        let clusters = (0..set.len() as u32)
            .map(|p| Cluster::singleton(p, set))
            .collect();
        Bag {
            set,
            cfg,
            clusters,
            passes: 0,
            history: Vec::new(),
            exact_tests: 0,
            exhaustive_tests: 0,
        }
    }

    /// Current number of clusters.
    pub fn cluster_count(&self) -> usize {
        self.clusters.len()
    }

    /// Per-pass statistics so far.
    pub fn history(&self) -> &[PassStats] {
        &self.history
    }

    /// Executes one pass: scan, merge, inflate, destroy.
    pub fn run_pass(&mut self) -> PassStats {
        self.passes += 1;
        let n = self.clusters.len();
        let r_max = self
            .clusters
            .iter()
            .map(|c| c.radius)
            .fold(0.0f32, f32::max);

        let mut slots: Vec<Option<Cluster>> = std::mem::take(&mut self.clusters)
            .into_iter()
            .map(Some)
            .collect();
        let engine = CandidateEngine::build(self.cfg.engine, &slots, self.cfg.mpi);

        let mut merged: Vec<Cluster> = Vec::new();
        let mut candidates: Vec<usize> = Vec::new();
        let mut viable: Vec<(f32, usize)> = Vec::new();
        let mut alive = n as u64;
        let mut merges = 0usize;
        let mut exact_tests = 0u64;
        let mut exhaustive_tests = 0u64;

        for i in 0..n {
            if slots[i].is_none() {
                continue;
            }
            // The paper's exhaustive scan would examine every other
            // existing cluster here.
            exhaustive_tests += alive.saturating_sub(1);

            candidates.clear();
            engine.candidates(i, &slots, &mut candidates);

            // Rank viable candidates by centroid distance so the chosen
            // partner is the nearest cluster satisfying the merge rule
            // (deterministic: ties broken by slot id).
            viable.clear();
            {
                let Some(ci) = slots[i].as_ref() else {
                    continue;
                };
                for &j in &candidates {
                    if j == i {
                        continue;
                    }
                    let Some(cj) = slots[j].as_ref() else {
                        continue;
                    };
                    let d = ci.centroid.dist(&cj.centroid);
                    let threshold = ci.radius.max(cj.radius) + self.cfg.mpi;
                    // Lower bound: merged radius ≥ d/2.
                    if d * 0.5 >= threshold {
                        continue;
                    }
                    viable.push((d, j));
                }
            }
            // Examine viable candidates in increasing centroid distance,
            // but only *select* them in batches of the nearest 64: the
            // partner is almost always among the closest few, and fully
            // sorting tens of thousands of low-contrast candidates would
            // dominate the pass. Batched selection with a total (d, id)
            // comparator visits exactly the full-sort order.
            let cmp = |a: &(f32, usize), b: &(f32, usize)| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1));
            let mut partner: Option<usize> = None;
            let mut start = 0usize;
            while start < viable.len() && partner.is_none() {
                let batch_end = (start + 64).min(viable.len());
                if batch_end < viable.len() {
                    viable[start..].select_nth_unstable_by(batch_end - start - 1, cmp);
                }
                viable[start..batch_end].sort_by(cmp);
                let Some(ci) = slots[i].as_ref() else {
                    break;
                };
                for &(_, j) in &viable[start..batch_end] {
                    let Some(cj) = slots[j].as_ref() else {
                        continue;
                    };
                    let threshold = ci.radius.max(cj.radius) + self.cfg.mpi;
                    let c_new = Cluster::merged_centroid(ci, cj);
                    if Cluster::merged_radius_upper(ci, cj, &c_new) < threshold {
                        partner = Some(j);
                        break;
                    }
                    if Cluster::merged_radius_lower(ci, cj, &c_new) >= threshold {
                        continue;
                    }
                    exact_tests += 1;
                    if Cluster::merged_radius_exact(ci, cj, &c_new, self.set) < threshold {
                        partner = Some(j);
                        break;
                    }
                }
                start = batch_end;
            }

            if let Some(j) = partner {
                if let (Some(a), Some(b)) = (slots[i].take(), slots[j].take()) {
                    merged.push(Cluster::merge(a, b, self.set));
                    merges += 1;
                    alive -= 2; // both endpoints leave the candidate pool
                }
            }
        }

        // Rebuild: merged clusters keep their fresh minimal radius;
        // survivors that did not merge get their radius inflated by MPI.
        let mut next = merged;
        for slot in slots.into_iter().flatten() {
            let mut c = slot;
            c.radius += self.cfg.mpi;
            next.push(c);
        }

        // End-of-pass destruction: clusters below destroy_fraction × the
        // average population dissolve back into singletons.
        let pre_destruction = next.len();
        let destroyed = self.destroy_small(&mut next, self.cfg.destroy_fraction, None);

        let stats = PassStats {
            pass: self.passes,
            clusters_before: n,
            merges,
            destroyed,
            clusters_after: next.len(),
            survivors: pre_destruction - destroyed,
            exact_tests,
            exhaustive_equivalent_tests: exhaustive_tests,
        };
        self.clusters = next;
        self.exact_tests += exact_tests;
        self.exhaustive_tests += exhaustive_tests;
        self.history.push(stats);
        if std::env::var_os("EFF2_BAG_VERBOSE").is_some() {
            // lint:allow(hyg.print): multi-hour formation progress, explicitly opted into via EFF2_BAG_VERBOSE
            eprintln!(
                "[bag] pass {:>3}: {:>7} -> {:>7} clusters ({} survivors, {} merges, {} destroyed, r_max {:.2})",
                stats.pass,
                stats.clusters_before,
                stats.clusters_after,
                stats.survivors,
                stats.merges,
                stats.destroyed,
                r_max,
            );
        }
        stats
    }

    /// Destroys clusters below `fraction × average population` from
    /// `clusters`. With `outliers == None`, members are re-appended as
    /// singletons (the per-pass rule); with `Some`, members are recorded as
    /// outliers (the termination rule). Returns the number destroyed.
    fn destroy_small(
        &self,
        clusters: &mut Vec<Cluster>,
        fraction: f32,
        mut outliers: Option<&mut Vec<u32>>,
    ) -> usize {
        if clusters.is_empty() {
            return 0;
        }
        let avg = clusters.iter().map(Cluster::len).sum::<usize>() as f64 / clusters.len() as f64;
        let limit = avg * f64::from(fraction);
        let mut destroyed = 0usize;
        let mut reborn: Vec<Cluster> = Vec::new();
        clusters.retain(|c| {
            if (c.len() as f64) < limit {
                destroyed += 1;
                match &mut outliers {
                    Some(out) => out.extend(&c.members),
                    None => {
                        reborn.extend(c.members.iter().map(|&p| Cluster::singleton(p, self.set)))
                    }
                }
                false
            } else {
                true
            }
        });
        clusters.append(&mut reborn);
        destroyed
    }

    /// A snapshot of the current state *as if* the run terminated now:
    /// applies the final outlier rule to a copy of the clusters without
    /// disturbing the ongoing run (the paper generates its SMALL, MEDIUM
    /// and LARGE clusterings "from the other in succession").
    pub fn snapshot(&self, target: usize, converged: bool) -> BagSnapshot {
        let mut clusters = self.clusters.clone();
        let mut outliers = Vec::new();
        self.destroy_small(
            &mut clusters,
            self.cfg.outlier_fraction,
            Some(&mut outliers),
        );
        outliers.sort_unstable();
        BagSnapshot {
            target,
            clusters,
            outliers,
            passes: self.passes,
            converged,
            exact_tests: self.exact_tests,
            exhaustive_equivalent_tests: self.exhaustive_tests,
        }
    }

    /// Runs passes until the number of clusters *surviving destruction*
    /// falls below `target` (clamped to at least 1) or `max_passes` is
    /// exhausted, then snapshots.
    pub fn run_to(&mut self, target: usize) -> BagSnapshot {
        let target = target.max(1);
        if self.history.last().is_some_and(|s| s.survivors < target) {
            // A previous checkpoint already drove the run past this target.
            return self.snapshot(target, true);
        }
        loop {
            if self.clusters.is_empty() {
                return self.snapshot(target, true);
            }
            let stats = self.run_pass();
            if stats.survivors < target {
                return self.snapshot(target, true);
            }
            if self.passes >= self.cfg.max_passes {
                return self.snapshot(target, false);
            }
            if self.cfg.fast_forward
                && stats.merges == 0
                && self.clusters.len() <= self.cfg.fast_forward_max_clusters
            {
                self.apply_stall_skip();
                if self.passes >= self.cfg.max_passes {
                    return self.snapshot(target, false);
                }
            }
        }
    }

    /// The per-pass destruction limit for the current cluster set.
    fn destruction_limit(&self) -> f64 {
        if self.clusters.is_empty() {
            return 0.0;
        }
        let avg = self.clusters.iter().map(Cluster::len).sum::<usize>() as f64
            / self.clusters.len() as f64;
        avg * f64::from(self.cfg.destroy_fraction)
    }

    /// Computes how many further passes would provably merge nothing.
    ///
    /// During an idle pass the state is a fixed point except for radii:
    /// clusters that survive destruction inflate by MPI, destroyed
    /// clusters are reborn as radius-zero singletons (so they present
    /// radius 0 at every scan). A pair (i, j) can only merge once its
    /// merged minimum-bounding-radius *lower bound* drops below
    /// `max(rᵢ(k), rⱼ(k)) + MPI`, where `r(k)` grows by `k·MPI` for
    /// surviving clusters and stays fixed for perpetually-reborn ones.
    /// The lower bound itself is k-independent:
    /// `max(tᵢ − dᵢ, tⱼ − dⱼ, dᵢ, dⱼ)` with `dᵢ = d·nⱼ/(nᵢ+nⱼ)` the exact
    /// centroid displacement. The minimum viable k over all pairs is the
    /// number of passes that can be skipped wholesale.
    ///
    /// Returns `None` when no pair can ever become viable (only
    /// non-growing clusters remain).
    pub fn stall_skip(&self) -> Option<usize> {
        let n = self.clusters.len();
        if n < 2 {
            return None;
        }
        let limit = self.destruction_limit();
        let mpi = f64::from(self.cfg.mpi);
        let grows: Vec<bool> = self
            .clusters
            .iter()
            .map(|c| (c.len() as f64) >= limit)
            .collect();
        // The pair scan is a pure min-reduction: every (i, j) contributes a
        // k-value independently, so the outer rows parallelise and the
        // global minimum is order-independent (identical to the sequential
        // scan, including its early exit at 0 — zero is the global minimum).
        let row_min = eff2_parallel::par_map(&self.clusters, |i, a| {
            let mut best = usize::MAX;
            for (dj, b) in self.clusters[(i + 1)..].iter().enumerate() {
                let j = i + 1 + dj;
                let d = f64::from(a.centroid.dist(&b.centroid));
                let (na, nb) = (a.len() as f64, b.len() as f64);
                let da = d * nb / (na + nb);
                let db = d * na / (na + nb);
                let lower = (f64::from(a.tight_radius) - da)
                    .max(f64::from(b.tight_radius) - db)
                    .max(da)
                    .max(db)
                    .max(0.0);
                // Radius each member would present at scan time after k
                // skipped passes.
                let ra = f64::from(a.radius);
                let rb = f64::from(b.radius);
                let k_pair = if lower < ra.max(rb) + mpi {
                    0 // already bound-viable; a real pass must decide
                } else {
                    let mut k = usize::MAX;
                    if grows[i] {
                        k = k.min(((lower - mpi - ra) / mpi).ceil().max(1.0) as usize);
                    }
                    if grows[j] {
                        k = k.min(((lower - mpi - rb) / mpi).ceil().max(1.0) as usize);
                    }
                    k
                };
                best = best.min(k_pair);
                if best == 0 {
                    break;
                }
            }
            best
        });
        row_min.into_iter().min().filter(|&k| k != usize::MAX)
    }

    /// Applies the stall skip: jumps over the provably idle passes in one
    /// step, inflating surviving clusters and accounting the skipped
    /// passes' exhaustive-equivalent cost.
    fn apply_stall_skip(&mut self) {
        let Some(k) = self.stall_skip() else {
            // Nothing can ever merge again; burn the remaining pass budget
            // so run_to terminates instead of spinning.
            self.passes = self.cfg.max_passes;
            return;
        };
        let k = k.min(self.cfg.max_passes.saturating_sub(self.passes));
        if k == 0 {
            return;
        }
        let limit = self.destruction_limit();
        let bump = self.cfg.mpi * k as f32;
        for c in &mut self.clusters {
            if (c.len() as f64) >= limit {
                c.radius += bump;
            }
        }
        self.passes += k;
        // Each skipped pass would have examined every pair exhaustively.
        let n = self.clusters.len() as u64;
        self.exhaustive_tests += k as u64 * n.saturating_mul(n.saturating_sub(1));
    }

    /// Runs through a descending sequence of targets, snapshotting at each
    /// — the paper's SMALL → MEDIUM → LARGE pipeline ("each clustering was
    /// generated from the other in succession").
    ///
    /// # Panics
    ///
    /// Panics if `targets` is not strictly descending.
    pub fn run_with_checkpoints(&mut self, targets: &[usize]) -> Vec<BagSnapshot> {
        assert!(
            targets.windows(2).all(|w| w[0] > w[1]),
            "checkpoint targets must be strictly descending"
        );
        targets.iter().map(|&t| self.run_to(t)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eff2_descriptor::{Descriptor, Vector};

    /// Three well-separated groups of 10, plus 2 far-flung stragglers.
    fn grouped_set() -> DescriptorSet {
        let mut set = DescriptorSet::new();
        let mut id = 0u32;
        for (center, n) in [(0.0f32, 10usize), (50.0, 10), (100.0, 10)] {
            for i in 0..n {
                let mut v = Vector::splat(center);
                v[0] += i as f32 * 0.1;
                v[1] -= i as f32 * 0.05;
                set.push(Descriptor::new(id, v));
                id += 1;
            }
        }
        set.push(Descriptor::new(id, Vector::splat(400.0)));
        set.push(Descriptor::new(id + 1, Vector::splat(-400.0)));
        set
    }

    fn cfg(engine: EngineKind) -> BagConfig {
        BagConfig {
            mpi: 0.5,
            destroy_fraction: 0.2,
            outlier_fraction: 0.2,
            max_passes: 100,
            engine,
            fast_forward: true,
            fast_forward_max_clusters: 25_000,
        }
    }

    #[test]
    fn converges_to_natural_clusters() {
        // Steady state is 3 group clusters + 2 straggler singletons; the
        // stragglers are destroyed each pass and reborn, so the count
        // settles at 5 — a target of 6 terminates there, and the final
        // outlier rule strips the stragglers.
        let set = grouped_set();
        let mut bag = Bag::new(&set, cfg(EngineKind::Pruned));
        let snap = bag.run_to(6);
        assert!(snap.converged);
        assert_eq!(snap.clusters.len(), 3, "got {}", snap.clusters.len());
        // The three natural groups must each live in a single cluster.
        for group_start in [0u32, 10, 20] {
            let holder: Vec<usize> = snap
                .clusters
                .iter()
                .enumerate()
                .filter(|(_, c)| c.members.contains(&group_start))
                .map(|(i, _)| i)
                .collect();
            assert_eq!(holder.len(), 1);
            let c = &snap.clusters[holder[0]];
            for m in group_start..group_start + 10 {
                assert!(c.members.contains(&m), "member {m} strayed");
            }
        }
    }

    #[test]
    fn stragglers_become_outliers() {
        let set = grouped_set();
        let mut bag = Bag::new(&set, cfg(EngineKind::Pruned));
        let snap = bag.run_to(6);
        assert!(snap.outliers.contains(&30));
        assert!(snap.outliers.contains(&31));
    }

    #[test]
    fn descriptor_conservation() {
        let set = grouped_set();
        let mut bag = Bag::new(&set, cfg(EngineKind::Pruned));
        let snap = bag.run_to(6);
        assert_eq!(snap.total_descriptors(), set.len());
        // No duplicates anywhere.
        let mut seen = vec![false; set.len()];
        for c in &snap.clusters {
            for &m in &c.members {
                assert!(!seen[m as usize]);
                seen[m as usize] = true;
            }
        }
        for &o in &snap.outliers {
            assert!(!seen[o as usize]);
            seen[o as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn radii_cover_members() {
        let set = grouped_set();
        let mut bag = Bag::new(&set, cfg(EngineKind::Pruned));
        let snap = bag.run_to(6);
        for c in &snap.clusters {
            for &m in &c.members {
                let d = c.centroid.dist(&set.vector_owned(m as usize));
                assert!(d <= c.tight_radius * (1.0 + 1e-5) + 1e-4);
                assert!(c.tight_radius <= c.radius * (1.0 + 1e-5) + 1e-4);
            }
        }
    }

    #[test]
    fn engines_produce_identical_clusterings() {
        let set = grouped_set();
        let a = Bag::new(&set, cfg(EngineKind::Exhaustive)).run_to(6);
        let b = Bag::new(&set, cfg(EngineKind::Pruned)).run_to(6);
        let norm = |snap: &BagSnapshot| {
            let mut cs: Vec<Vec<u32>> = snap
                .clusters
                .iter()
                .map(|c| {
                    let mut m = c.members.clone();
                    m.sort_unstable();
                    m
                })
                .collect();
            cs.sort();
            (cs, snap.outliers.clone())
        };
        assert_eq!(norm(&a), norm(&b));
        assert_eq!(a.passes, b.passes);
    }

    #[test]
    fn grid_engine_does_far_fewer_exact_tests_worth_of_work() {
        // Both engines report the same exhaustive-equivalent cost model.
        let set = grouped_set();
        let a = Bag::new(&set, cfg(EngineKind::Exhaustive)).run_to(6);
        let b = Bag::new(&set, cfg(EngineKind::Pruned)).run_to(6);
        assert_eq!(a.exhaustive_equivalent_tests, b.exhaustive_equivalent_tests);
        assert!(a.exhaustive_equivalent_tests > 0);
    }

    #[test]
    fn checkpoints_are_monotone() {
        let set = grouped_set();
        let mut bag = Bag::new(&set, cfg(EngineKind::Pruned));
        let snaps = bag.run_with_checkpoints(&[10, 6]);
        assert_eq!(snaps.len(), 2);
        assert!(snaps[0].clusters.len() >= snaps[1].clusters.len());
        assert!(snaps[0].passes <= snaps[1].passes);
    }

    #[test]
    #[should_panic(expected = "strictly descending")]
    fn checkpoints_must_descend() {
        let set = grouped_set();
        Bag::new(&set, cfg(EngineKind::Pruned)).run_with_checkpoints(&[6, 10]);
    }

    #[test]
    fn empty_collection() {
        let set = DescriptorSet::new();
        let mut bag = Bag::new(&set, cfg(EngineKind::Pruned));
        let snap = bag.run_to(5);
        assert!(snap.converged);
        assert!(snap.clusters.is_empty());
        assert!(snap.outliers.is_empty());
    }

    #[test]
    fn single_descriptor() {
        let set: DescriptorSet = [Descriptor::new(0, Vector::splat(1.0))]
            .into_iter()
            .collect();
        let snap = Bag::new(&set, cfg(EngineKind::Pruned)).run_to(1);
        // Count (1) is not below target (1) until… it can never go below 1,
        // so the pass bound fires.
        assert!(!snap.converged);
        assert_eq!(snap.total_descriptors(), 1);
    }

    #[test]
    fn max_passes_bounds_runtime() {
        let set = grouped_set();
        let mut c = cfg(EngineKind::Pruned);
        c.max_passes = 1;
        let snap = Bag::new(&set, c).run_to(1);
        assert_eq!(snap.passes, 1);
        assert!(!snap.converged);
    }

    #[test]
    fn identical_points_collapse_to_one_cluster() {
        let set: DescriptorSet = (0..20)
            .map(|i| Descriptor::new(i, Vector::splat(3.0)))
            .collect();
        let snap = Bag::new(&set, cfg(EngineKind::Pruned)).run_to(5);
        assert!(snap.converged);
        // Identical points merge freely (merged radius stays 0); the run
        // stops as soon as the count drops below the target.
        assert!(snap.clusters.len() < 5);
        assert_eq!(snap.total_descriptors(), 20);
        for c in &snap.clusters {
            assert_eq!(c.tight_radius, 0.0);
        }
    }

    #[test]
    fn estimate_mpi_positive_and_deterministic() {
        let set = grouped_set();
        let a = BagConfig::estimate_mpi(&set, 16, 7);
        let b = BagConfig::estimate_mpi(&set, 16, 7);
        assert!(a > 0.0);
        assert_eq!(a, b);
    }

    #[test]
    fn fast_forward_is_exact() {
        // With and without the stall skip, the clustering, outliers and
        // (virtual) pass count must be identical — the skip only jumps
        // over passes that provably change nothing but radii.
        let set = grouped_set();
        let mut slow_cfg = cfg(EngineKind::Pruned);
        slow_cfg.fast_forward = false;
        slow_cfg.max_passes = 2_000;
        let mut fast_cfg = slow_cfg;
        fast_cfg.fast_forward = true;
        // Target 4 forces straggler absorption: the 2 stragglers at
        // splat(±400) must be swallowed via radius inflation, which takes
        // thousands of idle passes at MPI 0.5 — the skip jumps them.
        let slow = Bag::new(&set, slow_cfg).run_to(3);
        let fast = Bag::new(&set, fast_cfg).run_to(3);
        let norm = |snap: &BagSnapshot| {
            let mut cs: Vec<Vec<u32>> = snap
                .clusters
                .iter()
                .map(|c| {
                    let mut m = c.members.clone();
                    m.sort_unstable();
                    m
                })
                .collect();
            cs.sort();
            (cs, snap.outliers.clone())
        };
        assert_eq!(norm(&slow), norm(&fast));
        assert_eq!(slow.converged, fast.converged);
        assert_eq!(slow.passes, fast.passes, "virtual pass counts must agree");
    }

    #[test]
    fn fast_forward_skips_idle_grind() {
        // The fast path must reach the same terminal state in far fewer
        // *executed* passes (history length) than virtual passes.
        let set = grouped_set();
        let mut c = cfg(EngineKind::Pruned);
        c.fast_forward = true;
        c.max_passes = 5_000;
        let mut bag = Bag::new(&set, c);
        let snap = bag.run_to(3);
        assert!(snap.converged, "absorption must eventually converge");
        assert!(
            bag.history().len() * 4 < snap.passes,
            "executed {} passes for {} virtual ones — skip not engaging",
            bag.history().len(),
            snap.passes
        );
    }

    #[test]
    fn stall_skip_none_when_nothing_can_grow() {
        // Two lone descriptors: both become perpetually-reborn singletons
        // (each is below 20% of the average? avg=1, limit 0.2, len 1 ≥ 0.2
        // so they DO grow) — use an explicit empty-ish case instead: a
        // single cluster can never merge.
        let set: DescriptorSet = [Descriptor::new(0, Vector::splat(1.0))]
            .into_iter()
            .collect();
        let bag = Bag::new(&set, cfg(EngineKind::Pruned));
        assert_eq!(bag.stall_skip(), None);
    }

    #[test]
    fn history_records_every_pass() {
        let set = grouped_set();
        let mut bag = Bag::new(&set, cfg(EngineKind::Pruned));
        let snap = bag.run_to(6);
        assert_eq!(bag.history().len(), snap.passes);
        assert_eq!(bag.history()[0].clusters_before, set.len());
    }
}
