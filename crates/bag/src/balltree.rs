//! A small ball tree over cluster centroids, used by the grid-free
//! candidate engine for exact range queries in the full 24-dimensional
//! space.
//!
//! Coordinate-projection grids cannot prune merge candidates in
//! low-contrast descriptor collections: the viability bound
//! `d < 2·(r + MPI)` quickly exceeds the per-dimension data extent even
//! while full-space distances still discriminate (distance concentration —
//! most of the distance lives in the other 21 coordinates). A ball tree
//! prunes with the true metric: a subtree is visited only if
//! `d(q, center) ≤ R + radius`.
// lint:allow-file(panic.index): tree arrays are indexed by node ids the builder allocates contiguously

use eff2_descriptor::{l2_sq_x4, Vector, DIM};

/// Maximum points per leaf.
const LEAF: usize = 24;

struct Node {
    center: Vector,
    radius: f32,
    /// Range into `order`.
    start: u32,
    len: u32,
    /// Child node indices, `u32::MAX` for leaves.
    left: u32,
    right: u32,
}

/// A static ball tree over `(point, payload)` pairs.
pub struct BallTree {
    nodes: Vec<Node>,
    /// Points and payloads, reordered so every node owns a contiguous range.
    points: Vec<Vector>,
    payloads: Vec<u32>,
}

impl BallTree {
    /// Builds a tree over the given points (payloads are caller-defined
    /// identifiers, typically slot indices).
    pub fn build(mut entries: Vec<(Vector, u32)>) -> BallTree {
        let mut tree = BallTree {
            nodes: Vec::new(),
            points: Vec::with_capacity(entries.len()),
            payloads: Vec::with_capacity(entries.len()),
        };
        if entries.is_empty() {
            return tree;
        }
        tree.build_rec(&mut entries);
        // `build_rec` fills `points`/`payloads` in final order.
        tree
    }

    fn build_rec(&mut self, entries: &mut [(Vector, u32)]) -> u32 {
        let (center, radius) = bounding_ball(entries);
        let node_id = self.nodes.len() as u32;
        let start = self.points.len() as u32;
        self.nodes.push(Node {
            center,
            radius,
            start,
            len: entries.len() as u32,
            left: u32::MAX,
            right: u32::MAX,
        });
        if entries.len() <= LEAF {
            for (p, payload) in entries.iter() {
                self.points.push(*p);
                self.payloads.push(*payload);
            }
            // Leaf ranges are physical; `start` recorded above is correct.
            return node_id;
        }
        // Split at the median of the maximum-variance dimension.
        let axis = max_variance_axis(entries);
        let mid = entries.len() / 2;
        entries.select_nth_unstable_by(mid, |a, b| a.0[axis].total_cmp(&b.0[axis]));
        let (lo, hi) = entries.split_at_mut(mid);
        let left = self.build_rec(lo);
        let right = self.build_rec(hi);
        // Internal nodes don't own a physical range of their own; their
        // `start` is where their subtree's points begin.
        let left_start = self.nodes[left as usize].start;
        let node = &mut self.nodes[node_id as usize];
        node.left = left;
        node.right = right;
        node.start = left_start;
        node_id
    }

    /// Number of indexed points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Appends the payloads of every point within distance `r` of `q`
    /// (inclusive, plus an f32 epsilon) to `out`.
    pub fn range(&self, q: &Vector, r: f32, out: &mut Vec<usize>) {
        if self.nodes.is_empty() {
            return;
        }
        let mut stack = vec![0u32];
        while let Some(id) = stack.pop() {
            let node = &self.nodes[id as usize];
            let d = q.dist(&node.center);
            if d > r + node.radius + 1e-5 {
                continue; // the whole ball is out of range
            }
            if node.left == u32::MAX {
                let start = node.start as usize;
                let end = start + node.len as usize;
                let r_sq = r * r * (1.0 + 1e-5) + 1e-6;
                // Blocked leaf filter: four distances per step.
                let leaf = &self.points[start..end];
                let mut blocks = leaf.chunks_exact(4);
                let mut i = start;
                for blk in &mut blocks {
                    let d = l2_sq_x4(
                        q.as_array(),
                        blk[0].as_array(),
                        blk[1].as_array(),
                        blk[2].as_array(),
                        blk[3].as_array(),
                    );
                    for &dj in &d {
                        if dj <= r_sq {
                            out.push(self.payloads[i] as usize);
                        }
                        i += 1;
                    }
                }
                for p in blocks.remainder() {
                    if q.dist_sq(p) <= r_sq {
                        out.push(self.payloads[i] as usize);
                    }
                    i += 1;
                }
            } else {
                stack.push(node.left);
                stack.push(node.right);
            }
        }
    }
}

fn bounding_ball(entries: &[(Vector, u32)]) -> (Vector, f32) {
    let center = Vector::mean(entries.iter().map(|(p, _)| p).collect::<Vec<_>>());
    let radius = entries
        .iter()
        .map(|(p, _)| center.dist(p))
        .fold(0.0f32, f32::max);
    (center, radius)
}

fn max_variance_axis(entries: &[(Vector, u32)]) -> usize {
    let mut sum = [0.0f64; DIM];
    let mut sum_sq = [0.0f64; DIM];
    for (p, _) in entries {
        for d in 0..DIM {
            let x = f64::from(p[d]);
            sum[d] += x;
            sum_sq[d] += x * x;
        }
    }
    let inv = 1.0 / entries.len().max(1) as f64;
    let mut best = 0;
    let mut best_var = f64::NEG_INFINITY;
    for d in 0..DIM {
        let mean = sum[d] * inv;
        let var = sum_sq[d] * inv - mean * mean;
        if var > best_var {
            best_var = var;
            best = d;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn points(n: usize) -> Vec<(Vector, u32)> {
        (0..n)
            .map(|i| {
                let mut v = Vector::ZERO;
                for d in 0..DIM {
                    v[d] = (((i * 37 + d * 13) % 101) as f32) * 0.4 - 20.0;
                }
                (v, i as u32)
            })
            .collect()
    }

    fn brute_range(pts: &[(Vector, u32)], q: &Vector, r: f32) -> Vec<usize> {
        let mut out: Vec<usize> = pts
            .iter()
            .filter(|(p, _)| q.dist(p) <= r)
            .map(|(_, id)| *id as usize)
            .collect();
        out.sort_unstable();
        out
    }

    #[test]
    fn range_matches_brute_force() {
        let pts = points(500);
        let tree = BallTree::build(pts.clone());
        assert_eq!(tree.len(), 500);
        for (qi, r) in [(0usize, 5.0f32), (123, 15.0), (456, 40.0), (77, 0.5)] {
            let q = pts[qi].0;
            let mut got = Vec::new();
            tree.range(&q, r, &mut got);
            got.sort_unstable();
            let want = brute_range(&pts, &q, r);
            // The tree may include boundary points the brute filter just
            // excluded (f32 slack) — require superset + tight bound.
            for w in &want {
                assert!(got.contains(w), "missing {w} at r={r}");
            }
            for g in &got {
                let d = q.dist(&pts[*g].0);
                assert!(d <= r * 1.001 + 1e-3, "{g} at {d} > {r}");
            }
        }
    }

    #[test]
    fn zero_radius_finds_the_point_itself() {
        let pts = points(100);
        let tree = BallTree::build(pts.clone());
        let mut out = Vec::new();
        tree.range(&pts[42].0, 0.0, &mut out);
        assert!(out.contains(&42));
    }

    #[test]
    fn empty_tree() {
        let tree = BallTree::build(Vec::new());
        assert!(tree.is_empty());
        let mut out = Vec::new();
        tree.range(&Vector::ZERO, 100.0, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn huge_radius_returns_everything() {
        let pts = points(200);
        let tree = BallTree::build(pts.clone());
        let mut out = Vec::new();
        tree.range(&Vector::ZERO, 1e6, &mut out);
        assert_eq!(out.len(), 200);
    }

    #[test]
    fn duplicate_points_all_returned() {
        let pts: Vec<(Vector, u32)> = (0..50).map(|i| (Vector::splat(1.0), i)).collect();
        let tree = BallTree::build(pts);
        let mut out = Vec::new();
        tree.range(&Vector::splat(1.0), 0.1, &mut out);
        assert_eq!(out.len(), 50);
    }
}
