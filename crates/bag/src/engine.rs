//! Merge-candidate enumeration engines.
//!
//! The paper's BAG "does not use any indexing scheme to facilitate the
//! merge process. Instead, it examines all existing clusters every time a
//! cluster is checked for potential merges" — which is why clustering the
//! 5M-descriptor collection took almost 12 days.
//! [`EngineKind::Exhaustive`] keeps that faithful behaviour.
//!
//! [`EngineKind::Pruned`] accelerates candidate enumeration *without
//! changing the result*. A pair (i, j) can only satisfy the merge rule if
//! the merged minimum bounding radius — which is at least half the
//! centroid distance, because the merged centroid is a convex combination
//! of the two centroids and the farther original centroid is itself a
//! lower bound on the merged radius — stays below `max(rᵢ, rⱼ) + MPI`, so
//! every viable pair satisfies
//!
//! ```text
//! d(cᵢ, cⱼ) < 2 · (max(rᵢ, rⱼ) + MPI)
//! ```
//!
//! Radii are wildly bimodal during a run (tens of thousands of radius-zero
//! reborn singletons next to inflated survivors), so the engine splits the
//! clusters at a radius pivot:
//!
//! * clusters with radius ≤ pivot go into a **ball tree** over their
//!   centroids; a query from cluster `i` range-searches it with radius
//!   `2·(max(rᵢ, pivot) + MPI)` — an *exact* full-space range query, which
//!   keeps pruning even in low-contrast collections where
//!   coordinate-projection grids degenerate (distance concentration);
//! * the few clusters with radius > pivot form an explicit **big list**
//!   that every query also receives (their own radius may make any pair
//!   viable regardless of distance).
//!
//! The union is a superset of the viable candidates, and both engines feed
//! the same exact merge test, so clusterings are identical (see the
//! cross-engine property tests).
// lint:allow-file(panic.index): grid cells are indexed by coordinates the engine quantised into range itself

use crate::balltree::BallTree;
use crate::cluster::Cluster;

/// Which candidate engine a BAG run uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EngineKind {
    /// The paper's behaviour: every cluster is checked against every other.
    Exhaustive,
    /// Ball-tree-pruned candidates; identical output, far fewer tests.
    Pruned,
}

/// A per-pass candidate enumerator over the alive clusters.
///
/// `slots` indexes into the pass's cluster table; `None` entries are
/// consumed/destroyed clusters and never returned.
pub enum CandidateEngine {
    /// See [`EngineKind::Exhaustive`].
    Exhaustive {
        /// Number of slots in the pass table.
        n_slots: usize,
    },
    /// See [`EngineKind::Pruned`].
    Pruned(PrunedIndex),
}

impl CandidateEngine {
    /// Builds the engine for one pass over `clusters`. `mpi` is the merge
    /// increment (fixes the viability bound above).
    pub fn build(kind: EngineKind, clusters: &[Option<Cluster>], mpi: f32) -> CandidateEngine {
        match kind {
            EngineKind::Exhaustive => CandidateEngine::Exhaustive {
                n_slots: clusters.len(),
            },
            EngineKind::Pruned => CandidateEngine::Pruned(PrunedIndex::build(clusters, mpi)),
        }
    }

    /// Appends to `out` a superset of the slots whose cluster could satisfy
    /// the merge rule with cluster `i` (may include `i` itself; the caller
    /// filters).
    pub fn candidates(&self, i: usize, clusters: &[Option<Cluster>], out: &mut Vec<usize>) {
        match self {
            CandidateEngine::Exhaustive { n_slots } => {
                out.extend(0..*n_slots);
            }
            CandidateEngine::Pruned(index) => {
                let Some(c) = clusters[i].as_ref() else {
                    return;
                };
                index.neighbors(c, out);
            }
        }
    }
}

/// Fraction of clusters kept below the radius pivot (the rest go to the
/// big list).
const PIVOT_PERCENTILE: f64 = 0.90;

/// The two-level candidate index: a ball tree of small-radius clusters plus
/// an explicit list of large-radius ones.
pub struct PrunedIndex {
    tree: BallTree,
    /// Every slot with radius above the pivot.
    big: Vec<u32>,
    pivot: f32,
    mpi: f32,
}

impl PrunedIndex {
    /// Builds the two-level index for one pass.
    pub fn build(clusters: &[Option<Cluster>], mpi: f32) -> PrunedIndex {
        // Radius pivot: the PIVOT_PERCENTILE-quantile of alive radii.
        let mut radii: Vec<f32> = clusters.iter().flatten().map(|c| c.radius).collect();
        radii.sort_by(f32::total_cmp);
        let pivot = if radii.is_empty() {
            0.0
        } else {
            radii[((radii.len() as f64 * PIVOT_PERCENTILE) as usize).min(radii.len() - 1)]
        };

        let mut big = Vec::new();
        let mut small = Vec::new();
        for (i, c) in clusters.iter().enumerate() {
            let Some(c) = c else { continue };
            if c.radius > pivot {
                big.push(i as u32);
            } else {
                small.push((c.centroid, i as u32));
            }
        }
        PrunedIndex {
            tree: BallTree::build(small),
            big,
            pivot,
            mpi,
        }
    }

    /// Appends a superset of the viable partners of `query`: the big list
    /// plus every small cluster within `2·(max(r_query, pivot) + MPI)` of
    /// the query centroid.
    pub fn neighbors(&self, query: &Cluster, out: &mut Vec<usize>) {
        out.extend(self.big.iter().map(|&s| s as usize));
        let reach = 2.0 * (query.radius.max(self.pivot) + self.mpi);
        self.tree.range(&query.centroid, reach, out);
    }

    /// Number of big-list entries (diagnostics).
    pub fn big_len(&self) -> usize {
        self.big.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eff2_descriptor::{Descriptor, DescriptorSet, Vector};

    fn clusters_at(xs: &[f32]) -> (DescriptorSet, Vec<Option<Cluster>>) {
        let set: DescriptorSet = xs
            .iter()
            .enumerate()
            .map(|(i, &x)| Descriptor::new(i as u32, Vector::splat(x)))
            .collect();
        let clusters = (0..xs.len())
            .map(|i| Some(Cluster::singleton(i as u32, &set)))
            .collect();
        (set, clusters)
    }

    /// Brute-force viability bound for the superset check.
    fn must_return(a: &Cluster, b: &Cluster, mpi: f32) -> bool {
        a.centroid.dist(&b.centroid) < 2.0 * (a.radius.max(b.radius) + mpi)
    }

    #[test]
    fn exhaustive_returns_every_slot() {
        let (_, clusters) = clusters_at(&[0.0, 5.0, 10.0]);
        let e = CandidateEngine::build(EngineKind::Exhaustive, &clusters, 1.0);
        let mut out = Vec::new();
        e.candidates(0, &clusters, &mut out);
        assert_eq!(out, vec![0, 1, 2]);
    }

    #[test]
    fn pruned_covers_everything_viable() {
        let xs: Vec<f32> = (0..40).map(|i| i as f32).collect();
        let (_, clusters) = clusters_at(&xs);
        let mpi = 2.5;
        let e = CandidateEngine::build(EngineKind::Pruned, &clusters, mpi);
        for i in 0..clusters.len() {
            let mut out = Vec::new();
            e.candidates(i, &clusters, &mut out);
            let ci = clusters[i].as_ref().unwrap();
            for (j, c) in clusters.iter().enumerate() {
                if j == i {
                    continue;
                }
                let cj = c.as_ref().unwrap();
                if must_return(ci, cj, mpi) {
                    assert!(
                        out.contains(&j),
                        "viable slot {j} missing from candidates of {i}"
                    );
                }
            }
        }
    }

    #[test]
    fn pruned_covers_viable_pairs_with_mixed_radii() {
        // One inflated survivor among many singletons: the big list must
        // carry it to every query, and wide queries from it must reach the
        // distant singletons.
        let xs: Vec<f32> = (0..60).map(|i| i as f32 * 2.0).collect();
        let (_, mut clusters) = clusters_at(&xs);
        if let Some(c) = clusters[0].as_mut() {
            c.radius = 200.0;
        }
        let mpi = 1.0;
        let e = CandidateEngine::build(EngineKind::Pruned, &clusters, mpi);
        for i in 0..clusters.len() {
            let mut out = Vec::new();
            e.candidates(i, &clusters, &mut out);
            let ci = clusters[i].as_ref().unwrap();
            for (j, c) in clusters.iter().enumerate() {
                if j == i {
                    continue;
                }
                let cj = c.as_ref().unwrap();
                if must_return(ci, cj, mpi) {
                    assert!(
                        out.contains(&j),
                        "mixed radii: viable slot {j} missing from candidates of {i}"
                    );
                }
            }
        }
    }

    #[test]
    fn pruned_prunes_distant_slots() {
        // Two tight groups 1000 apart (per axis): singleton queries must
        // not see the far group.
        let xs = [0.0, 0.1, 0.2, 1000.0, 1000.1];
        let (_, clusters) = clusters_at(&xs);
        let e = CandidateEngine::build(EngineKind::Pruned, &clusters, 1.0);
        let mut out = Vec::new();
        e.candidates(0, &clusters, &mut out);
        assert!(out.contains(&1) && out.contains(&2));
        assert!(!out.contains(&3) && !out.contains(&4));
    }

    #[test]
    fn pruned_skips_consumed_slots() {
        let (_, mut clusters) = clusters_at(&[0.0, 0.1, 0.2]);
        clusters[1] = None;
        let e = CandidateEngine::build(EngineKind::Pruned, &clusters, 1.0);
        let mut out = Vec::new();
        e.candidates(0, &clusters, &mut out);
        assert!(!out.contains(&1), "consumed slots must not be indexed");
    }

    #[test]
    fn pruned_handles_zero_mpi_degenerate() {
        let (_, clusters) = clusters_at(&[0.0, 0.0]);
        let e = CandidateEngine::build(EngineKind::Pruned, &clusters, 0.0);
        let mut out = Vec::new();
        e.candidates(0, &clusters, &mut out);
        assert!(out.contains(&1), "coincident centroids are always in range");
    }

    #[test]
    fn wide_queries_reach_everything() {
        // A query whose radius dwarfs the pivot gets everything.
        let xs: Vec<f32> = (0..30).map(|i| i as f32 * 10.0).collect();
        let (_, mut clusters) = clusters_at(&xs);
        if let Some(c) = clusters[0].as_mut() {
            c.radius = 1e6;
        }
        let e = CandidateEngine::build(EngineKind::Pruned, &clusters, 1.0);
        let mut out = Vec::new();
        e.candidates(0, &clusters, &mut out);
        for j in 1..clusters.len() {
            assert!(out.contains(&j), "slot {j} missing from wide query");
        }
    }
}
