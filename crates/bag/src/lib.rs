#![warn(missing_docs)]

//! # eff2-bag
//!
//! The **BAG** clustering algorithm, as described in §3 of the eff2 paper.
//! BAG (named after Berrani, Amsaleg and Gros, whose CIKM'03 paper
//! introduced it without a name) is derived from the first phase of BIRCH
//! and produces hyper-spherical clusters of minimal volume, each identified
//! by its centroid and minimum bounding radius — the quality-first extreme
//! of the chunk-formation spectrum.
//!
//! The algorithm, faithfully to the paper:
//!
//! 1. every descriptor starts as a singleton cluster of radius zero;
//! 2. each pass scans the current clusters; two clusters may merge **iff**
//!    the minimum bounding radius of the merged cluster is smaller than the
//!    radius of the larger cluster plus **MPI** (the *Maximum Possible
//!    Increment* for radii);
//! 3. a cluster that merges gets an exactly recomputed centroid and minimum
//!    bounding radius; a cluster that does not merge has its radius
//!    incremented by MPI (making it non-minimal);
//! 4. at the end of each pass, clusters holding fewer than 20 % of the
//!    average population are destroyed and their descriptors become
//!    singletons again;
//! 5. when the number of clusters falls below a user-defined threshold the
//!    algorithm terminates; clusters that are still too small are destroyed
//!    and their descriptors are declared **outliers**.
//!
//! The paper stresses that BAG "does not use any indexing scheme to
//! facilitate the merge process" and that clustering 5M descriptors took
//! almost **12 days**. This crate provides both that faithful
//! [`engine::ExhaustiveEngine`] and a [`engine::GridEngine`] that prunes
//! merge candidates with a uniform grid over centroids; the two produce
//! identical clusterings (property-tested), the grid engine merely skips
//! candidate pairs that provably cannot satisfy the merge rule. Both count
//! the merge tests the *exhaustive* scan would have performed, so formation
//! cost can be reported faithfully.

pub mod algorithm;
pub mod balltree;
pub mod cluster;
pub mod engine;

pub use algorithm::{Bag, BagConfig, BagResult, BagSnapshot, PassStats};
pub use cluster::Cluster;
pub use engine::{CandidateEngine, EngineKind};
