#![warn(missing_docs)]

//! # eff2-parallel
//!
//! Deterministic data-parallel helpers over `std::thread::scope`, replacing
//! the workspace's rayon dependency (unavailable offline) and powering the
//! batch-search, ground-truth and chunk-formation parallelism.
//!
//! Design rules:
//!
//! * **Output order is input order.** Workers claim items from a shared
//!   atomic cursor (dynamic load balancing — BAG clusters and search
//!   queries vary wildly in cost) but every result is written back to its
//!   item's slot, so callers observe exactly the sequential result vector.
//! * **Parallelism never changes values.** These helpers only run the
//!   caller's pure-per-item closures; anything order-sensitive (virtual
//!   clocks, event logs) must live *inside* one item. See
//!   `DESIGN.md` §kernels for why search parallelism stops at the query
//!   boundary.
//! * `EFF2_THREADS` caps the worker count process-wide (useful for the
//!   thread-scaling bench and for forcing sequential execution in tests).

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;

/// Spawns a detached worker thread.
///
/// Every long-lived thread in the workspace is created through this helper
/// (the auditor's `det.thread_spawn` rule bans raw `std::thread::spawn`
/// outside this crate), so thread provenance stays auditable in one place
/// and future policy — naming, stack sizes, counting — has a single home.
pub fn spawn<T, F>(f: F) -> std::thread::JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    std::thread::spawn(f)
}

/// The default worker count: `EFF2_THREADS` if set and positive, otherwise
/// the machine's available parallelism.
pub fn max_threads() -> usize {
    if let Ok(v) = std::env::var("EFF2_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Maps `f` over `items` on up to [`max_threads`] workers, preserving input
/// order in the output.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    par_map_threads(max_threads(), items, f)
}

/// [`par_map`] with an explicit worker count (`threads == 1` runs inline).
pub fn par_map_threads<T, R, F>(threads: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    match try_par_map_threads(threads, items, |i, t| Ok::<R, Never>(f(i, t))) {
        Ok(out) => out,
        Err(never) => match never {},
    }
}

/// An error type with no values; lets the infallible path reuse the
/// fallible driver without a dead error branch.
enum Never {}

/// Maps a fallible `f` over `items` in parallel. Returns the first error in
/// *input order* (deterministic regardless of scheduling); remaining items
/// may be skipped once an error is seen.
pub fn try_par_map<T, R, E, F>(items: &[T], f: F) -> Result<Vec<R>, E>
where
    T: Sync,
    R: Send,
    E: Send,
    F: Fn(usize, &T) -> Result<R, E> + Sync,
{
    try_par_map_threads(max_threads(), items, f)
}

/// [`try_par_map`] with an explicit worker count.
pub fn try_par_map_threads<T, R, E, F>(threads: usize, items: &[T], f: F) -> Result<Vec<R>, E>
where
    T: Sync,
    R: Send,
    E: Send,
    F: Fn(usize, &T) -> Result<R, E> + Sync,
{
    try_par_map_scratch_threads(threads, items, || (), |(), i, t| f(i, t))
}

/// [`try_par_map_scratch_threads`] with the default worker count.
pub fn try_par_map_scratch<T, R, E, S, I, F>(items: &[T], init: I, f: F) -> Result<Vec<R>, E>
where
    T: Sync,
    R: Send,
    E: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize, &T) -> Result<R, E> + Sync,
{
    try_par_map_scratch_threads(max_threads(), items, init, f)
}

/// [`try_par_map_threads`] with per-worker scratch state: each worker calls
/// `init()` once and threads the resulting value through every item it
/// claims (rayon's `map_init` shape). The scratch is for *reuse* —
/// allocation-heavy buffers, ranking scratch — and must not influence
/// results: output values still depend only on `(index, item)`, which is
/// what keeps the order-preserving determinism guarantee intact.
pub fn try_par_map_scratch_threads<T, R, E, S, I, F>(
    threads: usize,
    items: &[T],
    init: I,
    f: F,
) -> Result<Vec<R>, E>
where
    T: Sync,
    R: Send,
    E: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize, &T) -> Result<R, E> + Sync,
{
    let n = items.len();
    let threads = threads.clamp(1, n.max(1));
    if threads == 1 || n <= 1 {
        let mut scratch = init();
        return items
            .iter()
            .enumerate()
            .map(|(i, t)| f(&mut scratch, i, t))
            .collect();
    }

    // Workers claim indices from a shared cursor and buffer (index, value)
    // pairs locally; results are reassembled in input order afterwards.
    let cursor = AtomicUsize::new(0);
    let failed = AtomicBool::new(false);
    let first_err: Mutex<Option<(usize, E)>> = Mutex::new(None);

    let mut buffers: Vec<Vec<(usize, R)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    let mut scratch = init();
                    let mut local: Vec<(usize, R)> = Vec::new();
                    loop {
                        if failed.load(Ordering::Relaxed) {
                            break;
                        }
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        let Some(item) = items.get(i) else {
                            break;
                        };
                        match f(&mut scratch, i, item) {
                            Ok(r) => local.push((i, r)),
                            Err(e) => {
                                let mut slot = first_err
                                    .lock()
                                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                                // Keep the error with the smallest index so
                                // the outcome is schedule-independent.
                                if slot.as_ref().is_none_or(|(j, _)| i < *j) {
                                    *slot = Some((i, e));
                                }
                                failed.store(true, Ordering::Relaxed);
                            }
                        }
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(local) => local,
                // A worker panic is a bug in `f`; surface it on the caller's
                // thread instead of swallowing it or double-panicking.
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect()
    });

    if let Some((_, e)) = first_err
        .into_inner()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
    {
        return Err(e);
    }

    let mut out: Vec<Option<R>> = Vec::with_capacity(n);
    out.resize_with(n, || None);
    for buffer in &mut buffers {
        for (i, r) in buffer.drain(..) {
            if let Some(slot) = out.get_mut(i) {
                *slot = Some(r);
            }
        }
    }
    debug_assert!(
        out.iter().all(Option::is_some),
        "every index must be processed exactly once"
    );
    Ok(out.into_iter().flatten().collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let items: Vec<usize> = (0..1_000).collect();
        let out = par_map_threads(8, &items, |i, &x| {
            assert_eq!(i, x);
            x * 2
        });
        assert_eq!(out, (0..1_000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn matches_sequential_for_any_thread_count() {
        let items: Vec<u64> = (0..257).collect();
        let expect: Vec<u64> = items.iter().map(|&x| x * x + 1).collect();
        for threads in [1, 2, 3, 8, 64] {
            let got = par_map_threads(threads, &items, |_, &x| x * x + 1);
            assert_eq!(got, expect, "threads = {threads}");
        }
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let empty: Vec<u32> = Vec::new();
        assert!(par_map_threads(4, &empty, |_, &x| x).is_empty());
        assert_eq!(par_map_threads(4, &[7u32], |_, &x| x + 1), vec![8]);
    }

    #[test]
    fn error_reported_is_lowest_index() {
        let items: Vec<usize> = (0..500).collect();
        for threads in [1, 4, 16] {
            let got: Result<Vec<usize>, usize> =
                try_par_map_threads(
                    threads,
                    &items,
                    |i, &x| {
                        if x % 100 == 37 {
                            Err(i)
                        } else {
                            Ok(x)
                        }
                    },
                );
            // Workers race, but the reported error must always be the
            // smallest failing index that any worker reached; with the
            // cursor starting at 0 every failing run sees index 37 fail
            // before any later failure can be *recorded* with a smaller
            // index. The guarantee tested: deterministic, minimal index
            // among observed failures ⇒ equals 37 here because item 37 is
            // always claimed (claims are in order).
            assert_eq!(got, Err(37), "threads = {threads}");
        }
    }

    #[test]
    fn scratch_variant_matches_sequential() {
        let items: Vec<usize> = (0..300).collect();
        let want: Vec<usize> = items.iter().map(|&x| x * 4).collect();
        for threads in [1, 3, 8] {
            let got = try_par_map_scratch_threads(threads, &items, Vec::<usize>::new, {
                |scratch: &mut Vec<usize>, i, &x| {
                    // Per-worker scratch accumulates arbitrarily; results
                    // must still depend only on (index, item).
                    scratch.push(x);
                    Ok::<usize, ()>(x * 3 + i)
                }
            })
            .expect("infallible");
            assert_eq!(got, want, "threads = {threads}");
        }
    }

    #[test]
    fn worker_panic_propagates() {
        let items: Vec<u32> = (0..64).collect();
        let result = std::panic::catch_unwind(|| {
            par_map_threads(4, &items, |_, &x| {
                assert!(x != 13, "boom");
                x
            })
        });
        assert!(result.is_err());
    }

    #[test]
    fn thread_env_override_parses() {
        // Only exercises the parser logic indirectly: max_threads() must be
        // positive whatever the environment.
        assert!(max_threads() >= 1);
    }
}
