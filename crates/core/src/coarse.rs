//! Coarse quantizer over chunk centroids: the top level of two-level
//! chunk ranking.
//!
//! Flat ranking ([`ChunkRanking::rank`]) evaluates the query against
//! *every* chunk centroid before the first chunk is read. At 100k+
//! descriptors the centroid table itself becomes a scan. This module
//! clusters the chunk centroids into a few k-means **cells** so ranking
//! becomes two-level: rank the cells (a handful of distance evaluations),
//! then expand only the best cells to chunk granularity as the scan
//! consumes them ([`ChunkRanking::rank_two_level`]).
//!
//! Exactness is preserved by a conservative cell radius: for every member
//! chunk `m` of cell `c`,
//!
//! ```text
//! cell_radius(c) >= d(center(c), centroid(m)) + radius(m)
//! ```
//!
//! so by the triangle inequality `d(q, center(c)) − cell_radius(c)` lower
//! bounds the distance from the query to **any descriptor** stored in any
//! chunk of the cell — the same shape of bound the flat ranking uses per
//! chunk, lifted one level. The to-completion stop rule stays exact.
//!
//! Training is deterministic: stride initialisation, a fixed iteration
//! count, `f64` accumulation in member order, and lowest-index
//! tie-breaking — the same discipline as the product-quantizer training in
//! `eff2-descriptor`.
//!
//! [`ChunkRanking::rank`]: crate::session::ChunkRanking::rank
//! [`ChunkRanking::rank_two_level`]: crate::session::ChunkRanking::rank_two_level

use eff2_descriptor::{Vector, DIM};
use eff2_storage::indexfile::ChunkMeta;
use eff2_storage::ChunkStore;

/// Lloyd iterations for the coarse k-means. Fixed (not convergence-tested)
/// so training cost and results are deterministic functions of the input.
pub const COARSE_TRAIN_ITERS: usize = 8;

/// A k-means clustering of chunk centroids with conservative cell radii.
///
/// Built once per store by [`CoarseQuantizer::for_store`] (or with an
/// explicit cell count via [`CoarseQuantizer::train`]) and shared by every
/// query's [`rank_two_level`](crate::session::ChunkRanking::rank_two_level).
#[derive(Clone, Debug)]
pub struct CoarseQuantizer {
    /// Cell centers (k-means centroids of the chunk centroids).
    centers: Vec<Vector>,
    /// Conservative radius per cell (see module docs).
    radii: Vec<f32>,
    /// Member chunk ids per cell, ascending. Every chunk id appears in
    /// exactly one cell.
    members: Vec<Vec<u32>>,
}

impl CoarseQuantizer {
    /// The default cell count: `ceil(sqrt(n_chunks))`, the classic
    /// balance point where ranking cost `n_cells + expanded_members` is
    /// minimised when expansion stops after a few cells.
    pub fn default_cells(n_chunks: usize) -> usize {
        (n_chunks as f64).sqrt().ceil() as usize
    }

    /// Trains a coarse quantizer over `store`'s chunk centroids with
    /// [`default_cells`](Self::default_cells).
    pub fn for_store(store: &ChunkStore) -> CoarseQuantizer {
        CoarseQuantizer::train(
            store.metas(),
            CoarseQuantizer::default_cells(store.n_chunks()),
        )
    }

    /// Trains `n_cells` k-means cells over the chunk centroids in `metas`
    /// (capped at the chunk count; at least one cell when any chunk
    /// exists). Deterministic: same metas and cell count, same quantizer.
    pub fn train(metas: &[ChunkMeta], n_cells: usize) -> CoarseQuantizer {
        let n = metas.len();
        if n == 0 {
            return CoarseQuantizer {
                centers: Vec::new(),
                radii: Vec::new(),
                members: Vec::new(),
            };
        }
        let k = n_cells.clamp(1, n);

        // Stride initialisation over the chunk order: centroid formation is
        // spatially clustered (SR-tree leaves, BAG cells), so strided picks
        // spread across the collection without any randomness.
        let mut centers: Vec<Vector> = (0..k)
            .map(|j| metas.get(j * n / k).map_or(Vector::ZERO, |m| m.centroid))
            .collect();

        let mut assign = vec![0u32; n];
        for _ in 0..COARSE_TRAIN_ITERS {
            // Assignment: nearest center, ties to the lowest cell index
            // (strict `<` keeps the first best).
            for (slot, m) in assign.iter_mut().zip(metas.iter()) {
                let mut best = f32::INFINITY;
                let mut best_c = 0u32;
                for (c, center) in centers.iter().enumerate() {
                    let d = center.dist_sq(&m.centroid);
                    if d < best {
                        best = d;
                        best_c = c as u32;
                    }
                }
                *slot = best_c;
            }
            // Update: f64 accumulation in chunk order; an empty cell keeps
            // its previous center (no reseeding, no randomness).
            let mut sums = vec![[0.0f64; DIM]; k];
            let mut counts = vec![0u64; k];
            for (&c, m) in assign.iter().zip(metas.iter()) {
                if let Some(sum) = sums.get_mut(c as usize) {
                    for (a, x) in sum.iter_mut().zip(m.centroid.as_array().iter()) {
                        *a += f64::from(*x);
                    }
                }
                if let Some(cnt) = counts.get_mut(c as usize) {
                    *cnt += 1;
                }
            }
            for ((center, sum), &cnt) in centers.iter_mut().zip(sums.iter()).zip(counts.iter()) {
                if cnt > 0 {
                    let inv = 1.0 / cnt as f64;
                    let mut out = [0.0f32; DIM];
                    for (o, a) in out.iter_mut().zip(sum.iter()) {
                        *o = (a * inv) as f32;
                    }
                    *center = Vector::from(out);
                }
            }
        }

        // Final membership + conservative radii from the last assignment.
        let mut members: Vec<Vec<u32>> = (0..k).map(|_| Vec::new()).collect();
        let mut radii = vec![0.0f32; k];
        for (i, (&c, m)) in assign.iter().zip(metas.iter()).enumerate() {
            if let Some(list) = members.get_mut(c as usize) {
                list.push(i as u32);
            }
            let reach = centers
                .get(c as usize)
                .map_or(f32::INFINITY, |center| center.dist(&m.centroid) + m.radius);
            if let Some(r) = radii.get_mut(c as usize) {
                *r = r.max(reach);
            }
        }
        CoarseQuantizer {
            centers,
            radii,
            members,
        }
    }

    /// Number of cells (including empty ones).
    pub fn n_cells(&self) -> usize {
        self.centers.len()
    }

    /// Whether the quantizer holds no cells (empty store).
    pub fn is_empty(&self) -> bool {
        self.centers.is_empty()
    }

    /// The center of cell `c`.
    pub fn center(&self, c: usize) -> Option<&Vector> {
        self.centers.get(c)
    }

    /// The conservative radius of cell `c` (see module docs).
    pub fn radius(&self, c: usize) -> Option<f32> {
        self.radii.get(c).copied()
    }

    /// Member chunk ids of cell `c`, ascending.
    pub fn cell_members(&self, c: usize) -> &[u32] {
        self.members.get(c).map_or(&[], Vec::as_slice)
    }

    /// Iterates `(cell, center, radius, members)` over all cells.
    pub fn cells(&self) -> impl Iterator<Item = (usize, &Vector, f32, &[u32])> {
        self.centers
            .iter()
            .zip(self.radii.iter())
            .zip(self.members.iter())
            .enumerate()
            .map(|(c, ((center, &radius), members))| (c, center, radius, members.as_slice()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chunkers::{ChunkFormer, SrTreeChunker};
    use eff2_descriptor::{Descriptor, DescriptorSet};
    use std::path::PathBuf;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("eff2_coarse_{tag}"));
        std::fs::create_dir_all(&dir).expect("mkdir");
        dir
    }

    fn lumpy_set(n: usize) -> DescriptorSet {
        (0..n)
            .map(|i| {
                let blob = (i % 5) as f32 * 20.0;
                let mut v = Vector::splat(blob);
                v[0] += ((i * 31) % 23) as f32 * 0.3;
                v[3] -= ((i * 17) % 19) as f32 * 0.2;
                Descriptor::new(i as u32, v)
            })
            .collect()
    }

    fn build_store(tag: &str, n: usize, leaf: usize) -> ChunkStore {
        let set = lumpy_set(n);
        let formation = SrTreeChunker { leaf_size: leaf }.form(&set);
        ChunkStore::create(&tmp_dir(tag), "ix", &set, &formation.chunks, 512).expect("create")
    }

    #[test]
    fn every_chunk_lands_in_exactly_one_cell() {
        let store = build_store("partition", 600, 20);
        let coarse = CoarseQuantizer::for_store(&store);
        assert!(coarse.n_cells() >= 1);
        let mut seen = vec![false; store.n_chunks()];
        for (_, _, _, members) in coarse.cells() {
            for &m in members {
                let slot = seen.get_mut(m as usize).expect("member in range");
                assert!(!*slot, "chunk {m} assigned to two cells");
                *slot = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "every chunk must be covered");
    }

    #[test]
    fn cell_radius_dominates_every_member_bound() {
        // For any query q and member chunk m of cell c:
        //   d(q, center_c) − cell_radius_c  <=  d(q, centroid_m) − radius_m
        // i.e. the cell bound never over-claims.
        let store = build_store("radius", 500, 25);
        let coarse = CoarseQuantizer::for_store(&store);
        let metas = store.metas();
        let queries = [Vector::ZERO, Vector::splat(40.0), Vector::splat(-13.5), {
            let mut v = Vector::splat(7.0);
            v[5] = 90.0;
            v
        }];
        for q in &queries {
            for (_, center, radius, members) in coarse.cells() {
                let cell_bound = (center.dist(q) - radius).max(0.0);
                for &m in members {
                    let meta = &metas[m as usize];
                    let chunk_bound = (meta.centroid.dist(q) - meta.radius).max(0.0);
                    assert!(
                        cell_bound <= chunk_bound + 1e-4,
                        "cell bound {cell_bound} exceeds member chunk bound {chunk_bound}"
                    );
                }
            }
        }
    }

    #[test]
    fn training_is_deterministic() {
        let store = build_store("determ", 400, 20);
        let a = CoarseQuantizer::for_store(&store);
        let b = CoarseQuantizer::for_store(&store);
        assert_eq!(a.n_cells(), b.n_cells());
        for c in 0..a.n_cells() {
            assert_eq!(a.cell_members(c), b.cell_members(c));
            assert_eq!(a.radius(c).map(f32::to_bits), b.radius(c).map(f32::to_bits));
            let (ca, cb) = (a.center(c).expect("center"), b.center(c).expect("center"));
            for i in 0..DIM {
                assert_eq!(ca[i].to_bits(), cb[i].to_bits());
            }
        }
    }

    #[test]
    fn cell_count_defaults_to_sqrt() {
        assert_eq!(CoarseQuantizer::default_cells(0), 0);
        assert_eq!(CoarseQuantizer::default_cells(1), 1);
        assert_eq!(CoarseQuantizer::default_cells(16), 4);
        assert_eq!(CoarseQuantizer::default_cells(100), 10);
        assert_eq!(CoarseQuantizer::default_cells(101), 11);
    }

    #[test]
    fn empty_metas_give_empty_quantizer() {
        let coarse = CoarseQuantizer::train(&[], 4);
        assert!(coarse.is_empty());
        assert_eq!(coarse.n_cells(), 0);
    }

    #[test]
    fn more_cells_than_chunks_is_clamped() {
        let store = build_store("clamp", 100, 30);
        let coarse = CoarseQuantizer::train(store.metas(), 1_000);
        assert!(coarse.n_cells() <= store.n_chunks());
    }
}
