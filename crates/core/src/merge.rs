//! Deterministic scatter–gather merge for sharded search.
//!
//! A fleet run splits a query's flat [`ChunkRanking`] into per-shard *legs*
//! ([`ChunkRanking::split_by_owner`]); each leg is a detached
//! [`SearchSession`](crate::session::SearchSession) scanning only its
//! shard's chunks. The [`ScatterGather`] here is the **gather side**: it
//! owns the global ranking, the merged neighbour set, the query's private
//! [`PipelineClock`] and its [`SearchLog`], and it incorporates leg
//! outcomes strictly in global rank order.
//!
//! ## Why the merged answer is bit-identical to a solo scan
//!
//! Consider the global prefix of the first `g` ranked chunks. Each leg
//! preserves the global order restricted to its shard, so after every leg
//! has reported its outcomes for its chunks in that prefix, the leg's
//! retained neighbour snapshot contains the exact k smallest `(dist_sq,
//! id)` candidates among *its* prefix chunks — and any member of the true
//! global top-k over the prefix is, in particular, among the k smallest of
//! its own leg's prefix, hence present in that leg's snapshot. Merging the
//! snapshots' **raw** `(id, dist_sq)` entries
//! ([`NeighborSet::entries`](crate::neighbors::NeighborSet::entries)) and
//! keeping the k smallest *distinct ids* under the total order
//! `(dist_sq, id)` therefore yields exactly the solo top-k of the prefix.
//! Two details matter: the merge must deduplicate by id, because a leg
//! re-reports its retained neighbours after every chunk (a solo scan
//! offers each descriptor exactly once, so its `NeighborSet` never sees a
//! duplicate); and it must use the raw squared distances (round-tripping
//! through sqrt'd values would perturb kth-boundary ties).
//! Stop rules are evaluated over this merged state with the *same*
//! predicate a solo session uses ([`rule_fires`]), and the private clock
//! replays the identical `chunk_overlapped(io_time(bytes),
//! scan_time(count))` sequence in global order from the same index-read
//! start — so neighbours, events, stop point and every virtual-time figure
//! come out bit-for-bit equal to the single-device run.
//!
//! Losses merge the same way: a chunk no replica could deliver is
//! incorporated at its global rank as a skip with its modelled retry
//! charge, exactly like
//! [`SearchSession::skip_unavailable`](crate::session::SearchSession::skip_unavailable).

use crate::neighbors::Neighbor;
use crate::search::{ChunkEvent, SearchLog, SearchParams, SearchResult, StopRule};
use crate::session::{rule_fires, ChunkRanking};
use eff2_storage::diskmodel::{DiskModel, PipelineClock, VirtualDuration};
use eff2_storage::Result;

/// One leg-reported outcome for a single ranked chunk, buffered by the
/// fleet driver until the gather cursor reaches the chunk's global rank.
#[derive(Clone, Debug)]
pub enum LegOutcome {
    /// The chunk was scanned on its shard: the modelled bytes, descriptor
    /// count, and the leg's retained neighbour snapshot *after* this chunk
    /// (raw `(id, dist_sq)` entries).
    Scanned {
        /// Bytes the delivery transferred (padded page span).
        bytes_read: u64,
        /// Descriptors the chunk holds.
        count: u32,
        /// The leg's neighbour snapshot after scanning this chunk.
        entries: Vec<(u32, f32)>,
    },
    /// No copy of the chunk could be delivered; `spent` is the modelled
    /// retry/backoff cost of finding that out.
    Lost {
        /// Modelled time the failed delivery attempts cost.
        spent: VirtualDuration,
    },
}

/// The gather side of a scatter–gather query: global ranking, merged
/// neighbour set, private clock and log. See the module docs for the
/// determinism argument.
pub struct ScatterGather {
    ranking: ChunkRanking,
    model: DiskModel,
    params: SearchParams,
    clock: PipelineClock,
    /// The merged top-k as raw `(id, dist_sq)` pairs, sorted by
    /// `(dist_sq, id)`, ids distinct, at most `k` long. A plain sorted
    /// vector instead of a [`NeighborSet`] because the merge must
    /// deduplicate by id (see module docs) — leg snapshots re-report the
    /// same neighbour chunk after chunk.
    merged: Vec<(u32, f32)>,
    log: SearchLog,
    wall_start: std::time::Instant,
}

impl ScatterGather {
    /// A gather over a pre-computed **flat** global ranking. The private
    /// clock starts at the index-read time, exactly like a solo session.
    pub fn new(ranking: ChunkRanking, model: &DiskModel, params: &SearchParams) -> ScatterGather {
        let clock = PipelineClock::start_at(ranking.index_read_time());
        let log = SearchLog {
            index_read_time: ranking.index_read_time(),
            ..SearchLog::default()
        };
        ScatterGather {
            ranking,
            model: *model,
            params: *params,
            clock,
            merged: Vec::with_capacity(params.k),
            log,
            // lint:allow(det.wall_clock): log.wall is informational; it never feeds the virtual clock or modelled figures
            wall_start: std::time::Instant::now(),
        }
    }

    /// The global ranking this gather merges over.
    pub fn ranking(&self) -> &ChunkRanking {
        &self.ranking
    }

    /// The parameters the query was admitted with.
    pub fn params(&self) -> &SearchParams {
        &self.params
    }

    /// Global ranks incorporated so far (scanned + lost) — the next
    /// outcome must be for the chunk at this rank.
    pub fn cursor(&self) -> usize {
        self.log.chunks_read + self.log.degradation.chunks_lost
    }

    /// Whether `k` distinct neighbours are held.
    fn is_full(&self) -> bool {
        self.merged.len() >= self.params.k
    }

    /// The merged kth-best **squared** distance (∞ until `k` are held) —
    /// same contract as `NeighborSet::kth_dist_sq`.
    fn kth_dist_sq(&self) -> f32 {
        if self.is_full() {
            self.merged.last().map_or(f32::INFINITY, |e| e.1)
        } else {
            f32::INFINITY
        }
    }

    /// The current merged kth-best distance (∞ until `k` are held).
    pub fn kth_dist(&self) -> f32 {
        let d = self.kth_dist_sq();
        if d.is_finite() {
            d.sqrt()
        } else {
            f32::INFINITY
        }
    }

    /// Merges a batch of raw `(id, dist_sq)` entries into the top-k:
    /// sort by `(dist_sq, id)`, drop duplicate ids (duplicates of an id
    /// always carry identical distance bits — a descriptor lives in exactly
    /// one chunk, scanned by exactly one leg), keep the k smallest.
    fn offer_entries(&mut self, entries: &[(u32, f32)]) {
        self.merged.extend_from_slice(entries);
        self.merged
            .sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
        self.merged.dedup_by(|a, b| a.0 == b.0);
        self.merged.truncate(self.params.k);
    }

    /// Upper estimate of ranks still to incorporate before the stop rule
    /// can fire (see `SearchSession::remaining_work_estimate`).
    pub fn remaining_work_estimate(&self) -> usize {
        let cursor = self.cursor();
        match self.params.stop {
            StopRule::Chunks(n) => n.min(self.ranking.len()).saturating_sub(cursor),
            _ => self.ranking.len().saturating_sub(cursor),
        }
    }

    /// Incorporates the outcome for the chunk at the current cursor rank.
    /// `chunk_id` must be the ranking's chunk at that rank (the same
    /// in-order discipline as `SearchSession::step_with`); outcomes arrive
    /// here only after the fleet driver has drained every earlier rank.
    pub fn incorporate(&mut self, chunk_id: usize, outcome: &LegOutcome) -> Result<()> {
        let cursor = self.cursor();
        if cursor >= self.ranking.len() {
            return Err(eff2_storage::Error::Inconsistent(
                "gather already incorporated every ranked chunk".to_string(),
            ));
        }
        let wanted = self.ranking.chunk_at(cursor);
        if chunk_id != wanted {
            return Err(eff2_storage::Error::Inconsistent(format!(
                "gather wants chunk {wanted} at rank {cursor}, was offered chunk {chunk_id}"
            )));
        }
        match outcome {
            LegOutcome::Scanned {
                bytes_read,
                count,
                entries,
            } => {
                self.offer_entries(entries);
                let io = self.model.io_time(*bytes_read);
                let cpu = self.model.scan_time(*count as usize);
                let completed_at = self.clock.chunk_overlapped(io, cpu);
                let rank = self.log.chunks_read;
                self.log.chunks_read += 1;
                self.log.descriptors_scanned += u64::from(*count);
                self.log.bytes_read += bytes_read;
                self.log.events.push(ChunkEvent {
                    rank,
                    chunk_id,
                    count: *count,
                    bytes_read: *bytes_read,
                    completed_at,
                    kth_dist: self.kth_dist(),
                    topk_ids: if self.params.log_snapshots {
                        self.merged.iter().map(|e| e.0).collect()
                    } else {
                        Vec::new()
                    },
                });
            }
            LegOutcome::Lost { spent } => {
                let _ = self.clock.chunk_overlapped(*spent, VirtualDuration::ZERO);
                self.log.degradation.chunks_lost += 1;
                self.log.degradation.descriptors_lost += u64::from(self.ranking.count_of(chunk_id));
                self.log.degradation.lost_chunks.push(chunk_id);
            }
        }
        Ok(())
    }

    /// Whether the query's own stop rule says to stop — the same predicate
    /// a solo session evaluates, over the merged state.
    pub fn stop_satisfied(&self) -> bool {
        let cursor = self.cursor();
        self.params.k == 0
            || cursor >= self.ranking.len()
            || rule_fires(
                self.params.stop,
                cursor,
                self.log.events.last().map(|e| e.completed_at),
                self.is_full(),
                self.kth_dist(),
                self.ranking.remaining_bound(cursor),
            )
            .is_some()
    }

    /// Finalises the merged answer, exactly as
    /// `SearchSession::into_result_and_ranking` does: completion flag,
    /// total virtual time from the private clock, centroid evaluations
    /// from the global ranking. Also hands the ranking back for reuse.
    pub fn into_result_and_ranking(mut self) -> (SearchResult, ChunkRanking) {
        let cursor = self.cursor();
        self.log.completed = self.params.k == 0
            || cursor == self.ranking.len()
            || rule_fires(
                self.params.stop,
                cursor,
                self.log.events.last().map(|e| e.completed_at),
                self.is_full(),
                self.kth_dist(),
                self.ranking.remaining_bound(cursor),
            ) == Some(true);
        self.log.total_virtual = self.clock.now().max(self.ranking.index_read_time());
        self.log.centroid_evals = self.ranking.centroid_evals();
        self.log.wall = self.wall_start.elapsed();
        let ranking = std::mem::take(&mut self.ranking);
        let result = SearchResult {
            neighbors: self
                .merged
                .iter()
                .map(|&(id, dist_sq)| Neighbor {
                    id,
                    dist: dist_sq.sqrt(),
                })
                .collect(),
            log: self.log,
        };
        (result, ranking)
    }
}

impl std::fmt::Debug for ScatterGather {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ScatterGather")
            .field("cursor", &self.cursor())
            .field("n_chunks", &self.ranking.len())
            .field("kth_dist", &self.kth_dist())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chunkers::{ChunkFormer, SrTreeChunker};
    use crate::session::SearchSession;
    use eff2_descriptor::{Descriptor, DescriptorSet, Vector};
    use eff2_storage::chunkfile::ChunkPayload;
    use eff2_storage::source::SourcedChunk;
    use eff2_storage::ChunkStore;
    use std::collections::BTreeMap;
    use std::path::PathBuf;
    use std::sync::Arc;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("eff2_merge_{tag}"));
        std::fs::create_dir_all(&dir).expect("mkdir");
        dir
    }

    fn lumpy_set(n: usize) -> DescriptorSet {
        (0..n)
            .map(|i| {
                let blob = (i % 7) as f32 * 15.0;
                let mut v = Vector::splat(blob);
                v[0] += ((i * 31) % 23) as f32 * 0.4;
                v[2] -= ((i * 13) % 17) as f32 * 0.3;
                Descriptor::new(i as u32, v)
            })
            .collect()
    }

    fn build_store(tag: &str, n: usize) -> ChunkStore {
        let set = lumpy_set(n);
        let formation = SrTreeChunker { leaf_size: 24 }.form(&set);
        ChunkStore::create(&tmp_dir(tag), "ix", &set, &formation.chunks, 512).expect("create")
    }

    /// Splits a query across hand-rolled shards, feeds each leg fully,
    /// then drains outcomes in global order — the merged result must be
    /// bit-identical to a solo session under the same stop rule.
    fn assert_merge_matches_solo(store: &ChunkStore, params: &SearchParams, n_shards: usize) {
        let model = eff2_storage::diskmodel::DiskModel::ata_2005();
        let query = Vector::splat(21.0);

        let mut solo = SearchSession::open(store, &model, &query, params);
        solo.run_to_stop().expect("solo run");
        let want = solo.into_result();

        let ranking = ChunkRanking::rank(store, &model, &query);
        let owner_of: Vec<u32> = (0..store.n_chunks())
            .map(|c| (c % n_shards) as u32)
            .collect();
        let legs_rankings = ranking.split_by_owner(&owner_of, n_shards);
        let mut gather = ScatterGather::new(ranking, &model, params);

        // Drive every leg to exhaustion, buffering outcomes by global rank.
        let leg_params = SearchParams {
            stop: StopRule::Chunks(usize::MAX),
            ..*params
        };
        let mut reader = store.reader().expect("reader");
        let mut buffered: BTreeMap<usize, (usize, LegOutcome)> = BTreeMap::new();
        let rank_of: BTreeMap<usize, usize> = (0..gather.ranking().len())
            .map(|r| (gather.ranking().chunk_at(r), r))
            .collect();
        for leg_ranking in legs_rankings {
            let mut leg =
                SearchSession::detached_from_ranking(leg_ranking, &model, &query, &leg_params);
            while let Some(chunk) = leg.next_wanted() {
                let mut payload = ChunkPayload::default();
                let bytes = reader.read_chunk(chunk, &mut payload).expect("read");
                let sourced = SourcedChunk {
                    id: chunk,
                    payload: Arc::new(payload),
                    bytes_read: bytes,
                };
                leg.step_with(&sourced).expect("leg step");
                let count = gather.ranking().count_of(chunk);
                buffered.insert(
                    rank_of[&chunk],
                    (
                        chunk,
                        LegOutcome::Scanned {
                            bytes_read: bytes,
                            count,
                            entries: leg.neighbor_entries(),
                        },
                    ),
                );
            }
        }
        // Drain in global order under the real stop rule; leftovers are
        // exactly the work a lookahead-bounded fleet would not have done.
        while !gather.stop_satisfied() {
            let cursor = gather.cursor();
            let (chunk, outcome) = buffered.get(&cursor).expect("outcome for rank");
            gather.incorporate(*chunk, outcome).expect("incorporate");
        }
        let (got, _) = gather.into_result_and_ranking();

        assert_eq!(want.neighbors.len(), got.neighbors.len());
        for (w, g) in want.neighbors.iter().zip(got.neighbors.iter()) {
            assert_eq!(w.id, g.id);
            assert_eq!(w.dist.to_bits(), g.dist.to_bits());
        }
        assert_eq!(want.log.chunks_read, got.log.chunks_read);
        assert_eq!(want.log.bytes_read, got.log.bytes_read);
        assert_eq!(want.log.descriptors_scanned, got.log.descriptors_scanned);
        assert_eq!(want.log.completed, got.log.completed);
        assert_eq!(
            want.log.total_virtual.as_secs().to_bits(),
            got.log.total_virtual.as_secs().to_bits()
        );
        assert_eq!(want.log.events.len(), got.log.events.len());
        for (w, g) in want.log.events.iter().zip(got.log.events.iter()) {
            assert_eq!(w.chunk_id, g.chunk_id);
            assert_eq!(w.bytes_read, g.bytes_read);
            assert_eq!(
                w.completed_at.as_secs().to_bits(),
                g.completed_at.as_secs().to_bits()
            );
            assert_eq!(w.kth_dist.to_bits(), g.kth_dist.to_bits());
            assert_eq!(w.topk_ids, g.topk_ids);
        }
    }

    #[test]
    fn merge_matches_solo_to_completion() {
        let store = build_store("complete", 600);
        assert_merge_matches_solo(&store, &SearchParams::exact(10), 4);
    }

    #[test]
    fn merge_matches_solo_chunk_budget() {
        let store = build_store("budget", 600);
        assert_merge_matches_solo(&store, &SearchParams::approximate(8, 7), 3);
    }

    #[test]
    fn merge_matches_solo_eps() {
        let store = build_store("eps", 500);
        let params = SearchParams {
            stop: StopRule::ToCompletionEps(0.4),
            ..SearchParams::exact(12)
        };
        assert_merge_matches_solo(&store, &params, 5);
    }

    #[test]
    fn merge_matches_solo_single_shard() {
        let store = build_store("single", 400);
        assert_merge_matches_solo(&store, &SearchParams::exact(6), 1);
    }

    #[test]
    fn gather_refuses_out_of_order_chunks() {
        let store = build_store("order", 300);
        let model = eff2_storage::diskmodel::DiskModel::ata_2005();
        let query = Vector::splat(5.0);
        let ranking = ChunkRanking::rank(&store, &model, &query);
        let wrong = ranking.chunk_at(1);
        let mut gather = ScatterGather::new(ranking, &model, &SearchParams::exact(4));
        let outcome = LegOutcome::Scanned {
            bytes_read: 512,
            count: 10,
            entries: vec![(0, 1.0)],
        };
        assert!(gather.incorporate(wrong, &outcome).is_err());
    }

    #[test]
    fn lost_ranks_merge_like_solo_skips() {
        let store = build_store("loss", 300);
        let model = eff2_storage::diskmodel::DiskModel::ata_2005();
        let query = Vector::splat(30.0);
        let params = SearchParams::approximate(5, 4);
        let ranking = ChunkRanking::rank(&store, &model, &query);
        let first = ranking.chunk_at(0);
        let mut gather = ScatterGather::new(ranking, &model, &params);
        let spent = VirtualDuration::from_ms(40.0);
        gather
            .incorporate(first, &LegOutcome::Lost { spent })
            .expect("loss");
        assert_eq!(gather.cursor(), 1);
        let (result, _) = gather.into_result_and_ranking();
        assert_eq!(result.log.degradation.chunks_lost, 1);
        assert_eq!(result.log.degradation.lost_chunks, vec![first]);
        assert!(result.log.degradation.descriptors_lost > 0);
    }
}
