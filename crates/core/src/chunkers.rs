//! Chunk-forming strategies.
//!
//! The paper's study compares two extremes: the SR-tree's uniform-size
//! leaves (response-time first, §2) and BAG's minimal-volume clusters
//! (quality first, §3). Its introduction also names the degenerate
//! time-extreme — round-robin distribution — and its conclusion calls for
//! "a clustering algorithm which keeps uniform chunk size as the first
//! priority, but attempts to achieve the smallest possible intra-chunk
//! dissimilarity"; [`HybridChunker`] implements that.

// lint:allow-file(panic.index): chunk-formation bookkeeping (membership tables, centroid arrays, partition maps) indexes dense position tables this module builds and keeps in bounds by construction
use eff2_bag::{Bag, BagConfig};
use eff2_descriptor::{DescriptorSet, Vector, DIM};
use eff2_srtree::chunks_from_collection;
use eff2_storage::ChunkDef;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// A measure of how much work chunk formation performed, so formation cost
/// can be compared across strategies (the paper: BAG took ~12 days, the
/// SR-tree under 3 hours, on the same collection).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct FormationCost {
    /// Distance-evaluation-equivalent operations performed (or, for BAG,
    /// that the paper's exhaustive implementation would have performed).
    pub distance_ops: u64,
    /// Number of passes/iterations the strategy ran.
    pub rounds: u64,
}

/// The output of a chunk former: the chunks, the positions it excluded as
/// outliers, and what the formation cost.
#[derive(Clone, Debug)]
pub struct ChunkFormation {
    /// The formed chunks (member positions + centroid/radius summaries).
    pub chunks: Vec<ChunkDef>,
    /// Positions excluded from every chunk (outliers). Empty for formers
    /// without an outlier mechanism.
    pub outliers: Vec<u32>,
    /// Formation cost.
    pub cost: FormationCost,
}

impl ChunkFormation {
    /// Number of descriptors placed into chunks.
    pub fn retained(&self) -> usize {
        self.chunks.iter().map(|c| c.positions.len()).sum::<usize>()
    }

    /// Mean chunk population.
    pub fn mean_chunk_size(&self) -> f64 {
        if self.chunks.is_empty() {
            0.0
        } else {
            self.retained() as f64 / self.chunks.len() as f64
        }
    }

    /// Chunk sizes sorted descending — Fig. 1's "size of the largest
    /// chunks" series.
    pub fn sizes_descending(&self) -> Vec<usize> {
        let mut sizes: Vec<usize> = self.chunks.iter().map(|c| c.positions.len()).collect();
        sizes.sort_unstable_by(|a, b| b.cmp(a));
        sizes
    }
}

/// A strategy that divides a collection into chunks.
pub trait ChunkFormer {
    /// Short human-readable strategy name (used in reports).
    fn name(&self) -> String;

    /// Forms chunks over `set`.
    fn form(&self, set: &DescriptorSet) -> ChunkFormation;
}

fn summarise(set: &DescriptorSet, positions: Vec<u32>) -> ChunkDef {
    let (centroid, radius) = eff2_srtree::bulk::centroid_and_radius(set, &positions);
    ChunkDef {
        positions,
        centroid,
        radius,
    }
}

// ---------------------------------------------------------------------------
// SR-tree (uniform size first)
// ---------------------------------------------------------------------------

/// Uniform-size chunks from SR-tree leaves (§2).
#[derive(Clone, Copy, Debug)]
pub struct SrTreeChunker {
    /// Target descriptors per leaf/chunk.
    pub leaf_size: usize,
}

impl ChunkFormer for SrTreeChunker {
    fn name(&self) -> String {
        format!("sr-tree(leaf={})", self.leaf_size)
    }

    fn form(&self, set: &DescriptorSet) -> ChunkFormation {
        let chunks: Vec<ChunkDef> = chunks_from_collection(set, self.leaf_size)
            .into_iter()
            .map(|c| ChunkDef {
                positions: c.positions,
                centroid: c.centroid,
                radius: c.radius,
            })
            .collect();
        let n = set.len() as u64;
        let levels = (chunks.len().max(1) as f64).log2().ceil() as u64;
        ChunkFormation {
            cost: FormationCost {
                // Partitioning touches every point once per level; the
                // centroid/radius summaries touch every point twice (the
                // part the paper observed dominating SR-tree index build).
                distance_ops: n * levels + 2 * n,
                rounds: levels,
            },
            chunks,
            outliers: Vec::new(),
        }
    }
}

// ---------------------------------------------------------------------------
// BAG (quality first)
// ---------------------------------------------------------------------------

/// Minimal-volume chunks from the BAG clustering algorithm (§3).
#[derive(Clone, Copy, Debug)]
pub struct BagChunker {
    /// BAG parameters.
    pub config: BagConfig,
    /// Terminate when the cluster count falls below this.
    pub target_clusters: usize,
}

impl ChunkFormer for BagChunker {
    fn name(&self) -> String {
        format!("bag(target={})", self.target_clusters)
    }

    fn form(&self, set: &DescriptorSet) -> ChunkFormation {
        let mut bag = Bag::new(set, self.config);
        let snap = bag.run_to(self.target_clusters);
        let chunks = snap
            .clusters
            .iter()
            .map(|c| ChunkDef {
                positions: c.members.clone(),
                centroid: c.centroid,
                // The index stores the minimum bounding radius; the
                // MPI-inflated maintained radius is a clustering artefact.
                radius: c.tight_radius,
            })
            .collect();
        ChunkFormation {
            chunks,
            outliers: snap.outliers,
            cost: FormationCost {
                distance_ops: snap.exhaustive_equivalent_tests,
                rounds: snap.passes as u64,
            },
        }
    }
}

// ---------------------------------------------------------------------------
// Round-robin / random baselines
// ---------------------------------------------------------------------------

/// The introduction's time-extreme baseline: descriptors dealt to chunks in
/// round-robin order. Perfectly uniform sizes, no locality whatsoever.
#[derive(Clone, Copy, Debug)]
pub struct RoundRobinChunker {
    /// Number of chunks to deal into.
    pub n_chunks: usize,
}

impl ChunkFormer for RoundRobinChunker {
    fn name(&self) -> String {
        format!("round-robin(n={})", self.n_chunks)
    }

    fn form(&self, set: &DescriptorSet) -> ChunkFormation {
        assert!(self.n_chunks > 0, "need at least one chunk");
        let n_buckets = self.n_chunks.min(set.len().max(1));
        let mut buckets: Vec<Vec<u32>> = vec![Vec::new(); n_buckets];
        for p in 0..set.len() as u32 {
            buckets[p as usize % n_buckets].push(p);
        }
        buckets.retain(|b| !b.is_empty());
        let chunks = buckets
            .into_iter()
            .map(|b| summarise(set, b))
            .collect::<Vec<_>>();
        ChunkFormation {
            cost: FormationCost {
                distance_ops: 2 * set.len() as u64,
                rounds: 1,
            },
            chunks,
            outliers: Vec::new(),
        }
    }
}

/// Uniform chunks of shuffled descriptors — like round-robin but with a
/// seeded permutation, so repeated builds differ.
#[derive(Clone, Copy, Debug)]
pub struct RandomChunker {
    /// Number of chunks.
    pub n_chunks: usize,
    /// Shuffle seed.
    pub seed: u64,
}

impl ChunkFormer for RandomChunker {
    fn name(&self) -> String {
        format!("random(n={})", self.n_chunks)
    }

    fn form(&self, set: &DescriptorSet) -> ChunkFormation {
        assert!(self.n_chunks > 0, "need at least one chunk");
        let mut positions: Vec<u32> = (0..set.len() as u32).collect();
        positions.shuffle(&mut StdRng::seed_from_u64(self.seed));
        let n_chunks = self.n_chunks.min(set.len().max(1));
        let per = set.len().div_ceil(n_chunks).max(1);
        let chunks: Vec<ChunkDef> = positions
            .chunks(per)
            .map(|slice| summarise(set, slice.to_vec()))
            .collect();
        ChunkFormation {
            cost: FormationCost {
                distance_ops: 2 * set.len() as u64,
                rounds: 1,
            },
            chunks,
            outliers: Vec::new(),
        }
    }
}

// ---------------------------------------------------------------------------
// Hybrid (the conclusion's recommendation)
// ---------------------------------------------------------------------------

/// Size-first chunking with best-effort intra-chunk similarity — the
/// algorithm the paper's conclusion recommends building.
///
/// Starts from the SR-tree's uniform partition, then runs bounded local
/// refinement sweeps: each descriptor may move to one of its chunk's
/// nearest neighbouring chunks when that chunk's centroid is strictly
/// closer, but only while both chunks stay within `[min_fill, max_fill] ×`
/// the target size. Sizes therefore stay near-uniform while intra-chunk
/// dissimilarity decreases monotonically.
#[derive(Clone, Copy, Debug)]
pub struct HybridChunker {
    /// Target descriptors per chunk.
    pub chunk_size: usize,
    /// Refinement sweeps over the collection.
    pub sweeps: usize,
    /// Neighbouring chunks considered as move targets.
    pub neighbor_chunks: usize,
    /// Minimum chunk fill as a fraction of `chunk_size`.
    pub min_fill: f32,
    /// Maximum chunk fill as a fraction of `chunk_size`.
    pub max_fill: f32,
}

impl Default for HybridChunker {
    fn default() -> Self {
        HybridChunker {
            chunk_size: 1_000,
            sweeps: 3,
            neighbor_chunks: 4,
            min_fill: 0.6,
            max_fill: 1.5,
        }
    }
}

impl ChunkFormer for HybridChunker {
    fn name(&self) -> String {
        format!("hybrid(size={},sweeps={})", self.chunk_size, self.sweeps)
    }

    fn form(&self, set: &DescriptorSet) -> ChunkFormation {
        assert!(self.chunk_size > 0, "chunk size must be positive");
        assert!(
            self.min_fill > 0.0 && self.min_fill < 1.0 && self.max_fill > 1.0,
            "fill bounds must bracket 1.0"
        );
        let seed = chunks_from_collection(set, self.chunk_size);
        if seed.is_empty() {
            return ChunkFormation {
                chunks: Vec::new(),
                outliers: Vec::new(),
                cost: FormationCost::default(),
            };
        }
        let mut membership: Vec<Vec<u32>> = seed.iter().map(|c| c.positions.clone()).collect();
        let mut centroids: Vec<Vector> = seed.iter().map(|c| c.centroid).collect();
        let l = membership.len();
        let lo = ((self.chunk_size as f32) * self.min_fill) as usize;
        let hi = ((self.chunk_size as f32) * self.max_fill).ceil() as usize;
        let mut ops: u64 = set.len() as u64 * 2;

        // chunk_of[p] = current chunk of position p.
        let mut chunk_of = vec![0u32; set.len()];
        for (ci, members) in membership.iter().enumerate() {
            for &p in members {
                chunk_of[p as usize] = ci as u32;
            }
        }

        for _ in 0..self.sweeps {
            // Nearest chunks of each chunk (by centroid).
            let neighbors: Vec<Vec<u32>> = (0..l)
                .map(|i| {
                    let mut d: Vec<(f32, u32)> = (0..l)
                        .filter(|&j| j != i)
                        .map(|j| (centroids[i].dist_sq(&centroids[j]), j as u32))
                        .collect();
                    d.sort_by(|a, b| a.0.total_cmp(&b.0));
                    d.truncate(self.neighbor_chunks);
                    d.into_iter().map(|(_, j)| j).collect()
                })
                .collect();
            ops += (l * l) as u64;

            let mut moved = 0usize;
            // Indexed loop: the body reassigns `chunk_of[p]` on a move.
            #[allow(clippy::needless_range_loop)]
            for p in 0..set.len() {
                let from = chunk_of[p] as usize;
                if membership[from].len() <= lo {
                    continue; // source must stay above the floor
                }
                let v = set.vector_owned(p);
                let own_d = v.dist_sq(&centroids[from]);
                let mut best: Option<(usize, f32)> = None;
                for &j in &neighbors[from] {
                    let j = j as usize;
                    if membership[j].len() >= hi {
                        continue;
                    }
                    let d = v.dist_sq(&centroids[j]);
                    if d < own_d && best.is_none_or(|(_, bd)| d < bd) {
                        best = Some((j, d));
                    }
                }
                ops += self.neighbor_chunks as u64 + 1;
                if let Some((to, _)) = best {
                    let idx = membership[from].iter().position(|&m| m as usize == p);
                    debug_assert!(idx.is_some(), "chunk_of must agree with membership");
                    if let Some(idx) = idx {
                        membership[from].swap_remove(idx);
                        membership[to].push(p as u32);
                        chunk_of[p] = to as u32;
                        moved += 1;
                    }
                }
            }
            // Recompute centroids after the sweep.
            for (ci, members) in membership.iter().enumerate() {
                let (c, _) = centroid_only(set, members);
                centroids[ci] = c;
            }
            ops += set.len() as u64;
            if moved == 0 {
                break;
            }
        }

        let chunks: Vec<ChunkDef> = membership
            .into_iter()
            .filter(|m| !m.is_empty())
            .map(|m| summarise(set, m))
            .collect();
        ChunkFormation {
            chunks,
            outliers: Vec::new(),
            cost: FormationCost {
                distance_ops: ops,
                rounds: self.sweeps as u64,
            },
        }
    }
}

fn centroid_only(set: &DescriptorSet, positions: &[u32]) -> (Vector, usize) {
    let mut sum = [0.0f64; DIM];
    for &p in positions {
        let v = set.vector(p as usize);
        for d in 0..DIM {
            sum[d] += f64::from(v[d]);
        }
    }
    let n = positions.len().max(1);
    let mut c = Vector::ZERO;
    for d in 0..DIM {
        c[d] = (sum[d] / n as f64) as f32;
    }
    (c, n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use eff2_descriptor::Descriptor;

    fn blobby_set(n: usize) -> DescriptorSet {
        // Four blobs along a line, equal population.
        (0..n)
            .map(|i| {
                let blob = (i % 4) as f32 * 40.0;
                let mut v = Vector::splat(blob);
                v[0] += ((i * 37) % 17) as f32 * 0.2;
                v[1] += ((i * 53) % 13) as f32 * 0.2;
                Descriptor::new(i as u32, v)
            })
            .collect()
    }

    fn check_partition(set: &DescriptorSet, f: &ChunkFormation) {
        let mut seen = vec![false; set.len()];
        for c in &f.chunks {
            for &p in &c.positions {
                assert!(!seen[p as usize], "position {p} duplicated");
                seen[p as usize] = true;
            }
        }
        for &p in &f.outliers {
            assert!(!seen[p as usize], "outlier {p} also in a chunk");
            seen[p as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "positions lost");
        // Summaries must cover members.
        for c in &f.chunks {
            for &p in &c.positions {
                let d = c.centroid.dist(&set.vector_owned(p as usize));
                assert!(d <= c.radius * (1.0 + 1e-4) + 1e-3);
            }
        }
    }

    #[test]
    fn srtree_former_is_uniform_partition() {
        let set = blobby_set(400);
        let f = SrTreeChunker { leaf_size: 50 }.form(&set);
        check_partition(&set, &f);
        assert_eq!(f.chunks.len(), 8);
        for c in &f.chunks {
            assert_eq!(c.positions.len(), 50);
        }
        assert!(f.outliers.is_empty());
        assert!(f.cost.distance_ops > 0);
    }

    #[test]
    fn bag_former_produces_quality_chunks() {
        let set = blobby_set(200);
        let f = BagChunker {
            config: BagConfig {
                mpi: 1.0,
                ..BagConfig::default()
            },
            target_clusters: 8,
        }
        .form(&set);
        check_partition(&set, &f);
        assert!(!f.chunks.is_empty());
        assert!(f.cost.distance_ops > 0);
    }

    #[test]
    fn round_robin_is_perfectly_uniform() {
        let set = blobby_set(100);
        let f = RoundRobinChunker { n_chunks: 10 }.form(&set);
        check_partition(&set, &f);
        assert_eq!(f.chunks.len(), 10);
        for c in &f.chunks {
            assert_eq!(c.positions.len(), 10);
        }
    }

    #[test]
    fn round_robin_more_chunks_than_points() {
        let set = blobby_set(3);
        let f = RoundRobinChunker { n_chunks: 10 }.form(&set);
        check_partition(&set, &f);
        assert_eq!(f.chunks.len(), 3);
    }

    #[test]
    fn random_chunker_is_seeded() {
        let set = blobby_set(100);
        let a = RandomChunker {
            n_chunks: 5,
            seed: 1,
        }
        .form(&set);
        let b = RandomChunker {
            n_chunks: 5,
            seed: 1,
        }
        .form(&set);
        let c = RandomChunker {
            n_chunks: 5,
            seed: 2,
        }
        .form(&set);
        check_partition(&set, &a);
        let ids = |f: &ChunkFormation| {
            f.chunks
                .iter()
                .map(|c| c.positions.clone())
                .collect::<Vec<_>>()
        };
        assert_eq!(ids(&a), ids(&b));
        assert_ne!(ids(&a), ids(&c));
    }

    #[test]
    fn hybrid_improves_dissimilarity_with_bounded_sizes() {
        let set = blobby_set(400);
        let sr = SrTreeChunker { leaf_size: 100 }.form(&set);
        let hy = HybridChunker {
            chunk_size: 100,
            sweeps: 4,
            neighbor_chunks: 3,
            min_fill: 0.6,
            max_fill: 1.5,
        }
        .form(&set);
        check_partition(&set, &hy);
        // Sizes bounded.
        for c in &hy.chunks {
            assert!(c.positions.len() >= 60 && c.positions.len() <= 150);
        }
        // Mean within-chunk scatter must not degrade.
        let scatter = |f: &ChunkFormation| -> f64 {
            let mut total = 0.0f64;
            let mut n = 0usize;
            for c in &f.chunks {
                for &p in &c.positions {
                    total += f64::from(c.centroid.dist_sq(&set.vector_owned(p as usize)));
                    n += 1;
                }
            }
            total / n as f64
        };
        assert!(scatter(&hy) <= scatter(&sr) * 1.0001);
    }

    #[test]
    fn formation_stats_helpers() {
        let set = blobby_set(100);
        let f = SrTreeChunker { leaf_size: 30 }.form(&set);
        assert_eq!(f.retained(), 100);
        assert!((f.mean_chunk_size() - 25.0).abs() < 1e-9); // 4 chunks of 25
        let sizes = f.sizes_descending();
        assert!(sizes.windows(2).all(|w| w[0] >= w[1]));
    }

    #[test]
    fn names_are_descriptive() {
        assert!(SrTreeChunker { leaf_size: 7 }.name().contains('7'));
        assert!(RoundRobinChunker { n_chunks: 3 }.name().contains("round"));
        assert!(HybridChunker::default().name().contains("hybrid"));
    }

    #[test]
    fn empty_collection_everywhere() {
        let set = DescriptorSet::new();
        assert!(SrTreeChunker { leaf_size: 10 }.form(&set).chunks.is_empty());
        assert!(RoundRobinChunker { n_chunks: 3 }
            .form(&set)
            .chunks
            .is_empty());
        assert!(RandomChunker {
            n_chunks: 3,
            seed: 0
        }
        .form(&set)
        .chunks
        .is_empty());
        assert!(HybridChunker::default().form(&set).chunks.is_empty());
    }
}
